// Program specifications: the per-program facts the paper publishes in
// Table 1 (SPEC-2000 group) and Table 2 (scientific/system group), plus the
// synthetic parameters our substitution adds (page-touch intensity, memory
// ramp shape). See catalog.h for the concrete entries.
#pragma once

#include <string>

#include "util/units.h"
#include "workload/memory_profile.h"

namespace vrc::workload {

/// Which of the paper's two workload groups a program belongs to. Group 1
/// (SPEC) runs on cluster 1 (400 MHz / 384 MB); group 2 (applications) runs
/// on cluster 2 (233 MHz / 128 MB).
enum class WorkloadGroup { kSpec, kApps };

/// Human-readable group name ("spec" / "apps"), used in trace files.
const char* to_string(WorkloadGroup group);

/// Parses "spec"/"apps"; returns false on anything else.
bool parse_workload_group(const std::string& text, WorkloadGroup* out);

/// Static description of one program, measured (per the paper) in a
/// dedicated environment on the group's reference workstation.
struct ProgramSpec {
  std::string name;
  std::string description;
  std::string input;          // input file / data-size label from the paper
  WorkloadGroup group = WorkloadGroup::kSpec;

  Bytes working_set = 0;      // peak demanded memory
  Bytes working_set_min = 0;  // low end for programs the paper lists with a range
  SimTime lifetime = 0.0;     // dedicated execution time on the reference CPU
  double reference_mhz = 0.0; // CPU speed the lifetime was measured at

  // Synthetic-substitution parameters (DESIGN.md §5):
  double touch_rate = 0.0;    // new-page touches per CPU-second; drives the
                              // overcommit fault model faults/s = touch_rate * O
  double ramp_fraction = 0.05;// fraction of progress to reach the working set
  double io_rate = 0.0;       // I/O ops per CPU-second (characterization only)
  double mix_weight = 1.0;    // relative arrival frequency in generated traces;
                              // large jobs get small weights ("the percentage
                              // of exceptionally large jobs is very low")
  double plateau_fraction = 0.9;  // fraction of the peak reached right after the
                                  // allocation ramp; the rest accrues over the
                                  // whole run (big jobs grow much more)

  /// Builds the program's memory profile. Programs with a working-set range
  /// ramp to working_set_min and grow to working_set over the lifetime;
  /// fixed-working-set programs ramp quickly and plateau.
  MemoryProfile profile() const;

  /// True if the paper reports a working-set range rather than a single size.
  bool has_range() const { return working_set_min > 0 && working_set_min != working_set; }
};

}  // namespace vrc::workload
