#include "workload/swf_source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vrc::workload {

namespace {

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base;
}

[[noreturn]] void fail(const std::string& name, std::size_t line, const std::string& message) {
  throw std::runtime_error("SwfTraceSource(" + name + "): line " + std::to_string(line) + ": " +
                           message);
}

}  // namespace

SwfTraceSource::SwfTraceSource(const std::string& path, SwfOptions options)
    : name_(options.name.empty() ? stem_of(path) : options.name), options_(options) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) throw std::runtime_error("SwfTraceSource: cannot open " + path);
  stream_ = std::move(file);
  advance();
}

SwfTraceSource::SwfTraceSource(std::string name, std::istringstream body, SwfOptions options)
    : name_(std::move(name)),
      options_(options),
      stream_(std::make_unique<std::istringstream>(std::move(body))) {
  advance();
}

std::optional<SimTime> SwfTraceSource::peek_time() {
  if (!lookahead_) return std::nullopt;
  return lookahead_->submit_time;
}

std::optional<JobSpec> SwfTraceSource::next() {
  if (!lookahead_) return std::nullopt;
  std::optional<JobSpec> job = std::move(lookahead_);
  lookahead_.reset();
  advance();
  return job;
}

void SwfTraceSource::advance() {
  if (exhausted_) return;
  if (options_.max_jobs != 0 && accepted_ >= options_.max_jobs) {
    exhausted_ = true;
    return;
  }

  std::string line;
  while (std::getline(*stream_, line)) {
    ++line_number_;
    // Header and inline comments use ';' in SWF.
    const std::size_t semi = line.find(';');
    if (semi != std::string::npos) line.erase(semi);
    std::istringstream fields(line);

    // Fields 1..11 are required; 12..18 are optional trailing context that
    // this model does not consume (executable number excepted).
    double raw[11] = {};
    int got = 0;
    while (got < 11 && fields >> raw[got]) ++got;
    if (got == 0) continue;  // blank / comment-only line
    if (got < 11) {
      fail(name_, line_number_,
           "expected at least 11 SWF fields, found " + std::to_string(got));
    }
    for (int i = 0; i < 11; ++i) {
      if (!std::isfinite(raw[i])) fail(name_, line_number_, "non-finite field value");
    }
    double executable = -1.0;
    // Skip fields 12 (user) and 13 (group), read 14 (executable) if present.
    double skip_field = 0.0;
    if (fields >> skip_field && fields >> skip_field) {
      if (!(fields >> executable)) executable = -1.0;
    }

    const double submit = raw[1];
    const double run_time = raw[3];
    const double alloc_procs = raw[4];
    const double mem_kb_per_proc = raw[6];
    const double req_procs = raw[7];
    const int status = static_cast<int>(raw[10]);

    if (submit < 0.0) fail(name_, line_number_, "negative submit time");

    // Tolerated skips: cancelled jobs and jobs that never accumulated
    // runtime carry no load; sub-min_runtime jobs are filtered by request.
    if (status == 5 || run_time <= 0.0 || run_time < options_.min_runtime) {
      ++skipped_;
      continue;
    }

    double procs = alloc_procs > 0.0 ? alloc_procs : (req_procs > 0.0 ? req_procs : 1.0);

    JobSpec job;
    ++accepted_;
    job.id = static_cast<JobId>(accepted_);
    job.program =
        executable >= 0.0 ? "swf-app-" + std::to_string(static_cast<long>(executable)) : "swf";
    // Nondecreasing clamp: a submit time that runs backwards (merged logs)
    // is pinned to the previous arrival instead of rejected.
    job.submit_time = std::max(submit * options_.scale, last_submit_);
    last_submit_ = job.submit_time;
    job.home_node =
        static_cast<NodeId>(static_cast<std::uint64_t>(std::max(raw[0], 0.0)) %
                            std::max<std::uint32_t>(options_.num_nodes, 1));
    job.cpu_seconds = run_time;
    const Bytes per_cpu = mem_kb_per_proc > 0.0
                              ? static_cast<Bytes>(mem_kb_per_proc * 1024.0)
                              : options_.default_mem_per_cpu;
    const Bytes working_set = per_cpu * static_cast<Bytes>(procs);
    if (options_.synthesize_profile) {
      // profile=ramp: the archive memory field becomes a ramp-up working set
      // with a footprint-proportional page-touch rate (DESIGN.md §14.4).
      job.touch_rate = options_.profile_touch_rate_per_mb * to_megabytes(working_set);
      job.memory = MemoryProfile::ramp_to(working_set, options_.profile_ramp_fraction);
    } else {
      job.touch_rate = 0.0;  // archive logs carry no paging signal
      job.memory = MemoryProfile::constant(working_set);
    }
    lookahead_ = std::move(job);
    return;
  }
  exhausted_ = true;
}

}  // namespace vrc::workload
