// Declarative trace description: the workload third of a scenario spec.
//
// A TraceSpec names one of the paper's five published trace shapes
// ("spec:trace=3"), a custom generated workload
// ("apps:jobs=400,duration=1800,seed=9,arrival_scale=1.5"), or a real
// Standard Workload Format log replay
// ("swf:file=tests/data/swf/NASA-iPSC-1993-3.swf,scale=0.1,max_jobs=200")
// as text, and builds the corresponding Trace — or, via make_source(), the
// equivalent pull-based ArrivalSource for streaming runs (DESIGN.md §14).
// A spec that names a standard trace with no overrides builds the
// byte-identical trace the enum-era standard_trace(group, index) call
// produced, and its streamed source replays the identical RNG stream.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "workload/arrival_source.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"

namespace vrc::workload {

/// Text-describable recipe for one trace.
///
/// Text form: `<group>[:key=value,...]` with group `spec`, `apps`, or `swf`.
/// Keys for `spec` / `apps` (generated workloads):
///   trace          int 1..5: one of the published standard shapes
///   jobs           int: custom workload size (mutually exclusive with trace)
///   duration       duration: submission window of a custom workload
///   arrival_scale  double: multiplies the 60 s arrival time unit (>1 =
///                  slower arrivals, <1 = burstier)
///   seed           uint64: trace-generation seed (0 = the per-(group,
///                  index) default for standard shapes)
///   nodes          int: home-node range; 0 = inherit the scenario's count
///   name           string: trace name override
///   malleable      double 0..1: fraction of jobs generated with a
///                  Malleability block (DESIGN.md §15); 0 (default) keeps the
///                  trace bit-identical to the pre-malleability generator
///   malleable_min  int >= 1: narrowest width of generated malleable jobs
///   malleable_max  int >= malleable_min: widest width (jobs submit at it)
///   malleable_alpha double: per-width speedup exponent s(w) = w^alpha
/// Keys for `swf` (Standard Workload Format replay; DESIGN.md §14):
///   file           path to the .swf log (required; relative paths are
///                  rebased against the scenario file by ScenarioSpec::load)
///   scale          double > 0: multiplies every submit time (compresses or
///                  stretches the log's arrival process)
///   max_jobs       int: stop after this many accepted jobs (0 = all)
///   min_runtime    duration: skip jobs shorter than this
///   group          spec | apps: workload group the replay is billed to
///                  (picks the paper testbed under `cluster auto`)
///   profile        flat | ramp: memory-profile synthesis. `flat` (default)
///                  replays the archive memory field as a constant working
///                  set with no paging signal; `ramp` maps it onto a
///                  synthetic ramp-up MemoryProfile and derives a page-touch
///                  rate from the per-process footprint, so the policies'
///                  paging behavior differentiates on real-trace replays
///                  (DESIGN.md §14.4)
///   nodes, name    as above
struct TraceSpec {
  WorkloadGroup group = WorkloadGroup::kSpec;
  int standard_index = 0;      // 1..5 selects a published shape; 0 = custom
  std::size_t num_jobs = 0;    // custom workloads only
  SimTime duration = 1800.0;   // custom workloads only
  double arrival_scale = 1.0;  // scales TraceParams::time_scale
  std::uint64_t seed = 0;      // 0 = default seed
  std::uint32_t num_nodes = 0; // 0 = inherit from the caller
  std::string name;            // empty = derived name

  // Malleability of generated jobs (DESIGN.md §15). fraction 0 (default)
  // never draws from the malleability RNG stream: bit-identical traces.
  double malleable_fraction = 0.0;
  int malleable_min_width = 1;
  int malleable_max_width = 2;
  double malleable_speedup_alpha = 0.8;

  // SWF replay (group token `swf`). A non-empty file selects SWF mode and is
  // mutually exclusive with trace=/jobs=.
  std::string swf_file;
  double swf_scale = 1.0;
  std::size_t swf_max_jobs = 0;
  double swf_min_runtime = 0.0;
  std::string swf_profile;  // empty/"flat" = archive replay; "ramp" = synthetic

  bool operator==(const TraceSpec&) const = default;

  /// A published standard trace: group + index, everything else default.
  static TraceSpec standard(WorkloadGroup group, int index);

  /// An SWF log replay.
  static TraceSpec swf(std::string file);

  bool is_swf() const { return !swf_file.empty(); }

  /// Canonical text form; parse(print(spec)) == spec.
  std::string print() const;

  /// Parses the text form. std::nullopt + *error on malformed text, unknown
  /// keys, malformed values, or inconsistent combinations (trace and jobs
  /// together, trace out of 1..5, neither given).
  static std::optional<TraceSpec> parse(const std::string& text, std::string* error = nullptr);

  /// Semantic validation for programmatically-built specs (parse() already
  /// validates).
  bool validate(std::string* error) const;

  /// The generator parameters this spec describes (generated specs only; the
  /// shared derivation behind build() and make_source(), so the streamed and
  /// materialized paths cannot drift apart).
  TraceParams to_params(std::uint32_t default_nodes = 32) const;

  /// Builds the trace. `default_nodes` supplies the home-node range when the
  /// spec does not pin one. A standard-index spec with default seed, scale,
  /// and name reproduces standard_trace(group, index, nodes) exactly. SWF
  /// specs read the log eagerly (throws std::runtime_error on a missing or
  /// malformed file, like Trace::load).
  Trace build(std::uint32_t default_nodes = 32) const;

  /// Builds the pull-based streaming equivalent of build(): a
  /// GeneratedStreamSource for generated specs (identical RNG stream, so
  /// streamed and materialized runs fingerprint-match) or an SwfTraceSource
  /// for SWF specs. Throws std::runtime_error on an unreadable SWF file.
  std::unique_ptr<ArrivalSource> make_source(std::uint32_t default_nodes = 32) const;
};

}  // namespace vrc::workload
