// Declarative trace description: the workload third of a scenario spec.
//
// A TraceSpec names either one of the paper's five published trace shapes
// ("spec:trace=3") or a custom generated workload
// ("apps:jobs=400,duration=1800,seed=9,arrival_scale=1.5") as text, and
// builds the corresponding Trace. A spec that names a standard trace with no
// overrides builds the byte-identical trace the enum-era
// standard_trace(group, index) call produced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "workload/trace.h"
#include "workload/trace_generator.h"

namespace vrc::workload {

/// Text-describable recipe for one trace.
///
/// Text form: `<group>[:key=value,...]` with group `spec` or `apps` and keys
///   trace          int 1..5: one of the published standard shapes
///   jobs           int: custom workload size (mutually exclusive with trace)
///   duration       duration: submission window of a custom workload
///   arrival_scale  double: multiplies the 60 s arrival time unit (>1 =
///                  slower arrivals, <1 = burstier)
///   seed           uint64: trace-generation seed (0 = the per-(group,
///                  index) default for standard shapes)
///   nodes          int: home-node range; 0 = inherit the scenario's count
///   name           string: trace name override
struct TraceSpec {
  WorkloadGroup group = WorkloadGroup::kSpec;
  int standard_index = 0;      // 1..5 selects a published shape; 0 = custom
  std::size_t num_jobs = 0;    // custom workloads only
  SimTime duration = 1800.0;   // custom workloads only
  double arrival_scale = 1.0;  // scales TraceParams::time_scale
  std::uint64_t seed = 0;      // 0 = default seed
  std::uint32_t num_nodes = 0; // 0 = inherit from the caller
  std::string name;            // empty = derived name

  bool operator==(const TraceSpec&) const = default;

  /// A published standard trace: group + index, everything else default.
  static TraceSpec standard(WorkloadGroup group, int index);

  /// Canonical text form; parse(print(spec)) == spec.
  std::string print() const;

  /// Parses the text form. std::nullopt + *error on malformed text, unknown
  /// keys, malformed values, or inconsistent combinations (trace and jobs
  /// together, trace out of 1..5, neither given).
  static std::optional<TraceSpec> parse(const std::string& text, std::string* error = nullptr);

  /// Semantic validation for programmatically-built specs (parse() already
  /// validates).
  bool validate(std::string* error) const;

  /// Builds the trace. `default_nodes` supplies the home-node range when the
  /// spec does not pin one. A standard-index spec with default seed, scale,
  /// and name reproduces standard_trace(group, index, nodes) exactly.
  Trace build(std::uint32_t default_nodes = 32) const;
};

}  // namespace vrc::workload
