#include "workload/catalog.h"

#include "util/units.h"

namespace vrc::workload {

namespace {

ProgramSpec spec_program(std::string name, std::string description, std::string input,
                         double working_set_mb, double lifetime_s, double touch_rate,
                         double ramp_fraction, double io_rate, double mix_weight) {
  ProgramSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.input = std::move(input);
  p.group = WorkloadGroup::kSpec;
  p.working_set = megabytes(working_set_mb);
  p.lifetime = lifetime_s;
  p.reference_mhz = 400.0;
  p.touch_rate = touch_rate;
  p.ramp_fraction = ramp_fraction;
  p.io_rate = io_rate;
  p.mix_weight = mix_weight;
  return p;
}

ProgramSpec app_program(std::string name, std::string description, std::string input,
                        double ws_min_mb, double ws_max_mb, double lifetime_s, double touch_rate,
                        double ramp_fraction, double io_rate, double mix_weight) {
  ProgramSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.input = std::move(input);
  p.group = WorkloadGroup::kApps;
  p.working_set_min = megabytes(ws_min_mb);
  p.working_set = megabytes(ws_max_mb);
  if (p.working_set_min == p.working_set) p.working_set_min = 0;
  p.lifetime = lifetime_s;
  p.reference_mhz = 233.0;
  p.touch_rate = touch_rate;
  p.ramp_fraction = ramp_fraction;
  p.io_rate = io_rate;
  p.mix_weight = mix_weight;
  return p;
}

void mark_growing(std::vector<ProgramSpec>& programs, const char* name, double plateau) {
  for (ProgramSpec& p : programs) {
    if (p.name == name) p.plateau_fraction = plateau;
  }
}

std::vector<ProgramSpec> make_spec_catalog() {
  // Table 1. Two programs (apsi, mcf) are the "large jobs": ~190 MB working
  // sets *and* long lifetimes — the population whose unsuitable placement
  // causes the blocking problem on 384 MB nodes — and their small mix
  // weights keep them a low percentage of the pool, as the paper requires.
  // Lifetimes preserve the programs' relative ordering while keeping the
  // five published trace shapes in the light-to-overloaded utilization range
  // the evaluation explores (EXPERIMENTS.md discusses this calibration).
  return {
      spec_program("apsi", "climate modeling", "apsi.in", 191.0, 650.0, 6000.0, 0.04, 2.0, 0.4),
      spec_program("gcc", "optimized C compiler", "166.i", 78.0, 135.0, 1000.0, 0.10, 8.0, 2.1),
      spec_program("gzip", "data compression", "input.graphic", 58.0, 49.0, 600.0, 0.06, 25.0,
                   2.3),
      spec_program("mcf", "combinatorial optimization", "inp.in", 190.0, 720.0, 7000.0, 0.03, 1.0,
                   0.4),
      spec_program("vortex", "database", "lendian1.raw", 62.0, 113.0, 1000.0, 0.08, 30.0, 2.1),
      spec_program("bzip", "data compression", "input.graphic", 60.0, 64.0, 700.0, 0.06, 25.0,
                   2.1),
  };
}

std::vector<ProgramSpec> finish_spec_catalog() {
  std::vector<ProgramSpec> programs = make_spec_catalog();
  // The large jobs keep allocating through their whole run ("unexpectedly
  // large memory allocation requirements"); normal jobs reach a stable
  // working set early.
  mark_growing(programs, "apsi", 0.45);
  mark_growing(programs, "mcf", 0.45);
  return programs;
}

std::vector<ProgramSpec> make_apps_catalog() {
  // Table 2. Working sets are small relative to a 128 MB node (several jobs
  // coexist without paging), so queueing balance — not memory — dominates;
  // metis (growing 1M-4M element meshes) is the group's rare large, long
  // job. This matches the paper's §4.2 finding that group-2 gains come from
  // job balancing while total idle memory stays nearly unchanged.
  return {
      app_program("bit-r", "bit-reversals", "2^22 elems", 0.0, 22.0, 40.0, 1100.0, 0.05, 4.0,
                  1.5),
      app_program("m-sort", "merge-sort", "24M keys", 0.0, 20.0, 61.0, 950.0, 0.08, 6.0, 1.5),
      app_program("m-m", "matrix multiplication", "1,024", 0.0, 14.0, 80.0, 380.0, 0.03, 1.0,
                  1.5),
      app_program("t-sim", "trace-driven simulation", "31,000k refs", 0.0, 24.0, 138.0, 880.0,
                  0.06, 40.0, 1.5),
      app_program("metis", "partitioning meshes", "1M-4M", 42.0, 78.0, 520.0, 2200.0, 0.05, 10.0,
                  0.5),
      app_program("r-sphere", "volume rendering, sphere", "150,000", 0.0, 12.0, 56.0, 700.0,
                  0.05, 18.0, 1.5),
      app_program("r-wing", "volume rendering, aircraft wing", "500,000", 0.0, 23.0, 122.0,
                  800.0, 0.05, 22.0, 1.5),
  };
}

}  // namespace

const std::vector<ProgramSpec>& catalog(WorkloadGroup group) {
  static const std::vector<ProgramSpec> spec = finish_spec_catalog();
  static const std::vector<ProgramSpec> apps = make_apps_catalog();
  return group == WorkloadGroup::kSpec ? spec : apps;
}

std::optional<ProgramSpec> find_program(const std::string& name) {
  for (WorkloadGroup group : {WorkloadGroup::kSpec, WorkloadGroup::kApps}) {
    for (const ProgramSpec& p : catalog(group)) {
      if (p.name == name) return p;
    }
  }
  return std::nullopt;
}

double reference_mhz(WorkloadGroup group) {
  return group == WorkloadGroup::kSpec ? 400.0 : 233.0;
}

}  // namespace vrc::workload
