// Synthetic trace generation following the paper's §3.3.2.
//
// Job submission times follow the lognormal arrival-rate function (Eq. 1)
// truncated to the trace duration; each job is an instance of a catalog
// program with lightly jittered lifetime/working set, randomly submitted to
// one of the cluster's workstations. The five standard traces per group use
// the published (sigma, mu, job count, duration) tuples.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "workload/catalog.h"
#include "workload/trace.h"

namespace vrc::workload {

/// Parameters of one generated trace.
struct TraceParams {
  std::string name;
  WorkloadGroup group = WorkloadGroup::kSpec;
  double sigma = 3.0;          // lognormal shape (the paper's ff)
  double mu = 3.0;             // lognormal scale (the paper's mu)
  std::size_t num_jobs = 578;  // jobs submitted within the window
  SimTime duration = 3581.0;   // submission window in seconds
  std::uint32_t num_nodes = 32;
  std::uint64_t seed = 1;
  /// Arrival times are lognormal(mu, sigma) in units of `time_scale` seconds,
  /// truncated to the duration. The paper's Eq. 1 parameter pairs produce
  /// degenerate all-at-once bursts when read in seconds; at the default
  /// 60 s unit the five published shapes span light-to-intensive workloads
  /// (EXPERIMENTS.md, calibration notes).
  double time_scale = 60.0;

  // Per-instance jitter: lifetime and working set are multiplied by a
  // uniform factor in [1-jitter, 1+jitter]. 0 replays the catalog exactly.
  double lifetime_jitter = 0.10;
  double working_set_jitter = 0.08;

  // Optional program-mix override: weights parallel to catalog(group) order.
  // Empty means uniform random selection, matching "randomly submitted".
  std::vector<double> program_weights;

  // --- malleability (DESIGN.md §15) ---
  // Fraction of jobs generated with a Malleability block (width range
  // [malleable_min_width, malleable_max_width], submitted at max width).
  // 0 (the default) draws nothing from the malleability RNG stream and
  // produces the exact pre-malleability trace bit-for-bit.
  double malleable_fraction = 0.0;
  int malleable_min_width = 1;
  int malleable_max_width = 2;
  /// Speedup-curve exponent assigned to generated malleable jobs.
  double malleable_speedup_alpha = 0.8;
};

/// Index of the paper's five standard traces (1..5 = light..highly intensive).
struct StandardTraceShape {
  double sigma = 0.0;
  double mu = 0.0;
  std::size_t num_jobs = 0;
  SimTime duration = 0.0;
};

/// The published (sigma, mu, jobs, duration) for trace index 1..5.
StandardTraceShape standard_trace_shape(int index);

/// Generates a trace from explicit parameters.
Trace generate_trace(const TraceParams& params);

/// Generates "SPEC-Trace-<i>" / "App-Trace-<i>" with the published shape.
/// `index` in 1..5. The seed is derived from (group, index) so the same
/// trace is replayed identically across policies and runs.
Trace standard_trace(WorkloadGroup group, int index, std::uint32_t num_nodes = 32);

/// The deterministic per-(group, index) seed standard_trace generates with.
std::uint64_t standard_trace_seed(WorkloadGroup group, int index);

/// Arrival-time sampler used by the generator: draws from LogNormal(mu,
/// sigma) conditioned on the value falling in (0, duration]. Exposed for
/// testing the arrival process in isolation.
SimTime sample_truncated_lognormal(sim::Rng& rng, double mu, double sigma, SimTime duration);

}  // namespace vrc::workload
