// A workload trace: an ordered list of JobSpecs plus metadata, with a plain
// text serialization so traces can be generated once and replayed across
// experiments (the paper collects each trace once and feeds it to both
// schedulers).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.h"
#include "workload/program.h"

namespace vrc::workload {

/// An immutable job trace. Jobs are sorted by submit_time.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, WorkloadGroup group, SimTime duration, std::vector<JobSpec> jobs);

  const std::string& name() const { return name_; }
  WorkloadGroup group() const { return group_; }
  /// Paper-reported submission window (e.g. 3,586 s for Trace-1).
  SimTime duration() const { return duration_; }
  const std::vector<JobSpec>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }

  /// Sum of dedicated CPU demand over all jobs.
  SimTime total_cpu_seconds() const;

  /// Serializes to the "vrc-trace v1" text format.
  void save(std::ostream& out) const;
  bool save_to_file(const std::string& path) const;

  /// Parses the text format. Throws std::runtime_error on malformed input.
  static Trace load(std::istream& in);
  static Trace load_from_file(const std::string& path);

 private:
  std::string name_;
  WorkloadGroup group_ = WorkloadGroup::kSpec;
  SimTime duration_ = 0.0;
  std::vector<JobSpec> jobs_;
};

}  // namespace vrc::workload
