#include "workload/arrival_source.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "workload/catalog.h"

namespace vrc::workload {

std::optional<SimTime> MaterializedTraceSource::peek_time() {
  if (next_index_ >= trace_.size()) return std::nullopt;
  return trace_.jobs()[next_index_].submit_time;
}

std::optional<JobSpec> MaterializedTraceSource::next() {
  if (next_index_ >= trace_.size()) return std::nullopt;
  return trace_.jobs()[next_index_++];
}

GeneratedStreamSource::GeneratedStreamSource(TraceParams params) : params_(std::move(params)) {
  // Mirror generate_trace exactly: same fork order, same per-stream draw
  // order, so job i here is bit-identical to trace.jobs()[i] there.
  const std::vector<ProgramSpec>& programs = catalog(params_.group);
  if (!params_.program_weights.empty() && params_.program_weights.size() != programs.size()) {
    std::fprintf(stderr, "GeneratedStreamSource: %zu weights for %zu programs\n",
                 params_.program_weights.size(), programs.size());
    std::abort();
  }

  sim::Rng rng(params_.seed);
  sim::Rng arrival_rng = rng.fork();
  pick_rng_ = rng.fork();
  jitter_rng_ = rng.fork();
  node_rng_ = rng.fork();
  malleable_rng_ = rng.fork();

  arrivals_.resize(params_.num_jobs);
  for (SimTime& t : arrivals_) {
    t = params_.time_scale * sample_truncated_lognormal(arrival_rng, params_.mu, params_.sigma,
                                                        params_.duration / params_.time_scale);
  }
  std::sort(arrivals_.begin(), arrivals_.end());

  weights_ = params_.program_weights;
  if (weights_.empty()) {
    weights_.reserve(programs.size());
    for (const ProgramSpec& p : programs) weights_.push_back(p.mix_weight);
  }
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

std::optional<SimTime> GeneratedStreamSource::peek_time() {
  if (next_index_ >= arrivals_.size()) return std::nullopt;
  return arrivals_[next_index_];
}

std::optional<JobSpec> GeneratedStreamSource::next() {
  if (next_index_ >= arrivals_.size()) return std::nullopt;
  const std::vector<ProgramSpec>& programs = catalog(params_.group);
  const std::size_t i = next_index_++;

  // generate_trace's pick_program, verbatim.
  const ProgramSpec* program = &programs.back();
  double target = pick_rng_.uniform() * total_weight_;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    target -= weights_[p];
    if (target <= 0.0) {
      program = &programs[p];
      break;
    }
  }

  JobSpec job;
  job.id = static_cast<JobId>(i + 1);
  job.program = program->name;
  job.submit_time = arrivals_[i];
  job.home_node = static_cast<NodeId>(node_rng_.uniform_index(params_.num_nodes));
  const double life_jitter =
      jitter_rng_.uniform(1.0 - params_.lifetime_jitter, 1.0 + params_.lifetime_jitter);
  const double ws_jitter =
      jitter_rng_.uniform(1.0 - params_.working_set_jitter, 1.0 + params_.working_set_jitter);
  job.cpu_seconds = program->lifetime * life_jitter;
  job.touch_rate = program->touch_rate;
  job.memory = program->profile().scaled(ws_jitter);
  if (params_.malleable_fraction > 0.0 &&
      malleable_rng_.uniform() < params_.malleable_fraction) {
    job.malleability.min_width = params_.malleable_min_width;
    job.malleability.max_width = params_.malleable_max_width;
    job.malleability.speedup_alpha = params_.malleable_speedup_alpha;
  }
  return job;
}

Trace materialize(ArrivalSource& source, SimTime duration) {
  std::vector<JobSpec> jobs;
  if (std::optional<std::size_t> total = source.total_jobs()) jobs.reserve(*total);
  SimTime last = 0.0;
  while (std::optional<JobSpec> job = source.next()) {
    last = std::max(last, job->submit_time);
    jobs.push_back(std::move(*job));
  }
  return Trace(source.name(), source.group(), duration > 0.0 ? duration : last, std::move(jobs));
}

}  // namespace vrc::workload
