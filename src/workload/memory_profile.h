// Phased memory-demand profiles.
//
// The paper's traces record each job's memory demand every 10 ms from kernel
// instrumentation. We substitute compact piecewise-linear profiles over job
// progress (fraction of CPU work completed, in [0,1]) that reproduce the
// published working sets: an allocation ramp, a plateau at the working set,
// and optional phase changes. See DESIGN.md §5 (substitution 1).
#pragma once

#include <vector>

#include "util/units.h"

namespace vrc::workload {

/// Piecewise-linear memory demand as a function of job progress.
class MemoryProfile {
 public:
  struct Point {
    double progress = 0.0;  // in [0, 1], strictly increasing across points
    Bytes demand = 0;
  };

  /// Constant demand over the whole lifetime.
  static MemoryProfile constant(Bytes demand);

  /// Linear ramp from near-zero to `peak` over the first `ramp_fraction` of
  /// progress, then a plateau at `peak`.
  static MemoryProfile ramp_to(Bytes peak, double ramp_fraction);

  /// Arbitrary phase list. Points must be sorted by progress; demand is
  /// linearly interpolated between them and clamped at the ends.
  static MemoryProfile phased(std::vector<Point> points);

  /// Demand at the given progress fraction (clamped to [0,1]).
  Bytes demand_at(double progress) const;

  /// Largest demand over the profile (the job's working set).
  Bytes peak() const;

  const std::vector<Point>& points() const { return points_; }

  /// Returns a copy with every demand scaled by `factor` (used to jitter
  /// per-job-instance working sets).
  MemoryProfile scaled(double factor) const;

 private:
  explicit MemoryProfile(std::vector<Point> points);
  std::vector<Point> points_;
};

}  // namespace vrc::workload
