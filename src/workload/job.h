// Static description of a single job instance in a trace.
//
// Mirrors the paper's trace header item (submission time, job ID, lifetime
// measured in the dedicated environment) plus the compact form of the
// per-10 ms activity records: a memory-demand profile and a page-touch
// intensity (see DESIGN.md §5).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/units.h"
#include "workload/memory_profile.h"

namespace vrc::workload {

using JobId = std::uint32_t;
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Malleability contract of a job (DESIGN.md §15): the width range it can
/// run at, the cost of changing width while running, and how extra width
/// converts to useful work. Width is measured in CPU slots on the owning
/// workstation — a width-w job holds w of the node's round-robin shares, so
/// shrinking it frees slots in place (the third reconfiguration axis next to
/// migration and suspension). Memory demand is width-independent: resizing
/// never moves or grows the working set.
struct Malleability {
  /// Narrowest width the job still makes progress at (>= 1).
  int min_width = 1;
  /// Widest width the job can exploit; the job is submitted at this width.
  int max_width = 1;
  /// Fixed pause (seconds) every resize costs regardless of the delta —
  /// barrier/drain overhead of the DMR-style reconfiguration point.
  double resize_fixed_cost = 0.5;
  /// Additional pause per slot of |new_width - old_width| (data
  /// redistribution scales with the reconfiguration delta).
  double resize_per_slot_cost = 0.25;
  /// Per-width speedup curve exponent: running at width w progresses
  /// s(w) = w^alpha times faster than at width 1 under equal contention.
  /// 1.0 is perfect scaling; 0.0 means extra width is pure overhead.
  double speedup_alpha = 0.8;

  /// True when the width can actually change at runtime.
  bool resizable() const { return max_width > min_width; }

  /// s(w): useful-work multiplier of width w relative to width 1.
  double speedup(int width) const {
    return std::pow(static_cast<double>(width), speedup_alpha);
  }

  /// Pause a resize from `from` to `to` slots costs, in seconds.
  double resize_cost(int from, int to) const {
    return resize_fixed_cost + resize_per_slot_cost * std::abs(to - from);
  }
};

/// One job of a workload trace. Immutable during simulation; runtime state
/// (progress, accounting) lives in the cluster module.
struct JobSpec {
  JobId id = 0;
  std::string program;        // catalog program name this instance runs
  SimTime submit_time = 0.0;  // arrival at the home workstation
  NodeId home_node = 0;       // workstation the user submits to
  SimTime cpu_seconds = 0.0;  // dedicated CPU demand on the trace's reference CPU
  double touch_rate = 0.0;    // new-page touches per CPU-second
  MemoryProfile memory = MemoryProfile::constant(0);
  /// Width contract. The default block (min == max == 1) is a rigid
  /// single-slot job, which keeps every pre-malleability trace bit-identical.
  Malleability malleability;

  /// Peak memory demand of this instance.
  Bytes working_set() const { return memory.peak(); }

  /// Width the job is submitted at (malleable jobs ask for their maximum;
  /// the M-Reconfiguration policy shrinks them later if that blocks others).
  int initial_width() const { return malleability.max_width; }

  /// True when the job's width is not the rigid single slot.
  bool malleable() const {
    return malleability.max_width > 1 || malleability.min_width > 1 ||
           malleability.resizable();
  }
};

}  // namespace vrc::workload
