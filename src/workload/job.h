// Static description of a single job instance in a trace.
//
// Mirrors the paper's trace header item (submission time, job ID, lifetime
// measured in the dedicated environment) plus the compact form of the
// per-10 ms activity records: a memory-demand profile and a page-touch
// intensity (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"
#include "workload/memory_profile.h"

namespace vrc::workload {

using JobId = std::uint32_t;
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One job of a workload trace. Immutable during simulation; runtime state
/// (progress, accounting) lives in the cluster module.
struct JobSpec {
  JobId id = 0;
  std::string program;        // catalog program name this instance runs
  SimTime submit_time = 0.0;  // arrival at the home workstation
  NodeId home_node = 0;       // workstation the user submits to
  SimTime cpu_seconds = 0.0;  // dedicated CPU demand on the trace's reference CPU
  double touch_rate = 0.0;    // new-page touches per CPU-second
  MemoryProfile memory = MemoryProfile::constant(0);

  /// Peak memory demand of this instance.
  Bytes working_set() const { return memory.peak(); }
};

}  // namespace vrc::workload
