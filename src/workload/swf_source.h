// Standard Workload Format (SWF) trace replay.
//
// SWF is the archival format of the Parallel Workloads Archive
// (NASA-iPSC-1993-3.swf, SDSC-SP2-1998-4.swf, ...): `;`-prefixed header
// comments followed by one job per line with 18 whitespace-separated fields
//
//   1 job number        7 used memory (KB per processor)  13 group id
//   2 submit time (s)   8 requested processors            14 executable
//   3 wait time         9 requested time                  15 queue
//   4 run time (s)     10 requested memory                16 partition
//   5 allocated procs  11 status (1 ok, 0 failed,         17 preceding job
//   6 avg cpu time         5 cancelled)                   18 think time
//
// SwfTraceSource streams such a log as an ArrivalSource, so day-long logs
// replay with O(1) live storage inside the source (one line of lookahead).
// Field mapping and the tolerance rules are documented in DESIGN.md §14.4.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "workload/arrival_source.h"

namespace vrc::workload {

/// Knobs of one SWF replay.
struct SwfOptions {
  /// Multiplies every submit time: 0.1 compresses a day-long log into ~2.4
  /// simulated hours. Job runtimes are NOT scaled (the cluster model decides
  /// how long work takes); only the arrival process is.
  double scale = 1.0;
  /// Stop after this many accepted jobs (0 = the whole log).
  std::size_t max_jobs = 0;
  /// Skip jobs whose recorded runtime is below this (seconds). Archive logs
  /// carry many sub-second book-keeping entries that would swamp the
  /// scheduler signal.
  double min_runtime = 0.0;
  /// Memory demand per allocated processor when field 7 is missing (-1 or
  /// 0) — the common case in the older logs, which predate memory
  /// accounting.
  Bytes default_mem_per_cpu = 16ull * 1024 * 1024;
  /// Home-node range jobs are assigned to (job number modulo nodes).
  std::uint32_t num_nodes = 32;
  /// Workload group the replay is reported under (paper-testbed selection).
  WorkloadGroup group = WorkloadGroup::kSpec;
  /// Trace-name override; empty derives the name from the file stem.
  std::string name;
  /// Synthesize a paging signal from the archive memory field (the `profile=
  /// ramp` TraceSpec param; DESIGN.md §14.4). Off (default) replays the log
  /// as before — constant working set, touch_rate 0 — byte-identically. On,
  /// each job's memory becomes a ramp-up profile to the recorded working set
  /// and its page-touch rate scales with the per-process footprint, so
  /// memory-aware policies stop tying on real-trace replays.
  bool synthesize_profile = false;
  /// Ramp fraction of the synthetic profile (share of the lifetime spent
  /// growing to the recorded working set).
  double profile_ramp_fraction = 0.2;
  /// Page touches per CPU-second per MB of working set for synthetic
  /// profiles; 12/MB sits inside the Table 1 catalog range (gzip ~10/MB,
  /// apsi ~31/MB).
  double profile_touch_rate_per_mb = 12.0;
};

/// Streams an SWF log as an ArrivalSource.
///
/// Tolerance rules (malformed input throws std::runtime_error with the line
/// number; these do not):
///   - `;` header/comment lines and blank lines are skipped.
///   - Cancelled jobs (status 5) and jobs that never ran (runtime <= 0, or
///     < min_runtime) are skipped.
///   - Missing memory (field 7 <= 0) falls back to default_mem_per_cpu.
///   - Missing allocated processors falls back to requested processors,
///     then to 1.
///   - Out-of-order submit times are clamped to the previous arrival so the
///     stream stays nondecreasing (archive logs occasionally interleave).
///   - Lines may end after field 11 (status); later fields default to -1.
class SwfTraceSource : public ArrivalSource {
 public:
  /// Opens `path`. Throws std::runtime_error when the file cannot be read.
  SwfTraceSource(const std::string& path, SwfOptions options = {});
  /// Reads from an in-memory log body (tests, benches). `name` labels it.
  SwfTraceSource(std::string name, std::istringstream body, SwfOptions options = {});

  std::optional<SimTime> peek_time() override;
  std::optional<JobSpec> next() override;
  const std::string& name() const override { return name_; }
  WorkloadGroup group() const override { return options_.group; }

  /// Jobs skipped so far (cancelled / sub-min_runtime / never-ran).
  std::size_t skipped() const { return skipped_; }
  /// 1-based line number of the last line consumed from the log.
  std::size_t line_number() const { return line_number_; }

 private:
  void advance();  // fills lookahead_ with the next accepted job, if any

  std::string name_;
  SwfOptions options_;
  std::unique_ptr<std::istream> stream_;
  std::optional<JobSpec> lookahead_;
  bool exhausted_ = false;
  std::size_t accepted_ = 0;
  std::size_t skipped_ = 0;
  std::size_t line_number_ = 0;
  SimTime last_submit_ = 0.0;
};

}  // namespace vrc::workload
