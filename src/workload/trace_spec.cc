#include "workload/trace_spec.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <sstream>

namespace vrc::workload {

TraceSpec TraceSpec::standard(WorkloadGroup group, int index) {
  TraceSpec spec;
  spec.group = group;
  spec.standard_index = index;
  return spec;
}

std::string TraceSpec::print() const {
  std::ostringstream out;
  out << to_string(group);
  // Canonical key order; only non-default fields are emitted.
  std::vector<std::pair<std::string, std::string>> items;
  if (standard_index > 0) items.emplace_back("trace", std::to_string(standard_index));
  if (num_jobs > 0) {
    items.emplace_back("jobs", std::to_string(num_jobs));
    std::ostringstream dur;
    dur << duration;
    items.emplace_back("duration", dur.str());
  }
  if (arrival_scale != 1.0) {
    std::ostringstream scale;
    scale << arrival_scale;
    items.emplace_back("arrival_scale", scale.str());
  }
  if (seed != 0) items.emplace_back("seed", std::to_string(seed));
  if (num_nodes != 0) items.emplace_back("nodes", std::to_string(num_nodes));
  if (!name.empty()) items.emplace_back("name", name);
  for (std::size_t i = 0; i < items.size(); ++i) {
    out << (i == 0 ? ':' : ',') << items[i].first << '=' << items[i].second;
  }
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

bool parse_key_values(const std::string& text, const std::string& whole,
                      std::map<std::string, std::string>* out, std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(error,
                  "trace spec '" + whole + "': param '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    if (out->count(key) != 0) {
      return fail(error, "trace spec '" + whole + "': duplicate param '" + key + "'");
    }
    (*out)[key] = item.substr(eq + 1);
    if (end == text.size()) break;
    start = end + 1;
  }
  return true;
}

bool value_error(std::string* error, const std::string& whole, const std::string& key,
                 const std::string& value, const std::string& type, const std::string& example) {
  return fail(error, "trace spec '" + whole + "': invalid value '" + value + "' for '" + key +
                         "' (expected " + type + ", e.g. " + key + "=" + example + ")");
}

}  // namespace

std::optional<TraceSpec> TraceSpec::parse(const std::string& text, std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string group_name = text.substr(0, colon);
  TraceSpec spec;
  if (!parse_workload_group(group_name, &spec.group)) {
    fail(error, "trace spec '" + text + "': unknown workload group '" + group_name +
                    "' (expected spec or apps)");
    return std::nullopt;
  }
  std::map<std::string, std::string> params;
  if (colon != std::string::npos) {
    if (!parse_key_values(text.substr(colon + 1), text, &params, error)) return std::nullopt;
  }

  for (const auto& [key, value] : params) {
    errno = 0;
    char* end = nullptr;
    if (key == "trace") {
      const long index = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0') {
        value_error(error, text, key, value, "int 1..5", "3");
        return std::nullopt;
      }
      spec.standard_index = static_cast<int>(index);
    } else if (key == "jobs") {
      const long jobs = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || jobs <= 0) {
        value_error(error, text, key, value, "positive int", "400");
        return std::nullopt;
      }
      spec.num_jobs = static_cast<std::size_t>(jobs);
    } else if (key == "duration") {
      if (!parse_duration(value, &spec.duration) || spec.duration <= 0.0) {
        value_error(error, text, key, value, "positive duration", "1800");
        return std::nullopt;
      }
    } else if (key == "arrival_scale") {
      const double scale = std::strtod(value.c_str(), &end);
      if (value.empty() || end == value.c_str() || *end != '\0' || scale <= 0.0) {
        value_error(error, text, key, value, "positive double", "1.5");
        return std::nullopt;
      }
      spec.arrival_scale = scale;
    } else if (key == "seed") {
      const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || value.front() == '-') {
        value_error(error, text, key, value, "uint64", "9");
        return std::nullopt;
      }
      spec.seed = seed;
    } else if (key == "nodes") {
      const long nodes = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || nodes <= 0) {
        value_error(error, text, key, value, "positive int", "32");
        return std::nullopt;
      }
      spec.num_nodes = static_cast<std::uint32_t>(nodes);
    } else if (key == "name") {
      if (value.empty()) {
        value_error(error, text, key, value, "non-empty string", "my-trace");
        return std::nullopt;
      }
      spec.name = value;
    } else {
      fail(error, "trace spec '" + text + "': unknown key '" + key +
                      "' (known keys: trace, jobs, duration, arrival_scale, seed, nodes, name)");
      return std::nullopt;
    }
  }

  std::string semantic;
  if (!spec.validate(&semantic)) {
    fail(error, "trace spec '" + text + "': " + semantic);
    return std::nullopt;
  }
  return spec;
}

bool TraceSpec::validate(std::string* error) const {
  if (standard_index != 0 && num_jobs != 0) {
    return fail(error, "trace= and jobs= are mutually exclusive");
  }
  if (standard_index == 0 && num_jobs == 0) {
    return fail(error, "one of trace=1..5 or jobs=N is required");
  }
  if (standard_index != 0 && (standard_index < 1 || standard_index > 5)) {
    return fail(error,
                "trace index " + std::to_string(standard_index) + " out of range (1..5)");
  }
  return true;
}

Trace TraceSpec::build(std::uint32_t default_nodes) const {
  const std::uint32_t nodes = num_nodes != 0 ? num_nodes : default_nodes;
  if (standard_index > 0 && seed == 0 && arrival_scale == 1.0 && name.empty()) {
    // The exact enum-era path: byte-identical standard traces.
    return standard_trace(group, standard_index, nodes);
  }

  TraceParams params;
  params.group = group;
  params.num_nodes = nodes;
  params.time_scale = 60.0 * arrival_scale;
  if (standard_index > 0) {
    const StandardTraceShape shape = standard_trace_shape(standard_index);
    params.sigma = shape.sigma;
    params.mu = shape.mu;
    params.num_jobs = shape.num_jobs;
    params.duration = shape.duration;
    params.name = !name.empty()
                      ? name
                      : (group == WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                                       : std::string("App-Trace-")) +
                            std::to_string(standard_index);
    // Default to the standard replayed-trace seed so a seed-free spec stays
    // the collect-once trace even when name/scale overrides force this path.
    params.seed = seed != 0 ? seed : standard_trace_seed(group, standard_index);
  } else {
    params.num_jobs = num_jobs;
    params.duration = duration;
    params.name = !name.empty() ? name : "generated";
    params.seed = seed != 0 ? seed : 1;
  }
  return generate_trace(params);
}

}  // namespace vrc::workload
