#include "workload/trace_spec.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <sstream>

#include "workload/swf_source.h"

namespace vrc::workload {

TraceSpec TraceSpec::standard(WorkloadGroup group, int index) {
  TraceSpec spec;
  spec.group = group;
  spec.standard_index = index;
  return spec;
}

TraceSpec TraceSpec::swf(std::string file) {
  TraceSpec spec;
  spec.swf_file = std::move(file);
  return spec;
}

std::string TraceSpec::print() const {
  std::ostringstream out;
  if (is_swf()) {
    out << "swf:file=" << swf_file;
    if (swf_scale != 1.0) {
      std::ostringstream scale;
      scale << swf_scale;
      out << ",scale=" << scale.str();
    }
    if (swf_max_jobs > 0) out << ",max_jobs=" << swf_max_jobs;
    if (swf_min_runtime > 0.0) {
      std::ostringstream min_rt;
      min_rt << swf_min_runtime;
      out << ",min_runtime=" << min_rt.str();
    }
    if (group != WorkloadGroup::kSpec) out << ",group=" << to_string(group);
    if (!swf_profile.empty()) out << ",profile=" << swf_profile;
    if (num_nodes != 0) out << ",nodes=" << num_nodes;
    if (!name.empty()) out << ",name=" << name;
    return out.str();
  }
  out << to_string(group);
  // Canonical key order; only non-default fields are emitted.
  std::vector<std::pair<std::string, std::string>> items;
  if (standard_index > 0) items.emplace_back("trace", std::to_string(standard_index));
  if (num_jobs > 0) {
    items.emplace_back("jobs", std::to_string(num_jobs));
    std::ostringstream dur;
    dur << duration;
    items.emplace_back("duration", dur.str());
  }
  if (arrival_scale != 1.0) {
    std::ostringstream scale;
    scale << arrival_scale;
    items.emplace_back("arrival_scale", scale.str());
  }
  if (seed != 0) items.emplace_back("seed", std::to_string(seed));
  if (malleable_fraction > 0.0) {
    std::ostringstream fraction;
    fraction << malleable_fraction;
    items.emplace_back("malleable", fraction.str());
    if (malleable_min_width != 1) {
      items.emplace_back("malleable_min", std::to_string(malleable_min_width));
    }
    if (malleable_max_width != 2) {
      items.emplace_back("malleable_max", std::to_string(malleable_max_width));
    }
    if (malleable_speedup_alpha != 0.8) {
      std::ostringstream alpha;
      alpha << malleable_speedup_alpha;
      items.emplace_back("malleable_alpha", alpha.str());
    }
  }
  if (num_nodes != 0) items.emplace_back("nodes", std::to_string(num_nodes));
  if (!name.empty()) items.emplace_back("name", name);
  for (std::size_t i = 0; i < items.size(); ++i) {
    out << (i == 0 ? ':' : ',') << items[i].first << '=' << items[i].second;
  }
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

bool parse_key_values(const std::string& text, const std::string& whole,
                      std::map<std::string, std::string>* out, std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(error,
                  "trace spec '" + whole + "': param '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    if (out->count(key) != 0) {
      return fail(error, "trace spec '" + whole + "': duplicate param '" + key + "'");
    }
    (*out)[key] = item.substr(eq + 1);
    if (end == text.size()) break;
    start = end + 1;
  }
  return true;
}

bool value_error(std::string* error, const std::string& whole, const std::string& key,
                 const std::string& value, const std::string& type, const std::string& example) {
  return fail(error, "trace spec '" + whole + "': invalid value '" + value + "' for '" + key +
                         "' (expected " + type + ", e.g. " + key + "=" + example + ")");
}

}  // namespace

std::optional<TraceSpec> TraceSpec::parse(const std::string& text, std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string group_name = text.substr(0, colon);
  TraceSpec spec;
  if (group_name == "swf") {
    std::map<std::string, std::string> params;
    if (colon != std::string::npos) {
      if (!parse_key_values(text.substr(colon + 1), text, &params, error)) return std::nullopt;
    }
    for (const auto& [key, value] : params) {
      errno = 0;
      char* end = nullptr;
      if (key == "file") {
        if (value.empty()) {
          value_error(error, text, key, value, "path", "tests/data/swf/NASA-iPSC-1993-3.swf");
          return std::nullopt;
        }
        spec.swf_file = value;
      } else if (key == "scale") {
        const double scale = std::strtod(value.c_str(), &end);
        if (value.empty() || end == value.c_str() || *end != '\0' || scale <= 0.0) {
          value_error(error, text, key, value, "positive double", "0.1");
          return std::nullopt;
        }
        spec.swf_scale = scale;
      } else if (key == "max_jobs") {
        const long max_jobs = std::strtol(value.c_str(), &end, 10);
        if (value.empty() || end == value.c_str() || *end != '\0' || max_jobs <= 0) {
          value_error(error, text, key, value, "positive int", "200");
          return std::nullopt;
        }
        spec.swf_max_jobs = static_cast<std::size_t>(max_jobs);
      } else if (key == "min_runtime") {
        if (!parse_duration(value, &spec.swf_min_runtime) || spec.swf_min_runtime < 0.0) {
          value_error(error, text, key, value, "non-negative duration", "10");
          return std::nullopt;
        }
      } else if (key == "group") {
        if (!parse_workload_group(value, &spec.group)) {
          value_error(error, text, key, value, "spec or apps", "apps");
          return std::nullopt;
        }
      } else if (key == "profile") {
        if (value != "flat" && value != "ramp") {
          value_error(error, text, key, value, "flat or ramp", "ramp");
          return std::nullopt;
        }
        spec.swf_profile = value;
      } else if (key == "nodes") {
        const long nodes = std::strtol(value.c_str(), &end, 10);
        if (value.empty() || end == value.c_str() || *end != '\0' || nodes <= 0) {
          value_error(error, text, key, value, "positive int", "32");
          return std::nullopt;
        }
        spec.num_nodes = static_cast<std::uint32_t>(nodes);
      } else if (key == "name") {
        if (value.empty()) {
          value_error(error, text, key, value, "non-empty string", "nasa-replay");
          return std::nullopt;
        }
        spec.name = value;
      } else {
        fail(error, "trace spec '" + text + "': unknown key '" + key +
                        "' (known swf keys: file, scale, max_jobs, min_runtime, group, profile, "
                        "nodes, name)");
        return std::nullopt;
      }
    }
    std::string semantic;
    if (!spec.validate(&semantic)) {
      fail(error, "trace spec '" + text + "': " + semantic);
      return std::nullopt;
    }
    return spec;
  }
  if (!parse_workload_group(group_name, &spec.group)) {
    fail(error, "trace spec '" + text + "': unknown workload group '" + group_name +
                    "' (expected spec, apps, or swf)");
    return std::nullopt;
  }
  std::map<std::string, std::string> params;
  if (colon != std::string::npos) {
    if (!parse_key_values(text.substr(colon + 1), text, &params, error)) return std::nullopt;
  }

  for (const auto& [key, value] : params) {
    errno = 0;
    char* end = nullptr;
    if (key == "trace") {
      const long index = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0') {
        value_error(error, text, key, value, "int 1..5", "3");
        return std::nullopt;
      }
      spec.standard_index = static_cast<int>(index);
    } else if (key == "jobs") {
      const long jobs = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || jobs <= 0) {
        value_error(error, text, key, value, "positive int", "400");
        return std::nullopt;
      }
      spec.num_jobs = static_cast<std::size_t>(jobs);
    } else if (key == "duration") {
      if (!parse_duration(value, &spec.duration) || spec.duration <= 0.0) {
        value_error(error, text, key, value, "positive duration", "1800");
        return std::nullopt;
      }
    } else if (key == "arrival_scale") {
      const double scale = std::strtod(value.c_str(), &end);
      if (value.empty() || end == value.c_str() || *end != '\0' || scale <= 0.0) {
        value_error(error, text, key, value, "positive double", "1.5");
        return std::nullopt;
      }
      spec.arrival_scale = scale;
    } else if (key == "seed") {
      const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || value.front() == '-') {
        value_error(error, text, key, value, "uint64", "9");
        return std::nullopt;
      }
      spec.seed = seed;
    } else if (key == "malleable") {
      const double fraction = std::strtod(value.c_str(), &end);
      if (value.empty() || end == value.c_str() || *end != '\0' || fraction < 0.0 ||
          fraction > 1.0) {
        value_error(error, text, key, value, "double in [0, 1]", "0.5");
        return std::nullopt;
      }
      spec.malleable_fraction = fraction;
    } else if (key == "malleable_min") {
      const long width = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || width < 1) {
        value_error(error, text, key, value, "int >= 1", "1");
        return std::nullopt;
      }
      spec.malleable_min_width = static_cast<int>(width);
    } else if (key == "malleable_max") {
      const long width = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || width < 1) {
        value_error(error, text, key, value, "int >= 1", "3");
        return std::nullopt;
      }
      spec.malleable_max_width = static_cast<int>(width);
    } else if (key == "malleable_alpha") {
      const double alpha = std::strtod(value.c_str(), &end);
      if (value.empty() || end == value.c_str() || *end != '\0' || alpha < 0.0 || alpha > 1.0) {
        value_error(error, text, key, value, "double in [0, 1]", "0.8");
        return std::nullopt;
      }
      spec.malleable_speedup_alpha = alpha;
    } else if (key == "nodes") {
      const long nodes = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || nodes <= 0) {
        value_error(error, text, key, value, "positive int", "32");
        return std::nullopt;
      }
      spec.num_nodes = static_cast<std::uint32_t>(nodes);
    } else if (key == "name") {
      if (value.empty()) {
        value_error(error, text, key, value, "non-empty string", "my-trace");
        return std::nullopt;
      }
      spec.name = value;
    } else {
      fail(error, "trace spec '" + text + "': unknown key '" + key +
                      "' (known keys: trace, jobs, duration, arrival_scale, seed, malleable, "
                      "malleable_min, malleable_max, malleable_alpha, nodes, name)");
      return std::nullopt;
    }
  }

  std::string semantic;
  if (!spec.validate(&semantic)) {
    fail(error, "trace spec '" + text + "': " + semantic);
    return std::nullopt;
  }
  return spec;
}

bool TraceSpec::validate(std::string* error) const {
  if (is_swf()) {
    if (standard_index != 0 || num_jobs != 0) {
      return fail(error, "an swf spec cannot also set trace= or jobs=");
    }
    if (swf_scale <= 0.0) return fail(error, "swf scale must be > 0");
    if (swf_min_runtime < 0.0) return fail(error, "swf min_runtime must be >= 0");
    if (!swf_profile.empty() && swf_profile != "flat" && swf_profile != "ramp") {
      return fail(error, "swf profile must be flat or ramp");
    }
    if (malleable_fraction != 0.0) {
      return fail(error, "malleable= applies to generated traces, not swf replays");
    }
    return true;
  }
  if (swf_scale != 1.0 || swf_max_jobs != 0 || swf_min_runtime != 0.0 || !swf_profile.empty()) {
    return fail(error, "swf options need the swf group (swf:file=...)");
  }
  if (malleable_fraction < 0.0 || malleable_fraction > 1.0) {
    return fail(error, "malleable fraction must be in [0, 1]");
  }
  if (malleable_min_width < 1 || malleable_max_width < malleable_min_width) {
    return fail(error, "malleable widths need 1 <= malleable_min <= malleable_max");
  }
  if (standard_index != 0 && num_jobs != 0) {
    return fail(error, "trace= and jobs= are mutually exclusive");
  }
  if (standard_index == 0 && num_jobs == 0) {
    return fail(error, "one of trace=1..5 or jobs=N is required");
  }
  if (standard_index != 0 && (standard_index < 1 || standard_index > 5)) {
    return fail(error,
                "trace index " + std::to_string(standard_index) + " out of range (1..5)");
  }
  return true;
}

namespace {

SwfOptions swf_options_of(const TraceSpec& spec, std::uint32_t default_nodes) {
  SwfOptions options;
  options.scale = spec.swf_scale;
  options.max_jobs = spec.swf_max_jobs;
  options.min_runtime = spec.swf_min_runtime;
  options.num_nodes = spec.num_nodes != 0 ? spec.num_nodes : default_nodes;
  options.group = spec.group;
  options.name = spec.name;
  options.synthesize_profile = spec.swf_profile == "ramp";
  return options;
}

}  // namespace

TraceParams TraceSpec::to_params(std::uint32_t default_nodes) const {
  const std::uint32_t nodes = num_nodes != 0 ? num_nodes : default_nodes;
  TraceParams params;
  params.group = group;
  params.num_nodes = nodes;
  params.time_scale = 60.0 * arrival_scale;
  params.malleable_fraction = malleable_fraction;
  params.malleable_min_width = malleable_min_width;
  params.malleable_max_width = malleable_max_width;
  params.malleable_speedup_alpha = malleable_speedup_alpha;
  if (standard_index > 0) {
    const StandardTraceShape shape = standard_trace_shape(standard_index);
    params.sigma = shape.sigma;
    params.mu = shape.mu;
    params.num_jobs = shape.num_jobs;
    params.duration = shape.duration;
    params.name = !name.empty()
                      ? name
                      : (group == WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                                       : std::string("App-Trace-")) +
                            std::to_string(standard_index);
    // Default to the standard replayed-trace seed so a seed-free spec stays
    // the collect-once trace even when name/scale overrides force this path.
    params.seed = seed != 0 ? seed : standard_trace_seed(group, standard_index);
  } else {
    params.num_jobs = num_jobs;
    params.duration = duration;
    params.name = !name.empty() ? name : "generated";
    params.seed = seed != 0 ? seed : 1;
  }
  return params;
}

Trace TraceSpec::build(std::uint32_t default_nodes) const {
  if (is_swf()) {
    SwfTraceSource source(swf_file, swf_options_of(*this, default_nodes));
    return materialize(source);
  }
  const std::uint32_t nodes = num_nodes != 0 ? num_nodes : default_nodes;
  if (standard_index > 0 && seed == 0 && arrival_scale == 1.0 && name.empty() &&
      malleable_fraction == 0.0) {
    // The exact enum-era path: byte-identical standard traces.
    return standard_trace(group, standard_index, nodes);
  }
  return generate_trace(to_params(default_nodes));
}

std::unique_ptr<ArrivalSource> TraceSpec::make_source(std::uint32_t default_nodes) const {
  if (is_swf()) {
    return std::make_unique<SwfTraceSource>(swf_file, swf_options_of(*this, default_nodes));
  }
  // GeneratedStreamSource replays generate_trace's RNG stream job-for-job, so
  // this source and build() above are fingerprint-interchangeable (including
  // the standard-trace fast path, which is generate_trace on the published
  // shape params to_params() reproduces).
  return std::make_unique<GeneratedStreamSource>(to_params(default_nodes));
}

}  // namespace vrc::workload
