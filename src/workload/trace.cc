#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vrc::workload {

Trace::Trace(std::string name, WorkloadGroup group, SimTime duration, std::vector<JobSpec> jobs)
    : name_(std::move(name)), group_(group), duration_(duration), jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit_time < b.submit_time;
  });
}

SimTime Trace::total_cpu_seconds() const {
  SimTime total = 0.0;
  for (const JobSpec& job : jobs_) total += job.cpu_seconds;
  return total;
}

void Trace::save(std::ostream& out) const {
  out << "# vrc-trace v1\n";
  out << "name " << name_ << '\n';
  out << "group " << to_string(group_) << '\n';
  out << "duration " << duration_ << '\n';
  out << "jobs " << jobs_.size() << '\n';
  out.precision(9);
  for (const JobSpec& job : jobs_) {
    out << "job " << job.id << ' ' << job.submit_time << ' ' << job.home_node << ' '
        << job.program << ' ' << job.cpu_seconds << ' ' << job.touch_rate << ' '
        << job.memory.points().size();
    for (const auto& p : job.memory.points()) out << ' ' << p.progress << ' ' << p.demand;
    out << '\n';
  }
}

bool Trace::save_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("Trace::load: " + message);
}

}  // namespace

Trace Trace::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("# vrc-trace v1", 0) != 0) {
    fail("missing '# vrc-trace v1' header");
  }

  std::string name;
  WorkloadGroup group = WorkloadGroup::kSpec;
  SimTime duration = 0.0;
  std::size_t expected_jobs = 0;
  bool have_group = false;
  std::vector<JobSpec> jobs;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      ls >> std::ws;
      std::getline(ls, name);
    } else if (key == "group") {
      std::string text;
      ls >> text;
      if (!parse_workload_group(text, &group)) fail("bad group '" + text + "'");
      have_group = true;
    } else if (key == "duration") {
      if (!(ls >> duration) || !std::isfinite(duration) || duration < 0.0) fail("bad duration");
    } else if (key == "jobs") {
      // Parse signed: `>>` into an unsigned type accepts "-3" by modular
      // wrap, which would turn a typo into a 2^64-scale job count.
      long long count = -1;
      if (!(ls >> count) || count < 0) fail("bad job count");
      expected_jobs = static_cast<std::size_t>(count);
    } else if (key == "job") {
      JobSpec job;
      long long id = -1;
      long long home = -1;
      long long npoints = -1;
      if (!(ls >> id >> job.submit_time >> home >> job.program >> job.cpu_seconds >>
            job.touch_rate >> npoints)) {
        fail("malformed job line: " + line);
      }
      if (id < 0) fail("negative job id: " + line);
      if (home < 0) fail("negative home node: " + line);
      if (!std::isfinite(job.submit_time) || job.submit_time < 0.0) {
        fail("bad submit time: " + line);
      }
      if (!std::isfinite(job.cpu_seconds) || job.cpu_seconds < 0.0) {
        fail("bad cpu seconds: " + line);
      }
      if (!std::isfinite(job.touch_rate) || job.touch_rate < 0.0) {
        fail("bad touch rate: " + line);
      }
      job.id = static_cast<JobId>(id);
      job.home_node = static_cast<NodeId>(home);
      if (npoints <= 0 || npoints > 1024) fail("bad profile point count");
      std::vector<MemoryProfile::Point> points(static_cast<std::size_t>(npoints));
      for (auto& p : points) {
        long long demand = -1;
        if (!(ls >> p.progress >> demand)) fail("malformed profile point");
        if (!std::isfinite(p.progress) || p.progress < 0.0 || p.progress > 1.0) {
          fail("profile progress out of [0, 1]: " + line);
        }
        if (demand < 0) fail("negative profile demand: " + line);
        p.demand = static_cast<Bytes>(demand);
      }
      std::string extra;
      if (ls >> extra) fail("trailing data on job line: " + line);
      job.memory = MemoryProfile::phased(std::move(points));
      jobs.push_back(std::move(job));
    } else {
      fail("unknown key '" + key + "'");
    }
  }

  if (!have_group) fail("missing group");
  if (expected_jobs != jobs.size()) {
    fail("job count mismatch: header says " + std::to_string(expected_jobs) + ", found " +
         std::to_string(jobs.size()));
  }
  return Trace(std::move(name), group, duration, std::move(jobs));
}

Trace Trace::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return load(in);
}

}  // namespace vrc::workload
