#include "workload/program.h"

namespace vrc::workload {

const char* to_string(WorkloadGroup group) {
  switch (group) {
    case WorkloadGroup::kSpec:
      return "spec";
    case WorkloadGroup::kApps:
      return "apps";
  }
  return "?";
}

bool parse_workload_group(const std::string& text, WorkloadGroup* out) {
  if (text == "spec") {
    *out = WorkloadGroup::kSpec;
    return true;
  }
  if (text == "apps") {
    *out = WorkloadGroup::kApps;
    return true;
  }
  return false;
}

MemoryProfile ProgramSpec::profile() const {
  // Table 1/2 report the *maximum* allocated memory during execution, so
  // demand is modelled as growing over the whole run: a fast allocation ramp
  // to the initial footprint (the published minimum for range programs,
  // ~55% of the peak otherwise), then steady growth to the peak. This is
  // what makes memory demands genuinely unknowable at admission time — the
  // premise of [3] and the root of the blocking problem.
  const Bytes start = has_range()
                          ? working_set_min
                          : static_cast<Bytes>(plateau_fraction * static_cast<double>(working_set));
  const Bytes base = std::min<Bytes>(start, 4 * kMiB);
  if (ramp_fraction >= 1.0) return MemoryProfile::phased({{0.0, base}, {1.0, working_set}});
  return MemoryProfile::phased(
      {{0.0, base}, {ramp_fraction, start}, {1.0, working_set}});
}

}  // namespace vrc::workload
