// Pull-based job-arrival streams (DESIGN.md §14).
//
// An ArrivalSource is the streaming counterpart of a materialized Trace: the
// consumer (Cluster::submit_source's arrival pump) peeks the next submission
// time, schedules exactly one arrival event for it, and pulls the JobSpec
// when the event fires. Sources own no simulation state, so a drained source
// is just an empty iterator — the pump keeps live JobSpec storage
// O(concurrent jobs) instead of O(total trace length).
//
// Three implementations:
//   MaterializedTraceSource  — adapter over an existing Trace; the bit-exact
//                              compatibility path for every current workload.
//   GeneratedStreamSource    — produces the same jobs as generate_trace on
//                              the fly from TraceParams using the identical
//                              RNG stream (fingerprint-golden-equal to the
//                              materialized path; locked by
//                              tests/integration/streaming_equivalence_test).
//   SwfTraceSource           — Standard Workload Format replay (swf_source.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "workload/job.h"
#include "workload/program.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"

namespace vrc::workload {

/// One-way stream of job arrivals in nondecreasing submit_time order.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Submit time of the next job without consuming it; std::nullopt once the
  /// stream has drained. Stable across repeated calls.
  virtual std::optional<SimTime> peek_time() = 0;

  /// Consumes and returns the next job. std::nullopt once drained. The
  /// returned spec's submit_time equals the preceding peek_time().
  virtual std::optional<JobSpec> next() = 0;

  /// Total job count when the source knows it up front; std::nullopt for
  /// open-ended streams (the SWF reader before EOF, a live feed).
  virtual std::optional<std::size_t> total_jobs() const { return std::nullopt; }

  /// Label for reports (a trace name, an SWF file stem).
  virtual const std::string& name() const = 0;

  /// Workload group the jobs belong to (program catalog / paper testbed).
  virtual WorkloadGroup group() const = 0;
};

/// Adapter over a materialized Trace: streams its (already sorted) jobs in
/// order. The compatibility path — pumping this source produces the same run
/// as Cluster::submit_trace on the same trace.
class MaterializedTraceSource : public ArrivalSource {
 public:
  explicit MaterializedTraceSource(Trace trace) : trace_(std::move(trace)) {}

  std::optional<SimTime> peek_time() override;
  std::optional<JobSpec> next() override;
  std::optional<std::size_t> total_jobs() const override { return trace_.size(); }
  const std::string& name() const override { return trace_.name(); }
  WorkloadGroup group() const override { return trace_.group(); }

 private:
  Trace trace_;
  std::size_t next_index_ = 0;
};

/// Generates the jobs of generate_trace(params) lazily, one JobSpec per
/// next() call, drawing from the identical forked RNG streams in the
/// identical order. Only the sorted arrival times (plain doubles) are
/// materialized up front — sorting forces that — so live JobSpec storage
/// stays O(1) inside the source regardless of params.num_jobs.
class GeneratedStreamSource : public ArrivalSource {
 public:
  explicit GeneratedStreamSource(TraceParams params);

  std::optional<SimTime> peek_time() override;
  std::optional<JobSpec> next() override;
  std::optional<std::size_t> total_jobs() const override { return params_.num_jobs; }
  const std::string& name() const override { return params_.name; }
  WorkloadGroup group() const override { return params_.group; }

 private:
  TraceParams params_;
  std::vector<SimTime> arrivals_;  // sorted; doubles, not JobSpecs
  sim::Rng pick_rng_;
  sim::Rng jitter_rng_;
  sim::Rng node_rng_;
  sim::Rng malleable_rng_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  std::size_t next_index_ = 0;
};

/// Drains `source` into a materialized Trace (name/group/duration taken from
/// the source; duration = last submit time when the source cannot know it).
Trace materialize(ArrivalSource& source, SimTime duration = 0.0);

}  // namespace vrc::workload
