// The paper's program catalogs.
//
// Table 1 (workload group 1): six SPEC-2000 programs measured on a 400 MHz
// Pentium II with 384 MB RAM. Table 2 (workload group 2): seven scientific /
// system programs measured on a 233 MHz Pentium with 128 MB RAM.
//
// Provenance note: the only legible numeric cells in the available scan of
// the paper are apsi's lifetime (1,619.0 s) and the Table 2 data-size labels;
// the remaining working sets and lifetimes are reconstructed from the
// programs' published SPEC-2000 memory footprints and the paper's stated
// constraints ("both CPU and memory intensive", group-2 demands smaller than
// group 1, measured on the reference machines above). The reproduction's
// comparisons are between policies on identical workloads, so they depend on
// the *mix* (a few large, long jobs among many normal ones), which these
// values preserve. EXPERIMENTS.md discusses the impact.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/program.h"

namespace vrc::workload {

/// All programs of one workload group, in the paper's table order.
const std::vector<ProgramSpec>& catalog(WorkloadGroup group);

/// Looks a program up by name across both groups.
std::optional<ProgramSpec> find_program(const std::string& name);

/// Reference CPU speed (MHz) of the group's measurement workstation.
double reference_mhz(WorkloadGroup group);

}  // namespace vrc::workload
