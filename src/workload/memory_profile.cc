#include "workload/memory_profile.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace vrc::workload {

MemoryProfile::MemoryProfile(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) {
    std::fprintf(stderr, "MemoryProfile requires at least one point\n");
    std::abort();
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].progress <= points_[i - 1].progress) {
      std::fprintf(stderr, "MemoryProfile points must be strictly increasing in progress\n");
      std::abort();
    }
  }
  for (const Point& p : points_) {
    if (p.demand < 0 || p.progress < 0.0 || p.progress > 1.0) {
      std::fprintf(stderr, "MemoryProfile point out of range\n");
      std::abort();
    }
  }
}

MemoryProfile MemoryProfile::constant(Bytes demand) { return MemoryProfile({{0.0, demand}}); }

MemoryProfile MemoryProfile::ramp_to(Bytes peak, double ramp_fraction) {
  ramp_fraction = std::clamp(ramp_fraction, 1e-6, 1.0);
  // Start at 4 MiB (text + initial heap) rather than zero: a freshly started
  // job always occupies some frames.
  const Bytes base = std::min<Bytes>(peak, 4 * kMiB);
  if (ramp_fraction >= 1.0) return MemoryProfile({{0.0, base}, {1.0, peak}});
  return MemoryProfile({{0.0, base}, {ramp_fraction, peak}});
}

MemoryProfile MemoryProfile::phased(std::vector<Point> points) {
  return MemoryProfile(std::move(points));
}

Bytes MemoryProfile::demand_at(double progress) const {
  progress = std::clamp(progress, 0.0, 1.0);
  if (progress <= points_.front().progress) return points_.front().demand;
  if (progress >= points_.back().progress) return points_.back().demand;
  // Find the first point strictly beyond `progress`.
  auto hi = std::upper_bound(
      points_.begin(), points_.end(), progress,
      [](double value, const Point& p) { return value < p.progress; });
  auto lo = hi - 1;
  const double span = hi->progress - lo->progress;
  const double frac = (progress - lo->progress) / span;
  return lo->demand + static_cast<Bytes>(frac * static_cast<double>(hi->demand - lo->demand));
}

Bytes MemoryProfile::peak() const {
  Bytes best = 0;
  for (const Point& p : points_) best = std::max(best, p.demand);
  return best;
}

MemoryProfile MemoryProfile::scaled(double factor) const {
  std::vector<Point> points = points_;
  for (Point& p : points) p.demand = static_cast<Bytes>(static_cast<double>(p.demand) * factor);
  return MemoryProfile(std::move(points));
}

}  // namespace vrc::workload
