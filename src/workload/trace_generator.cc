#include "workload/trace_generator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace vrc::workload {

StandardTraceShape standard_trace_shape(int index) {
  // Section 3.3.2 of the paper, verbatim.
  switch (index) {
    case 1:
      return {4.0, 4.0, 359, 3586.0};
    case 2:
      return {3.7, 3.7, 448, 3589.0};
    case 3:
      return {3.0, 3.0, 578, 3581.0};
    case 4:
      return {2.0, 2.0, 684, 3585.0};
    case 5:
      return {1.5, 1.5, 777, 3582.0};
    default:
      std::fprintf(stderr, "standard_trace_shape: index must be 1..5, got %d\n", index);
      std::abort();
  }
}

SimTime sample_truncated_lognormal(sim::Rng& rng, double mu, double sigma, SimTime duration) {
  // Rejection sampling against the untruncated lognormal. Acceptance is the
  // lognormal CDF at `duration`, which for all published parameter pairs is
  // well above 0.4, so the loop terminates quickly. A hard cap guards the
  // degenerate-parameter case.
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const double t = rng.lognormal(mu, sigma);
    if (t > 0.0 && t <= duration) return t;
  }
  std::fprintf(stderr, "sample_truncated_lognormal: acceptance too low (mu=%f sigma=%f)\n", mu,
               sigma);
  std::abort();
}

Trace generate_trace(const TraceParams& params) {
  const std::vector<ProgramSpec>& programs = catalog(params.group);
  if (!params.program_weights.empty() && params.program_weights.size() != programs.size()) {
    std::fprintf(stderr, "generate_trace: %zu weights for %zu programs\n",
                 params.program_weights.size(), programs.size());
    std::abort();
  }
  if (params.malleable_min_width < 1 ||
      params.malleable_max_width < params.malleable_min_width) {
    std::fprintf(stderr, "generate_trace: bad malleable width range [%d, %d]\n",
                 params.malleable_min_width, params.malleable_max_width);
    std::abort();
  }

  sim::Rng rng(params.seed);
  sim::Rng arrival_rng = rng.fork();
  sim::Rng pick_rng = rng.fork();
  sim::Rng jitter_rng = rng.fork();
  sim::Rng node_rng = rng.fork();
  // Fifth fork, appended after the original four so their streams — and
  // therefore every field of a malleability-free trace — are untouched.
  // GeneratedStreamSource forks in the same order (streamed == materialized).
  sim::Rng malleable_rng = rng.fork();

  // Arrival times: num_jobs draws from the truncated lognormal, sorted.
  std::vector<SimTime> arrivals(params.num_jobs);
  for (SimTime& t : arrivals) {
    t = params.time_scale * sample_truncated_lognormal(arrival_rng, params.mu, params.sigma,
                                                       params.duration / params.time_scale);
  }
  std::sort(arrivals.begin(), arrivals.end());

  // Program selection: explicit weights when given, otherwise the catalog's
  // mix weights (which keep exceptionally large jobs a small percentage of
  // the pool, per the workload studies the paper cites).
  std::vector<double> weights = params.program_weights;
  if (weights.empty()) {
    weights.reserve(programs.size());
    for (const ProgramSpec& p : programs) weights.push_back(p.mix_weight);
  }
  const double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);

  auto pick_program = [&]() -> const ProgramSpec& {
    double target = pick_rng.uniform() * total_weight;
    for (std::size_t i = 0; i < programs.size(); ++i) {
      target -= weights[i];
      if (target <= 0.0) return programs[i];
    }
    return programs.back();
  };

  std::vector<JobSpec> jobs;
  jobs.reserve(params.num_jobs);
  for (std::size_t i = 0; i < params.num_jobs; ++i) {
    const ProgramSpec& program = pick_program();
    JobSpec job;
    job.id = static_cast<JobId>(i + 1);
    job.program = program.name;
    job.submit_time = arrivals[i];
    job.home_node = static_cast<NodeId>(node_rng.uniform_index(params.num_nodes));
    const double life_jitter =
        jitter_rng.uniform(1.0 - params.lifetime_jitter, 1.0 + params.lifetime_jitter);
    const double ws_jitter =
        jitter_rng.uniform(1.0 - params.working_set_jitter, 1.0 + params.working_set_jitter);
    job.cpu_seconds = program.lifetime * life_jitter;
    job.touch_rate = program.touch_rate;
    job.memory = program.profile().scaled(ws_jitter);
    if (params.malleable_fraction > 0.0 &&
        malleable_rng.uniform() < params.malleable_fraction) {
      job.malleability.min_width = params.malleable_min_width;
      job.malleability.max_width = params.malleable_max_width;
      job.malleability.speedup_alpha = params.malleable_speedup_alpha;
    }
    jobs.push_back(std::move(job));
  }

  return Trace(params.name, params.group, params.duration, std::move(jobs));
}

Trace standard_trace(WorkloadGroup group, int index, std::uint32_t num_nodes) {
  const StandardTraceShape shape = standard_trace_shape(index);
  TraceParams params;
  params.name = (group == WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                               : std::string("App-Trace-")) +
                std::to_string(index);
  params.group = group;
  params.sigma = shape.sigma;
  params.mu = shape.mu;
  params.num_jobs = shape.num_jobs;
  params.duration = shape.duration;
  params.num_nodes = num_nodes;
  // Deterministic per-(group, index) seed: the same trace is replayed for
  // every policy, mirroring the paper's collect-once-replay-everywhere setup.
  params.seed = standard_trace_seed(group, index);
  return generate_trace(params);
}

std::uint64_t standard_trace_seed(WorkloadGroup group, int index) {
  return 0xC0FFEEULL * 31 +
         static_cast<std::uint64_t>(group == WorkloadGroup::kSpec ? 1 : 2) * 1000 +
         static_cast<std::uint64_t>(index);
}

}  // namespace vrc::workload
