#include "core/policy_registry.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "core/baselines.h"
#include "core/g_load_sharing.h"
#include "core/m_reconfiguration.h"
#include "core/oracle.h"
#include "core/v_reconfiguration.h"

namespace vrc::core {

// --- PolicySpec -------------------------------------------------------------

std::string PolicySpec::print() const {
  if (params.empty()) return name;
  std::ostringstream out;
  out << name << ':';
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) out << ',';
    first = false;
    out << key << '=' << value;
  }
  return out.str();
}

std::optional<PolicySpec> PolicySpec::parse(const std::string& text, std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<PolicySpec> {
    if (error) *error = message;
    return std::nullopt;
  };
  const std::size_t colon = text.find(':');
  PolicySpec spec;
  spec.name = text.substr(0, colon);
  if (spec.name.empty()) return fail("policy spec '" + text + "': empty policy name");
  if (colon == std::string::npos) return spec;

  const std::string param_text = text.substr(colon + 1);
  if (param_text.empty()) {
    return fail("policy spec '" + text + "': ':' must be followed by key=value params");
  }
  std::size_t start = 0;
  while (start <= param_text.size()) {
    std::size_t end = param_text.find(',', start);
    if (end == std::string::npos) end = param_text.size();
    const std::string item = param_text.substr(start, end - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return fail("policy spec '" + text + "': param '" + item +
                  "' is not of the form key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key.empty()) return fail("policy spec '" + text + "': empty param key");
    if (spec.params.count(key) != 0) {
      return fail("policy spec '" + text + "': duplicate param '" + key + "'");
    }
    spec.params[key] = value;
    if (end == param_text.size()) break;
    start = end + 1;
  }
  return spec;
}

// --- ParamReader ------------------------------------------------------------

namespace {

bool parse_bool_text(const std::string& text, bool* out) {
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

bool parse_int64_text(const std::string& text, long long* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_double_text(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

ParamReader::ParamReader(std::string policy_name, const PolicyParams& params)
    : policy_(std::move(policy_name)), params_(params) {}

const std::string* ParamReader::find(const std::string& key) {
  consumed_.push_back(key);
  const auto it = params_.find(key);
  return it == params_.end() ? nullptr : &it->second;
}

void ParamReader::fail(const std::string& key, const std::string& value, const std::string& type,
                       const std::string& example) {
  if (!error_.empty()) return;  // keep the first failure
  error_ = policy_ + ": invalid value '" + value + "' for param '" + key + "' (expected " +
           type + ", e.g. " + key + "=" + example + ")";
}

void ParamReader::read_bool(const std::string& key, bool* out) {
  if (const std::string* value = find(key)) {
    if (!parse_bool_text(*value, out)) fail(key, *value, "bool", "0");
  }
}

void ParamReader::read_int(const std::string& key, int* out) {
  if (const std::string* value = find(key)) {
    long long wide = 0;
    if (!parse_int64_text(*value, &wide)) {
      fail(key, *value, "int", "2");
      return;
    }
    *out = static_cast<int>(wide);
  }
}

void ParamReader::read_int64(const std::string& key, long long* out) {
  if (const std::string* value = find(key)) {
    if (!parse_int64_text(*value, out)) fail(key, *value, "int", "7");
  }
}

void ParamReader::read_double(const std::string& key, double* out) {
  if (const std::string* value = find(key)) {
    if (!parse_double_text(*value, out)) fail(key, *value, "double", "1.5");
  }
}

void ParamReader::read_duration(const std::string& key, SimTime* out) {
  if (const std::string* value = find(key)) {
    if (!parse_duration(*value, out)) fail(key, *value, "duration", "120s");
  }
}

bool ParamReader::finish(std::string* error) {
  if (error_.empty()) {
    for (const auto& [key, value] : params_) {
      if (std::find(consumed_.begin(), consumed_.end(), key) != consumed_.end()) continue;
      std::string known;
      for (const std::string& k : consumed_) known += (known.empty() ? "" : ", ") + k;
      error_ = policy_ + ": unknown param '" + key + "'" +
               (known.empty() ? " (policy takes no params)" : " (known params: " + known + ")");
      break;
    }
  }
  if (error_.empty()) return true;
  if (error) *error = error_;
  return false;
}

// --- PolicyRegistry ---------------------------------------------------------

namespace {

std::unique_ptr<cluster::SchedulerPolicy> make_g_load_sharing(const PolicyParams& params,
                                                              std::string* error) {
  ParamReader reader("g-loadsharing", params);
  GLoadSharing::Options options;
  reader.read_bool("enable_migration", &options.enable_migration);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<GLoadSharing>(options);
}

std::unique_ptr<cluster::SchedulerPolicy> make_v_reconfiguration(const PolicyParams& params,
                                                                 std::string* error) {
  ParamReader reader("v-reconf", params);
  VReconfiguration::Options options;
  reader.read_bool("enable_migration", &options.base.enable_migration);
  reader.read_bool("early_release", &options.early_release);
  reader.read_int("max_reservations", &options.max_reservations);
  reader.read_double("min_cluster_idle_factor", &options.min_cluster_idle_factor);
  reader.read_double("big_job_factor", &options.big_job_factor);
  reader.read_double("growth_headroom", &options.growth_headroom);
  reader.read_double("min_overcommit", &options.min_overcommit);
  reader.read_duration("blocking_resolve_timeout", &options.blocking_resolve_timeout);
  reader.read_duration("reserve_timeout", &options.reserve_timeout);
  reader.read_duration("timeout_backoff", &options.timeout_backoff);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<VReconfiguration>(options);
}

std::unique_ptr<cluster::SchedulerPolicy> make_m_reconfiguration(const PolicyParams& params,
                                                                 std::string* error) {
  ParamReader reader("m-reconfiguration", params);
  MReconfiguration::Options options;
  reader.read_bool("enable_migration", &options.base.enable_migration);
  reader.read_duration("shrink_threshold", &options.shrink_threshold);
  reader.read_int("regrow_free_slots", &options.regrow_free_slots);
  reader.read_duration("resize_cooldown", &options.resize_cooldown);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<MReconfiguration>(options);
}

std::unique_ptr<cluster::SchedulerPolicy> make_local_only(const PolicyParams& params,
                                                          std::string* error) {
  ParamReader reader("local-only", params);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<LocalOnly>();
}

std::unique_ptr<cluster::SchedulerPolicy> make_suspension(const PolicyParams& params,
                                                          std::string* error) {
  ParamReader reader("suspension", params);
  SuspensionPolicy::Options options;
  reader.read_bool("enable_migration", &options.base.enable_migration);
  reader.read_int("min_runnable", &options.min_runnable);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<SuspensionPolicy>(options);
}

std::unique_ptr<cluster::SchedulerPolicy> make_oracle(const PolicyParams& params,
                                                      std::string* error) {
  ParamReader reader("oracle", params);
  GLoadSharing::Options options;
  reader.read_bool("enable_migration", &options.enable_migration);
  if (!reader.finish(error)) return nullptr;
  return std::make_unique<OracleDemands>(options);
}

void register_builtins(PolicyRegistry& registry) {
  const PolicyParamDoc migration = {"enable_migration", "bool", "1",
                                    "preemptive migration on/off (ablation)"};
  registry.register_policy("g-loadsharing", make_g_load_sharing, {migration}, {"gls"});
  registry.register_policy(
      "v-reconf", make_v_reconfiguration,
      {migration,
       {"early_release", "bool", "1",
        "end the reserving period once the blocked job fits (§2.1 alternative)"},
       {"max_reservations", "int", "4", "maximum simultaneously reserved workstations"},
       {"min_cluster_idle_factor", "double", "1.0",
        "reconfigure only while idle memory > factor * avg user memory"},
       {"big_job_factor", "double", "1.5",
        "demand multiple of the admission estimate that marks a job as big"},
       {"growth_headroom", "double", "1.4",
        "idle-memory headroom a reserved workstation needs before accepting"},
       {"min_overcommit", "double", "0.03", "minimum overcommit that justifies isolation"},
       {"blocking_resolve_timeout", "duration", "10s",
        "quiet period after which a draining reservation is cancelled"},
       {"reserve_timeout", "duration", "120s", "abandon a reserving period after this long"},
       {"timeout_backoff", "duration", "120s", "pause after an abandoned reserving period"}},
      {"vrecon", "v-reconfiguration"});
  registry.register_policy(
      "m-reconfiguration", make_m_reconfiguration,
      {migration,
       {"shrink_threshold", "duration", "0.5s",
        "how long a submission stays blocked before malleable jobs are shrunk"},
       {"regrow_free_slots", "int", "1", "slots kept free on a node after a re-grow"},
       {"resize_cooldown", "duration", "2s",
        "min spacing between policy-initiated resizes per node"}},
      {"mrecon", "m-reconf"});
  registry.register_policy("local-only", make_local_only, {}, {"local"});
  registry.register_policy(
      "suspension", make_suspension,
      {migration,
       {"min_runnable", "int", "1", "never suspend below this many runnable jobs per node"}},
      {"suspend"});
  registry.register_policy("oracle", make_oracle, {migration}, {"oracle-demands"});
}

}  // namespace

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry* registry = [] {
    auto* fresh = new PolicyRegistry();
    register_builtins(*fresh);
    return fresh;
  }();
  return *registry;
}

void PolicyRegistry::register_policy(const std::string& name, Factory factory,
                                     std::vector<PolicyParamDoc> params,
                                     std::vector<std::string> aliases) {
  entries_[name] = Entry{std::move(factory), std::move(params)};
  aliases_.erase(name);  // a full registration shadows any same-named alias
  for (const std::string& alias : aliases) aliases_[alias] = name;
}

std::optional<std::string> PolicyRegistry::canonical_name(const std::string& name) const {
  if (entries_.count(name) != 0) return name;
  const auto alias = aliases_.find(name);
  if (alias != aliases_.end() && entries_.count(alias->second) != 0) return alias->second;
  return std::nullopt;
}

bool PolicyRegistry::contains(const std::string& name) const {
  return canonical_name(name).has_value();
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) result.push_back(name);
  return result;  // std::map iteration: already sorted
}

const std::vector<PolicyParamDoc>* PolicyRegistry::param_docs(const std::string& name) const {
  const auto canonical = canonical_name(name);
  if (!canonical) return nullptr;
  return &entries_.at(*canonical).params;
}

std::unique_ptr<cluster::SchedulerPolicy> PolicyRegistry::create(const PolicySpec& spec,
                                                                 std::string* error) const {
  const auto canonical = canonical_name(spec.name);
  if (!canonical) {
    if (error) {
      std::string known;
      for (const std::string& name : names()) known += (known.empty() ? "" : ", ") + name;
      *error = "unknown policy '" + spec.name + "' (registered policies: " + known + ")";
    }
    return nullptr;
  }
  return entries_.at(*canonical).factory(spec.params, error);
}

std::unique_ptr<cluster::SchedulerPolicy> make_policy(const PolicySpec& spec,
                                                      std::string* error) {
  return PolicyRegistry::instance().create(spec, error);
}

}  // namespace vrc::core
