#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "faults/injector.h"
#include "metrics/perf_counters.h"

namespace vrc::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGLoadSharing:
      return "G-Loadsharing";
    case PolicyKind::kVReconfiguration:
      return "V-Reconfiguration";
    case PolicyKind::kLocalOnly:
      return "Local-Only";
    case PolicyKind::kSuspension:
      return "Job-Suspension";
    case PolicyKind::kOracleDemands:
      return "Oracle-Demands";
  }
  return "?";
}

std::optional<std::string> registry_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGLoadSharing:
      return "g-loadsharing";
    case PolicyKind::kVReconfiguration:
      return "v-reconf";
    case PolicyKind::kLocalOnly:
      return "local-only";
    case PolicyKind::kSuspension:
      return "suspension";
    case PolicyKind::kOracleDemands:
      return "oracle";
  }
  return std::nullopt;
}

PolicySpec to_spec(PolicyKind kind) {
  const auto name = registry_name(kind);
  return PolicySpec(name ? *name : "?");
}

std::unique_ptr<cluster::SchedulerPolicy> make_policy(PolicyKind kind, std::string* error) {
  const auto name = registry_name(kind);
  if (!name) {
    if (error) {
      std::string known;
      for (const std::string& n : PolicyRegistry::instance().names()) {
        known += (known.empty() ? "" : ", ") + n;
      }
      *error = "unknown PolicyKind value " + std::to_string(static_cast<int>(kind)) +
               " (registered policies: " + known + ")";
    }
    return nullptr;
  }
  return make_policy(PolicySpec(*name), error);
}

namespace {

/// Shared run body: `submit` attaches the workload (materialized trace or
/// streaming source) to the freshly built cluster before the event loop.
template <typename SubmitFn>
metrics::RunReport run_experiment_impl(const std::string& workload_name,
                                       const cluster::ClusterConfig& config,
                                       cluster::SchedulerPolicy& policy,
                                       const ExperimentOptions& options, SubmitFn&& submit) {
  // Per-run perf capture (no-op unless `vrc_run --perf-counters` enabled the
  // global switch): binds thread-local counters for the whole run — including
  // sweep cells on ThreadPool workers — and merges them into the process
  // aggregate at scope exit.
  metrics::ScopedPerfCapture perf_capture;
  sim::Simulator sim;
  cluster::Cluster cluster(sim, config, policy);
  metrics::Collector collector(cluster, options.collector);
  // Only instantiate fault machinery when the run actually has faults: an
  // empty plan must leave the event stream bit-identical to a build without
  // the subsystem (the no-faults-equivalence determinism test pins this).
  faults::FaultPlan plan =
      faults::FaultPlan::materialize(options.fault_entries, config, options.max_sim_time);
  std::unique_ptr<faults::FaultInjector> injector;
  if (!plan.empty()) {
    injector = std::make_unique<faults::FaultInjector>(sim, cluster, plan);
  }
  submit(cluster);
  sim.run_until(options.max_sim_time);
  // Folded after the run so the event loop itself carries no counting cost.
  metrics::perf_add(&metrics::PerfCounters::events_executed, sim.executed_events());
  collector.stop();
  metrics::RunReport report = collector.report(workload_name, policy.name());
  report.peak_live_specs = cluster.peak_live_specs();
  report.policy_stats = policy.stats();
  return report;
}

}  // namespace

metrics::RunReport run_experiment(const workload::Trace& trace,
                                  const cluster::ClusterConfig& config,
                                  cluster::SchedulerPolicy& policy,
                                  const ExperimentOptions& options) {
  return run_experiment_impl(trace.name(), config, policy, options,
                             [&trace](cluster::Cluster& cluster) {
                               cluster.submit_trace(trace);
                             });
}

metrics::RunReport run_experiment(workload::ArrivalSource& source,
                                  const cluster::ClusterConfig& config,
                                  cluster::SchedulerPolicy& policy,
                                  const ExperimentOptions& options) {
  metrics::RunReport report = run_experiment_impl(source.name(), config, policy, options,
                                                  [&source](cluster::Cluster& cluster) {
                                                    cluster.submit_source(source);
                                                  });
  report.streamed = true;
  return report;
}

metrics::RunReport run_policy_on_trace(PolicyKind kind, const workload::Trace& trace,
                                       const cluster::ClusterConfig& config,
                                       const ExperimentOptions& options) {
  std::string error;
  std::unique_ptr<cluster::SchedulerPolicy> policy = make_policy(kind, &error);
  if (!policy) {
    // Only reachable by casting an out-of-range integer to PolicyKind; the
    // spec-based overload below reports such errors recoverably.
    std::fprintf(stderr, "run_policy_on_trace: %s\n", error.c_str());
    std::abort();
  }
  return run_experiment(trace, config, *policy, options);
}

std::optional<metrics::RunReport> run_policy_on_trace(const PolicySpec& spec,
                                                      const workload::Trace& trace,
                                                      const cluster::ClusterConfig& config,
                                                      const ExperimentOptions& options,
                                                      std::string* error) {
  std::unique_ptr<cluster::SchedulerPolicy> policy = make_policy(spec, error);
  if (!policy) return std::nullopt;
  return run_experiment(trace, config, *policy, options);
}

std::optional<metrics::RunReport> run_policy_on_source(const PolicySpec& spec,
                                                       workload::ArrivalSource& source,
                                                       const cluster::ClusterConfig& config,
                                                       const ExperimentOptions& options,
                                                       std::string* error) {
  std::unique_ptr<cluster::SchedulerPolicy> policy = make_policy(spec, error);
  if (!policy) return std::nullopt;
  return run_experiment(source, config, *policy, options);
}

cluster::ClusterConfig paper_cluster_for(workload::WorkloadGroup group, std::size_t nodes) {
  return group == workload::WorkloadGroup::kSpec
             ? cluster::ClusterConfig::paper_cluster1(nodes)
             : cluster::ClusterConfig::paper_cluster2(nodes);
}

double Comparison::execution_reduction() const {
  return metrics::reduction(baseline.total_execution, ours.total_execution);
}

double Comparison::queue_reduction() const {
  return metrics::reduction(baseline.total_queue, ours.total_queue);
}

double Comparison::slowdown_reduction() const {
  return metrics::reduction(baseline.avg_slowdown, ours.avg_slowdown);
}

double Comparison::idle_memory_reduction() const {
  return metrics::reduction(baseline.avg_idle_memory_mb, ours.avg_idle_memory_mb);
}

double Comparison::balance_skew_reduction() const {
  return metrics::reduction(baseline.avg_balance_skew, ours.avg_balance_skew);
}

Comparison compare_policies(PolicyKind baseline, PolicyKind ours, const workload::Trace& trace,
                            const cluster::ClusterConfig& config,
                            const ExperimentOptions& options) {
  Comparison comparison;
  comparison.baseline = run_policy_on_trace(baseline, trace, config, options);
  comparison.ours = run_policy_on_trace(ours, trace, config, options);
  return comparison;
}

}  // namespace vrc::core
