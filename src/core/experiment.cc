#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>

namespace vrc::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGLoadSharing:
      return "G-Loadsharing";
    case PolicyKind::kVReconfiguration:
      return "V-Reconfiguration";
    case PolicyKind::kLocalOnly:
      return "Local-Only";
    case PolicyKind::kSuspension:
      return "Job-Suspension";
    case PolicyKind::kOracleDemands:
      return "Oracle-Demands";
  }
  return "?";
}

std::unique_ptr<cluster::SchedulerPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGLoadSharing:
      return std::make_unique<GLoadSharing>();
    case PolicyKind::kVReconfiguration:
      return std::make_unique<VReconfiguration>();
    case PolicyKind::kLocalOnly:
      return std::make_unique<LocalOnly>();
    case PolicyKind::kSuspension:
      return std::make_unique<SuspensionPolicy>();
    case PolicyKind::kOracleDemands:
      return std::make_unique<OracleDemands>();
  }
  std::fprintf(stderr, "make_policy: unknown kind\n");
  std::abort();
}

metrics::RunReport run_experiment(const workload::Trace& trace,
                                  const cluster::ClusterConfig& config,
                                  cluster::SchedulerPolicy& policy,
                                  const ExperimentOptions& options) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim, config, policy);
  metrics::Collector collector(cluster, options.collector);
  cluster.submit_trace(trace);
  sim.run_until(options.max_sim_time);
  collector.stop();
  metrics::RunReport report = collector.report(trace.name(), policy.name());
  report.policy_stats = policy.stats();
  return report;
}

metrics::RunReport run_policy_on_trace(PolicyKind kind, const workload::Trace& trace,
                                       const cluster::ClusterConfig& config,
                                       const ExperimentOptions& options) {
  std::unique_ptr<cluster::SchedulerPolicy> policy = make_policy(kind);
  return run_experiment(trace, config, *policy, options);
}

cluster::ClusterConfig paper_cluster_for(workload::WorkloadGroup group, std::size_t nodes) {
  return group == workload::WorkloadGroup::kSpec
             ? cluster::ClusterConfig::paper_cluster1(nodes)
             : cluster::ClusterConfig::paper_cluster2(nodes);
}

double Comparison::execution_reduction() const {
  return metrics::reduction(baseline.total_execution, ours.total_execution);
}

double Comparison::queue_reduction() const {
  return metrics::reduction(baseline.total_queue, ours.total_queue);
}

double Comparison::slowdown_reduction() const {
  return metrics::reduction(baseline.avg_slowdown, ours.avg_slowdown);
}

double Comparison::idle_memory_reduction() const {
  return metrics::reduction(baseline.avg_idle_memory_mb, ours.avg_idle_memory_mb);
}

double Comparison::balance_skew_reduction() const {
  return metrics::reduction(baseline.avg_balance_skew, ours.avg_balance_skew);
}

Comparison compare_policies(PolicyKind baseline, PolicyKind ours, const workload::Trace& trace,
                            const cluster::ClusterConfig& config,
                            const ExperimentOptions& options) {
  Comparison comparison;
  comparison.baseline = run_policy_on_trace(baseline, trace, config, options);
  comparison.ours = run_policy_on_trace(ours, trace, config, options);
  return comparison;
}

}  // namespace vrc::core
