#include "core/v_reconfiguration.h"

#include <algorithm>

#include "metrics/perf_counters.h"
#include "util/log.h"

namespace vrc::core {

VReconfiguration::VReconfiguration(Options options)
    : GLoadSharing(options.base), options_(options) {}

void VReconfiguration::attach(Cluster& cluster) {
  GLoadSharing::attach(cluster);
  reservations_.clear();
  last_blocking_seen_ = -1e18;
  last_drain_timeout_ = -1e18;
  reservations_started_ = 0;
  reservations_cancelled_ = 0;
  reserved_migrations_ = 0;
  declined_max_reservations_ = 0;
  declined_low_idle_ = 0;
  declined_no_candidate_ = 0;
  drains_timed_out_ = 0;
  reservations_failed_ = 0;
}

void VReconfiguration::on_node_pressure(Cluster& cluster, Workstation& node) {
  // Normal dynamic load sharing first: if a qualified migration destination
  // exists, there is no blocking problem.
  if (try_migrate_from(cluster, node)) return;
  ++failed_migrations_;

  // Page faults with no destination: the blocking problem is detected.
  last_blocking_seen_ = cluster.simulator().now();
  handle_blocking(cluster, node);
}

bool VReconfiguration::handle_blocking(Cluster& cluster, Workstation& node) {
  // The blocking problem is rooted in unsuitable placements of jobs with
  // large memory demands. Pressure on a node that is not substantially
  // overcommitted, or whose jobs are all normal-sized, is ordinary load —
  // reserving a workstation cannot help it (and the migration freeze would
  // cost more than the paging it cures).
  if (node.overcommit() < options_.min_overcommit) return false;
  RunningJob* big = node.most_memory_intensive_job();
  const Bytes big_threshold = static_cast<Bytes>(
      options_.big_job_factor *
      static_cast<double>(cluster.config().admission_demand_estimate));
  if (big == nullptr || big->demand < big_threshold) return false;

  const Bytes needed =
      static_cast<Bytes>(options_.growth_headroom * static_cast<double>(big->demand));

  // (1) An existing reserved workstation with enough available resources.
  if (Reservation* usable = find_usable_reservation(cluster, needed, big->width)) {
    if (cluster.start_migration(node.id(), big->id(), usable->node)) {
      ++reserved_migrations_;
      usable->state = ReservationState::kServing;
      VRC_LOG(kInfo) << "t=" << cluster.simulator().now() << " blocking: job " << big->id()
                     << " sent to existing reserved node " << usable->node;
      return true;
    }
  }

  // (2) Start a reserving period, if reconfiguration can help at all. Up to
  // max_reservations workstations ("a small set") may be reserved at once,
  // but only one may be draining at a time, and a recently abandoned drain
  // (§2.3: truly heavily loaded) imposes a backoff.
  if (static_cast<int>(reservations_.size()) >= options_.max_reservations ||
      has_draining_reservation()) {
    ++declined_max_reservations_;
    return false;
  }
  if (cluster.simulator().now() - last_drain_timeout_ < options_.timeout_backoff) {
    return false;
  }
  // The reconfiguration routine gathers a fresh view when triggered (it is
  // a rare control-path operation); the board's sender-side decrements would
  // otherwise understate the accumulated idle memory.
  const Bytes cluster_idle = cluster.live_idle_memory();
  const Bytes avg_user = cluster.board().average_user_memory();
  if (static_cast<double>(cluster_idle) <
      options_.min_cluster_idle_factor * static_cast<double>(avg_user)) {
    // §2.3: accumulated idle memory too small — memory is genuinely
    // exhausted; reconfiguration would not be effective.
    ++declined_low_idle_;
    return false;
  }
  auto candidate = pick_reservation_candidate(cluster, node.id());
  if (!candidate) {
    ++declined_no_candidate_;
    return false;
  }

  cluster.set_reserved(*candidate, true);
  reservations_.push_back(
      {*candidate, ReservationState::kDraining, cluster.simulator().now()});
  ++reservations_started_;
  VRC_LOG(kInfo) << "t=" << cluster.simulator().now() << " blocking: reserving node "
                 << *candidate << " (idle=" << to_megabytes(cluster_idle) << " MB cluster-wide)";

  // A reserved workstation with no running jobs is usable immediately.
  on_periodic(cluster);
  return true;
}

std::optional<NodeId> VReconfiguration::pick_reservation_candidate(Cluster& cluster,
                                                                   NodeId pressured) const {
  // Largest idle memory first (committed demand is the best observable
  // proxy for how fast the reserving period completes — small residents
  // are short-lived jobs, per the lifetime-prediction argument of [5]),
  // then fewest jobs: exactly the live index's (idle desc, jobs asc) heap.
  // Failed and already-reserved workstations are evicted from the heap.
  metrics::perf_add(&metrics::PerfCounters::reservation_scans);
  const cluster::ClusterIndex& live = cluster.live_index();
  return live.best_first([&](NodeId n) {
    if (n == pressured) return false;
    return cluster.node(n).incoming_count() == 0;  // no placements in flight
  });
}

RunningJob* VReconfiguration::find_cluster_big_job(Cluster& cluster, NodeId* src) const {
  const Bytes big_threshold = static_cast<Bytes>(
      options_.big_job_factor *
      static_cast<double>(cluster.config().admission_demand_estimate));
  RunningJob* best = nullptr;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    Workstation& node = cluster.node(static_cast<NodeId>(i));
    if (node.failed() || node.reserved() || node.overcommit() < options_.min_overcommit) {
      continue;
    }
    RunningJob* candidate = node.most_memory_intensive_job();
    if (candidate == nullptr || candidate->demand < big_threshold) continue;
    if (!best || candidate->demand > best->demand) {
      best = candidate;
      *src = node.id();
    }
  }
  return best;
}

bool VReconfiguration::has_draining_reservation() const {
  return std::any_of(reservations_.begin(), reservations_.end(), [](const Reservation& r) {
    return r.state == ReservationState::kDraining;
  });
}

VReconfiguration::Reservation* VReconfiguration::find_usable_reservation(Cluster& cluster,
                                                                         Bytes demand,
                                                                         int width) {
  // Migration preserves the big job's width; the reserved node must hold it.
  for (Reservation& reservation : reservations_) {
    Workstation& node = cluster.node(reservation.node);
    if (node.failed()) continue;
    const bool drained =
        reservation.state == ReservationState::kServing || node.active_jobs() == 0;
    if (drained && node.free_slots() >= width && node.idle_memory() >= demand) {
      return &reservation;
    }
  }
  return nullptr;
}

void VReconfiguration::complete_drain(Cluster& cluster, Reservation& reservation) {
  NodeId src = 0;
  RunningJob* big = find_cluster_big_job(cluster, &src);
  if (big == nullptr) {
    // Blocking problem resolved itself during the reserving period:
    // adaptively switch back to normal load sharing.
    release_reservation(cluster, reservation);
    ++reservations_cancelled_;
    return;
  }
  Workstation& target = cluster.node(reservation.node);
  const Bytes needed =
      static_cast<Bytes>(options_.growth_headroom * static_cast<double>(big->demand));
  if (target.idle_memory() < needed || target.free_slots() < big->width) return;
  if (cluster.start_migration(src, big->id(), reservation.node)) {
    ++reserved_migrations_;
    reservation.state = ReservationState::kServing;
    VRC_LOG(kInfo) << "t=" << cluster.simulator().now() << " reserving period over: job "
                   << big->id() << " (" << to_megabytes(big->demand) << " MB) -> reserved node "
                   << reservation.node;
  }
}

void VReconfiguration::release_reservation(Cluster& cluster, const Reservation& reservation) {
  cluster.set_reserved(reservation.node, false);
  VRC_LOG(kInfo) << "t=" << cluster.simulator().now() << " reservation on node "
                 << reservation.node << " released";
}

std::vector<std::pair<std::string, double>> VReconfiguration::stats() const {
  auto stats = GLoadSharing::stats();
  stats.emplace_back("reservations_started", static_cast<double>(reservations_started_));
  stats.emplace_back("reservations_cancelled", static_cast<double>(reservations_cancelled_));
  stats.emplace_back("reserved_migrations", static_cast<double>(reserved_migrations_));
  stats.emplace_back("declined_max", static_cast<double>(declined_max_reservations_));
  stats.emplace_back("declined_idle", static_cast<double>(declined_low_idle_));
  stats.emplace_back("declined_candidate", static_cast<double>(declined_no_candidate_));
  stats.emplace_back("drains_timed_out", static_cast<double>(drains_timed_out_));
  stats.emplace_back("reservations_failed", static_cast<double>(reservations_failed_));
  return stats;
}

void VReconfiguration::on_periodic(Cluster& cluster) {
  GLoadSharing::on_periodic(cluster);
  maintain_reservations(cluster);
}

void VReconfiguration::on_job_completed(Cluster& cluster,
                                        const cluster::CompletedJob& record) {
  GLoadSharing::on_job_completed(cluster, record);
  maintain_reservations(cluster);
}

void VReconfiguration::on_node_failed(Cluster& cluster, NodeId node) {
  (void)node;
  maintain_reservations(cluster);  // abandons a reservation on the dead node
}

void VReconfiguration::maintain_reservations(Cluster& cluster) {
  const SimTime now = cluster.simulator().now();

  for (std::size_t i = 0; i < reservations_.size();) {
    Reservation& reservation = reservations_[i];
    Workstation& node = cluster.node(reservation.node);

    if (node.failed()) {
      // The reserved workstation died: drop the reservation flag so the node
      // rejoins the pool when it recovers. Any big job it was serving has
      // already been killed and re-enqueued by the cluster.
      release_reservation(cluster, reservation);
      ++reservations_failed_;
      reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }

    if (reservation.state == ReservationState::kDraining) {
      if (now - last_blocking_seen_ > options_.blocking_resolve_timeout) {
        // Adaptive switch-back: no blocking for a while, cancel the drain.
        release_reservation(cluster, reservation);
        ++reservations_cancelled_;
        reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (now - reservation.started > options_.reserve_timeout) {
        // §2.3: the workstation could not be drained within the interval —
        // the cluster is truly heavily loaded; give the node back.
        release_reservation(cluster, reservation);
        ++drains_timed_out_;
        last_drain_timeout_ = now;
        reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      bool ready = node.active_jobs() == 0;
      if (!ready && options_.early_release) {
        NodeId src = 0;
        RunningJob* big = find_cluster_big_job(cluster, &src);
        ready = big != nullptr && node.free_slots() >= big->width &&
                node.idle_memory() >= static_cast<Bytes>(options_.growth_headroom *
                                                         static_cast<double>(big->demand));
      }
      if (ready) {
        complete_drain(cluster, reservation);
        if (reservation.state == ReservationState::kDraining) {
          // complete_drain released it (blocking resolved); drop the entry.
          reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
      }
    } else {  // kServing
      if (node.active_jobs() == 0 && node.incoming_count() == 0) {
        // Special service finished: the workstation rejoins the normal pool.
        release_reservation(cluster, reservation);
        reservations_.erase(reservations_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }
}

}  // namespace vrc::core
