// String-keyed policy registry: the declarative face of the policy layer.
//
// A scenario names a policy as text — `"v-reconf:early_release=0,
// max_reservations=2"` — instead of wiring a C++ enum and an Options struct
// by hand. PolicySpec is the parsed form (name + key=value params, with a
// canonical print that round-trips); PolicyRegistry maps names to factories
// that validate the params and construct a fresh SchedulerPolicy.
//
// The five shipped policies self-register on first use; custom policies (see
// examples/custom_policy.cpp) register through the same mechanism:
//
//   core::PolicyRegistry::instance().register_policy(
//       "random-fit",
//       [](const core::PolicyParams& params, std::string* error)
//           -> std::unique_ptr<cluster::SchedulerPolicy> {
//         core::ParamReader reader("random-fit", params);
//         long long seed = 7;
//         reader.read_int64("seed", &seed);
//         if (!reader.finish(error)) return nullptr;
//         return std::make_unique<RandomFit>(seed);
//       },
//       {{"seed", "int", "7", "placement RNG seed"}});
//
// Registration is expected at startup, before any concurrent create() calls
// (the sweep runner creates policies from worker threads).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/policy.h"

namespace vrc::core {

/// key=value parameters of one policy instantiation. std::map (not
/// unordered) so iteration — and therefore every printed spec and error
/// message — is deterministic.
using PolicyParams = std::map<std::string, std::string>;

/// A parsed policy description: registry name plus parameters.
///
/// Text form: `name` or `name:key=value,key=value`. print() emits the
/// canonical form (params in sorted key order), and
/// parse(print(spec)) == spec for every well-formed spec.
struct PolicySpec {
  std::string name;
  PolicyParams params;

  PolicySpec() = default;
  explicit PolicySpec(std::string policy_name, PolicyParams policy_params = {})
      : name(std::move(policy_name)), params(std::move(policy_params)) {}

  bool operator==(const PolicySpec&) const = default;

  /// Canonical text form: `name[:k=v,...]`, params sorted by key.
  std::string print() const;

  /// Parses `name[:k=v,...]`. Returns std::nullopt and fills *error on
  /// malformed text (empty name, missing '=', empty key, duplicate key).
  /// Does NOT consult the registry: a spec can be parsed before the policy
  /// it names is registered.
  static std::optional<PolicySpec> parse(const std::string& text, std::string* error = nullptr);
};

/// Documentation record for one policy parameter; drives error messages and
/// the DESIGN.md §9 parameter table.
struct PolicyParamDoc {
  std::string key;
  std::string type;           // "bool" | "int" | "double" | "duration"
  std::string default_value;  // printed default, e.g. "1" or "120s"
  std::string help;
};

/// Validating reader for a factory's PolicyParams. Each read_* records a
/// precise error on a malformed value; finish() additionally rejects keys no
/// read_* consumed. bool accepts 0/1/true/false/on/off; duration accepts
/// unit suffixes ("10ms", "2min", plain seconds).
class ParamReader {
 public:
  ParamReader(std::string policy_name, const PolicyParams& params);

  void read_bool(const std::string& key, bool* out);
  void read_int(const std::string& key, int* out);
  void read_int64(const std::string& key, long long* out);
  void read_double(const std::string& key, double* out);
  void read_duration(const std::string& key, SimTime* out);

  /// True if every param parsed and none were left unconsumed; otherwise
  /// fills *error with the first failure (key, expected type, an example).
  bool finish(std::string* error);

 private:
  const std::string* find(const std::string& key);
  void fail(const std::string& key, const std::string& value, const std::string& type,
            const std::string& example);

  std::string policy_;
  const PolicyParams& params_;
  std::vector<std::string> consumed_;
  std::string error_;
};

/// Name → factory map for every scheduler policy a scenario can reference.
class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<cluster::SchedulerPolicy>(
      const PolicyParams& params, std::string* error)>;

  /// The process-wide registry, with the shipped policies pre-registered.
  static PolicyRegistry& instance();

  /// Registers a policy under `name` (and optional alias names). Registering
  /// an existing name replaces it (latest wins, so tests can stub).
  void register_policy(const std::string& name, Factory factory,
                       std::vector<PolicyParamDoc> params = {},
                       std::vector<std::string> aliases = {});

  /// True if `name` is a registered policy or alias.
  bool contains(const std::string& name) const;

  /// Canonical name for `name` (resolving aliases); std::nullopt if unknown.
  std::optional<std::string> canonical_name(const std::string& name) const;

  /// Sorted canonical names of every registered policy.
  std::vector<std::string> names() const;

  /// Parameter docs of `name` (alias-resolved); nullptr if unknown.
  const std::vector<PolicyParamDoc>* param_docs(const std::string& name) const;

  /// Constructs a policy from `spec`. On failure returns nullptr and fills
  /// *error: unknown names list every registered policy, factory errors
  /// (unknown key, malformed value) pass through verbatim.
  std::unique_ptr<cluster::SchedulerPolicy> create(const PolicySpec& spec,
                                                   std::string* error) const;

 private:
  struct Entry {
    Factory factory;
    std::vector<PolicyParamDoc> params;
  };

  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string> aliases_;  // alias -> canonical
};

/// Constructs a policy from a spec via the registry (nullptr + *error on
/// unknown name or bad params). The string-keyed successor of
/// make_policy(PolicyKind).
std::unique_ptr<cluster::SchedulerPolicy> make_policy(const PolicySpec& spec, std::string* error);

}  // namespace vrc::core
