// Experiment runner: one (trace, cluster, policy) simulation end to end.
//
// This is the public entry point the examples and every bench binary use:
//
//   auto trace = workload::standard_trace(WorkloadGroup::kSpec, 3);
//   auto report = core::run_policy_on_trace(core::PolicySpec("v-reconf"),
//                                           trace, ClusterConfig::paper_cluster1());
#pragma once

#include <memory>

#include "cluster/cluster.h"
#include "cluster/config.h"
#include "core/baselines.h"
#include "faults/fault_plan.h"
#include "core/g_load_sharing.h"
#include "core/oracle.h"
#include "core/policy_registry.h"
#include "core/v_reconfiguration.h"
#include "metrics/collector.h"
#include "workload/trace.h"

namespace vrc::core {

/// The policies shipped with the library.
///
/// DEPRECATED: PolicyKind is a thin compatibility shim over the string-keyed
/// PolicyRegistry (policy_registry.h). New code should name policies as
/// PolicySpecs ("v-reconf:early_release=0"), which reach every option knob;
/// the enum only covers default-option instantiations and will be removed
/// once the remaining callers migrate.
enum class PolicyKind {
  kGLoadSharing,      // baseline of [3]
  kVReconfiguration,  // the paper's contribution
  kLocalOnly,         // no load sharing
  kSuspension,        // the brute-force alternative of §1
  kOracleDemands,     // counterfactual: demands known in advance
};

const char* to_string(PolicyKind kind);

/// Registry name of a kind ("g-loadsharing", "v-reconf", ...), usable as a
/// PolicySpec name. Returns std::nullopt on an out-of-range kind.
std::optional<std::string> registry_name(PolicyKind kind);

/// The default-params PolicySpec equivalent of `kind`.
PolicySpec to_spec(PolicyKind kind);

/// Constructs a fresh policy instance of the given kind with default options
/// by routing through the PolicyRegistry. On an out-of-range kind (a cast
/// from a stale integer) returns nullptr and fills *error with the offending
/// value and the registered policy names — it no longer aborts.
std::unique_ptr<cluster::SchedulerPolicy> make_policy(PolicyKind kind,
                                                      std::string* error = nullptr);

/// Knobs for one experiment run.
struct ExperimentOptions {
  metrics::CollectorOptions collector;
  /// Safety cap on simulated time; a run that has not drained by then is
  /// reported with the jobs completed so far (jobs_completed <
  /// jobs_submitted flags it).
  SimTime max_sim_time = 500000.0;
  /// Explicit failure windows (scenario `fault` directives). Combined with
  /// the stochastic generator (config.fault_mtbf) by FaultPlan::materialize;
  /// when both are empty no fault machinery is instantiated at all, keeping
  /// fault-free runs bit-identical to pre-fault builds.
  std::vector<faults::FaultEntry> fault_entries;
};

/// Runs `trace` on a cluster built from `config` under `policy`.
metrics::RunReport run_experiment(const workload::Trace& trace,
                                  const cluster::ClusterConfig& config,
                                  cluster::SchedulerPolicy& policy,
                                  const ExperimentOptions& options = {});

/// Streaming variant: pumps `source` through Cluster::submit_source instead
/// of materializing a Trace, so live JobSpec storage is O(concurrent jobs)
/// regardless of stream length (DESIGN.md §14). For a generated source this
/// produces the fingerprint-identical report to the materialized overload on
/// the same parameters. The report's `streamed` / `peak_live_specs` fields
/// record the pump statistics. The source is consumed.
metrics::RunReport run_experiment(workload::ArrivalSource& source,
                                  const cluster::ClusterConfig& config,
                                  cluster::SchedulerPolicy& policy,
                                  const ExperimentOptions& options = {});

/// Convenience wrapper constructing the policy by kind.
metrics::RunReport run_policy_on_trace(PolicyKind kind, const workload::Trace& trace,
                                       const cluster::ClusterConfig& config,
                                       const ExperimentOptions& options = {});

/// Convenience wrapper constructing the policy from a registry spec. Returns
/// std::nullopt and fills *error when the spec names an unknown policy or
/// carries bad params.
std::optional<metrics::RunReport> run_policy_on_trace(const PolicySpec& spec,
                                                      const workload::Trace& trace,
                                                      const cluster::ClusterConfig& config,
                                                      const ExperimentOptions& options = {},
                                                      std::string* error = nullptr);

/// Streaming counterpart of the spec-based run_policy_on_trace: constructs
/// the policy from the registry and pumps `source` (consumed) through it.
std::optional<metrics::RunReport> run_policy_on_source(const PolicySpec& spec,
                                                       workload::ArrivalSource& source,
                                                       const cluster::ClusterConfig& config,
                                                       const ExperimentOptions& options = {},
                                                       std::string* error = nullptr);

/// The paper's testbed for a workload group: cluster 1 for the SPEC group,
/// cluster 2 for the application group.
cluster::ClusterConfig paper_cluster_for(workload::WorkloadGroup group, std::size_t nodes = 32);

/// Side-by-side comparison of two runs of the same trace (baseline first),
/// with the relative reductions the paper quotes.
struct Comparison {
  metrics::RunReport baseline;
  metrics::RunReport ours;

  double execution_reduction() const;
  double queue_reduction() const;
  double slowdown_reduction() const;
  double idle_memory_reduction() const;
  double balance_skew_reduction() const;
};

/// Runs the same trace under two policies and returns the comparison.
Comparison compare_policies(PolicyKind baseline, PolicyKind ours, const workload::Trace& trace,
                            const cluster::ClusterConfig& config,
                            const ExperimentOptions& options = {});

}  // namespace vrc::core
