// V-Reconfiguration: adaptive and virtual cluster reconfiguration (the
// paper's contribution, §2).
//
// Extends G-Loadsharing. When a workstation is pressured but no qualified
// migration destination exists (the job blocking problem) and the cluster's
// accumulated idle memory still exceeds an average workstation's user
// memory, the policy:
//
//   1. reuses an existing reserved workstation if it has enough available
//      resources for the blocked big job, else
//   2. reserves the most lightly loaded workstation with the largest idle
//      memory: blocks submissions/migrations to it and waits out the
//      reserving period (all its running jobs complete, or — in the
//      early-release variant — until its idle memory fits the big job);
//   3. if the blocking problem disappears during the reserving period, the
//      reservation is cancelled and the system adaptively returns to normal
//      load sharing;
//   4. otherwise the most memory-intensive job suffering page faults is
//      migrated to the reserved workstation.
//
// The reservation flag clears when the reserved workstation completes its
// migrated jobs, which resumes normal submissions to it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/g_load_sharing.h"

namespace vrc::core {

/// Dynamic load sharing supported by adaptive and virtual reconfiguration.
class VReconfiguration : public GLoadSharing {
 public:
  struct Options {
    GLoadSharing::Options base;
    /// End the reserving period as soon as the reserved workstation's idle
    /// memory fits the blocked job (the §2.1 "alternative"), instead of
    /// waiting for all running jobs to complete. On: the reserving period is
    /// short enough that reservations almost always end in a successful
    /// isolation; off (the paper's primary variant) wastes long drains when
    /// jobs are long — the ablation bench quantifies the difference.
    bool early_release = true;
    /// Maximum simultaneously reserved workstations ("a small set").
    int max_reservations = 4;
    /// Reconfigure only while accumulated idle memory > factor * average
    /// user memory (§2.1 activation condition; §2.3 limitation).
    double min_cluster_idle_factor = 1.0;
    /// A job counts as "demanding large memory" (eligible for reserved
    /// service) when its observed demand exceeds this multiple of the
    /// admission demand estimate. Pressure without such a job is ordinary
    /// CPU congestion, which reconfiguration cannot help.
    double big_job_factor = 1.5;
    /// Headroom required on a reserved workstation before it accepts a big
    /// job: idle memory must exceed headroom * current demand, because the
    /// job's demand keeps growing after the move (working sets in Tables 1/2
    /// are maxima). Without it the reserved workstation itself thrashes.
    double growth_headroom = 1.4;
    /// Only isolate a big job when its node's overcommit is at least this —
    /// migrating a 100+ MB image over 10 Mbps freezes the job for minutes,
    /// which mild paging does not justify.
    double min_overcommit = 0.03;
    /// The blocking problem is considered resolved when no pressure event
    /// has been seen for this long; a draining reservation is then cancelled
    /// (the adaptive switch-back).
    SimTime blocking_resolve_timeout = 10.0;
    /// §2.3: "If a workstation can not be reserved within a pre-determined
    /// time interval, it implies that the cluster is truly heavily loaded."
    /// A reserving period still running after this long is abandoned.
    SimTime reserve_timeout = 120.0;
    /// After an abandoned reserving period, wait this long before starting
    /// another ("truly heavily loaded" clusters should not churn
    /// reservations).
    SimTime timeout_backoff = 120.0;
  };

  VReconfiguration() : VReconfiguration(Options{}) {}
  explicit VReconfiguration(Options options);

  const char* name() const override { return "V-Reconfiguration"; }

  void attach(Cluster& cluster) override;
  void on_node_pressure(Cluster& cluster, Workstation& node) override;
  void on_periodic(Cluster& cluster) override;
  void on_job_completed(Cluster& cluster, const cluster::CompletedJob& record) override;
  /// A reserved workstation can fail mid-drain or mid-service; the
  /// reservation is abandoned immediately (a later blocking event re-reserves
  /// on a live node) instead of waiting for a drain that can never finish.
  void on_node_failed(Cluster& cluster, NodeId node) override;

  // --- reconfiguration statistics ---
  std::uint64_t reservations_started() const { return reservations_started_; }
  std::uint64_t reservations_cancelled() const { return reservations_cancelled_; }
  std::uint64_t reservations_failed() const { return reservations_failed_; }
  std::uint64_t reserved_migrations() const { return reserved_migrations_; }
  int active_reservations() const { return static_cast<int>(reservations_.size()); }
  std::vector<std::pair<std::string, double>> stats() const override;

 private:
  enum class ReservationState {
    kDraining,  // reserving period: waiting for running jobs to complete
    kServing,   // hosting migrated big jobs
  };

  struct Reservation {
    NodeId node;
    ReservationState state;
    SimTime started = 0.0;
  };

  /// Handles a detected blocking event for the pressured node. Returns true
  /// if it could act (reuse or start a reservation).
  bool handle_blocking(Cluster& cluster, Workstation& node);

  /// reserve_a_workstation(): most lightly loaded non-reserved node with the
  /// largest idle memory; never the pressured node itself.
  std::optional<NodeId> pick_reservation_candidate(Cluster& cluster, NodeId pressured) const;

  /// The most memory-intensive running job on any currently pressured node
  /// (the job the drained reservation should serve), or nullptr.
  RunningJob* find_cluster_big_job(Cluster& cluster, NodeId* src) const;

  /// Migrates the cluster's big job to the drained reservation; releases the
  /// reservation instead if the blocking problem has dissolved.
  void complete_drain(Cluster& cluster, Reservation& reservation);

  void release_reservation(Cluster& cluster, const Reservation& reservation);

  /// Drain checks, timeouts, adaptive cancellation, and release of finished
  /// reservations. Runs on the periodic pulse and after every completion
  /// (the latter so the final reservation of a run is released even though
  /// the periodic task stops when the workload finishes).
  void maintain_reservations(Cluster& cluster);

  bool has_draining_reservation() const;
  Reservation* find_usable_reservation(Cluster& cluster, Bytes demand, int width = 1);

  Options options_;
  std::vector<Reservation> reservations_;
  SimTime last_blocking_seen_ = -1e18;
  SimTime last_drain_timeout_ = -1e18;

  std::uint64_t reservations_started_ = 0;
  std::uint64_t reservations_cancelled_ = 0;
  std::uint64_t reserved_migrations_ = 0;
  std::uint64_t declined_max_reservations_ = 0;
  std::uint64_t declined_low_idle_ = 0;
  std::uint64_t declined_no_candidate_ = 0;
  std::uint64_t drains_timed_out_ = 0;
  std::uint64_t reservations_failed_ = 0;  // abandoned because the node died
};

}  // namespace vrc::core
