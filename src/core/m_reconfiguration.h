// M-Reconfiguration: malleable grow/shrink as a third reconfiguration axis.
//
// The paper's two reconfiguration levers move *jobs* (preemptive migration)
// or *nodes* (virtual reservation). Malleable jobs expose a third lever: a
// running job's CPU-slot width can be reconfigured in place. This policy
// extends G-Loadsharing with it:
//
//  * When a submission stays blocked past shrink_threshold and the blocking
//    is slot-bound (memory admission would pass), running malleable jobs on
//    the best candidate node are shrunk toward their minimum width until the
//    freed slots can admit the blocked job.
//  * When the pending queue is empty and a node has slot headroom, earlier
//    shrinks are undone: the shrunk job grows back toward its maximum width,
//    keeping regrow_free_slots slots free for new arrivals.
//  * Every resize completion retries the blocked queue in FIFO order — the
//    slots a shrink released become usable exactly then.
//
// Rigid workloads (no malleable jobs) make every lever a no-op, so the
// policy degenerates to G-Loadsharing bit-for-bit. See DESIGN.md §15.
#pragma once

#include <cstdint>
#include <vector>

#include "core/g_load_sharing.h"

namespace vrc::core {

/// Dynamic load sharing plus malleable width reconfiguration.
class MReconfiguration : public GLoadSharing {
 public:
  struct Options {
    GLoadSharing::Options base;
    /// How long a submission must stay blocked before running malleable
    /// jobs are shrunk to admit it (0 shrinks on the first periodic pulse).
    SimTime shrink_threshold = 0.5;
    /// Slots kept free on a node after a re-grow, so growth does not
    /// immediately re-block the next submission.
    int regrow_free_slots = 1;
    /// Minimum spacing between policy-initiated resizes on one node; damps
    /// shrink/grow oscillation.
    SimTime resize_cooldown = 2.0;
  };

  MReconfiguration() : MReconfiguration(Options{}) {}
  explicit MReconfiguration(Options options)
      : GLoadSharing(options.base), options_(options) {}

  const char* name() const override { return "M-Reconfiguration"; }

  void attach(Cluster& cluster) override;
  void on_periodic(Cluster& cluster) override;
  void on_resize_complete(Cluster& cluster, RunningJob& job) override;
  void on_migration_complete(Cluster& cluster, RunningJob& job) override;

  // --- policy statistics ---
  std::uint64_t shrinks_started() const { return shrinks_started_; }
  std::uint64_t grows_started() const { return grows_started_; }
  /// Model-based estimate of blocked wall time avoided by shrinking: at each
  /// shrink wave, the blocked job would otherwise have waited for the
  /// earliest completion on the chosen node; the estimate credits that wait
  /// minus the reconfiguration pause. Observability only — never read by
  /// scheduling decisions.
  double blocked_time_saved() const { return blocked_time_saved_; }
  std::vector<std::pair<std::string, double>> stats() const override;

 private:
  struct Shrunk {
    NodeId node;
    JobId job;
  };

  /// Starts shrinks on the best slot-bound candidate node until the freed
  /// slots can admit `job`. Returns true when at least one shrink started.
  bool shrink_to_admit(Cluster& cluster, RunningJob& job);
  /// Grows previously shrunk jobs back while the pending queue is empty.
  void maybe_regrow(Cluster& cluster);
  bool cooled_down(Cluster& cluster, NodeId node) const;

  Options options_;
  std::vector<SimTime> last_resize_;  // per-node policy cooldown stamp
  /// Jobs this policy shrunk and still owes a re-grow (entries are dropped
  /// once back at max width, or when the job completes or is killed).
  std::vector<Shrunk> shrunk_;
  std::uint64_t shrinks_started_ = 0;
  std::uint64_t grows_started_ = 0;
  double blocked_time_saved_ = 0.0;
};

}  // namespace vrc::core
