// Oracle-demand policy: dynamic load sharing with *known* memory demands.
//
// The paper's premise (inherited from [3]) is that a job's memory demand is
// unknown at submission and changes while it runs — which is why unsuitable
// placements happen and the blocking problem exists at all. This policy is
// the counterfactual: admission and migration decisions see every job's true
// peak working set. It upper-bounds what any predictor could achieve and
// quantifies the price of demand uncertainty (bench/ablation_oracle).
#pragma once

#include "core/g_load_sharing.h"

namespace vrc::core {

/// G-Loadsharing with perfect demand knowledge: the admission hint for every
/// placement is the job's true peak working set, so no workstation ever
/// admits a set of jobs whose grown demands collide.
class OracleDemands : public GLoadSharing {
 public:
  OracleDemands() = default;
  explicit OracleDemands(Options options) : GLoadSharing(options) {}

  const char* name() const override { return "Oracle-Demands"; }

  void on_job_arrival(Cluster& cluster, RunningJob& job) override;
  void on_periodic(Cluster& cluster) override;

 private:
  /// Sum of the *peak* working sets of everything on (or headed to) the
  /// node: what the node's demand will grow into.
  Bytes future_committed(const Workstation& node) const;
  bool oracle_accepts(const Cluster& cluster, const Workstation& node, Bytes peak,
                      int width = 1) const;
  bool try_place_oracle(Cluster& cluster, RunningJob& job);
};

}  // namespace vrc::core
