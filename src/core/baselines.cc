#include "core/baselines.h"

namespace vrc::core {

bool LocalOnly::try_place(Cluster& cluster, RunningJob& job) {
  Workstation& home = cluster.node(job.home_node);
  // A failed home node accepts nothing; the job waits out the outage in the
  // pending queue (there is no remote path in this baseline).
  if (home.failed()) return false;
  // Conventional multiprogramming: only the CPU threshold gates admission;
  // memory oversubscription simply thrashes. Wide (malleable) jobs need
  // their full width in slots — width 1 reduces to the old predicate.
  if (home.slots_used() + job.width <= cluster.config().cpu_threshold) {
    cluster.place_local(job, home.id());
    return true;
  }
  return false;
}

void LocalOnly::on_job_arrival(Cluster& cluster, RunningJob& job) { try_place(cluster, job); }

void LocalOnly::on_periodic(Cluster& cluster) {
  for (RunningJob* job : cluster.pending_jobs()) {
    try_place(cluster, *job);  // each home queue drains independently
  }
}

void SuspensionPolicy::attach(Cluster& cluster) {
  GLoadSharing::attach(cluster);
  // The suspended list references jobs of the previous run's cluster; a
  // reused policy must not try to resume them (nor report stale counters).
  suspended_.clear();
  suspensions_ = 0;
  resumes_ = 0;
}

void SuspensionPolicy::on_node_pressure(Cluster& cluster, Workstation& node) {
  if (try_migrate_from(cluster, node)) return;
  ++failed_migrations_;
  if (node.active_jobs() <= options_.min_runnable) return;
  RunningJob* victim = node.most_memory_intensive_job();
  if (victim == nullptr) return;
  if (cluster.suspend_job(node.id(), victim->id())) {
    suspended_.push_back({node.id(), victim->id()});
    ++suspensions_;
  }
}

std::vector<std::pair<std::string, double>> SuspensionPolicy::stats() const {
  auto stats = GLoadSharing::stats();
  stats.emplace_back("suspensions", static_cast<double>(suspensions_));
  stats.emplace_back("resumes", static_cast<double>(resumes_));
  return stats;
}

void SuspensionPolicy::on_periodic(Cluster& cluster) {
  GLoadSharing::on_periodic(cluster);
  // Resume suspended jobs (oldest first) once their node has room again.
  for (std::size_t i = 0; i < suspended_.size();) {
    const Suspended entry = suspended_[i];
    Workstation& node = cluster.node(entry.node);
    RunningJob* job = node.find_job(entry.job);
    if (job == nullptr || job->phase != cluster::JobPhase::kSuspended) {
      suspended_.erase(suspended_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    // A suspended job resumes at the width it held; the node must have that
    // many slots free again (width 1 reduces to the old predicate).
    const bool room = node.slots_used() + job->width <= cluster.config().cpu_threshold &&
                      node.idle_memory() >= job->demand && !node.memory_pressured();
    if (room && cluster.resume_job(entry.node, entry.job)) {
      ++resumes_;
      suspended_.erase(suspended_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

}  // namespace vrc::core
