#include "core/m_reconfiguration.h"

#include <algorithm>
#include <limits>

#include "util/log.h"

namespace vrc::core {

namespace {

/// Slots a node could free by shrinking its running malleable jobs to their
/// minimum widths.
int shrinkable_slack(const Workstation& node) {
  int slack = 0;
  for (const auto& resident : node.jobs()) {
    if (resident->phase != cluster::JobPhase::kRunning) continue;
    const workload::Malleability& contract = resident->spec->malleability;
    if (!contract.resizable()) continue;
    slack += resident->width - contract.min_width;
  }
  return slack;
}

}  // namespace

void MReconfiguration::attach(Cluster& cluster) {
  GLoadSharing::attach(cluster);
  last_resize_.assign(cluster.num_nodes(), -1e18);
  shrunk_.clear();
  shrinks_started_ = 0;
  grows_started_ = 0;
  blocked_time_saved_ = 0.0;
}

bool MReconfiguration::cooled_down(Cluster& cluster, NodeId node) const {
  return cluster.simulator().now() - last_resize_[node] >= options_.resize_cooldown;
}

bool MReconfiguration::shrink_to_admit(Cluster& cluster, RunningJob& job) {
  const Bytes hint = std::max(job.demand, cluster.config().admission_demand_estimate);
  const int cpu_threshold = cluster.config().cpu_threshold;

  // Candidate nodes: slot-bound (the memory half of admission passes, only
  // slots are missing) with enough shrinkable width to cover the deficit.
  // Shrinking frees CPU shares, never memory, so a memory-bound block cannot
  // be cured here — that stays the virtual reconfiguration's territory.
  NodeId best_node = workload::kInvalidNode;
  int best_slack = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    const NodeId candidate = static_cast<NodeId>(i);
    const Workstation& node = cluster.node(candidate);
    if (node.failed() || node.reserved() || node.memory_pressured()) continue;
    if (!cooled_down(cluster, candidate)) continue;
    const Bytes limit = static_cast<Bytes>(cluster.config().memory_threshold *
                                           static_cast<double>(node.user_memory()));
    if (node.committed_demand() + hint >= limit) continue;
    const int missing = node.slots_used() + job.width - cpu_threshold;
    if (missing <= 0) continue;  // not slot-bound: admission failed on memory
    const int slack = shrinkable_slack(node);
    if (slack < missing) continue;
    if (slack > best_slack) {
      best_slack = slack;
      best_node = candidate;
    }
  }
  if (best_node == workload::kInvalidNode) return false;

  Workstation& node = cluster.node(best_node);
  int missing = node.slots_used() + job.width - cpu_threshold;

  // Without shrinking, the blocked job's next chance at this node is the
  // earliest completion among its running jobs; credit that avoided wait
  // (minus the reconfiguration pause) to blocked_time_saved.
  SimTime min_remaining = std::numeric_limits<SimTime>::max();
  for (const auto& resident : node.jobs()) {
    if (resident->phase != cluster::JobPhase::kRunning) continue;
    min_remaining =
        std::min(min_remaining, resident->remaining_cpu() / node.speed_factor());
  }

  bool any = false;
  SimTime first_pause = 0.0;
  // Shrink widest-first: the widest job frees the most slots per pause.
  while (missing > 0) {
    RunningJob* victim = nullptr;
    for (const auto& resident : node.jobs()) {
      if (resident->phase != cluster::JobPhase::kRunning) continue;
      const workload::Malleability& contract = resident->spec->malleability;
      if (!contract.resizable() || resident->width <= contract.min_width) continue;
      if (victim == nullptr || resident->width > victim->width) victim = resident.get();
    }
    if (victim == nullptr) break;
    const workload::Malleability& contract = victim->spec->malleability;
    const int old_width = victim->width;
    const int target = std::max(contract.min_width, old_width - missing);
    if (!cluster.resize_job(best_node, victim->id(), target)) break;
    missing -= old_width - target;
    ++shrinks_started_;
    shrunk_.push_back({best_node, victim->id()});
    if (!any) first_pause = contract.resize_cost(old_width, target);
    any = true;
  }
  if (any) {
    last_resize_[best_node] = cluster.simulator().now();
    if (min_remaining < std::numeric_limits<SimTime>::max()) {
      blocked_time_saved_ += std::max(0.0, min_remaining - first_pause);
    }
    VRC_LOG(kInfo) << "t=" << cluster.simulator().now() << " shrink wave on node "
                   << best_node << " to admit blocked job " << job.id();
  }
  return any;
}

void MReconfiguration::maybe_regrow(Cluster& cluster) {
  if (cluster.pending_count() != 0) return;  // admissions outrank growth
  const SimTime now = cluster.simulator().now();
  for (std::size_t i = 0; i < shrunk_.size();) {
    const Shrunk entry = shrunk_[i];
    Workstation& node = cluster.node(entry.node);
    RunningJob* job = node.find_job(entry.job);
    if (job == nullptr) {
      // Completed, killed, or moved without notice: nothing left to grow.
      shrunk_.erase(shrunk_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const workload::Malleability& contract = job->spec->malleability;
    if (job->width >= contract.max_width) {
      shrunk_.erase(shrunk_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (job->phase != cluster::JobPhase::kRunning || !cooled_down(cluster, entry.node)) {
      ++i;
      continue;
    }
    const int headroom = node.free_slots() - options_.regrow_free_slots;
    if (headroom <= 0) {
      ++i;
      continue;
    }
    const int target = std::min(contract.max_width, job->width + headroom);
    if (cluster.resize_job(entry.node, entry.job, target)) {
      ++grows_started_;
      last_resize_[entry.node] = now;
      if (target == contract.max_width) {
        shrunk_.erase(shrunk_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }
}

void MReconfiguration::on_periodic(Cluster& cluster) {
  GLoadSharing::on_periodic(cluster);  // FIFO retry of blocked submissions
  const SimTime now = cluster.simulator().now();
  for (RunningJob* job : cluster.pending_jobs()) {
    // pending_jobs() is oldest-first; younger jobs cannot have aged past the
    // threshold once one is below it.
    if (now - job->accounted_until < options_.shrink_threshold) break;
    if (shrink_to_admit(cluster, *job)) break;  // one shrink wave per pulse
  }
  maybe_regrow(cluster);
}

void MReconfiguration::on_resize_complete(Cluster& cluster, RunningJob& job) {
  (void)job;
  // The slots a shrink released became usable this instant; re-offer the
  // blocked queue in FIFO order.
  for (RunningJob* pending : cluster.pending_jobs()) {
    if (!try_place(cluster, *pending)) break;
  }
}

void MReconfiguration::on_migration_complete(Cluster& cluster, RunningJob& job) {
  GLoadSharing::on_migration_complete(cluster, job);
  // A shrunk job that migrated owes its re-grow on the new node.
  for (Shrunk& entry : shrunk_) {
    if (entry.job == job.id()) {
      entry.node = job.node;
      break;
    }
  }
}

std::vector<std::pair<std::string, double>> MReconfiguration::stats() const {
  auto stats = GLoadSharing::stats();
  stats.emplace_back("shrinks_started", static_cast<double>(shrinks_started_));
  stats.emplace_back("grows_started", static_cast<double>(grows_started_));
  stats.emplace_back("blocked_time_saved", blocked_time_saved_);
  return stats;
}

}  // namespace vrc::core
