// G-Loadsharing: the dynamic load sharing baseline.
//
// Reconstruction of Chen, Xiao, Zhang, "Dynamic load sharing with unknown
// memory demands in clusters" (ICDCS 2001) — reference [3] of the paper and
// the scheme every figure compares against:
//
//  * A submission is accepted locally when the workstation has idle memory
//    and fewer running jobs than the CPU threshold.
//  * Otherwise the job is remotely submitted to the most lightly loaded
//    qualified workstation known to the (periodically refreshed, hence
//    stale) load-index board; candidates are verified against live state at
//    commit time, modelling the accept handshake.
//  * When nothing qualifies, the submission blocks (stays pending) — the
//    seed of the job blocking problem.
//  * A workstation whose page-fault rate crosses the threshold preemptively
//    migrates its most memory-intensive job to a workstation with enough
//    idle memory, if one exists.
#pragma once

#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/policy.h"

namespace vrc::core {

using cluster::Cluster;
using cluster::RunningJob;
using cluster::Workstation;
using workload::JobId;
using workload::NodeId;

/// Dynamic load sharing with unknown memory demands ([3]).
class GLoadSharing : public cluster::SchedulerPolicy {
 public:
  struct Options {
    /// Disable preemptive migration entirely (ablation: remote submission
    /// only).
    bool enable_migration = true;
  };

  GLoadSharing() = default;
  explicit GLoadSharing(Options options) : options_(options) {}

  const char* name() const override { return "G-Loadsharing"; }

  void attach(Cluster& cluster) override;
  void on_job_arrival(Cluster& cluster, RunningJob& job) override;
  void on_node_pressure(Cluster& cluster, Workstation& node) override;
  void on_periodic(Cluster& cluster) override;

  // --- policy statistics ---
  std::uint64_t blocked_submissions() const { return blocked_submissions_; }
  std::uint64_t failed_migrations() const { return failed_migrations_; }
  std::vector<std::pair<std::string, double>> stats() const override;

 protected:
  /// Attempts local, then remote placement. Returns true if placed.
  bool try_place(Cluster& cluster, RunningJob& job);

  /// Most lightly loaded workstation (fewest used slots, ties broken by the
  /// largest idle memory) that passes both the board snapshot and the live
  /// accepts_new_job() check. `exclude` is skipped; `width` is the slot count
  /// the job needs (1 for every rigid job).
  std::optional<NodeId> find_submission_target(Cluster& cluster, Bytes demand_hint,
                                               NodeId exclude, int width = 1) const;

  /// Destination able to hold `job` without overcommitting: live idle memory
  /// >= job.demand, a free slot, not pressured, not reserved. Picks the
  /// largest idle memory.
  std::optional<NodeId> find_migration_target(Cluster& cluster, const RunningJob& job,
                                              NodeId exclude) const;

  /// Preemptive migration attempt for a pressured node. Returns true if a
  /// migration was started.
  bool try_migrate_from(Cluster& cluster, Workstation& node);

  Options options_;
  std::vector<SimTime> last_migration_;  // per-node cooldown stamp
  std::uint64_t blocked_submissions_ = 0;
  std::uint64_t failed_migrations_ = 0;
};

}  // namespace vrc::core
