#include "core/g_load_sharing.h"

#include <algorithm>
#include <vector>

#include "metrics/perf_counters.h"
#include "util/log.h"

namespace vrc::core {

void GLoadSharing::attach(Cluster& cluster) {
  last_migration_.assign(cluster.num_nodes(), -1e18);
  // A policy object may be reused across experiments (the sweep runner
  // constructs one per cell, but callers of run_experiment can reuse one);
  // every run must start with clean statistics.
  blocked_submissions_ = 0;
  failed_migrations_ = 0;
}

void GLoadSharing::on_job_arrival(Cluster& cluster, RunningJob& job) {
  if (!try_place(cluster, job)) {
    ++blocked_submissions_;
    VRC_LOG(kDebug) << "t=" << cluster.simulator().now() << " job " << job.id()
                    << " blocked at submission";
  }
}

bool GLoadSharing::try_place(Cluster& cluster, RunningJob& job) {
  // Memory demands are unknown at submission time ([3]): admission assumes a
  // typical working set (or the job's observed footprint, if larger).
  const Bytes hint = std::max(job.demand, cluster.config().admission_demand_estimate);
  Workstation& home = cluster.node(job.home_node);
  if (home.accepts_new_job(hint, job.width)) {
    cluster.place_local(job, home.id());
    return true;
  }
  if (auto target = find_submission_target(cluster, hint, home.id(), job.width)) {
    cluster.place_remote(job, *target);
    return true;
  }
  return false;
}

std::optional<NodeId> GLoadSharing::find_submission_target(Cluster& cluster, Bytes demand_hint,
                                                           NodeId exclude, int width) const {
  // Selection trusts the periodically-exchanged board: between exchanges
  // every home scheduler sees the same "lightly loaded" candidates, so
  // bursts of submissions herd onto them — the "unsuitable job submissions"
  // with unknown demands that seed the blocking problem. The board's
  // (slots asc, idle desc) heap returns exactly the node the old linear scan
  // picked; failed and reserved entries are not in the heap at all.
  metrics::perf_add(&metrics::PerfCounters::submission_scans);
  const cluster::ClusterIndex& index = cluster.board().index();
  const int cpu_threshold = cluster.config().cpu_threshold;
  return index.best_first([&](NodeId n) {
    if (n == exclude || index.pressured(n)) return false;
    if (index.slots_used(n) + width > cpu_threshold) return false;
    return index.idle(n) > demand_hint;
  });
}

std::optional<NodeId> GLoadSharing::find_migration_target(Cluster& cluster,
                                                          const RunningJob& job,
                                                          NodeId exclude) const {
  // Board-ranked (idle desc) with a live double-check: the destination must
  // still qualify at migration time, not just at the last exchange.
  metrics::perf_add(&metrics::PerfCounters::migration_scans);
  const cluster::ClusterIndex& index = cluster.board().index();
  const int cpu_threshold = cluster.config().cpu_threshold;
  // Migration preserves the job's width, so the destination needs that many
  // free slots (width 1 reduces to the old free-slot predicate).
  return index.best_second([&](NodeId n) {
    if (n == exclude || index.pressured(n)) return false;
    if (index.slots_used(n) + job.width > cpu_threshold) return false;
    if (index.idle(n) <= 0 || index.idle(n) < job.demand) return false;
    const Workstation& live = cluster.node(n);
    if (live.failed() || live.free_slots() < job.width || live.reserved() ||
        live.memory_pressured()) {
      return false;
    }
    return live.idle_memory() >= job.demand;
  });
}

bool GLoadSharing::try_migrate_from(Cluster& cluster, Workstation& node) {
  if (!options_.enable_migration) return false;
  const SimTime now = cluster.simulator().now();
  if (now - last_migration_[node.id()] < cluster.config().migration_cooldown) return false;

  // The victim is the most memory-intensive job — the paper's framework
  // calls find_most_memory_intensive_job() and migrates exactly that job.
  // When no workstation can hold it (the big-job case), the migration fails
  // and the node stays blocked: this is precisely the gap the virtual
  // reconfiguration exists to fill.
  if (node.migrating_jobs() > 0) return false;  // transfer already in flight
  RunningJob* victim = node.most_memory_intensive_job();
  if (victim == nullptr) return false;
  auto target = find_migration_target(cluster, *victim, node.id());
  if (!target) return false;
  if (!cluster.start_migration(node.id(), victim->id(), *target)) return false;
  last_migration_[node.id()] = now;
  return true;
}

void GLoadSharing::on_node_pressure(Cluster& cluster, Workstation& node) {
  if (!try_migrate_from(cluster, node)) ++failed_migrations_;
}

std::vector<std::pair<std::string, double>> GLoadSharing::stats() const {
  return {{"blocked_submissions", static_cast<double>(blocked_submissions_)},
          {"failed_migrations", static_cast<double>(failed_migrations_)}};
}

void GLoadSharing::on_periodic(Cluster& cluster) {
  // Blocked submissions retry in arrival order; stop at the first job that
  // cannot be placed to preserve FIFO fairness among the blocked.
  for (RunningJob* job : cluster.pending_jobs()) {
    if (!try_place(cluster, *job)) break;
  }
}

}  // namespace vrc::core
