#include "core/oracle.h"

namespace vrc::core {

Bytes OracleDemands::future_committed(const Workstation& node) const {
  // The workstation maintains this sum incrementally (reservations plus the
  // peak working set of every resident job), so oracle admission is O(1).
  return node.future_committed();
}

bool OracleDemands::oracle_accepts(const Cluster& cluster, const Workstation& node, Bytes peak,
                                   int width) const {
  if (node.failed() || node.reserved() || node.free_slots() < width ||
      node.memory_pressured()) {
    return false;
  }
  const Bytes limit = static_cast<Bytes>(cluster.config().memory_threshold *
                                         static_cast<double>(node.user_memory()));
  return future_committed(node) + peak < limit;
}

bool OracleDemands::try_place_oracle(Cluster& cluster, RunningJob& job) {
  // Perfect knowledge: admission is against the sum of everyone's *peak*
  // working sets, so no placement can ever grow into a collision.
  const Bytes peak = job.spec->working_set();
  Workstation& home = cluster.node(job.home_node);
  if (oracle_accepts(cluster, home, peak, job.width)) {
    cluster.place_local(job, home.id());
    return true;
  }
  // Least future-committed workstation that can take the full peak: the
  // live index's min-peak heap, filtered by the oracle admission predicate.
  const auto best = cluster.live_index().best_second([&](NodeId n) {
    if (n == home.id()) return false;
    return oracle_accepts(cluster, cluster.node(n), peak, job.width);
  });
  if (best) {
    cluster.place_remote(job, *best);
    return true;
  }
  return false;
}

void OracleDemands::on_job_arrival(Cluster& cluster, RunningJob& job) {
  if (!try_place_oracle(cluster, job)) ++blocked_submissions_;
}

void OracleDemands::on_periodic(Cluster& cluster) {
  for (RunningJob* job : cluster.pending_jobs()) {
    if (!try_place_oracle(cluster, *job)) break;
  }
}

}  // namespace vrc::core
