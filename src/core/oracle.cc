#include "core/oracle.h"

namespace vrc::core {

Bytes OracleDemands::future_committed(const Workstation& node) const {
  Bytes total = node.incoming_bytes();
  for (const auto& job : node.jobs()) {
    if (job->phase == cluster::JobPhase::kSuspended) continue;
    total += job->spec->working_set();
  }
  return total;
}

bool OracleDemands::oracle_accepts(const Cluster& cluster, const Workstation& node,
                                   Bytes peak) const {
  if (node.failed() || node.reserved() || !node.has_free_slot() || node.memory_pressured()) {
    return false;
  }
  const Bytes limit = static_cast<Bytes>(cluster.config().memory_threshold *
                                         static_cast<double>(node.user_memory()));
  return future_committed(node) + peak < limit;
}

bool OracleDemands::try_place_oracle(Cluster& cluster, RunningJob& job) {
  // Perfect knowledge: admission is against the sum of everyone's *peak*
  // working sets, so no placement can ever grow into a collision.
  const Bytes peak = job.spec->working_set();
  Workstation& home = cluster.node(job.home_node);
  if (oracle_accepts(cluster, home, peak)) {
    cluster.place_local(job, home.id());
    return true;
  }
  // Least future-committed workstation that can take the full peak.
  std::optional<NodeId> best;
  Bytes best_future = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    const Workstation& node = cluster.node(static_cast<NodeId>(i));
    if (node.id() == home.id()) continue;
    if (!oracle_accepts(cluster, node, peak)) continue;
    const Bytes future = future_committed(node);
    if (!best || future < best_future) {
      best = node.id();
      best_future = future;
    }
  }
  if (best) {
    cluster.place_remote(job, *best);
    return true;
  }
  return false;
}

void OracleDemands::on_job_arrival(Cluster& cluster, RunningJob& job) {
  if (!try_place_oracle(cluster, job)) ++blocked_submissions_;
}

void OracleDemands::on_periodic(Cluster& cluster) {
  for (RunningJob* job : cluster.pending_jobs()) {
    if (!try_place_oracle(cluster, *job)) break;
  }
}

}  // namespace vrc::core
