// Additional baseline policies used for context and ablation.
//
// LocalOnly: no load sharing at all — every job runs on its home
// workstation, queueing for a slot (the "conventional multiprogramming"
// world the load sharing literature starts from).
//
// SuspensionPolicy: the "simple solution" §1 of the paper rejects — when a
// workstation is pressured and no migration destination exists, suspend
// (swap out) the most memory-intensive job so submissions can flow again,
// resuming it when the node has room. The paper argues this starves large
// jobs; the ablation bench quantifies that.
#pragma once

#include <cstdint>
#include <vector>

#include "core/g_load_sharing.h"

namespace vrc::core {

/// No inter-workstation scheduling: jobs wait for their home node.
class LocalOnly : public cluster::SchedulerPolicy {
 public:
  const char* name() const override { return "Local-Only"; }

  void on_job_arrival(Cluster& cluster, RunningJob& job) override;
  void on_periodic(Cluster& cluster) override;

 private:
  bool try_place(Cluster& cluster, RunningJob& job);
};

/// Dynamic load sharing + brute-force suspension of big jobs.
class SuspensionPolicy : public GLoadSharing {
 public:
  struct Options {
    GLoadSharing::Options base;
    /// A node keeps at least this many runnable jobs (never suspends the
    /// last one).
    int min_runnable = 1;
  };

  SuspensionPolicy() : SuspensionPolicy(Options{}) {}
  explicit SuspensionPolicy(Options options) : GLoadSharing(options.base), options_(options) {}

  const char* name() const override { return "Job-Suspension"; }

  void attach(Cluster& cluster) override;
  void on_node_pressure(Cluster& cluster, Workstation& node) override;
  void on_periodic(Cluster& cluster) override;

  std::uint64_t suspensions() const { return suspensions_; }
  std::uint64_t resumes() const { return resumes_; }
  std::vector<std::pair<std::string, double>> stats() const override;

 private:
  struct Suspended {
    NodeId node;
    JobId job;
  };

  Options options_;
  std::vector<Suspended> suspended_;
  std::uint64_t suspensions_ = 0;
  std::uint64_t resumes_ = 0;
};

}  // namespace vrc::core
