#include "sim/sampler.h"

#include <utility>

namespace vrc::sim {

IntervalSampler::IntervalSampler(Simulator& sim, SimTime start, SimTime interval, Probe probe)
    : probe_(std::move(probe)),
      task_(sim, start, interval, [this](SimTime now) { stats_.add(probe_(now)); }) {}

}  // namespace vrc::sim
