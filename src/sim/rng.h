// Deterministic pseudo-random number generation for reproducible simulations.
//
// All stochastic behaviour in the library flows through Rng so that a trace
// or simulation is fully determined by its seed. The generator is
// xoshiro256++ (public-domain algorithm by Blackman & Vigna), seeded via
// splitmix64, which gives solid statistical quality at a few ns per draw and
// identical streams on every platform (unlike std::mt19937 distributions,
// whose std::normal_distribution etc. are implementation-defined).
#pragma once

#include <cstdint>

namespace vrc::sim {

/// Deterministic random number generator with the sampling primitives the
/// workload generator and paging model need.
class Rng {
 public:
  /// Seeds the stream. Two Rng instances with equal seeds produce equal
  /// sequences forever.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(N(mu, sigma)). This is the distribution behind the
  /// paper's job-arrival rate function (Eq. 1).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Forks an independent, deterministically derived substream. Used to give
  /// each workstation / generator component its own stream so adding draws in
  /// one component does not perturb another.
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace vrc::sim
