#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace vrc::sim {

std::uint32_t Simulator::alloc_slot_slow() {
  assert(num_slots_ < (1u << kSlotBits) && "event slab exhausted");
  if (num_slots_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return num_slots_++;
}

EventId Simulator::commit_event(SimTime when, std::uint32_t index, Slot& slot) {
  // `<=` (not `<`) so a -0.0 timestamp normalizes to now_: the key compare
  // treats time as raw IEEE bits, and -0.0 must not sort before 0.0.
  if (when <= now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  assert(seq <= kSeqMask && "event sequence space exhausted");
  slot.state = kLiveBit | seq;
  heap_push(make_key(when, seq, index));
  ++live_events_;
  return make_id(index, seq);
}

void Simulator::heap_push(HeapKey entry) {
  // Hole-based sift-up: shift parents down into the hole and place the new
  // entry once, instead of swap chains (3 copies per level -> 1).
  heap_.push_back(entry);
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (entry >= heap_[parent]) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void Simulator::heap_pop_min() {
  const HeapKey moved = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size == 0) return;
  // Hole-based sift-down of the former last element from the root.
  std::size_t hole = 0;
  while (true) {
    const std::size_t first_child = hole * 4 + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + 4, size);
    std::size_t best = first_child;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (heap_[child] < heap_[best]) best = child;
    }
    if (heap_[best] >= moved) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = moved;
}

void Simulator::compact_heap() {
  // More than half of the heap is cancelled tombstones: drop them in one
  // O(n) filter + bottom-up heapify pass instead of sifting each one out of
  // the root. Keeps cancel-heavy phases (node tick retractions, periodic
  // task teardown) linear instead of O(n log n).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (entry_live(heap_[i])) heap_[kept++] = heap_[i];
  }
  heap_.resize(kept);
  stale_entries_ = 0;
  if (kept < 2) return;
  for (std::size_t start = (kept - 2) / 4 + 1; start-- > 0;) {
    const HeapKey moved = heap_[start];
    std::size_t hole = start;
    while (true) {
      const std::size_t first_child = hole * 4 + 1;
      if (first_child >= kept) break;
      const std::size_t last_child = std::min(first_child + 4, kept);
      std::size_t best = first_child;
      for (std::size_t child = first_child + 1; child < last_child; ++child) {
        if (heap_[child] < heap_[best]) best = child;
      }
      if (heap_[best] >= moved) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = moved;
  }
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id >> kSeqBits);
  const std::uint64_t seq = id & kSeqMask;
  if (index >= num_slots_) return false;
  Slot& slot = slot_ref(index);
  if (slot.state != (kLiveBit | seq)) return false;
  slot.callback.reset();
  slot.state = free_head_;  // the heap entry goes stale and is purged on pop
  free_head_ = index;
  --live_events_;
  if (++stale_entries_ > heap_.size() / 2 && heap_.size() > 64) compact_heap();
  return true;
}

bool Simulator::settle_top() {
  while (!heap_.empty() && !entry_live(heap_[0])) {
    heap_pop_min();  // lazily discard cancelled entries
    --stale_entries_;
  }
  return !heap_.empty();
}

bool Simulator::step() {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapKey top = heap_[0];
    const std::uint32_t index = key_slot(top);
    // Touch the slot before the sift-down so its cache fill overlaps the
    // heap work (pop_min never touches the slab).
    Slot& slot = slot_ref(index);
    const bool live = slot.state == (kLiveBit | key_seq(top));
    heap_pop_min();
    if (!live) {
      --stale_entries_;  // cancelled entry: discard and keep looking
      continue;
    }
    // Dead but not yet linked into the free list: cancel() on the fired id
    // now misses, while a callback that schedules new events can never be
    // handed the cell whose callable is still executing.
    slot.state = 0;
    --live_events_;
    now_ = key_time(top);
    ++executed_;
    slot.callback.fire();  // in place: chunk addresses are stable
    slot.state = free_head_;
    free_head_ = index;
    return true;
  }
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  while (settle_top() && key_time(heap_[0]) <= deadline) {
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period, Callback callback)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  arm(start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm(SimTime when) {
  pending_ = sim_.schedule_at(when, [this] {
    if (!running_) return;
    const SimTime fired_at = sim_.now();
    arm(fired_at + period_);
    callback_(fired_at);
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

}  // namespace vrc::sim
