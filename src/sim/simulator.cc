#include "sim/simulator.h"

#include <utility>

namespace vrc::sim {

EventId Simulator::schedule_at(SimTime when, Callback callback) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(callback));
  ++live_events_;
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Callback callback) {
  if (delay < 0.0) delay = 0.0;
  return schedule_at(now_ + delay, std::move(callback));
}

bool Simulator::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  return true;
}

bool Simulator::settle_top() {
  while (!queue_.empty() && callbacks_.find(queue_.top().id) == callbacks_.end()) {
    queue_.pop();  // lazily discard cancelled entries
  }
  return !queue_.empty();
}

bool Simulator::step() {
  if (!settle_top()) return false;
  Entry top = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(top.id);
  Callback callback = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  now_ = top.when;
  ++executed_;
  callback();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  while (settle_top() && queue_.top().when <= deadline) {
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period, Callback callback)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  arm(start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm(SimTime when) {
  pending_ = sim_.schedule_at(when, [this] {
    if (!running_) return;
    const SimTime fired_at = sim_.now();
    arm(fired_at + period_);
    callback_(fired_at);
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

}  // namespace vrc::sim
