// Streaming statistics used throughout metrics collection.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace vrc::sim {

/// Welford-style streaming mean/variance with min/max. O(1) space.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Population standard deviation (n denominator); the paper's "job balance
  /// skew" is a population stddev over the 32 workstations at an instant.
  double population_stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-merge formula).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal, e.g. "number of
/// active jobs" integrated over simulation time.
class TimeWeightedStats {
 public:
  /// Records that the signal held `value` starting at `time` until the next
  /// call. The first call only sets the starting point.
  void record(double time, double value);

  /// Closes the observation window at `time` and returns the time average.
  double average_until(double time) const;

  double last_value() const { return last_value_; }
  bool started() const { return started_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double start_time_ = 0.0;
};

/// Exact percentile over a stored sample set (linear interpolation between
/// order statistics). Used for slowdown distributions in reports.
class Percentiles {
 public:
  void add(double value) { values_.push_back(value); }
  std::size_t count() const { return values_.size(); }

  /// q in [0, 1]; returns 0 when empty. Sorts lazily.
  double quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are counted in
/// explicit underflow/overflow tallies rather than silently polluting the
/// edge bins. Used by workload characterization benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::size_t bin_count(std::size_t bin) const { return counts_[bin]; }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// All samples ever added, including out-of-range ones.
  std::size_t total() const { return total_; }
  /// Samples below lo / at or above hi; excluded from every bin count.
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// Samples that landed in a bin (total minus under/overflow).
  std::size_t in_range() const { return total_ - underflow_ - overflow_; }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace vrc::sim
