#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace vrc::sim {

void RunningStats::add(double value) {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_stddev() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStats::record(double time, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = time;
    last_time_ = time;
  } else if (time > last_time_) {
    weighted_sum_ += last_value_ * (time - last_time_);
    last_time_ = time;
  }
  // An out-of-order sample must not roll last_time_ backwards: doing so
  // would double-count [time, last_time_] on the next in-order record. The
  // late value is clamped to take effect at last_time_ instead.
  last_value_ = value;
}

double TimeWeightedStats::average_until(double time) const {
  if (!started_ || time <= start_time_) return 0.0;
  double total = weighted_sum_;
  if (time > last_time_) total += last_value_ * (time - last_time_);
  return total / (time - start_time_);
}

double Percentiles::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins) {}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  double pos = (value - lo_) / span * static_cast<double>(counts_.size());
  long bin = static_cast<long>(pos);
  // Rounding at the upper edge can still land one past the end.
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

}  // namespace vrc::sim
