#include "sim/rng.h"

#include <cmath>

namespace vrc::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box-Muller; draw u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) { return -std::log(1.0 - uniform()) / rate; }

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; fine for the large
    // fault-count regime where exact Knuth would loop too long.
    double sample = normal(mean, std::sqrt(mean)) + 0.5;
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample);
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace vrc::sim
