// Move-only callable with small-buffer optimization for simulator events.
//
// The DES hot path schedules millions of short-lived capturing lambdas
// (periodic-task re-arms, network completions, job arrivals). std::function
// heap-allocates once a capture outgrows its ~16-byte inline buffer; this
// type keeps callables up to kInlineCapacity (48) bytes inline in the event
// slab, so the common event kinds never touch the allocator. Larger or
// throwing-move callables transparently fall back to a heap box.
//
// Two hot-path shortcuts beyond a generic SBO function:
//  * trivially copyable callables (most capturing lambdas: pointers, ids,
//    doubles) relocate with an inline memcpy instead of an indirect call;
//  * fire() invokes and destroys through one fused indirect call, since an
//    event callback is always consumed exactly once.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace vrc::sim {

class EventCallback {
 public:
  /// Inline storage size. 48 bytes covers every callback the engine
  /// schedules today (largest: a lambda capturing a std::function plus ids,
  /// ~40 bytes on libstdc++) with headroom, while keeping the simulator's
  /// event slot at exactly one 64-byte cache line.
  static constexpr std::size_t kInlineCapacity = 48;

  /// Inline storage alignment. 8 (not alignof(max_align_t)) keeps
  /// sizeof(EventCallback) at 56; the rare callable with stricter alignment
  /// (vector registers, long double) takes the heap-box path.
  static constexpr std::size_t kInlineAlignment = alignof(void*);

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(fn));
  }

  EventCallback(EventCallback&& other) noexcept { steal(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  /// Replaces the stored callable (destroying any previous one) by
  /// constructing the new one directly in place — no intermediate moves.
  template <typename F>
  void emplace(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (stored_inline<F>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      static constexpr Ops ops = {
          [](void* storage) {
            Fn* fn_ptr = std::launder(reinterpret_cast<Fn*>(storage));
            (*fn_ptr)();
            fn_ptr->~Fn();
          },
          [](void* from, void* to) {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from));
            ::new (to) Fn(std::move(*src));
            src->~Fn();
          },
          [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
          std::is_trivially_copyable_v<Fn>};
      ops_ = &ops;
    } else {
      using FnPtr = Fn*;
      ::new (static_cast<void*>(storage_)) FnPtr(new Fn(std::forward<F>(fn)));
      static constexpr Ops ops = {
          [](void* storage) {
            FnPtr* box = std::launder(reinterpret_cast<FnPtr*>(storage));
            Fn* fn_ptr = *box;
            (*fn_ptr)();
            delete fn_ptr;
            box->~FnPtr();
          },
          [](void* from, void* to) {
            FnPtr* src = std::launder(reinterpret_cast<FnPtr*>(from));
            ::new (to) FnPtr(*src);
            src->~FnPtr();
          },
          [](void* storage) {
            FnPtr* box = std::launder(reinterpret_cast<FnPtr*>(storage));
            delete *box;
            box->~FnPtr();
          },
          true};  // a raw pointer relocates by memcpy
      ops_ = &ops;
    }
  }

  /// Invokes the stored callable and destroys it, leaving this empty — one
  /// indirect call for both. Undefined if empty().
  void fire() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->fire(storage_);
  }

  bool empty() const noexcept { return ops_ == nullptr; }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored callable, leaving this empty. Idempotent.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type F would be stored inline (no allocation).
  template <typename F>
  static constexpr bool stored_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= kInlineAlignment &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    /// Invokes then destroys the callable (events fire exactly once).
    void (*fire)(void* storage);
    /// Move-constructs the callable at `to` from `from` and destroys `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
    /// Trivially copyable payload: relocation is a plain memcpy.
    bool trivial = false;
  };

  void steal(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlignment) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(EventCallback) == EventCallback::kInlineCapacity + sizeof(void*),
              "EventCallback must stay at 56 bytes so a simulator event slot "
              "fits one cache line");

}  // namespace vrc::sim
