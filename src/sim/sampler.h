// Periodic signal sampling with configurable interval.
//
// The paper samples cluster-wide idle memory and per-node active-job counts
// every second (and verifies the averages are insensitive to 10 s / 30 s /
// 60 s intervals); IntervalSampler is the reusable piece behind both.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "sim/stats.h"

namespace vrc::sim {

/// Samples `probe()` every `interval` simulated seconds and accumulates the
/// values in a RunningStats. The first sample fires at `start`.
class IntervalSampler {
 public:
  using Probe = std::function<double(SimTime)>;

  IntervalSampler(Simulator& sim, SimTime start, SimTime interval, Probe probe);

  void stop() { task_.stop(); }

  const RunningStats& stats() const { return stats_; }
  SimTime interval() const { return task_.period(); }

 private:
  Probe probe_;
  RunningStats stats_;
  PeriodicTask task_;
};

}  // namespace vrc::sim
