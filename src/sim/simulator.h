// Discrete-event simulation core.
//
// The Simulator owns a priority queue of timestamped callbacks. Components
// (workstations, load-information exchangers, samplers, the trace replayer)
// schedule events against it; the run loop pops events in (time, insertion
// order) and executes them. Cancellation is supported through lazy deletion
// so a node can retract its pending tick when it goes idle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace vrc::sim {

/// Handle for a scheduled event; used to cancel it before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Event-driven simulation executive.
///
/// Time is double seconds starting at 0. Events scheduled at equal times fire
/// in insertion order (FIFO), which keeps runs deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (the timestamp of the event being executed, or
  /// of the last executed event between runs).
  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `when`. `when` must be >= now();
  /// an earlier time is clamped to now() (fires next).
  EventId schedule_at(SimTime when, Callback callback);

  /// Schedules `callback` after a relative delay (>= 0).
  EventId schedule_after(SimTime delay, Callback callback);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or invalid id is a no-op.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with time <= `deadline`; after returning, now() == deadline
  /// if the simulation reached it. Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Executes exactly one event if available. Returns false if the queue is
  /// empty (after purging cancelled entries).
  bool step();

  /// True when no live events remain.
  bool empty() const { return live_events_ == 0; }

  /// Number of live (non-cancelled, unfired) events.
  std::uint64_t pending_events() const { return live_events_; }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // Ordering for the min-heap (std::priority_queue is a max-heap, so the
    // comparison is reversed).
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Pops entries until the top is live; returns false when drained.
  bool settle_top();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t live_events_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry> queue_;
  // id -> callback for live events; absence means cancelled.
  std::unordered_map<EventId, Callback> callbacks_;
};

/// Repeating task helper: fires `callback(now)` every `period` seconds
/// starting at `start`, until stopped or the simulator drains. Useful for
/// load-information exchange and metric sampling.
class PeriodicTask {
 public:
  using Callback = std::function<void(SimTime)>;

  PeriodicTask(Simulator& sim, SimTime start, SimTime period, Callback callback);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops future firings. Idempotent.
  void stop();

  bool running() const { return running_; }
  SimTime period() const { return period_; }

 private:
  void arm(SimTime when);

  Simulator& sim_;
  SimTime period_;
  Callback callback_;
  EventId pending_ = kInvalidEventId;
  bool running_ = true;
};

}  // namespace vrc::sim
