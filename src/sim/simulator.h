// Discrete-event simulation core.
//
// The Simulator owns a hand-rolled 4-ary min-heap of timestamped events whose
// payloads live in a chunked slab with a free-list. Components (workstations,
// load-information exchangers, samplers, the trace replayer) schedule events
// against it; the run loop pops events in (time, insertion order) and
// executes them. EventIds are sequence-tagged slot references, so cancel()
// is an O(1) slot check — no hashing, no tombstone buildup in a side table.
// See DESIGN.md "Engine internals & performance envelope" for the layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/event_callback.h"
#include "util/units.h"

namespace vrc::sim {

/// Handle for a scheduled event; used to cancel it before it fires.
/// Encodes (slot index << 40 | sequence number); sequence numbers start at 1
/// and are unique per event, so the id is never 0 and a stale handle can
/// never alias a later event.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Event-driven simulation executive.
///
/// Time is double seconds starting at 0. Events scheduled at equal times fire
/// in insertion order (FIFO), which keeps runs deterministic.
class Simulator {
 public:
  using Callback = EventCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (the timestamp of the event being executed, or
  /// of the last executed event between runs).
  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `when`. `when` must be >= now();
  /// an earlier time is clamped to now() (fires next). The callable is
  /// constructed directly inside the event slab (no intermediate moves).
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(SimTime when, F&& callback) {
    const std::uint32_t index = alloc_slot();
    Slot& slot = slot_ref(index);
    slot.callback.emplace(std::forward<F>(callback));
    return commit_event(when, index, slot);
  }

  /// Schedules `callback` after a relative delay (>= 0).
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_after(SimTime delay, F&& callback) {
    if (delay < 0.0) delay = 0.0;
    return schedule_at(now_ + delay, std::forward<F>(callback));
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or invalid id is a no-op.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with time <= `deadline`; after returning, now() == deadline
  /// if the simulation reached it. Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Executes exactly one event if available. Returns false if the queue is
  /// empty (after purging cancelled entries).
  bool step();

  /// True when no live events remain.
  bool empty() const { return live_events_ == 0; }

  /// Number of live (non-cancelled, unfired) events.
  std::uint64_t pending_events() const { return live_events_; }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  /// EventId / heap-key bit budget: 24 bits of slot index (16.7M concurrent
  /// events, ~1 GiB of slab) and 40 bits of sequence number (1.1e12 events
  /// per run before wrap — about five orders of magnitude beyond the largest
  /// experiment sweep).
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSeqBits = 40;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Set in Slot::state while the slot holds a pending event.
  static constexpr std::uint64_t kLiveBit = std::uint64_t{1} << 63;
  /// Slots per slab chunk (16 KiB chunks). Chunking keeps slot addresses
  /// stable across growth, which is what lets step() fire callbacks in place
  /// instead of moving them out first.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// Slab cell holding a pending event's payload. `state` doubles as the
  /// liveness tag and the free-list link: (kLiveBit | seq) while the slot
  /// holds the pending event with that sequence number, the next free slot
  /// index (or kNilSlot) while free. One 64-bit compare validates an
  /// EventId or heap entry.
  struct Slot {
    EventCallback callback;
    std::uint64_t state = kNilSlot;
  };
  static_assert(sizeof(Slot) == 64, "event slot must stay one cache line");

  /// Heap key: (when, seq, slot) packed into one 128-bit integer, so a heap
  /// entry IS its key — 16 bytes moved per sift level and a single
  /// branchless comparison. Simulation time is always >= 0, so the IEEE-754
  /// bit pattern of `when` is monotone in its value and can be compared as
  /// an unsigned integer. The sequence number gives equal-time events FIFO
  /// order; the slot index sits below it and never affects ordering because
  /// sequence numbers are unique.
  using HeapKey = unsigned __int128;

  static HeapKey make_key(SimTime when, std::uint64_t seq, std::uint32_t slot) {
    std::uint64_t when_bits = 0;
    static_assert(sizeof(when_bits) == sizeof(when));
    std::memcpy(&when_bits, &when, sizeof(when_bits));
    return (static_cast<HeapKey>(when_bits) << 64) | (seq << kSlotBits) | slot;
  }

  static SimTime key_time(HeapKey key) {
    const std::uint64_t when_bits = static_cast<std::uint64_t>(key >> 64);
    SimTime when = 0.0;
    std::memcpy(&when, &when_bits, sizeof(when));
    return when;
  }

  static std::uint32_t key_slot(HeapKey key) {
    return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
  }

  static std::uint64_t key_seq(HeapKey key) {
    return (static_cast<std::uint64_t>(key) >> kSlotBits) & kSeqMask;
  }

  static EventId make_id(std::uint32_t slot, std::uint64_t seq) {
    return (static_cast<EventId>(slot) << kSeqBits) | seq;
  }

  Slot& slot_ref(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot_ref(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  bool entry_live(HeapKey entry) const {
    return slot_ref(key_slot(entry)).state == (kLiveBit | key_seq(entry));
  }

  /// Pops a free slot (or grows the slab). The caller installs the callback
  /// and then commits, which stamps the live state.
  std::uint32_t alloc_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t index = free_head_;
      free_head_ = static_cast<std::uint32_t>(slot_ref(index).state);
      return index;
    }
    return alloc_slot_slow();
  }

  /// Cold path of alloc_slot: appends a chunk if needed.
  std::uint32_t alloc_slot_slow();

  /// Clamps `when`, stamps the slot live, pushes the heap entry, and returns
  /// the event id. The slot must already hold the callback.
  EventId commit_event(SimTime when, std::uint32_t index, Slot& slot);

  void heap_push(HeapKey entry);
  void heap_pop_min();
  /// Filters stale entries out of the heap and re-heapifies in O(n).
  void compact_heap();

  /// Pops stale (cancelled) entries until the top is live; returns false
  /// when the heap drains.
  bool settle_top();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;  // 0 is reserved so make_id never returns 0
  std::uint64_t live_events_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapKey> heap_;      // 4-ary min-heap over (when, seq)
  std::size_t stale_entries_ = 0;  // cancelled events still occupying heap entries
  std::vector<std::unique_ptr<Slot[]>> chunks_;  // slab: stable 16 KiB chunks
  std::uint32_t num_slots_ = 0;
  std::uint32_t free_head_ = kNilSlot;
};

/// Repeating task helper: fires `callback(now)` every `period` seconds
/// starting at `start`, until stopped or the simulator drains. Useful for
/// load-information exchange and metric sampling.
class PeriodicTask {
 public:
  using Callback = std::function<void(SimTime)>;

  PeriodicTask(Simulator& sim, SimTime start, SimTime period, Callback callback);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops future firings. Idempotent.
  void stop();

  bool running() const { return running_; }
  SimTime period() const { return period_; }

 private:
  void arm(SimTime when);

  Simulator& sim_;
  SimTime period_ = 0.0;
  Callback callback_;
  EventId pending_ = kInvalidEventId;
  bool running_ = true;
};

}  // namespace vrc::sim
