// Common scalar unit helpers shared across the library.
//
// All simulation times are double seconds, all memory quantities are
// int64 bytes. The helpers below exist so call sites read in the units the
// paper uses (megabytes, milliseconds, Mbps) without ad-hoc arithmetic.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace vrc {

/// Simulation time in seconds.
using SimTime = double;

/// Memory quantity in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Converts mebibytes to bytes.
constexpr Bytes megabytes(double mb) { return static_cast<Bytes>(mb * static_cast<double>(kMiB)); }

/// Converts bytes to mebibytes (for reporting).
constexpr double to_megabytes(Bytes b) {
  return static_cast<double>(b) / static_cast<double>(kMiB);
}

/// Converts milliseconds to seconds.
constexpr SimTime milliseconds(double ms) { return ms / 1000.0; }

/// Converts a megabit-per-second link speed to bytes per second.
constexpr double mbps_to_bytes_per_sec(double mbps) { return mbps * 1e6 / 8.0; }

namespace units_detail {

/// Parses the leading number of `text`; on success stores the value and the
/// remainder (the unit suffix, leading spaces stripped).
inline bool split_number(const std::string& text, double* value, std::string* suffix) {
  if (text.empty()) return false;
  const char* begin = text.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end == begin) return false;  // no digits at all
  while (*end == ' ') ++end;
  *value = parsed;
  *suffix = std::string(end);
  return true;
}

}  // namespace units_detail

/// Parses a memory quantity with an optional unit suffix: "384MB", "4KB",
/// "1.5GB", "128MiB", "65536" (plain bytes), "512B". Decimal and binary
/// suffixes are synonyms (the codebase measures memory in binary units, per
/// megabytes()). Returns false on malformed input or unknown suffixes;
/// negative quantities are rejected.
inline bool parse_bytes(const std::string& text, Bytes* out) {
  double value = 0.0;
  std::string suffix;
  if (!units_detail::split_number(text, &value, &suffix)) return false;
  if (value < 0.0) return false;
  double scale = 1.0;
  if (suffix.empty() || suffix == "B") {
    scale = 1.0;
  } else if (suffix == "KB" || suffix == "KiB" || suffix == "kB") {
    scale = static_cast<double>(kKiB);
  } else if (suffix == "MB" || suffix == "MiB") {
    scale = static_cast<double>(kMiB);
  } else if (suffix == "GB" || suffix == "GiB") {
    scale = static_cast<double>(kGiB);
  } else {
    return false;
  }
  *out = static_cast<Bytes>(value * scale);
  return true;
}

/// Parses a time quantity with an optional unit suffix: "10ms", "0.5s",
/// "2min", "250us", "1.5" (plain seconds). Returns false on malformed input
/// or unknown suffixes; negative durations are rejected.
inline bool parse_duration(const std::string& text, SimTime* out) {
  double value = 0.0;
  std::string suffix;
  if (!units_detail::split_number(text, &value, &suffix)) return false;
  if (value < 0.0) return false;
  double scale = 1.0;
  if (suffix.empty() || suffix == "s" || suffix == "sec") {
    scale = 1.0;
  } else if (suffix == "ms") {
    scale = 1e-3;
  } else if (suffix == "us") {
    scale = 1e-6;
  } else if (suffix == "min" || suffix == "m") {
    scale = 60.0;
  } else if (suffix == "h") {
    scale = 3600.0;
  } else {
    return false;
  }
  *out = value * scale;
  return true;
}

}  // namespace vrc
