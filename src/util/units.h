// Common scalar unit helpers shared across the library.
//
// All simulation times are double seconds, all memory quantities are
// int64 bytes. The helpers below exist so call sites read in the units the
// paper uses (megabytes, milliseconds, Mbps) without ad-hoc arithmetic.
#pragma once

#include <cstdint>

namespace vrc {

/// Simulation time in seconds.
using SimTime = double;

/// Memory quantity in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Converts mebibytes to bytes.
constexpr Bytes megabytes(double mb) { return static_cast<Bytes>(mb * static_cast<double>(kMiB)); }

/// Converts bytes to mebibytes (for reporting).
constexpr double to_megabytes(Bytes b) {
  return static_cast<double>(b) / static_cast<double>(kMiB);
}

/// Converts milliseconds to seconds.
constexpr SimTime milliseconds(double ms) { return ms / 1000.0; }

/// Converts a megabit-per-second link speed to bytes per second.
constexpr double mbps_to_bytes_per_sec(double mbps) { return mbps * 1e6 / 8.0; }

}  // namespace vrc
