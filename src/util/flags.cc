#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace vrc::util {

namespace {

bool parse_int64(const std::string& text, long long* out) {
  try {
    size_t pos = 0;
    long long v = std::stoll(text, &pos);
    if (pos != text.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& text, double* out) {
  try {
    size_t pos = 0;
    double v = std::stod(text, &pos);
    if (pos != text.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

void FlagSet::add(const std::string& name, Flag flag) {
  if (!flags_.emplace(name, std::move(flag)).second) {
    std::fprintf(stderr, "duplicate flag registration: --%s\n", name.c_str());
    std::abort();
  }
}

void FlagSet::add_int(const std::string& name, int* target, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.set = [target](const std::string& v) {
    long long tmp = 0;
    if (!parse_int64(v, &tmp)) return false;
    *target = static_cast<int>(tmp);
    return true;
  };
  f.default_value = [target] { return std::to_string(*target); };
  add(name, std::move(f));
}

void FlagSet::add_int64(const std::string& name, long long* target, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.set = [target](const std::string& v) { return parse_int64(v, target); };
  f.default_value = [target] { return std::to_string(*target); };
  add(name, std::move(f));
}

void FlagSet::add_double(const std::string& name, double* target, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.set = [target](const std::string& v) { return parse_double(v, target); };
  f.default_value = [target] { return std::to_string(*target); };
  add(name, std::move(f));
}

void FlagSet::add_bool(const std::string& name, bool* target, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.is_bool = true;
  f.set = [target](const std::string& v) {
    if (v == "" || v == "true" || v == "1") {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      return false;
    }
    return true;
  };
  f.default_value = [target] { return *target ? "true" : "false"; };
  add(name, std::move(f));
}

void FlagSet::add_string(const std::string& name, std::string* target, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.set = [target](const std::string& v) {
    *target = v;
    return true;
  };
  f.default_value = [target] { return *target; };
  add(name, std::move(f));
}

bool FlagSet::parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    std::string name = body;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(), usage(argv[0]).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!has_value && !flag.is_bool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!flag.set(value)) {
      std::fprintf(stderr, "invalid value for --%s: '%s'\n", name.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  (default: " << flag.default_value() << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace vrc::util
