#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vrc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    std::fprintf(stderr, "Table::add_row: row has %zu cells, header has %zu\n", row.size(),
                 header_.size());
    std::abort();
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ') << ' ';
    }
    os << "|\n";
    return os.str();
  };
  auto rule = [&] {
    std::ostringstream os;
    for (size_t c = 0; c < widths.size(); ++c) os << '+' << std::string(widths[c] + 2, '-');
    os << "+\n";
    return os.str();
  };

  std::ostringstream os;
  os << rule() << render_row(header_) << rule();
  for (const auto& row : rows_) os << render_row(row);
  os << rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) os << (c ? "," : "") << escape(header_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << escape(row[c]);
    os << '\n';
  }
  return os.str();
}

}  // namespace vrc::util
