// Minimal command-line flag parser for bench/example binaries.
//
// Usage:
//   vrc::util::FlagSet flags;
//   int trace = 3;
//   bool verbose = false;
//   flags.add_int("trace", &trace, "trace index 1..5");
//   flags.add_bool("verbose", &verbose, "print per-job details");
//   flags.parse(argc, argv);   // accepts --trace=4, --trace 4, --verbose
//
// Unknown flags are a hard error (they indicate a typo in an experiment
// sweep); positional arguments are collected and available via positional().
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vrc::util {

/// A registry of typed command-line flags with GNU-style "--name[=value]"
/// syntax. Not thread safe; intended for use once at program startup.
class FlagSet {
 public:
  void add_int(const std::string& name, int* target, std::string help);
  void add_int64(const std::string& name, long long* target, std::string help);
  void add_double(const std::string& name, double* target, std::string help);
  void add_bool(const std::string& name, bool* target, std::string help);
  void add_string(const std::string& name, std::string* target, std::string help);

  /// Parses argv. Returns true on success; on failure prints a diagnostic and
  /// usage to stderr and returns false. "--help" prints usage and returns
  /// false without an error diagnostic.
  bool parse(int argc, const char* const* argv);

  /// Arguments that were not flags, in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage/help text.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    bool is_bool = false;
    std::function<bool(const std::string&)> set;  // returns false on parse error
    std::function<std::string()> default_value;
  };

  void add(const std::string& name, Flag flag);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace vrc::util
