// Lightweight leveled logging used by the simulator for event tracing.
//
// Logging defaults to kWarn so simulations are silent; examples raise the
// level to narrate scheduler decisions (blocking detection, reservations,
// migrations) on a timeline.
#pragma once

#include <sstream>
#include <string>

namespace vrc::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` is at or above the global level.
void log_line(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vrc::util

#define VRC_LOG(level) ::vrc::util::internal::LogMessage(::vrc::util::LogLevel::level)
