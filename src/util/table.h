// Fixed-width ASCII table and CSV rendering for bench/report output.
//
// The bench binaries print the same rows/series the paper's tables and
// figures report; Table keeps that output aligned and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace vrc::util {

/// Builds a rectangular table of strings and renders it either as an aligned
/// ASCII table (for terminals) or as CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; the row is padded or a hard error (abort) if it has more
  /// cells than the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string fmt(double value, int precision = 2);

  /// Convenience: formats a percentage "12.3%".
  static std::string pct(double fraction, int precision = 1);

  std::string to_ascii() const;
  std::string to_csv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vrc::util
