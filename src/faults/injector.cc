#include "faults/injector.h"

#include "cluster/cluster.h"

namespace vrc::faults {

FaultInjector::FaultInjector(sim::Simulator& sim, cluster::Cluster& cluster,
                             const FaultPlan& plan)
    : sim_(sim) {
  events_.reserve(plan.windows().size() * 2);
  for (const FaultEntry& window : plan.windows()) {
    events_.push_back(sim_.schedule_at(
        window.at, [&cluster, node = window.node] { cluster.fail_node(node); }));
    events_.push_back(sim_.schedule_at(window.at + window.duration, [&cluster, node = window.node] {
      cluster.recover_node(node);
    }));
  }
}

FaultInjector::~FaultInjector() {
  for (const sim::EventId id : events_) sim_.cancel(id);
}

}  // namespace vrc::faults
