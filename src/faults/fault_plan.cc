#include "faults/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "sim/rng.h"

namespace vrc::faults {

namespace {

/// Mixes the cluster seed into a distinct stream id for the fault schedule,
/// so faults and workload randomness never share a stream even when
/// fault_seed is left at its derive-from-seed default.
constexpr std::uint64_t kFaultStreamSalt = 0xFA17FA17FA17FA17ULL;

bool windows_overlap(const FaultEntry& a, const FaultEntry& b) {
  return a.node == b.node && a.at < b.at + b.duration && b.at < a.at + a.duration;
}

}  // namespace

bool FaultPlan::validate(const std::vector<FaultEntry>& entries, std::size_t num_nodes,
                         std::string* error) {
  for (const FaultEntry& entry : entries) {
    std::ostringstream message;
    if (static_cast<std::size_t>(entry.node) >= num_nodes) {
      message << "fault: node " << entry.node << " out of range (cluster has " << num_nodes
              << " nodes)";
    } else if (entry.at < 0.0) {
      message << "fault: node " << entry.node << " crash time " << entry.at
              << " must be >= 0";
    } else if (entry.duration <= 0.0) {
      message << "fault: node " << entry.node << " duration " << entry.duration
              << " must be > 0";
    } else {
      continue;
    }
    if (error != nullptr) *error = message.str();
    return false;
  }
  // Overlap check per node among the explicit windows: two overlapping
  // scenario entries are almost certainly a typo, so reject instead of
  // silently merging.
  std::vector<FaultEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(), [](const FaultEntry& a, const FaultEntry& b) {
    return a.node != b.node ? a.node < b.node : a.at < b.at;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (windows_overlap(sorted[i - 1], sorted[i])) {
      if (error != nullptr) {
        std::ostringstream message;
        message << "fault: node " << sorted[i].node << " windows at t=" << sorted[i - 1].at
                << " and t=" << sorted[i].at << " overlap";
        *error = message.str();
      }
      return false;
    }
  }
  return true;
}

FaultPlan FaultPlan::materialize(const std::vector<FaultEntry>& entries,
                                 const cluster::ClusterConfig& config, SimTime horizon) {
  FaultPlan plan;
  plan.windows_ = entries;

  if (config.fault_mtbf > 0.0 && horizon > 0.0) {
    const std::uint64_t seed =
        config.fault_seed != 0 ? config.fault_seed : config.seed ^ kFaultStreamSalt;
    sim::Rng root(seed);
    for (std::size_t i = 0; i < config.num_nodes(); ++i) {
      sim::Rng stream = root.fork();
      SimTime t = 0.0;
      while (true) {
        t += stream.exponential(1.0 / config.fault_mtbf);
        if (t >= horizon) break;
        const SimTime repair = stream.exponential(1.0 / config.fault_mttr);
        plan.windows_.push_back({static_cast<NodeId>(i), t, repair});
        t += repair;
      }
    }
  }

  std::sort(plan.windows_.begin(), plan.windows_.end(),
            [](const FaultEntry& a, const FaultEntry& b) {
              return a.node != b.node ? a.node < b.node : a.at < b.at;
            });
  // Merge overlapping/touching windows per node (an explicit entry may land
  // inside a generated outage): the node is simply down for the union.
  std::vector<FaultEntry> merged;
  merged.reserve(plan.windows_.size());
  for (const FaultEntry& window : plan.windows_) {
    if (!merged.empty() && merged.back().node == window.node &&
        window.at <= merged.back().at + merged.back().duration) {
      const SimTime end =
          std::max(merged.back().at + merged.back().duration, window.at + window.duration);
      merged.back().duration = end - merged.back().at;
    } else {
      merged.push_back(window);
    }
  }
  plan.windows_ = std::move(merged);
  return plan;
}

}  // namespace vrc::faults
