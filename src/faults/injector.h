// Fault injector: drives a Cluster through a FaultPlan.
//
// Pure event plumbing — the state transitions (killing jobs, dropping
// reservations, board updates) live in Cluster::fail_node / recover_node.
// Construct one next to the Cluster before running the simulator; runs
// without faults simply never construct an injector, which keeps the
// no-faults event stream bit-identical to builds predating this subsystem.
#pragma once

#include <vector>

#include "faults/fault_plan.h"
#include "sim/simulator.h"

namespace vrc::cluster {
class Cluster;
}

namespace vrc::faults {

/// Schedules one fail event at each window start and one recover event at its
/// end. Owns its events and cancels them on destruction, so tearing down an
/// injector mid-run never leaves a callback aimed at a dead cluster.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, cluster::Cluster& cluster, const FaultPlan& plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  std::size_t windows_scheduled() const { return events_.size() / 2; }

 private:
  sim::Simulator& sim_;
  std::vector<sim::EventId> events_;
};

}  // namespace vrc::faults
