// Failure schedule of one simulation run.
//
// A FaultPlan is the concrete, fully deterministic list of per-node failure
// windows a run will experience: explicit scenario entries ("crash node 2 at
// t=100 for 60 s") plus windows drawn from a seeded per-node exponential
// MTBF/MTTR generator. The generator uses its own RNG stream, independent of
// the workload and paging randomness, so matched-pairs policy comparisons see
// identical failure schedules (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "util/units.h"
#include "workload/job.h"

namespace vrc::faults {

using workload::NodeId;

/// One failure window: `node` is down during [at, at + duration).
struct FaultEntry {
  NodeId node = 0;
  SimTime at = 0.0;
  SimTime duration = 0.0;

  bool operator==(const FaultEntry&) const = default;
};

/// The materialized failure schedule: per-node sorted, non-overlapping
/// windows. Empty plan == no faults (a run with an empty plan is bit-identical
/// to one without any fault machinery).
class FaultPlan {
 public:
  /// Checks explicit entries against a cluster of `num_nodes` workstations:
  /// node index in range, at >= 0, duration > 0, and no two windows on the
  /// same node overlapping. On failure writes a precise message to `error`.
  static bool validate(const std::vector<FaultEntry>& entries, std::size_t num_nodes,
                       std::string* error = nullptr);

  /// Builds the schedule: `entries` plus, when config.fault_mtbf > 0, per-node
  /// exponential up/down windows over [0, horizon). The generator stream is
  /// seeded from config.fault_seed (or derived from config.seed when 0) and
  /// forked once per node in node order, so one node's schedule does not
  /// perturb another's. Overlapping or touching windows on a node are merged.
  static FaultPlan materialize(const std::vector<FaultEntry>& entries,
                               const cluster::ClusterConfig& config, SimTime horizon);

  const std::vector<FaultEntry>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

 private:
  std::vector<FaultEntry> windows_;
};

}  // namespace vrc::faults
