// Declarative experiment scenarios.
//
// A ScenarioSpec is everything one sweep needs — traces, policies, cluster,
// config overrides, trial count — as plain data, so any experiment the bench
// binaries hard-coded in C++ is expressible from command-line flags or a
// checked-in spec file:
//
//   trace spec:trace=3            # the paper's SPEC-Trace-3
//   policy g-loadsharing
//   policy v-reconf:early_release=0
//   nodes 8
//   set memory_threshold=0.9
//   fault crash node=2 at=100 for=60
//   trials 3
//
//   auto spec = runner::ScenarioSpec::load("paper_cluster1.scn", &error);
//   auto run = runner::run_scenario(*spec, /*jobs=*/0, &error);
//
// Determinism contract: a scenario naming today's defaults (standard trace,
// default-param policies, trials=1, no overrides) produces byte-identical
// reports to the legacy enum-based SweepGrid path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "faults/fault_plan.h"
#include "runner/sweep_runner.h"
#include "workload/trace_spec.h"

namespace vrc::runner {

/// One complete declarative experiment.
struct ScenarioSpec {
  std::vector<workload::TraceSpec> traces;
  std::vector<core::PolicySpec> policies;
  /// "auto" (the paper testbed matching the traces' workload group),
  /// "paper1", or "paper2".
  std::string cluster = "auto";
  /// Workstations in the cluster; also the default node count traces are
  /// generated for (a trace's own nodes= override wins).
  std::size_t nodes = 32;
  /// cluster::ClusterConfig::apply_overrides key/value pairs, applied after
  /// the base cluster is built (DESIGN.md §9 lists the keys).
  std::map<std::string, std::string> config_overrides;
  /// Explicit failure windows (`fault crash node=K at=T for=D` directives),
  /// applied identically to every cell; the stochastic generator is
  /// configured separately via `set fault.mtbf=...` (DESIGN.md §10).
  std::vector<faults::FaultEntry> faults;
  /// Streaming mode (`stream on`): every cell pumps its workload through a
  /// pull-based ArrivalSource (Cluster::submit_source) instead of
  /// materializing the whole trace up front. Generated workloads produce
  /// fingerprint-identical results either way (the streamed source replays
  /// the identical RNG stream); memory stays O(concurrent jobs) per cell.
  bool stream = false;
  /// Malleable mode (`malleable on`): every generated trace that does not
  /// carry its own malleable= fraction is built with malleable jobs
  /// (fraction 1, widths [1, 2]) so the width-reconfiguration levers have
  /// material to act on. Off (the default) leaves every trace exactly as
  /// written — a scenario without malleable jobs stays bit-identical to
  /// pre-malleability builds. Resize costs are tuned separately via
  /// `set resize.fixed_cost=... / resize.per_slot_cost=...` (DESIGN.md §15).
  bool malleable = false;
  /// Independent repetitions. Trial 0 runs each trace exactly as specified;
  /// trial t > 0 regenerates it with its effective seed shifted by t.
  int trials = 1;
  /// Folded into each cell's cluster seed via derive_seed (matched pairs:
  /// policies of the same (trial, trace) share stochastic conditions).
  std::uint64_t base_seed = 0;
  /// Idle-memory / balance-skew sampling interval in seconds.
  double sampling_interval = 1.0;
  /// Safety cap on simulated time per cell.
  double max_sim_time = 500000.0;

  bool operator==(const ScenarioSpec&) const = default;

  /// True when any cell of this scenario can contain malleable jobs (the
  /// `malleable on` directive, or a trace with an explicit malleable=
  /// fraction). Drivers use it to decide whether to print resize columns.
  bool malleable_configured() const;

  /// Applies one spec-file directive ("policy v-reconf:early_release=0",
  /// "set memory_threshold=0.9", ...). Comments (#) and blank lines are
  /// no-ops. Returns false + *error on an unknown directive or bad value.
  bool apply_line(const std::string& line, std::string* error = nullptr);

  /// Structural checks (non-empty axes, positive counts). Policy/override
  /// values are validated against the registry/config when the scenario is
  /// materialized by to_grid().
  bool validate(std::string* error = nullptr) const;

  /// Parses a whole spec file body (one directive per line). Errors are
  /// prefixed with the 1-based line number.
  static std::optional<ScenarioSpec> parse(const std::string& text,
                                           std::string* error = nullptr);

  /// Reads `path` and parses it. Errors are prefixed with the path.
  static std::optional<ScenarioSpec> load(const std::string& path,
                                          std::string* error = nullptr);
};

/// A completed scenario. Cells are indexed (trial, trace, policy); the
/// flat `cells` vector is the SweepRunner grid order (trial-major trace
/// axis, policy fastest).
struct ScenarioRun {
  int num_trials = 0;
  std::size_t num_traces = 0;
  std::size_t num_policies = 0;
  std::vector<CellResult> cells;

  const CellResult& cell(int trial, std::size_t trace, std::size_t policy) const;
};

/// Materializes the scenario into a SweepGrid: builds every trace (trial
/// expansion on the trace axis), resolves the cluster, applies config
/// overrides, and validates every policy spec against the registry. Returns
/// std::nullopt + *error on any invalid piece — nothing throws, so drivers
/// can report the message and exit cleanly.
std::optional<SweepGrid> to_grid(const ScenarioSpec& spec, std::string* error = nullptr);

/// to_grid + SweepRunner::run on `jobs` workers (0 = one per hardware
/// thread).
std::optional<ScenarioRun> run_scenario(const ScenarioSpec& spec, int jobs = 0,
                                        std::string* error = nullptr);

}  // namespace vrc::runner
