// Parallel multi-trial experiment runner.
//
// A SweepRunner fans a grid of (trace x cluster config x policy) cells out
// across a fixed-size thread pool. Each cell runs a fully isolated
// sim::Simulator / cluster::Cluster / policy instance (the simulation stack
// is share-nothing per run), with its RNG seed derived deterministically
// from the sweep's base seed and the cell's grid coordinates — results are
// bit-identical regardless of thread count or completion order:
//
//   runner::SweepGrid grid;
//   grid.traces = {trace1, trace2};
//   grid.configs = {cluster::ClusterConfig::paper_cluster1()};
//   grid.policies = {core::PolicySpec("g-loadsharing"),
//                    core::PolicySpec::parse("v-reconf:early_release=0").value()};
//   runner::SweepRunner runner(/*jobs=*/0);  // 0: one per hardware thread
//   std::vector<runner::CellResult> cells = runner.run(grid);
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/experiment.h"
#include "metrics/report.h"
#include "runner/thread_pool.h"
#include "sim/stats.h"
#include "workload/trace.h"
#include "workload/trace_spec.h"

namespace vrc::runner {

/// The splitmix64 mixing function (Steele, Lea & Flood) — the same finalizer
/// sim::Rng seeds through. Used to derive independent per-cell seeds.
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic per-cell seed: depends only on (base_seed, cell_key), never
/// on thread count or completion order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_key);

/// One workload axis entry: either a materialized Trace (the classic path —
/// the implicit constructor keeps `grid.traces = {trace1, trace2}` call
/// sites working) or a streaming TraceSpec. Streaming entries build a fresh
/// ArrivalSource per cell (sources are stateful single-pass iterators, so
/// cells on different workers cannot share one) and run through
/// core::run_policy_on_source — live JobSpec storage stays O(concurrent
/// jobs) per cell instead of O(trace length) (DESIGN.md §14).
struct SweepTrace {
  workload::Trace trace;                    // used when !stream
  std::optional<workload::TraceSpec> spec;  // recipe for per-cell sources
  bool stream = false;
  std::uint32_t default_nodes = 32;  // node range handed to make_source

  SweepTrace() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Trace -> SweepTrace compat
  SweepTrace(workload::Trace materialized) : trace(std::move(materialized)) {}

  /// Streaming entry: the trace is built per cell from `spec`.
  static SweepTrace streaming(workload::TraceSpec spec, std::uint32_t default_nodes);

  /// Workload label for reports (the trace's name on both paths).
  std::string name() const;
};

/// The cross product a sweep evaluates. Cells are enumerated row-major as
/// (trace, config, policy), policy fastest. Policies are registry specs
/// (core::PolicySpec), so any registered policy with any param overrides can
/// ride a sweep; core::to_spec() converts a legacy PolicyKind.
struct SweepGrid {
  std::vector<SweepTrace> traces;
  std::vector<cluster::ClusterConfig> configs;
  std::vector<core::PolicySpec> policies;
  core::ExperimentOptions experiment;
  /// Folded into every cell's ClusterConfig::seed via derive_seed. The cell
  /// key covers the (trace, config) pair only: all policies of a pair run
  /// under the same stochastic conditions, so policy comparisons stay
  /// matched-pairs (the paper replays one collected trace under every
  /// scheduler).
  std::uint64_t base_seed = 0;
};

/// One completed grid cell.
struct CellResult {
  std::size_t cell_index = 0;  // row-major position in the grid
  std::size_t trace_index = 0;
  std::size_t config_index = 0;
  std::size_t policy_index = 0;
  std::uint64_t seed = 0;  // the derived ClusterConfig::seed the cell ran with
  metrics::RunReport report;
};

/// Headline metrics merged across a set of cells (Chan-style parallel
/// RunningStats::merge), e.g. the spread of a multi-seed sweep.
struct SweepSummary {
  sim::RunningStats execution;       // RunReport::total_execution
  sim::RunningStats queue;           // RunReport::total_queue
  sim::RunningStats slowdown;        // RunReport::avg_slowdown
  sim::RunningStats idle_memory_mb;  // RunReport::avg_idle_memory_mb
  sim::RunningStats balance_skew;    // RunReport::avg_balance_skew
  sim::RunningStats makespan;        // RunReport::makespan

  void absorb(const metrics::RunReport& report);
  void merge(const SweepSummary& other);
};

/// Fans grid cells out across worker threads; results come back in grid
/// order regardless of which worker finished first.
class SweepRunner {
 public:
  /// jobs <= 0 selects one worker per hardware thread.
  explicit SweepRunner(int jobs = 0);

  int jobs() const;

  /// Runs every cell of the grid. The returned vector is ordered by
  /// cell_index (= the row-major grid enumeration). Every policy spec is
  /// validated against the registry before any cell runs; an unknown policy
  /// or bad param throws std::invalid_argument with the registry's message
  /// (scenario drivers validate earlier and report recoverably).
  std::vector<CellResult> run(const SweepGrid& grid);

  /// Escape hatch for sweeps that are not a plain cross product (custom
  /// policy options, per-cell configs): runs `cell(i)` for i in [0, n) in
  /// parallel and returns the reports in index order. `cell` must be
  /// thread-safe in the trivial sense: it may only touch state owned by
  /// index i.
  std::vector<metrics::RunReport> run_indexed(
      std::size_t n, const std::function<metrics::RunReport(std::size_t)>& cell);

  /// Merged headline stats over all cells (or any subset the caller
  /// filters).
  static SweepSummary summarize(const std::vector<CellResult>& cells);

 private:
  ThreadPool pool_;
};

}  // namespace vrc::runner
