#include "runner/sweep_runner.h"

#include <stdexcept>

namespace vrc::runner {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_key) {
  // Two rounds so that (base, key) and (base + 1, key - 1)-style collisions
  // cannot alias: the first round decorrelates the key, the second mixes in
  // the base stream.
  return splitmix64(splitmix64(base_seed) ^ splitmix64(cell_key + 0x51ed270b0f4a92c5ULL));
}

SweepTrace SweepTrace::streaming(workload::TraceSpec spec, std::uint32_t default_nodes) {
  SweepTrace entry;
  entry.spec = std::move(spec);
  entry.stream = true;
  entry.default_nodes = default_nodes;
  return entry;
}

std::string SweepTrace::name() const {
  if (!stream || !spec) return trace.name();
  if (spec->is_swf()) {
    if (!spec->name.empty()) return spec->name;
    // Mirror SwfTraceSource's file-stem naming without opening the file.
    const std::string& path = spec->swf_file;
    const std::size_t slash = path.find_last_of("/\\");
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.rfind('.');
    if (dot != std::string::npos && dot > 0) base.erase(dot);
    return base;
  }
  return spec->to_params(default_nodes).name;
}

void SweepSummary::absorb(const metrics::RunReport& report) {
  execution.add(report.total_execution);
  queue.add(report.total_queue);
  slowdown.add(report.avg_slowdown);
  idle_memory_mb.add(report.avg_idle_memory_mb);
  balance_skew.add(report.avg_balance_skew);
  makespan.add(report.makespan);
}

void SweepSummary::merge(const SweepSummary& other) {
  execution.merge(other.execution);
  queue.merge(other.queue);
  slowdown.merge(other.slowdown);
  idle_memory_mb.merge(other.idle_memory_mb);
  balance_skew.merge(other.balance_skew);
  makespan.merge(other.makespan);
}

SweepRunner::SweepRunner(int jobs) : pool_(jobs) {}

int SweepRunner::jobs() const { return pool_.jobs(); }

std::vector<CellResult> SweepRunner::run(const SweepGrid& grid) {
  // Validate every spec against the registry before dispatching anything:
  // a typo'd policy name must not surface as a half-finished sweep.
  for (const core::PolicySpec& spec : grid.policies) {
    std::string error;
    if (!core::make_policy(spec, &error)) throw std::invalid_argument(error);
  }

  const std::size_t n = grid.traces.size() * grid.configs.size() * grid.policies.size();
  std::vector<CellResult> results(n);
  pool_.parallel_for(n, [&grid, &results](std::size_t index) {
    CellResult& cell = results[index];  // each worker touches only its slot
    cell.cell_index = index;
    cell.policy_index = index % grid.policies.size();
    const std::size_t pair = index / grid.policies.size();
    cell.config_index = pair % grid.configs.size();
    cell.trace_index = pair / grid.configs.size();

    // Per-cell config copy with a deterministically derived seed. The key
    // is the (trace, config) pair so every policy of a pair sees identical
    // stochastic conditions (matched-pairs comparisons).
    cluster::ClusterConfig config = grid.configs[cell.config_index];
    config.seed = derive_seed(grid.base_seed, pair);
    cell.seed = config.seed;

    // Specs were validated before dispatch, so creation cannot fail here.
    const SweepTrace& workload = grid.traces[cell.trace_index];
    if (workload.stream && workload.spec) {
      // Sources are stateful single-pass iterators: build a fresh one for
      // this cell (another worker may be streaming the same spec right now).
      std::unique_ptr<workload::ArrivalSource> source =
          workload.spec->make_source(workload.default_nodes);
      cell.report = *core::run_policy_on_source(grid.policies[cell.policy_index], *source,
                                                config, grid.experiment);
    } else {
      cell.report = *core::run_policy_on_trace(grid.policies[cell.policy_index], workload.trace,
                                               config, grid.experiment);
    }
  });
  return results;
}

std::vector<metrics::RunReport> SweepRunner::run_indexed(
    std::size_t n, const std::function<metrics::RunReport(std::size_t)>& cell) {
  std::vector<metrics::RunReport> reports(n);
  pool_.parallel_for(n, [&cell, &reports](std::size_t index) { reports[index] = cell(index); });
  return reports;
}

SweepSummary SweepRunner::summarize(const std::vector<CellResult>& cells) {
  SweepSummary summary;
  for (const CellResult& cell : cells) summary.absorb(cell.report);
  return summary;
}

}  // namespace vrc::runner
