// Fixed-size thread pool for fanning independent simulation cells across
// cores. The simulation stack (Simulator / Cluster / policy) is
// share-nothing per run, so workers need no locking beyond the task queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vrc::runner {

/// A fixed set of worker threads draining a FIFO task queue.
///
/// Tasks must not throw (simulation cells report failures through their
/// results); an escaping exception terminates the process, which is the
/// right behaviour for a bench driver.
class ThreadPool {
 public:
  /// Spawns `jobs` workers; jobs <= 0 means hardware_concurrency().
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs body(0) .. body(n-1) across the pool and blocks until all are
  /// done. Tasks are claimed from an atomic cursor, so scheduling order is
  /// nondeterministic — bodies must be independent and write only to their
  /// own slot of any shared output.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int hardware_jobs();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for drain
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks dequeued but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vrc::runner
