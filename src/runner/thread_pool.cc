#include "runner/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace vrc::runner {

int ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int jobs) {
  if (jobs <= 0) jobs = hardware_jobs();
  workers_.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // One claiming task per worker; each drains indexes from a shared cursor.
  // Cheaper than n queue entries and keeps all workers busy until the last
  // index is claimed regardless of per-cell runtime skew.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t claimants = std::min(n, workers_.size());
  for (std::size_t w = 0; w < claimants; ++w) {
    submit([cursor, n, &body] {
      for (std::size_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
        body(i);
      }
    });
  }
  wait_idle();
}

}  // namespace vrc::runner
