#include "runner/scenario.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/experiment.h"
#include "util/units.h"

namespace vrc::runner {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

bool parse_positive_int(const std::string& value, long* out) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || errno == ERANGE || parsed <= 0) {
    return false;
  }
  *out = parsed;
  return true;
}

bool parse_uint64(const std::string& value, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.front() == '-') {
    return false;
  }
  *out = parsed;
  return true;
}

constexpr const char* kKnownDirectives =
    "trace, policy, cluster, nodes, set, fault, stream, malleable, trials, "
    "base_seed, sampling_interval, max_sim_time";

}  // namespace

bool ScenarioSpec::apply_line(const std::string& raw, std::string* error) {
  std::string line = raw;
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  line = trim(line);
  if (line.empty()) return true;

  const std::size_t space = line.find_first_of(" \t");
  const std::string directive = line.substr(0, space);
  const std::string arg = space == std::string::npos ? "" : trim(line.substr(space + 1));
  if (arg.empty()) {
    return fail(error, "scenario directive '" + directive + "' needs an argument");
  }

  if (directive == "trace") {
    // The SWF replay form reads naturally with spaces —
    //   trace swf file=tests/data/swf/NASA-iPSC-1993-3.swf scale=0.1
    // — normalize it to the canonical colon/comma TraceSpec text.
    std::string text = arg;
    if (text == "swf" || text.rfind("swf ", 0) == 0 || text.rfind("swf\t", 0) == 0) {
      std::istringstream in(text.substr(3));
      std::string token;
      text = "swf";
      bool first = true;
      while (in >> token) {
        text += (first ? ':' : ',');
        text += token;
        first = false;
      }
    }
    std::optional<workload::TraceSpec> parsed = workload::TraceSpec::parse(text, error);
    if (!parsed) return false;
    traces.push_back(std::move(*parsed));
    return true;
  }
  if (directive == "policy") {
    std::optional<core::PolicySpec> parsed = core::PolicySpec::parse(arg, error);
    if (!parsed) return false;
    policies.push_back(std::move(*parsed));
    return true;
  }
  if (directive == "cluster") {
    if (arg != "auto" && arg != "paper1" && arg != "paper2") {
      return fail(error, "cluster '" + arg + "' unknown (expected auto, paper1, or paper2)");
    }
    cluster = arg;
    return true;
  }
  if (directive == "nodes") {
    long value = 0;
    if (!parse_positive_int(arg, &value)) {
      return fail(error, "nodes '" + arg + "' is not a positive int (e.g. nodes 32)");
    }
    nodes = static_cast<std::size_t>(value);
    return true;
  }
  if (directive == "set") {
    // One or more comma-separated key=value config overrides; a later `set`
    // of the same key wins. Values are validated by apply_overrides when the
    // scenario is materialized.
    std::size_t start = 0;
    while (start <= arg.size()) {
      std::size_t end = arg.find(',', start);
      if (end == std::string::npos) end = arg.size();
      const std::string item = trim(arg.substr(start, end - start));
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail(error, "set '" + item + "' is not key=value (e.g. set memory_threshold=0.9)");
      }
      config_overrides[item.substr(0, eq)] = item.substr(eq + 1);
      if (end == arg.size()) break;
      start = end + 1;
    }
    return true;
  }
  if (directive == "fault") {
    // fault crash node=<index> at=<time> for=<duration>
    std::istringstream in(arg);
    std::string kind;
    in >> kind;
    if (kind != "crash") {
      return fail(error, "fault kind '" + kind +
                             "' unknown (expected: fault crash node=K at=T for=D)");
    }
    faults::FaultEntry entry;
    bool have_node = false;
    bool have_at = false;
    bool have_for = false;
    std::string token;
    while (in >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail(error, "fault field '" + token + "' is not key=value (e.g. node=2)");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "node") {
        std::uint64_t index = 0;
        if (!parse_uint64(value, &index)) {
          return fail(error, "fault node '" + value +
                                 "' is not a non-negative int (e.g. node=2)");
        }
        entry.node = static_cast<workload::NodeId>(index);
        have_node = true;
      } else if (key == "at") {
        double at = 0.0;
        if (!parse_duration(value, &at) || at < 0.0) {
          return fail(error, "fault at '" + value +
                                 "' is not a non-negative duration (e.g. at=100)");
        }
        entry.at = at;
        have_at = true;
      } else if (key == "for") {
        double duration = 0.0;
        if (!parse_duration(value, &duration) || duration <= 0.0) {
          return fail(error,
                      "fault for '" + value + "' is not a positive duration (e.g. for=60)");
        }
        entry.duration = duration;
        have_for = true;
      } else {
        return fail(error, "fault field '" + key + "' unknown (expected node=, at=, for=)");
      }
    }
    if (!have_node || !have_at || !have_for) {
      return fail(error,
                  "fault crash needs node=, at=, and for= (e.g. fault crash node=2 at=100 "
                  "for=60)");
    }
    faults.push_back(entry);
    return true;
  }
  if (directive == "stream") {
    if (arg == "on") {
      stream = true;
    } else if (arg == "off") {
      stream = false;
    } else {
      return fail(error, "stream '" + arg + "' unknown (expected on or off)");
    }
    return true;
  }
  if (directive == "malleable") {
    if (arg == "on") {
      malleable = true;
    } else if (arg == "off") {
      malleable = false;
    } else {
      return fail(error, "malleable '" + arg + "' unknown (expected on or off)");
    }
    return true;
  }
  if (directive == "trials") {
    long value = 0;
    if (!parse_positive_int(arg, &value)) {
      return fail(error, "trials '" + arg + "' is not a positive int (e.g. trials 3)");
    }
    trials = static_cast<int>(value);
    return true;
  }
  if (directive == "base_seed") {
    std::uint64_t value = 0;
    if (!parse_uint64(arg, &value)) {
      return fail(error, "base_seed '" + arg + "' is not a uint64 (e.g. base_seed 7)");
    }
    base_seed = value;
    return true;
  }
  if (directive == "sampling_interval") {
    double value = 0.0;
    if (!parse_duration(arg, &value) || value <= 0.0) {
      return fail(error, "sampling_interval '" + arg +
                             "' is not a positive duration (e.g. sampling_interval 10)");
    }
    sampling_interval = value;
    return true;
  }
  if (directive == "max_sim_time") {
    double value = 0.0;
    if (!parse_duration(arg, &value) || value <= 0.0) {
      return fail(error, "max_sim_time '" + arg +
                             "' is not a positive duration (e.g. max_sim_time 500000)");
    }
    max_sim_time = value;
    return true;
  }
  return fail(error, "unknown scenario directive '" + directive + "' (known directives: " +
                         kKnownDirectives + ")");
}

bool ScenarioSpec::malleable_configured() const {
  if (malleable) return true;
  for (const workload::TraceSpec& trace : traces) {
    if (trace.malleable_fraction > 0.0) return true;
  }
  return false;
}

bool ScenarioSpec::validate(std::string* error) const {
  if (traces.empty()) return fail(error, "scenario has no traces (add a `trace ...` line)");
  if (policies.empty()) return fail(error, "scenario has no policies (add a `policy ...` line)");
  if (trials < 1) return fail(error, "trials must be >= 1");
  if (nodes == 0) return fail(error, "nodes must be >= 1");
  if (sampling_interval <= 0.0) return fail(error, "sampling_interval must be > 0");
  if (max_sim_time <= 0.0) return fail(error, "max_sim_time must be > 0");
  if (cluster != "auto" && cluster != "paper1" && cluster != "paper2") {
    return fail(error, "cluster '" + cluster + "' unknown (expected auto, paper1, or paper2)");
  }
  for (const workload::TraceSpec& trace : traces) {
    std::string nested;
    if (!trace.validate(&nested)) {
      return fail(error, "trace spec '" + trace.print() + "': " + nested);
    }
  }
  std::string fault_error;
  if (!faults::FaultPlan::validate(faults, nodes, &fault_error)) {
    return fail(error, fault_error);
  }
  return true;
}

std::optional<ScenarioSpec> ScenarioSpec::parse(const std::string& text, std::string* error) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string nested;
    if (!spec.apply_line(line, &nested)) {
      fail(error, "line " + std::to_string(line_number) + ": " + nested);
      return std::nullopt;
    }
  }
  std::string nested;
  if (!spec.validate(&nested)) {
    fail(error, nested);
    return std::nullopt;
  }
  return spec;
}

std::optional<ScenarioSpec> ScenarioSpec::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, path + ": cannot open scenario file");
    return std::nullopt;
  }
  std::ostringstream body;
  body << in.rdbuf();
  std::string nested;
  std::optional<ScenarioSpec> spec = parse(body.str(), &nested);
  if (!spec) {
    fail(error, path + ": " + nested);
    return std::nullopt;
  }
  // Rebase relative SWF paths against the scenario file's directory, so a
  // checked-in scenario works regardless of the process's working directory
  // (ctest runs from the build tree, CI from the repo root).
  const std::size_t slash = path.find_last_of("/\\");
  if (slash != std::string::npos) {
    const std::string dir = path.substr(0, slash + 1);
    for (workload::TraceSpec& trace : spec->traces) {
      if (trace.is_swf() && !trace.swf_file.empty() && trace.swf_file.front() != '/') {
        trace.swf_file = dir + trace.swf_file;
      }
    }
  }
  return spec;
}

const CellResult& ScenarioRun::cell(int trial, std::size_t trace, std::size_t policy) const {
  const std::size_t axis = static_cast<std::size_t>(trial) * num_traces + trace;
  return cells[axis * num_policies + policy];
}

std::optional<SweepGrid> to_grid(const ScenarioSpec& spec, std::string* error) {
  std::string nested;
  if (!spec.validate(&nested)) {
    fail(error, nested);
    return std::nullopt;
  }
  for (const core::PolicySpec& policy : spec.policies) {
    if (!core::make_policy(policy, &nested)) {
      fail(error, nested);
      return std::nullopt;
    }
  }

  // Resolve the cluster. "auto" picks the paper testbed of the traces'
  // workload group, which must therefore be unambiguous.
  cluster::ClusterConfig config;
  if (spec.cluster == "paper1") {
    config = cluster::ClusterConfig::paper_cluster1(spec.nodes);
  } else if (spec.cluster == "paper2") {
    config = cluster::ClusterConfig::paper_cluster2(spec.nodes);
  } else {
    const workload::WorkloadGroup group = spec.traces.front().group;
    for (const workload::TraceSpec& trace : spec.traces) {
      if (trace.group != group) {
        fail(error,
             "cluster 'auto' needs all traces in one workload group; mixing spec and apps "
             "traces requires an explicit `cluster paper1` or `cluster paper2`");
        return std::nullopt;
      }
    }
    config = core::paper_cluster_for(group, spec.nodes);
  }
  if (!config.apply_overrides(spec.config_overrides, &nested)) {
    fail(error, nested);
    return std::nullopt;
  }

  SweepGrid grid;
  grid.configs = {std::move(config)};
  grid.policies = spec.policies;
  grid.base_seed = spec.base_seed;
  grid.experiment.collector.sampling_intervals = {spec.sampling_interval};
  grid.experiment.max_sim_time = spec.max_sim_time;
  grid.experiment.fault_entries = spec.faults;

  // SWF logs are read per cell (or materialized below); validate each one
  // end to end here so an unreadable or malformed file surfaces as one clean
  // error before any cell runs — a streamed source throwing mid-pump on a
  // worker thread would otherwise tear down the whole sweep.
  for (const workload::TraceSpec& trace : spec.traces) {
    if (!trace.is_swf()) continue;
    try {
      std::unique_ptr<workload::ArrivalSource> probe =
          trace.make_source(static_cast<std::uint32_t>(spec.nodes));
      while (probe->next()) {
      }
    } catch (const std::exception& e) {
      fail(error, "trace spec '" + trace.print() + "': " + e.what());
      return std::nullopt;
    }
  }

  // Trial expansion on the trace axis, trial-major. Trial 0 is the trace
  // exactly as specified (byte-identical to a trial-free run); trial t > 0
  // regenerates it with the effective seed shifted by t. SWF replays have no
  // generation seed, so every trial replays the same log (trial variation
  // still reaches the cluster seed via derive_seed).
  const std::uint32_t default_nodes = static_cast<std::uint32_t>(spec.nodes);
  for (int trial = 0; trial < spec.trials; ++trial) {
    for (const workload::TraceSpec& base : spec.traces) {
      workload::TraceSpec varied = base;
      // `malleable on` defaults generated traces without their own malleable=
      // fraction to all-malleable [1, 2] jobs; SWF replays stay rigid (their
      // widths come from the log, not the generator).
      if (spec.malleable && !varied.is_swf() && varied.malleable_fraction == 0.0) {
        varied.malleable_fraction = 1.0;
      }
      if (trial > 0 && !varied.is_swf()) {
        std::uint64_t effective = varied.seed;
        if (effective == 0) {
          effective = varied.standard_index > 0
                          ? workload::standard_trace_seed(varied.group, varied.standard_index)
                          : 1;
        }
        varied.seed = effective + static_cast<std::uint64_t>(trial);
      }
      if (spec.stream) {
        grid.traces.push_back(SweepTrace::streaming(std::move(varied), default_nodes));
      } else {
        try {
          grid.traces.push_back(SweepTrace(varied.build(default_nodes)));
        } catch (const std::exception& e) {
          // A malformed SWF body (the open check above only covers
          // readability) surfaces as a recoverable error, not a throw.
          fail(error, "trace spec '" + varied.print() + "': " + e.what());
          return std::nullopt;
        }
      }
    }
  }
  return grid;
}

std::optional<ScenarioRun> run_scenario(const ScenarioSpec& spec, int jobs, std::string* error) {
  std::optional<SweepGrid> grid = to_grid(spec, error);
  if (!grid) return std::nullopt;

  SweepRunner runner(jobs);
  ScenarioRun run;
  run.num_trials = spec.trials;
  run.num_traces = spec.traces.size();
  run.num_policies = spec.policies.size();
  run.cells = runner.run(*grid);
  return run;
}

}  // namespace vrc::runner
