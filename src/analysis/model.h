// Analytic performance model of the paper's §5.
//
// The total execution time of a workload decomposes as
//   T_exe = T_cpu + T_page + T_que + T_mig,
// and with virtual reconfiguration (hatted quantities):
//   T_exe - T̂_exe ≈ (T_page - T̂_page) + (T_que - T̂_que)
// because CPU demand is identical and the migration-time difference is
// insignificant. The queuing time under reconfiguration splits into the
// non-reserved part plus a FIFO bound per reserved workstation:
//   T̂_que = T̂ⁿ_que + Σ_k g(Q_r(k)),   g(Q_r(k)) ≤ Σ_j (Q_r(k) - j) w_kj.
//
// This module evaluates these formulas from simulation output so the claims
// ("the difference is positive exactly when the non-reserved queuing time
// shrinks enough", "the bound is minimized by ascending waits") can be
// verified mechanically.
#pragma once

#include <vector>

#include "metrics/report.h"

namespace vrc::analysis {

/// The §5 decomposition of one run.
struct Breakdown {
  double cpu = 0.0;
  double page = 0.0;
  double queue = 0.0;
  double migration = 0.0;

  double total() const { return cpu + page + queue + migration; }
};

/// Extracts the decomposition from a run report.
Breakdown breakdown_of(const metrics::RunReport& report);

/// Differences (baseline minus reconfigured) of each §5 term.
struct ModelDelta {
  double d_cpu = 0.0;
  double d_page = 0.0;
  double d_queue = 0.0;
  double d_migration = 0.0;

  /// T_exe - T̂_exe, the realized gain.
  double gain() const { return d_cpu + d_page + d_queue + d_migration; }

  /// The model's approximation (drops the CPU and migration terms).
  double approximate_gain() const { return d_page + d_queue; }

  /// Relative error of the approximation against the realized gain.
  double approximation_error() const;
};

ModelDelta compare_runs(const metrics::RunReport& baseline, const metrics::RunReport& ours);

/// FIFO queuing bound for one reserved workstation: waits w[j] is the time
/// between the arrival of job j+1 and the completion of job j (0-indexed
/// input, j = 1..Q in the paper). Returns Σ_j (Q - j) * w[j-1].
double reserved_queue_fifo_bound(const std::vector<double>& waits);

/// §5 note: the bound is minimized when waits are ascending. Returns the
/// bound after sorting ascending — the best achievable ordering.
double reserved_queue_min_bound(std::vector<double> waits);

/// The §5 gain condition: with the paging reduction and the reserved-queue
/// bound, the gain is positive if T_que (baseline) exceeds the reconfigured
/// non-reserved queuing time plus the reserved bound.
struct GainCondition {
  double baseline_queue = 0.0;       // T_que
  double non_reserved_queue = 0.0;   // T̂ⁿ_que
  double reserved_bound = 0.0;       // Σ_k g(Q_r(k)) upper bound
  bool predicts_gain() const {
    return baseline_queue > non_reserved_queue + reserved_bound;
  }
  double predicted_lower_bound() const {
    return baseline_queue - non_reserved_queue - reserved_bound;
  }
};

}  // namespace vrc::analysis
