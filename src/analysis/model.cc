#include "analysis/model.h"

#include <algorithm>
#include <cmath>

namespace vrc::analysis {

Breakdown breakdown_of(const metrics::RunReport& report) {
  Breakdown b;
  b.cpu = report.total_cpu;
  b.page = report.total_page;
  b.queue = report.total_queue;
  b.migration = report.total_migration;
  return b;
}

double ModelDelta::approximation_error() const {
  const double realized = gain();
  if (realized == 0.0) return 0.0;
  return std::abs(approximate_gain() - realized) / std::abs(realized);
}

ModelDelta compare_runs(const metrics::RunReport& baseline, const metrics::RunReport& ours) {
  ModelDelta delta;
  delta.d_cpu = baseline.total_cpu - ours.total_cpu;
  delta.d_page = baseline.total_page - ours.total_page;
  delta.d_queue = baseline.total_queue - ours.total_queue;
  delta.d_migration = baseline.total_migration - ours.total_migration;
  return delta;
}

double reserved_queue_fifo_bound(const std::vector<double>& waits) {
  // waits[j-1] = w_kj for j = 1..Q; the bound is sum over j of (Q - j) w_kj.
  const double q = static_cast<double>(waits.size());
  double bound = 0.0;
  for (std::size_t j = 1; j <= waits.size(); ++j) {
    bound += (q - static_cast<double>(j)) * waits[j - 1];
  }
  return bound;
}

double reserved_queue_min_bound(std::vector<double> waits) {
  // Larger coefficients (Q - j) multiply earlier positions, so putting the
  // smallest waits first minimizes the sum — w_k1 < w_k2 < ... < w_kQ, the
  // ordering §5 says is "easy to nearly achieve" when few jobs are large.
  std::sort(waits.begin(), waits.end());
  return reserved_queue_fifo_bound(waits);
}

}  // namespace vrc::analysis
