// Workstation model: a multiprogrammed node with round-robin CPU sharing,
// a paged memory system, and page-fault monitoring.
//
// Execution advances in fixed ticks (config.tick, 10 ms like the paper's
// trace records). Per tick, runnable jobs share the CPU round-robin with
// context-switch efficiency q/(q+c); when the node's resident demand exceeds
// user memory, jobs incur page faults at touch_rate * overcommit per
// CPU-second, each costing page_fault_service (DESIGN.md §5 substitution 2).
#pragma once

#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/load_index.h"
#include "cluster/node_activity.h"
#include "cluster/running_job.h"
#include "sim/rng.h"

namespace vrc::cluster {

/// One simulated workstation.
class Workstation {
 public:
  Workstation(NodeId id, const NodeConfig& hardware, const ClusterConfig& config);

  NodeId id() const { return id_; }
  const NodeConfig& hardware() const { return hardware_; }

  /// Memory available to user jobs (RAM minus kernel reservation).
  Bytes user_memory() const { return hardware_.memory - hardware_.kernel_reserved; }

  /// Execution speed relative to the workload's reference CPU.
  double speed_factor() const { return speed_factor_; }

  // --- memory state (O(1): maintained incrementally, see set_job_phase) ---
  /// Demand of resident jobs (running + migrating-out images; suspended jobs
  /// are swapped out and do not count).
  Bytes resident_demand() const { return resident_bytes_; }
  /// Resident demand plus reservations for in-flight placements.
  Bytes committed_demand() const { return resident_bytes_ + incoming_bytes_; }
  Bytes idle_memory() const;
  /// Overcommit fraction O = max(0, (resident - user) / resident).
  double overcommit() const;

  /// Committed demand with perfect knowledge: in-flight reservations plus
  /// the *peak* working set of every resident job. The oracle admits against
  /// this so no placement can grow into a collision; maintained incrementally
  /// so oracle admission is O(1) instead of a rescan of the job list.
  Bytes future_committed() const { return incoming_bytes_ + peak_bytes_; }

  // --- occupancy (O(1) aggregates) ---
  /// Jobs holding CPU slots (running + migrating + resizing; suspended jobs
  /// are out).
  int active_jobs() const { return active_count_; }
  /// Jobs competing for the CPU right now (phase kRunning).
  int runnable_jobs() const { return runnable_count_; }
  /// Jobs holding slots without being runnable: images in flight off this
  /// node plus width changes in progress (both are paused in place).
  int migrating_jobs() const { return active_count_ - runnable_count_; }
  /// CPU slots held: width-weighted active jobs plus in-flight placements.
  /// Equal to active_jobs() + incoming_count() when every width is 1, which
  /// keeps all pre-malleability behavior bit-identical (DESIGN.md §15).
  int slots_used() const { return active_slots_ + incoming_slots_; }
  int free_slots() const { return config_->cpu_threshold - slots_used(); }
  bool has_free_slot() const { return slots_used() < config_->cpu_threshold; }

  // --- pressure monitoring ---
  /// Page-fault rate (faults/s), exponential moving average.
  double fault_rate() const { return fault_rate_; }
  /// True when demand exceeds user memory or the fault rate crosses the
  /// configured threshold — the condition that blocks submissions in [3].
  bool memory_pressured() const;
  /// Admission predicate of the dynamic load sharing scheme: `width` free
  /// CPU slots, some idle memory beyond `demand_hint`, no pressure, not
  /// reserved. Width defaults to 1 (every rigid job).
  bool accepts_new_job(Bytes demand_hint = 0, int width = 1) const;

  // --- reservation flag (virtual reconfiguration) ---
  bool reserved() const { return reserved_; }
  void set_reserved(bool reserved) {
    reserved_ = reserved;
    publish_index();
  }

  // --- failure flag (fault injection; transitions driven by Cluster) ---
  bool failed() const { return failed_; }
  void set_failed(bool failed) {
    failed_ = failed;
    publish_index();
  }

  /// Removes and returns every resident job (fail transition: the node's
  /// memory image is gone). Aggregates reset to empty.
  std::vector<std::unique_ptr<RunningJob>> take_all_jobs();

  /// Drops every in-flight placement reservation. After this, a transfer
  /// completing toward this node sees remove_incoming() fail — the token that
  /// tells the initiator the destination died while the image was in flight.
  void clear_incoming();

  // --- job management ---
  RunningJob& add_job(std::unique_ptr<RunningJob> job);
  std::unique_ptr<RunningJob> remove_job(JobId id);
  RunningJob* find_job(JobId id);
  const RunningJob* find_job(JobId id) const;
  const std::vector<std::unique_ptr<RunningJob>>& jobs() const { return jobs_; }

  /// Transitions a resident job to `phase`, keeping the node's incremental
  /// aggregates (resident demand, active/runnable counts and slots) in sync.
  /// All phase changes of jobs owned by a workstation MUST go through this;
  /// writing job.phase directly desynchronizes the aggregates.
  void set_job_phase(RunningJob& job, JobPhase phase);

  /// Changes a resident job's slot width, keeping the width-weighted slot
  /// aggregates in sync. All width changes of jobs owned by a workstation
  /// MUST go through this; writing job.width directly desynchronizes
  /// slots_used() and the published board row.
  void set_job_width(RunningJob& job, int width);

  /// The running job with the largest current memory demand
  /// (find_most_memory_intensive_job() of the paper's framework), or nullptr.
  RunningJob* most_memory_intensive_job();

  // --- in-flight placement reservations ---
  /// `width` reserves that many CPU slots (1 for every rigid job).
  void add_incoming(JobId id, Bytes demand, int width = 1);
  /// Releases the reservation for `id`. Returns false (and logs at debug
  /// level) when no such reservation exists — a policy-layer bookkeeping bug.
  bool remove_incoming(JobId id);
  int incoming_count() const { return incoming_count_; }
  Bytes incoming_bytes() const { return incoming_bytes_; }

  // --- simulation ---
  struct TickOutcome {
    std::vector<std::unique_ptr<RunningJob>> completed;
    double faults = 0.0;
  };
  /// Advances the interval [now - dt, now]. Returns completed jobs.
  TickOutcome tick(SimTime now, SimTime dt, sim::Rng& rng);

  /// True when tick() could have any observable effect: resident jobs to
  /// advance, or a fault-rate EMA still decaying toward zero. An idle
  /// workstation is provably a no-op (no job accounting, no RNG draws, zero
  /// fault contribution), so Cluster::handle_tick skips it — the per-tick
  /// cost scales with *busy* nodes, not cluster size.
  bool needs_tick() const { return !jobs_.empty() || fault_rate_ != 0.0; }

  /// Binds the cluster's live ClusterIndex; from then on the workstation
  /// republishes its row after every state mutation (job lifecycle, phase
  /// changes, incoming reservations, failure/reservation flips, ticks), so
  /// control-path scans read an always-current indexed view.
  void bind_index(ClusterIndex* index);

  /// Binds the cluster's NodeActivity; from then on every mutation (the same
  /// publish_index() sites) marks this node dirty for the next incremental
  /// exchange and refreshes its active-set (needs_tick) membership.
  void bind_activity(NodeActivity* activity);

  /// Publishes the node's load snapshot.
  LoadInfo snapshot(SimTime now) const;

  // --- lifetime statistics ---
  double total_faults() const { return total_faults_; }
  /// Wall time the CPU spent computing or servicing faults, prorated within
  /// ticks where jobs finish (or arrive) mid-interval.
  SimTime cpu_busy_time() const { return cpu_busy_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  /// Shared lookup for the const and non-const find_job overloads.
  template <typename Self>
  static RunningJob* find_job_impl(Self& self, JobId id) {
    for (const auto& job : self.jobs_) {
      if (job->id() == id) return job.get();
    }
    return nullptr;
  }

  /// Recomputes the incremental aggregates by scanning; used only by debug
  /// assertions to catch drift.
  bool aggregates_consistent() const;

  /// Rewrites this node's row in the bound live index (no-op when unbound).
  void publish_index();  // vrc:publish-fn

  NodeId id_;
  NodeConfig hardware_;
  const ClusterConfig* config_;
  double speed_factor_ = 1.0;
  double rr_efficiency_ = 1.0;  // q / (q + c)

  std::vector<std::unique_ptr<RunningJob>> jobs_;  // vrc:board-visible
  // Incrementally maintained aggregates over jobs_ (updated by add_job,
  // remove_job, set_job_phase, and the per-tick demand refresh), so the
  // admission/snapshot hot path never rescans the job list. Every field the
  // board snapshot derives from is tagged vrc:board-visible: the
  // publish-audit lint (DESIGN.md §13.3) checks that member functions
  // writing them republish via publish_index() on every path out.
  Bytes resident_bytes_ = 0;  // vrc:board-visible demand over non-suspended jobs
  Bytes peak_bytes_ = 0;      // vrc:board-visible spec working sets, non-suspended
  int active_count_ = 0;      // vrc:board-visible non-suspended jobs
  int runnable_count_ = 0;    // vrc:board-visible jobs in phase kRunning
  // Width-weighted slot sums (DESIGN.md §15). Equal to the job counts above
  // whenever every resident width is 1, so all pre-malleability load signals
  // are bit-identical.
  int active_slots_ = 0;      // vrc:board-visible Σ width over non-suspended jobs
  int runnable_slots_ = 0;    // vrc:board-visible Σ width over kRunning jobs
  int incoming_count_ = 0;    // vrc:board-visible
  Bytes incoming_bytes_ = 0;  // vrc:board-visible
  int incoming_slots_ = 0;    // vrc:board-visible Σ width over reservations
  struct IncomingReservation {
    JobId id = 0;
    Bytes demand = 0;
    int width = 1;
  };
  std::vector<IncomingReservation> incoming_;  // vrc:board-visible
  bool reserved_ = false;  // vrc:board-visible
  bool failed_ = false;    // vrc:board-visible

  double fault_rate_ = 0.0;  // vrc:board-visible
  double total_faults_ = 0.0;
  SimTime cpu_busy_ = 0.0;
  std::uint64_t jobs_completed_ = 0;

  /// Cluster-owned live index this node publishes into; null in unit tests
  /// that exercise a workstation in isolation.
  ClusterIndex* live_index_ = nullptr;
  /// Cluster-owned active/dirty sets; null in isolation unit tests.
  NodeActivity* activity_ = nullptr;
};

}  // namespace vrc::cluster
