#include "cluster/cluster_index.h"

namespace vrc::cluster {

void IndexedHeap::upsert(NodeId node, Key key) {
  metrics::perf_add(&metrics::PerfCounters::heap_upserts);
  const std::int32_t slot = pos_[node];
  if (slot == kAbsent) {
    heap_.push_back(Entry{key, node});
    pos_[node] = static_cast<std::int32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return;
  }
  const std::size_t at = static_cast<std::size_t>(slot);
  heap_[at].key = key;
  sift_up(at);
  sift_down(static_cast<std::size_t>(pos_[node]));
}

void IndexedHeap::erase(NodeId node) {
  const std::int32_t slot = pos_[node];
  if (slot == kAbsent) return;
  metrics::perf_add(&metrics::PerfCounters::heap_erases);
  const std::size_t at = static_cast<std::size_t>(slot);
  const std::size_t last = heap_.size() - 1;
  pos_[node] = kAbsent;
  if (at != last) {
    const NodeId moved = heap_[last].node;
    place(at, heap_[last]);
    heap_.pop_back();
    sift_up(at);
    sift_down(static_cast<std::size_t>(pos_[moved]));
  } else {
    heap_.pop_back();
  }
}

void IndexedHeap::sift_up(std::size_t slot) {
  Entry entry = heap_[slot];
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (!precedes(entry, heap_[parent])) break;
    place(slot, heap_[parent]);
    slot = parent;
  }
  place(slot, entry);
}

void IndexedHeap::sift_down(std::size_t slot) {
  Entry entry = heap_[slot];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * slot + 1;
    if (child >= n) break;
    if (child + 1 < n && precedes(heap_[child + 1], heap_[child])) ++child;
    if (!precedes(heap_[child], entry)) break;
    place(slot, heap_[child]);
    slot = child;
  }
  place(slot, entry);
}

ClusterIndex::ClusterIndex(std::size_t num_nodes, Order first, Order second)
    : first_order_(first),
      second_order_(second),
      idle_(num_nodes, 0),
      available_(num_nodes, 0),
      peak_(num_nodes, 0),
      user_(num_nodes, 0),
      active_(num_nodes, 0),
      slots_(num_nodes, 0),
      flags_(num_nodes, 0),
      live_count_(num_nodes),
      first_(num_nodes),
      second_(num_nodes) {
  // All nodes start live with zeroed load, mirroring a fresh board/cluster.
  for (NodeId node = 0; node < num_nodes; ++node) {
    first_.upsert(node, key_for(first_order_, NodeState{}));
    second_.upsert(node, key_for(second_order_, NodeState{}));
  }
}

IndexedHeap::Key ClusterIndex::key_for(Order order, const NodeState& state) {
  // Min-heap keys: descending components negated, ascending kept as-is.
  switch (order) {
    case Order::kMinSlotsMaxIdle:
      return {state.slots_used, -state.idle};
    case Order::kMaxIdle:
      return {-state.idle, 0};
    case Order::kMaxIdleMinJobs:
      return {-state.idle, state.active_jobs};
    case Order::kMinPeak:
      return {state.peak, 0};
  }
  return {};
}

void ClusterIndex::publish(NodeId node, const NodeState& state) {
  const bool was_failed = failed(node);
  if (!was_failed) {
    total_idle_ -= idle_[node];
    total_available_ -= available_[node];
    total_user_ -= user_[node];
    --live_count_;
  }
  idle_[node] = state.idle;
  available_[node] = state.available;
  peak_[node] = state.peak;
  user_[node] = state.user;
  active_[node] = state.active_jobs;
  slots_[node] = state.slots_used;
  flags_[node] = static_cast<std::uint8_t>((state.failed ? kFailedFlag : 0) |
                                           (state.reserved ? kReservedFlag : 0) |
                                           (state.pressured ? kPressuredFlag : 0));
  if (!state.failed) {
    total_idle_ += state.idle;
    total_available_ += state.available;
    total_user_ += state.user;
    ++live_count_;
  }
  // Failed and reserved nodes leave the heaps entirely — every placement scan
  // skips both, so paying per-query filter probes for them would be waste.
  if (state.failed || state.reserved) {
    first_.erase(node);
    second_.erase(node);
  } else {
    first_.upsert(node, key_for(first_order_, state));
    second_.upsert(node, key_for(second_order_, state));
  }
}

}  // namespace vrc::cluster
