#include "cluster/cluster_index.h"

#include <sstream>

namespace vrc::cluster {

void IndexedHeap::upsert(NodeId node, Key key) {
  metrics::perf_add(&metrics::PerfCounters::heap_upserts);
  const std::int32_t slot = pos_[node];
  if (slot == kAbsent) {
    heap_.push_back(Entry{key, node});
    pos_[node] = static_cast<std::int32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return;
  }
  const std::size_t at = static_cast<std::size_t>(slot);
  heap_[at].key = key;
  sift_up(at);
  sift_down(static_cast<std::size_t>(pos_[node]));
}

void IndexedHeap::erase(NodeId node) {
  const std::int32_t slot = pos_[node];
  if (slot == kAbsent) return;
  metrics::perf_add(&metrics::PerfCounters::heap_erases);
  const std::size_t at = static_cast<std::size_t>(slot);
  const std::size_t last = heap_.size() - 1;
  pos_[node] = kAbsent;
  if (at != last) {
    const NodeId moved = heap_[last].node;
    place(at, heap_[last]);
    heap_.pop_back();
    sift_up(at);
    sift_down(static_cast<std::size_t>(pos_[moved]));
  } else {
    heap_.pop_back();
  }
}

void IndexedHeap::sift_up(std::size_t slot) {
  Entry entry = heap_[slot];
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (!precedes(entry, heap_[parent])) break;
    place(slot, heap_[parent]);
    slot = parent;
  }
  place(slot, entry);
}

void IndexedHeap::sift_down(std::size_t slot) {
  Entry entry = heap_[slot];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * slot + 1;
    if (child >= n) break;
    if (child + 1 < n && precedes(heap_[child + 1], heap_[child])) ++child;
    if (!precedes(heap_[child], entry)) break;
    place(slot, heap_[child]);
    slot = child;
  }
  place(slot, entry);
}

bool IndexedHeap::audit_invariants(std::string* why) const {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  for (std::size_t slot = 1; slot < heap_.size(); ++slot) {
    const std::size_t parent = (slot - 1) / 2;
    if (precedes(heap_[slot], heap_[parent])) {
      std::ostringstream out;
      out << "heap property violated: slot " << slot << " (node "
          << heap_[slot].node << ") precedes its parent slot " << parent
          << " (node " << heap_[parent].node << ")";
      return fail(out.str());
    }
  }
  for (std::size_t slot = 0; slot < heap_.size(); ++slot) {
    const NodeId node = heap_[slot].node;
    if (static_cast<std::size_t>(node) >= pos_.size() ||
        pos_[node] != static_cast<std::int32_t>(slot)) {
      std::ostringstream out;
      out << "position map broken: heap slot " << slot << " holds node "
          << node << " but pos_[" << node << "] is "
          << (static_cast<std::size_t>(node) < pos_.size() ? pos_[node]
                                                           : kAbsent);
      return fail(out.str());
    }
  }
  std::size_t resident = 0;
  for (const std::int32_t slot : pos_) {
    if (slot != kAbsent) ++resident;
  }
  if (resident != heap_.size()) {
    std::ostringstream out;
    out << "position map counts " << resident << " resident nodes but the "
        << "heap holds " << heap_.size();
    return fail(out.str());
  }
  return true;
}

bool IndexedHeap::audit_key_is(NodeId node, Key key) const {
  const std::int32_t slot = pos_[node];
  if (slot == kAbsent) return false;
  const Key& stored = heap_[static_cast<std::size_t>(slot)].key;
  return stored.primary == key.primary && stored.secondary == key.secondary;
}

std::optional<NodeId> IndexedHeap::audit_linear_min() const {
  if (heap_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t slot = 1; slot < heap_.size(); ++slot) {
    if (precedes(heap_[slot], heap_[best])) best = slot;
  }
  return heap_[best].node;
}

ClusterIndex::ClusterIndex(std::size_t num_nodes, Order first, Order second)
    : first_order_(first),
      second_order_(second),
      idle_(num_nodes, 0),
      available_(num_nodes, 0),
      peak_(num_nodes, 0),
      user_(num_nodes, 0),
      active_(num_nodes, 0),
      slots_(num_nodes, 0),
      flags_(num_nodes, 0),
      live_count_(num_nodes),
      first_(num_nodes),
      second_(num_nodes) {
  // All nodes start live with zeroed load, mirroring a fresh board/cluster.
  for (NodeId node = 0; node < num_nodes; ++node) {
    first_.upsert(node, key_for(first_order_, NodeState{}));
    second_.upsert(node, key_for(second_order_, NodeState{}));
  }
}

IndexedHeap::Key ClusterIndex::key_for(Order order, const NodeState& state) {
  // Min-heap keys: descending components negated, ascending kept as-is.
  switch (order) {
    case Order::kMinSlotsMaxIdle:
      return {state.slots_used, -state.idle};
    case Order::kMaxIdle:
      return {-state.idle, 0};
    case Order::kMaxIdleMinJobs:
      return {-state.idle, state.active_jobs};
    case Order::kMinPeak:
      return {state.peak, 0};
  }
  return {};
}

void ClusterIndex::publish(NodeId node, const NodeState& state) {
  const bool was_failed = failed(node);
  if (!was_failed) {
    total_idle_ -= idle_[node];
    total_available_ -= available_[node];
    total_user_ -= user_[node];
    --live_count_;
  }
  idle_[node] = state.idle;
  available_[node] = state.available;
  peak_[node] = state.peak;
  user_[node] = state.user;
  active_[node] = state.active_jobs;
  slots_[node] = state.slots_used;
  flags_[node] = static_cast<std::uint8_t>((state.failed ? kFailedFlag : 0) |
                                           (state.reserved ? kReservedFlag : 0) |
                                           (state.pressured ? kPressuredFlag : 0));
  if (!state.failed) {
    total_idle_ += state.idle;
    total_available_ += state.available;
    total_user_ += state.user;
    ++live_count_;
  }
  // Failed and reserved nodes leave the heaps entirely — every placement scan
  // skips both, so paying per-query filter probes for them would be waste.
  if (state.failed || state.reserved) {
    first_.erase(node);
    second_.erase(node);
  } else {
    first_.upsert(node, key_for(first_order_, state));
    second_.upsert(node, key_for(second_order_, state));
  }
}

bool ClusterIndex::audit_verify(std::string* why) const {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  const std::size_t n = size();

  // O(1) totals vs brute-force sums over non-failed rows.
  Bytes idle_sum = 0;
  Bytes available_sum = 0;
  Bytes user_sum = 0;
  std::size_t live = 0;
  for (std::size_t node = 0; node < n; ++node) {
    const NodeId id = static_cast<NodeId>(node);
    if (failed(id)) continue;
    idle_sum += idle_[node];
    available_sum += available_[node];
    user_sum += user_[node];
    ++live;
  }
  if (idle_sum != total_idle_ || available_sum != total_available_ ||
      user_sum != total_user_ || live != live_count_) {
    std::ostringstream out;
    out << "aggregate drift: totals are (idle " << total_idle_
        << ", available " << total_available_ << ", user " << total_user_
        << ", live " << live_count_ << ") but brute-force sums are (idle "
        << idle_sum << ", available " << available_sum << ", user "
        << user_sum << ", live " << live << ")";
    return fail(out.str());
  }

  // Heap membership must be exactly the live non-reserved set, and every
  // stored key must be key_for() of the node's current SoA row.
  const auto row_state = [this](NodeId node) {
    NodeState state;
    state.idle = idle_[node];
    state.available = available_[node];
    state.peak = peak_[node];
    state.user = user_[node];
    state.active_jobs = active_[node];
    state.slots_used = slots_[node];
    state.failed = failed(node);
    state.reserved = reserved(node);
    state.pressured = pressured(node);
    return state;
  };
  const struct {
    const IndexedHeap& heap;
    Order order;
    const char* which;
  } heaps[] = {{first_, first_order_, "first"},
               {second_, second_order_, "second"}};
  for (const auto& entry : heaps) {
    for (std::size_t node = 0; node < n; ++node) {
      const NodeId id = static_cast<NodeId>(node);
      const bool eligible = !failed(id) && !reserved(id);
      if (entry.heap.contains(id) != eligible) {
        std::ostringstream out;
        out << entry.which << " heap membership wrong for node " << id
            << ": contains=" << entry.heap.contains(id) << " but eligible="
            << eligible << " (failed=" << failed(id) << ", reserved="
            << reserved(id) << ")";
        return fail(out.str());
      }
      if (eligible && !entry.heap.audit_key_is(id, key_for(entry.order,
                                                           row_state(id)))) {
        std::ostringstream out;
        out << entry.which << " heap holds a stale key for node " << id
            << " (stored key != key_for of the current row)";
        return fail(out.str());
      }
    }
    std::string heap_why;
    if (!entry.heap.audit_invariants(&heap_why)) {
      std::ostringstream out;
      out << entry.which << " heap: " << heap_why;
      return fail(out.str());
    }
    // The pruned best() must agree with a linear argmin; both are total
    // orders, so equality is exact, not approximate.
    const std::optional<NodeId> pruned =
        entry.heap.best([](NodeId) { return true; });
    const std::optional<NodeId> brute = entry.heap.audit_linear_min();
    if (pruned != brute) {
      std::ostringstream out;
      out << entry.which << " heap minimum disagrees: pruned best() says "
          << (pruned ? static_cast<std::int64_t>(*pruned) : -1)
          << " but the linear argmin is "
          << (brute ? static_cast<std::int64_t>(*brute) : -1);
      return fail(out.str());
    }
  }
  return true;
}

}  // namespace vrc::cluster
