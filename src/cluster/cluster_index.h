// Indexed cluster state for O(log n) placement decisions.
//
// Every scheduling decision in the paper's framework is a "best workstation
// under a filter" query: least-loaded submission target, largest-idle
// migration destination, reservation candidate, least-future-committed oracle
// placement. The original implementation answered each with an O(nodes)
// linear walk, which was fine for the paper's 32 workstations and is not for
// the 10k-node clusters the roadmap targets.
//
// ClusterIndex keeps the per-node load quantities in cache-friendly parallel
// arrays (structure-of-arrays) and maintains two IndexedHeaps over them, each
// ordered by one of the key schemas the policies actually rank by. Heaps
// support in-place key decrease/increase through a node -> slot position map,
// so every publish is O(log n) and every query is exact: `best(filter)`
// returns precisely the node the old linear scan would have picked, because
// each key schema is a *total* order (ties broken by ascending node id, which
// is the tie-break a first-match linear walk over node order implements).
//
// Failed and reserved workstations are evicted from both heaps instead of
// being skipped per scan — a crashed node costs nothing at decision time, and
// rejoins the heaps when it recovers (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "metrics/perf_counters.h"
#include "util/units.h"
#include "workload/job.h"

namespace vrc::cluster {

using workload::NodeId;

/// Binary min-heap over per-node keys with a position map for in-place
/// updates. "Smaller key" means "better candidate"; descending components are
/// encoded by negating them. The final tie-break is the ascending node id
/// stored in the entry, making the order total.
class IndexedHeap {
 public:
  struct Key {
    std::int64_t primary = 0;
    std::int64_t secondary = 0;
  };

  explicit IndexedHeap(std::size_t num_nodes) : pos_(num_nodes, kAbsent) {}

  bool contains(NodeId node) const { return pos_[node] != kAbsent; }
  std::size_t size() const { return heap_.size(); }

  /// Inserts `node` or moves it to its new key in place (sifting whichever
  /// direction the key changed toward).
  void upsert(NodeId node, Key key);

  /// Removes `node`; no-op when absent (e.g. failing an already-evicted
  /// reserved node).
  void erase(NodeId node);

  /// The best (minimum-key) node satisfying `keep`, or nullopt. Exact: a
  /// pruned depth-first walk of the heap array that descends only through
  /// entries still able to beat the current best, so the returned node is the
  /// true optimum over the filtered set — not an approximation. Typical cost
  /// is O(log n) plus one probe per better-keyed node the filter rejects;
  /// the worst case (filter rejects everything) degrades to the old linear
  /// scan, never below it.
  template <typename Filter>
  std::optional<NodeId> best(Filter&& keep) const {
    metrics::perf_add(&metrics::PerfCounters::heap_best_queries);
    scratch_.clear();
    if (!heap_.empty()) scratch_.push_back(0);
    std::size_t best_slot = 0;
    bool found = false;
    while (!scratch_.empty()) {
      const std::size_t slot = scratch_.back();
      scratch_.pop_back();
      if (found && !precedes(heap_[slot], heap_[best_slot])) continue;
      if (keep(heap_[slot].node)) {
        // Heap property: every descendant key is >= this one, so nothing
        // below can improve on a qualifying entry.
        best_slot = slot;
        found = true;
        continue;
      }
      const std::size_t left = 2 * slot + 1;
      if (left < heap_.size()) scratch_.push_back(left);
      if (left + 1 < heap_.size()) scratch_.push_back(left + 1);
    }
    if (!found) return std::nullopt;
    return heap_[best_slot].node;
  }

  // --- shadow-audit surface (DESIGN.md §13.5) ---
  // Compiled in every build so the default build can unit-test it; the
  // simulation only calls it from the #ifdef VRC_AUDIT sites in Cluster.

  /// Structural sweep: heap property at every slot, and the position map is
  /// an exact bijection with the heap array. Returns false and describes the
  /// first violation in `why` (when non-null).
  bool audit_invariants(std::string* why) const;

  /// True when `node` is resident with exactly this key — catches an upsert
  /// that repositioned a node without rewriting its stored key (or vice
  /// versa).
  bool audit_key_is(NodeId node, Key key) const;

  /// Brute-force linear argmin over all entries (no heap pruning); the
  /// cross-check reference for best().
  std::optional<NodeId> audit_linear_min() const;

 private:
  struct Entry {
    Key key;
    NodeId node = 0;
  };

  static constexpr std::int32_t kAbsent = -1;

  static bool precedes(const Entry& a, const Entry& b) {
    if (a.key.primary != b.key.primary) return a.key.primary < b.key.primary;
    if (a.key.secondary != b.key.secondary) return a.key.secondary < b.key.secondary;
    return a.node < b.node;
  }

  void sift_up(std::size_t slot);
  void sift_down(std::size_t slot);
  void place(std::size_t slot, Entry entry) {
    heap_[slot] = entry;
    pos_[entry.node] = static_cast<std::int32_t>(slot);
  }

  std::vector<Entry> heap_;
  std::vector<std::int32_t> pos_;  // node -> heap slot, kAbsent when evicted
  /// Reused DFS stack for best(); mutable so const queries stay
  /// allocation-free after warm-up (single-threaded by design, like the rest
  /// of the simulation).
  mutable std::vector<std::size_t> scratch_;
};

/// SoA view of per-node load state plus two policy-ordered heaps and O(1)
/// cluster-wide aggregates over live (non-failed) nodes. Two instances exist
/// per cluster run: one inside LoadInfoBoard mirroring the (stale) published
/// snapshots the distributed schedulers rank by, and one inside Cluster
/// mirroring live workstation state for the control-path scans
/// (reservation candidates, oracle placement).
class ClusterIndex {
 public:
  /// Key schema of one heap; each matches one policy scan's ranking exactly.
  enum class Order {
    kMinSlotsMaxIdle,  // (slots asc, idle desc, id asc) — submission targets
    kMaxIdle,          // (idle desc, id asc)            — migration targets
    kMaxIdleMinJobs,   // (idle desc, jobs asc, id asc)  — reservation candidates
    kMinPeak,          // (peak asc, id asc)             — oracle placements
  };

  /// One node's published state. `idle` is committed-based idle memory
  /// (reservation-aware), `available` is resident-based (what the §2.1
  /// trigger accumulates), `peak` is the oracle's future-committed demand.
  struct NodeState {
    Bytes idle = 0;
    Bytes available = 0;
    Bytes peak = 0;
    Bytes user = 0;
    std::int32_t active_jobs = 0;
    std::int32_t slots_used = 0;
    bool failed = false;
    bool reserved = false;
    bool pressured = false;
  };

  ClusterIndex(std::size_t num_nodes, Order first, Order second);

  /// Publishes `state` for `node`: rewrites the SoA row, folds the delta into
  /// the live totals, and repositions the node in both heaps (evicting it
  /// when failed or reserved, reinserting when it rejoins the pool).
  void publish(NodeId node, const NodeState& state);

  std::size_t size() const { return idle_.size(); }

  // --- SoA accessors ---
  Bytes idle(NodeId node) const { return idle_[node]; }
  Bytes available(NodeId node) const { return available_[node]; }
  Bytes peak(NodeId node) const { return peak_[node]; }
  Bytes user(NodeId node) const { return user_[node]; }
  std::int32_t active_jobs(NodeId node) const { return active_[node]; }
  std::int32_t slots_used(NodeId node) const { return slots_[node]; }
  bool failed(NodeId node) const { return (flags_[node] & kFailedFlag) != 0; }
  bool reserved(NodeId node) const { return (flags_[node] & kReservedFlag) != 0; }
  bool pressured(NodeId node) const { return (flags_[node] & kPressuredFlag) != 0; }

  // --- O(1) aggregates over live (non-failed) nodes ---
  Bytes total_idle() const { return total_idle_; }
  Bytes total_available() const { return total_available_; }
  Bytes total_user() const { return total_user_; }
  std::size_t live_count() const { return live_count_; }

  // --- queries ---
  template <typename Filter>
  std::optional<NodeId> best_first(Filter&& keep) const {
    return first_.best(keep);
  }
  template <typename Filter>
  std::optional<NodeId> best_second(Filter&& keep) const {
    return second_.best(keep);
  }

  const IndexedHeap& first_heap() const { return first_; }
  const IndexedHeap& second_heap() const { return second_; }

  // --- shadow-audit surface (DESIGN.md §13.5) ---
  /// Full brute-force self-consistency sweep, O(n log n): the O(1) totals
  /// must equal fresh sums over non-failed rows, heap membership must be
  /// exactly the live non-reserved set, every stored heap key must equal
  /// key_for() of the node's SoA row, both heaps must satisfy
  /// audit_invariants(), and both pruned best() minima must match a linear
  /// argmin. Compiled in every build (unit-testable); called under
  /// -DVRC_AUDIT=ON from Cluster's tick/exchange hooks. Returns false and
  /// describes the first inconsistency in `why` (when non-null).
  bool audit_verify(std::string* why) const;

 private:
  static constexpr std::uint8_t kFailedFlag = 1;
  static constexpr std::uint8_t kReservedFlag = 2;
  static constexpr std::uint8_t kPressuredFlag = 4;

  static IndexedHeap::Key key_for(Order order, const NodeState& state);

  Order first_order_;
  Order second_order_;

  // Parallel arrays (SoA): one cache-friendly row per node.
  std::vector<Bytes> idle_;
  std::vector<Bytes> available_;
  std::vector<Bytes> peak_;
  std::vector<Bytes> user_;
  std::vector<std::int32_t> active_;
  std::vector<std::int32_t> slots_;
  std::vector<std::uint8_t> flags_;

  Bytes total_idle_ = 0;
  Bytes total_available_ = 0;
  Bytes total_user_ = 0;
  std::size_t live_count_ = 0;

  IndexedHeap first_;
  IndexedHeap second_;
};

}  // namespace vrc::cluster
