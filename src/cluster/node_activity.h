// Mutation bookkeeping shared by the cluster's incremental loops: which
// workstations currently need ticks (active set) and which have mutated
// since the last load exchange (dirty set). Workstations feed both through
// the same publish_index() hook that already fires on every state mutation,
// so membership is exact by construction (DESIGN.md §12).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/job.h"

namespace vrc::cluster {

using workload::NodeId;

/// Flat bitmask over node ids with ascending-id iteration — the same visit
/// order as a plain `for` loop over the node array, which is what keeps the
/// active-set tick loop's event order identical to the old full scan.
class NodeBitset {
 public:
  explicit NodeBitset(std::size_t num_nodes) : words_((num_nodes + 63) / 64, 0) {}

  void set(NodeId node, bool member) {
    if (member) {
      insert(node);
    } else {
      erase(node);
    }
  }
  void insert(NodeId node) {
    std::uint64_t& word = words_[word_of(node)];
    const std::uint64_t bit = bit_of(node);
    count_ += static_cast<std::size_t>((word & bit) == 0);
    word |= bit;
  }
  void erase(NodeId node) {
    std::uint64_t& word = words_[word_of(node)];
    const std::uint64_t bit = bit_of(node);
    count_ -= static_cast<std::size_t>((word & bit) != 0);
    word &= ~bit;
  }
  bool contains(NodeId node) const { return (words_[word_of(node)] & bit_of(node)) != 0; }
  std::size_t count() const { return count_; }

  /// Visits members in ascending node-id order. Each 64-id word is read once
  /// when iteration reaches it, so a member inserted behind the cursor (or
  /// into the word currently being drained) is picked up on the *next* pass —
  /// callers re-check their predicate per visit, which makes the traversal
  /// equivalent to the old predicate-guarded full scan (see
  /// Cluster::handle_tick).
  template <typename Visit>
  void for_each(Visit&& visit) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t word = words_[wi];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        visit(static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(bit)));
      }
    }
  }

 private:
  static std::size_t word_of(NodeId node) { return static_cast<std::size_t>(node) >> 6; }
  static std::uint64_t bit_of(NodeId node) {
    return std::uint64_t{1} << (static_cast<std::size_t>(node) & 63);
  }

  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

/// Deduplicated first-mutation-ordered set of nodes whose state changed since
/// the last exchange. `mark` is O(1); `drain` visits each still-marked node
/// once. An out-of-band publish (fail/recover broadcast) clears the flag
/// without touching the order list — the stale list entry is dropped lazily
/// at the next drain, and a re-mark after such a clear appends a fresh entry
/// (board update order is value-irrelevant: aggregates are order-independent
/// integer sums and heap queries are exact over a total order).
class DirtyNodeSet {
 public:
  explicit DirtyNodeSet(std::size_t num_nodes) : dirty_(num_nodes, 0) {
    order_.reserve(num_nodes);
  }

  void mark(NodeId node) {
    if (dirty_[node] != 0) return;
    dirty_[node] = 1;
    order_.push_back(node);
  }
  /// Clears the flag (used by immediate broadcasts so the next exchange does
  /// not double-publish). The order_ entry, if any, is dropped lazily.
  void clear(NodeId node) { dirty_[node] = 0; }
  bool contains(NodeId node) const { return dirty_[node] != 0; }

  /// Calls `publish(node)` for every still-marked node in first-mark order
  /// and clears the set. `publish` returns true when the node was published;
  /// false retains the mark (and list position) for the next drain.
  template <typename Publish>
  void drain(Publish&& publish) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const NodeId node = order_[i];
      if (dirty_[node] == 0) continue;  // cleared out-of-band; drop lazily
      if (publish(node)) {
        dirty_[node] = 0;
        continue;
      }
      order_[keep++] = node;  // retained: still dirty next period
    }
    order_.resize(keep);
  }

 private:
  std::vector<std::uint8_t> dirty_;  // flag per node; source of truth
  std::vector<NodeId> order_;        // first-mark order, may hold cleared ids
};

/// The pair of incremental sets a Cluster maintains, updated from
/// Workstation::publish_index after every mutation.
struct NodeActivity {
  NodeBitset ticking;
  DirtyNodeSet dirty;

  explicit NodeActivity(std::size_t num_nodes) : ticking(num_nodes), dirty(num_nodes) {}

  void note_mutation(NodeId node, bool needs_tick) {
    ticking.set(node, needs_tick);
    dirty.mark(node);
  }
};

}  // namespace vrc::cluster
