// Cluster orchestrator: owns the workstations, the network, the load-index
// board, and all job lifecycle bookkeeping; raises events to the bound
// SchedulerPolicy and records per-job accounting for the metrics layer.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/config.h"
#include "cluster/load_index.h"
#include "cluster/network.h"
#include "cluster/node_activity.h"
#include "cluster/policy.h"
#include "cluster/running_job.h"
#include "cluster/workstation.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/arrival_source.h"
#include "workload/trace.h"

namespace vrc::cluster {

/// A simulated cluster bound to a simulator and a scheduling policy.
///
/// Typical use (the experiment runner in src/core wraps this):
///   sim::Simulator sim;
///   GLoadSharing policy;
///   Cluster cluster(sim, ClusterConfig::paper_cluster1(), policy);
///   cluster.submit_trace(trace);
///   sim.run();
///   ... read cluster.completed() ...
class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config, SchedulerPolicy& policy);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- workload submission ---
  /// Schedules every job of the trace for arrival at its submit_time.
  void submit_trace(const workload::Trace& trace);
  /// Schedules a single job (specs are copied; arrival at spec.submit_time).
  void submit_job(const workload::JobSpec& spec);
  /// Attaches a pull-based arrival stream: exactly one pending arrival event
  /// is scheduled at a time (the source's peek_time), and each fired arrival
  /// pulls one spec and schedules the next. Completed streamed specs are
  /// recycled through a free-list, so live JobSpec storage is O(concurrent
  /// jobs), not O(total stream length) — see DESIGN.md §14. The source must
  /// outlive the run (run_experiment owns it for the scenario paths). The
  /// run finishes only after the source drains. One source at a time.
  void submit_source(workload::ArrivalSource& source);

  // --- operations for policies ---
  /// Places a pending job on `node` with no transfer cost (local submission
  /// at its home workstation). The job starts competing at the next tick.
  void place_local(RunningJob& job, NodeId node);
  /// Remote submission: charges the fixed cost r, then the job starts on
  /// `node`. A slot and its current footprint are reserved immediately.
  void place_remote(RunningJob& job, NodeId node);
  /// Starts a preemptive migration of `job_id` from `src` to `dst` at cost
  /// r + image/B. Returns false if the job is missing or already migrating.
  bool start_migration(NodeId src, JobId job_id, NodeId dst);
  /// Swaps a running job out entirely (suspension baseline): frees its
  /// memory and CPU slot; the job makes no progress until resumed.
  bool suspend_job(NodeId node, JobId job_id);
  bool resume_job(NodeId node, JobId job_id);
  /// Starts an M-Reconfiguration of a running malleable job to `new_width`
  /// slots on its current node (DESIGN.md §15). The job pauses for the
  /// spec's resize cost (charged to t_mig like a migration pause) and holds
  /// max(old, new) slots while in flight: growth reserves up front, a shrink
  /// releases only at completion. Returns false when the job is missing, not
  /// running, not resizable, `new_width` is outside [min_width, max_width] or
  /// unchanged, or growth would overflow the node's slot threshold.
  bool resize_job(NodeId node, JobId job_id, int new_width);
  /// Sets the virtual-reconfiguration reservation flag on a node.
  void set_reserved(NodeId node, bool reserved);

  // --- fault injection (driven by faults::FaultInjector) ---
  /// Takes `node` down: every resident job is killed (its work restarts from
  /// zero) and re-enqueued per config.fault_restart, in-flight reservations
  /// toward the node are dropped so their completions abort, and the board is
  /// updated immediately. No-op when the node is already down.
  void fail_node(NodeId node);  // vrc:must-publish
  /// Brings a failed node back up (empty, accepting jobs again). No-op when
  /// the node is up.
  void recover_node(NodeId node);  // vrc:must-publish

  // --- accessors ---
  sim::Simulator& simulator() { return sim_; }
  const ClusterConfig& config() const { return config_; }
  Network& network() { return network_; }
  const LoadInfoBoard& board() const { return board_; }
  /// Heap-indexed view of *live* workstation state (as opposed to the
  /// board's stale snapshots), republished by each workstation on mutation.
  /// First heap: (idle desc, jobs asc) for reservation candidates; second
  /// heap: (future-committed peak asc) for oracle placement. Control-path
  /// scans only — distributed policies must keep reading the board.
  const ClusterIndex& live_index() const { return live_index_; }
  Workstation& node(NodeId id) { return *nodes_[id]; }
  const Workstation& node(NodeId id) const { return *nodes_[id]; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Jobs awaiting placement (blocked submissions), oldest first.
  std::vector<RunningJob*> pending_jobs();
  std::size_t pending_count() const { return pending_.size(); }

  /// Completed-job records, in completion order.
  const std::vector<CompletedJob>& completed() const { return completed_; }
  /// Jobs submitted so far. With an attached ArrivalSource this grows as the
  /// stream is pumped and is only final once streaming() is false.
  std::size_t submitted_count() const { return expected_jobs_; }
  bool finished() const { return finished_; }
  SimTime finish_time() const { return finish_time_; }

  // --- streaming statistics ---
  /// True while an attached ArrivalSource has arrivals left to pump.
  bool streaming() const { return source_ != nullptr; }
  /// Streamed specs currently alive (arrived, not yet completed+recycled).
  std::size_t live_stream_specs() const { return stream_specs_.size() - spec_free_list_.size(); }
  /// High-water mark of live_stream_specs() — the bounded-memory evidence
  /// for long streams (O(concurrent), not O(total)).
  std::size_t peak_live_specs() const { return peak_live_specs_; }

  /// Live (not board-snapshot) cluster-wide idle memory over non-failed
  /// nodes; an O(1) running total from the live index. Used by metric
  /// samplers and the reconfiguration trigger's fresh-view check.
  Bytes live_idle_memory() const { return live_index_.total_available(); }
  /// Live active-job counts, optionally skipping reserved nodes (the paper's
  /// job-balance skew is over non-reserved workstations).
  std::vector<int> live_active_jobs(bool skip_reserved) const;

  /// Registers a callback invoked once when the last job completes.
  void add_finish_callback(std::function<void(SimTime)> callback);

  // --- cluster-level statistics ---
  std::uint64_t migrations_started() const { return migrations_started_; }
  std::uint64_t remote_submits() const { return remote_submits_; }
  std::uint64_t local_placements() const { return local_placements_; }
  std::uint64_t resizes_started() const { return resizes_started_; }
  std::uint64_t resizes_completed() const { return resizes_completed_; }
  /// Resizes cut short by their node failing while the width change was in
  /// flight (the job is killed and re-enqueued like any resident job).
  std::uint64_t resizes_aborted() const { return resizes_aborted_; }

  // --- fault statistics ---
  std::uint64_t node_crashes() const { return node_crashes_; }
  std::uint64_t node_recoveries() const { return node_recoveries_; }
  /// Jobs killed by a node failure (each restarts from zero work).
  std::uint64_t jobs_killed() const { return jobs_killed_; }
  /// Transfers (remote submissions or migrations) aborted by a failure.
  std::uint64_t transfer_failures() const { return transfer_failures_; }
  /// Reference-CPU seconds of completed work discarded by failures.
  SimTime work_lost_cpu_seconds() const { return work_lost_cpu_; }
  /// Node-seconds of downtime up to `now` (open failure intervals included).
  SimTime downtime_node_seconds(SimTime now) const;

 private:
  void on_arrival(const workload::JobSpec& spec);
  /// Shared arrival tail: builds the RunningJob (stream_slot non-null for
  /// pump arrivals) and raises on_job_arrival.
  void arrive(const workload::JobSpec& spec, workload::JobSpec* stream_slot);
  /// Schedules the single pending pump arrival at source_->peek_time(), or
  /// detaches a drained source.
  void schedule_next_arrival();
  void pump_arrival();
  void ensure_tasks_running();
  void handle_tick(SimTime now);
  void handle_exchange(SimTime now);
  /// The one board-publish funnel: writes `node`'s snapshot to the board and
  /// clears its dirty bit, so an immediate (out-of-band) broadcast cannot
  /// double-publish at the next exchange.
  void publish_to_board(Workstation& node, SimTime now);  // vrc:publish-fn
  void complete_job(std::unique_ptr<RunningJob> job, SimTime now);
  void maybe_finish(SimTime now);
  std::unique_ptr<RunningJob> take_pending(JobId id);

  sim::Simulator& sim_;
  ClusterConfig config_;
  SchedulerPolicy& policy_;
  Network network_;
  LoadInfoBoard board_;
  ClusterIndex live_index_;
  /// Active (needs_tick) and dirty (unpublished-mutation) node sets, fed by
  /// every workstation's publish_index() hook. handle_tick and
  /// handle_exchange iterate these instead of all n nodes, making both loops
  /// O(active)/O(changed) rather than O(cluster size) — see DESIGN.md §12.
  NodeActivity activity_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Workstation>> nodes_;
  std::deque<workload::JobSpec> specs_;  // stable storage for submitted specs
  /// Streamed-spec slab: deque for pointer stability, recycled through
  /// spec_free_list_ when a streamed job completes, so the slab's size tracks
  /// peak concurrency instead of total stream length.
  std::deque<workload::JobSpec> stream_specs_;
  std::vector<workload::JobSpec*> spec_free_list_;
  workload::ArrivalSource* source_ = nullptr;  // non-null while pumping
  sim::EventId arrival_event_ = sim::kInvalidEventId;  // the one outstanding pump arrival
  std::size_t peak_live_specs_ = 0;
  std::vector<std::unique_ptr<RunningJob>> pending_;
  std::vector<CompletedJob> completed_;
  std::vector<SimTime> last_pressure_callback_;
  /// Every event this cluster scheduled (arrivals, transfer completions);
  /// cancelled wholesale at destruction so no callback outlives the cluster.
  /// Cancelling an already-fired id is a no-op.
  std::vector<sim::EventId> owned_events_;
  RestartPolicy restart_policy_ = RestartPolicy::kLose;
  std::vector<SimTime> failed_since_;  // per node; < 0 while the node is up
  /// Per-node stamp of the last resize start, enforcing
  /// config.resize_min_interval.
  std::vector<SimTime> last_resize_start_;

  std::unique_ptr<sim::PeriodicTask> tick_task_;
  std::unique_ptr<sim::PeriodicTask> exchange_task_;
  std::unique_ptr<sim::PeriodicTask> policy_task_;

  std::size_t expected_jobs_ = 0;
  std::size_t inflight_ = 0;  // remote submissions + migrations in transit
  bool finished_ = false;
  SimTime finish_time_ = 0.0;
  std::vector<std::function<void(SimTime)>> finish_callbacks_;

  std::uint64_t migrations_started_ = 0;
  std::uint64_t remote_submits_ = 0;
  std::uint64_t local_placements_ = 0;
  std::uint64_t resizes_started_ = 0;
  std::uint64_t resizes_completed_ = 0;
  std::uint64_t resizes_aborted_ = 0;

  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_recoveries_ = 0;
  std::uint64_t jobs_killed_ = 0;
  std::uint64_t transfer_failures_ = 0;
  SimTime work_lost_cpu_ = 0.0;
  SimTime downtime_accum_ = 0.0;  // closed failure intervals only
};

}  // namespace vrc::cluster
