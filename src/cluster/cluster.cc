#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "metrics/perf_counters.h"
#include "util/log.h"

#ifdef VRC_AUDIT
#include "cluster/audit.h"
#endif

namespace vrc::cluster {

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config, SchedulerPolicy& policy)
    : sim_(sim),
      config_(std::move(config)),
      policy_(policy),
      network_(sim, config_),
      board_(config_.num_nodes()),
      live_index_(config_.num_nodes(), ClusterIndex::Order::kMaxIdleMinJobs,
                  ClusterIndex::Order::kMinPeak),
      activity_(config_.num_nodes()),
      rng_(config_.seed),
      last_pressure_callback_(config_.num_nodes(), -1e18),
      restart_policy_(parse_restart_policy(config_.fault_restart).value_or(RestartPolicy::kLose)),
      failed_since_(config_.num_nodes(), -1.0),
      last_resize_start_(config_.num_nodes(), -1e18) {
  nodes_.reserve(config_.num_nodes());
  for (std::size_t i = 0; i < config_.num_nodes(); ++i) {
    nodes_.push_back(
        std::make_unique<Workstation>(static_cast<NodeId>(i), config_.nodes[i], config_));
    // bind_activity first: its publish marks every node dirty, so the
    // constructor's exchange below performs the one full-board publish.
    nodes_.back()->bind_activity(&activity_);
    nodes_.back()->bind_index(&live_index_);
  }
  handle_exchange(sim_.now());  // policies see a fresh board before any event
  policy_.attach(*this);
}

Cluster::~Cluster() {
  // A cluster can be destroyed mid-run (an aborted sweep cell) while the
  // simulator lives on. Cancel everything this cluster scheduled so no
  // arrival or transfer completion fires into the destroyed object; cancel
  // also frees unfired move-only payloads (in-flight jobs), and cancelling
  // an already-fired id is a no-op.
  for (const sim::EventId id : owned_events_) sim_.cancel(id);
  if (arrival_event_ != sim::kInvalidEventId) sim_.cancel(arrival_event_);
}

void Cluster::submit_trace(const workload::Trace& trace) {
  for (const workload::JobSpec& spec : trace.jobs()) submit_job(spec);
}

void Cluster::submit_job(const workload::JobSpec& spec) {
  specs_.push_back(spec);
  const workload::JobSpec& stored = specs_.back();
  ++expected_jobs_;
  if (finished_ && completed_.size() < expected_jobs_) finished_ = false;
  owned_events_.push_back(
      sim_.schedule_at(stored.submit_time, [this, &stored] { on_arrival(stored); }));
}

void Cluster::on_arrival(const workload::JobSpec& spec) {
  arrive(spec, /*stream_slot=*/nullptr);
}

void Cluster::arrive(const workload::JobSpec& spec, workload::JobSpec* stream_slot) {
  ensure_tasks_running();
  auto job = std::make_unique<RunningJob>();
  job->spec = &spec;
  job->stream_slot = stream_slot;
  job->home_node = static_cast<NodeId>(spec.home_node % nodes_.size());
  job->phase = JobPhase::kPending;
  job->accounted_until = sim_.now();
  job->demand = spec.memory.demand_at(0.0);
  job->width = spec.initial_width();  // malleable jobs submit at max width
  job->resize_target = job->width;
  RunningJob& ref = *job;
  pending_.push_back(std::move(job));
  policy_.on_job_arrival(*this, ref);
}

void Cluster::submit_source(workload::ArrivalSource& source) {
  assert(source_ == nullptr && "submit_source: a source is already attached");
  source_ = &source;
  schedule_next_arrival();
}

void Cluster::schedule_next_arrival() {
  const std::optional<SimTime> when = source_->peek_time();
  if (!when) {
    // Drained: detach so maybe_finish can close the run once the last
    // streamed jobs complete (expected_jobs_ is final from here on).
    source_ = nullptr;
    arrival_event_ = sim::kInvalidEventId;
    return;
  }
  // Exactly one outstanding arrival event per attached source: the previous
  // one has fired (or none exists), so overwriting the slot is safe and the
  // event heap never holds more than one pending arrival for the stream.
  arrival_event_ = sim_.schedule_at(*when, [this] { pump_arrival(); });
}

void Cluster::pump_arrival() {
  std::optional<workload::JobSpec> spec = source_->next();
  assert(spec && "pump_arrival: peek_time promised a job");
  workload::JobSpec* slot = nullptr;
  if (!spec_free_list_.empty()) {
    slot = spec_free_list_.back();
    spec_free_list_.pop_back();
    *slot = std::move(*spec);
    metrics::perf_add(&metrics::PerfCounters::spec_slots_recycled);
  } else {
    stream_specs_.push_back(std::move(*spec));
    slot = &stream_specs_.back();
  }
  ++expected_jobs_;
  if (finished_ && completed_.size() < expected_jobs_) finished_ = false;
  peak_live_specs_ = std::max(peak_live_specs_, live_stream_specs());
  metrics::perf_add(&metrics::PerfCounters::stream_arrivals);
  metrics::perf_max(&metrics::PerfCounters::peak_live_specs, peak_live_specs_);
  // Schedule the successor before raising the arrival so the pump keeps
  // running even if the policy callback throws the run into a terminal state.
  schedule_next_arrival();
  arrive(*slot, slot);
}

void Cluster::ensure_tasks_running() {
  if (tick_task_ && tick_task_->running()) return;
  // Either first activation or a restart after finish; stopped tasks are
  // replaced (PeriodicTask cannot be re-armed).
  tick_task_.reset();
  exchange_task_.reset();
  policy_task_.reset();
  const SimTime dt = config_.tick;
  tick_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + dt, dt, [this](SimTime now) { handle_tick(now); });
  exchange_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.load_exchange_period, config_.load_exchange_period,
      [this](SimTime now) { handle_exchange(now); });
  policy_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.policy_period, config_.policy_period,
      [this](SimTime) { policy_.on_periodic(*this); });
}

std::unique_ptr<RunningJob> Cluster::take_pending(JobId id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if ((*it)->id() == id) {
      std::unique_ptr<RunningJob> job = std::move(*it);
      pending_.erase(it);
      return job;
    }
  }
  return nullptr;
}

void Cluster::place_local(RunningJob& job, NodeId node_id) {
  assert(job.phase == JobPhase::kPending);
  std::unique_ptr<RunningJob> owned = take_pending(job.id());
  assert(owned && "place_local: job not in pending queue");
  const SimTime now = sim_.now();
  owned->t_queue += now - owned->accounted_until;
  owned->accounted_until = now;
  owned->phase = JobPhase::kRunning;
  ++local_placements_;
  board_.note_placement(node_id, std::max(owned->demand, config_.admission_demand_estimate),
                        owned->width);
  node(node_id).add_job(std::move(owned));
}

void Cluster::place_remote(RunningJob& job, NodeId node_id) {
  assert(job.phase == JobPhase::kPending);
  std::unique_ptr<RunningJob> owned = take_pending(job.id());
  assert(owned && "place_remote: job not in pending queue");
  const SimTime now = sim_.now();
  owned->t_queue += now - owned->accounted_until;
  owned->accounted_until = now;

  Workstation& dst = node(node_id);
  dst.add_incoming(owned->id(), owned->demand, owned->width);
  board_.note_placement(node_id, std::max(owned->demand, config_.admission_demand_estimate),
                        owned->width);
  ++inflight_;
  ++remote_submits_;

  // The callback owns the in-flight job: if the run is cut off before the
  // submit completes, cancelling the event at teardown frees the job instead
  // of leaking it (caught by the asan-ubsan CI job's LeakSanitizer pass).
  owned_events_.push_back(
      network_.start_remote_submit([this, owned = std::move(owned), node_id]() mutable {
        std::unique_ptr<RunningJob> arrived = std::move(owned);
        const SimTime done = sim_.now();
        arrived->t_mig += done - arrived->accounted_until;
        arrived->accounted_until = done;
        Workstation& target = node(node_id);
        // A failed destination dropped its reservations; a dead reservation
        // (even after the node recovered) means the submission is lost.
        const bool delivered = !target.failed() && target.remove_incoming(arrived->id());
        --inflight_;
        if (!delivered) {
          ++transfer_failures_;
          arrived->phase = JobPhase::kPending;
          arrived->node = workload::kInvalidNode;
          RunningJob& ref = *arrived;
          pending_.push_back(std::move(arrived));
          VRC_LOG(kInfo) << "t=" << done << " remote submit of job " << ref.id() << " to node "
                         << node_id << " failed (node down)";
          policy_.on_transfer_failed(*this, ref);
          return;
        }
        arrived->phase = JobPhase::kRunning;
        ++arrived->remote_submits;
        target.add_job(std::move(arrived));
      }));
}

bool Cluster::start_migration(NodeId src, JobId job_id, NodeId dst_id) {
  Workstation& source = node(src);
  RunningJob* job = source.find_job(job_id);
  if (job == nullptr || job->phase != JobPhase::kRunning) return false;
  if (src == dst_id) return false;

  const SimTime now = sim_.now();
  job->t_queue += now - job->accounted_until;
  job->accounted_until = now;
  source.set_job_phase(*job, JobPhase::kMigrating);
  job->migration_dst = dst_id;
  const int incarnation = job->incarnation;

  const Bytes image = job->demand;
  Workstation& dst = node(dst_id);
  dst.add_incoming(job_id, image, job->width);  // migration preserves width
  board_.note_placement(dst_id, image, job->width);  // migrated demand is known
  ++inflight_;
  ++migrations_started_;
  VRC_LOG(kInfo) << "t=" << now << " migrate job " << job_id << " (" << to_megabytes(image)
                 << " MB) node " << src << " -> " << dst_id;

  owned_events_.push_back(network_.start_transfer(image, [this, src, job_id, dst_id,
                                                          incarnation] {
    Workstation& source_node = node(src);
    RunningJob* live = source_node.find_job(job_id);
    if (live == nullptr || live->incarnation != incarnation ||
        live->phase != JobPhase::kMigrating) {
      // The source died mid-transfer: fail_node killed the job (a restarted
      // incarnation may even be back on the same node) and released the
      // destination's reservation. Nothing to deliver.
      --inflight_;
      return;
    }
    const SimTime done = sim_.now();
    live->t_mig += done - live->accounted_until;
    live->accounted_until = done;
    live->migration_dst = workload::kInvalidNode;
    Workstation& target = node(dst_id);
    const bool delivered = !target.failed() && target.remove_incoming(job_id);
    --inflight_;
    if (!delivered) {
      // Destination died while the image was in flight; the source copy is
      // still intact, so the job resumes where it was.
      ++transfer_failures_;
      source_node.set_job_phase(*live, JobPhase::kRunning);
      VRC_LOG(kInfo) << "t=" << done << " migration of job " << job_id << " to node " << dst_id
                     << " failed (node down); resuming on node " << src;
      policy_.on_transfer_failed(*this, *live);
      return;
    }
    std::unique_ptr<RunningJob> moved = source_node.remove_job(job_id);
    moved->phase = JobPhase::kRunning;
    ++moved->migrations;
    RunningJob& ref = target.add_job(std::move(moved));
    policy_.on_migration_complete(*this, ref);
  }));
  return true;
}

bool Cluster::suspend_job(NodeId node_id, JobId job_id) {
  Workstation& host = node(node_id);
  RunningJob* job = host.find_job(job_id);
  if (job == nullptr || job->phase != JobPhase::kRunning) return false;
  const SimTime now = sim_.now();
  job->t_queue += now - job->accounted_until;
  job->accounted_until = now;
  host.set_job_phase(*job, JobPhase::kSuspended);
  ++job->suspensions;
  return true;
}

bool Cluster::resume_job(NodeId node_id, JobId job_id) {
  Workstation& host = node(node_id);
  RunningJob* job = host.find_job(job_id);
  if (job == nullptr || job->phase != JobPhase::kSuspended) return false;
  const SimTime now = sim_.now();
  job->t_queue += now - job->accounted_until;
  job->accounted_until = now;
  host.set_job_phase(*job, JobPhase::kRunning);
  return true;
}

bool Cluster::resize_job(NodeId node_id, JobId job_id, int new_width) {
  Workstation& host = node(node_id);
  RunningJob* job = host.find_job(job_id);
  if (job == nullptr || job->phase != JobPhase::kRunning) return false;
  const workload::Malleability& contract = job->spec->malleability;
  if (!contract.resizable()) return false;
  if (new_width < contract.min_width || new_width > contract.max_width) return false;
  if (new_width == job->width) return false;
  if (new_width > job->width &&
      host.slots_used() + (new_width - job->width) > config_.cpu_threshold) {
    return false;  // growth must fit under the node's slot threshold
  }

  const SimTime now = sim_.now();
  if (config_.resize_min_interval > 0.0 &&
      now - last_resize_start_[node_id] < config_.resize_min_interval) {
    return false;  // node-level resize pacing
  }
  last_resize_start_[node_id] = now;
  // Close the accounting gap at the old width; the pause itself lands in
  // t_mig when the reconfiguration completes (§5: a reconfiguration pause is
  // transfer-class time, not queueing).
  job->t_queue += now - job->accounted_until;
  job->accounted_until = now;
  const int old_width = job->width;
  job->resize_target = new_width;
  host.set_job_width(*job, std::max(old_width, new_width));
  host.set_job_phase(*job, JobPhase::kResizing);
  const int incarnation = job->incarnation;
  ++resizes_started_;
  metrics::perf_add(&metrics::PerfCounters::resizes_started);
  VRC_LOG(kInfo) << "t=" << now << " resize job " << job_id << " on node " << node_id << ": "
                 << old_width << " -> " << new_width << " slots";

  const SimTime fixed =
      config_.resize_fixed_cost >= 0.0 ? config_.resize_fixed_cost : contract.resize_fixed_cost;
  const SimTime per_slot = config_.resize_per_slot_cost >= 0.0 ? config_.resize_per_slot_cost
                                                               : contract.resize_per_slot_cost;
  const SimTime cost = fixed + per_slot * std::abs(new_width - old_width);
  owned_events_.push_back(sim_.schedule_at(now + cost, [this, node_id, job_id, incarnation] {
    Workstation& owner = node(node_id);
    RunningJob* live = owner.find_job(job_id);
    if (live == nullptr || live->incarnation != incarnation ||
        live->phase != JobPhase::kResizing) {
      // The node died mid-resize: fail_node killed the job (counting the
      // abort) and a restarted incarnation may even be resident again.
      // Nothing to deliver.
      return;
    }
    const SimTime done = sim_.now();
    live->t_mig += done - live->accounted_until;
    live->accounted_until = done;
    owner.set_job_width(*live, live->resize_target);
    owner.set_job_phase(*live, JobPhase::kRunning);
    ++live->resizes;
    ++resizes_completed_;
    metrics::perf_add(&metrics::PerfCounters::resize_completions);
    policy_.on_resize_complete(*this, *live);
  }));
  return true;
}

void Cluster::set_reserved(NodeId node_id, bool reserved) {
  node(node_id).set_reserved(reserved);
  board_.set_reserved(node_id, reserved);
}

void Cluster::fail_node(NodeId node_id) {
  Workstation& target = node(node_id);
  if (target.failed()) return;
  const SimTime now = sim_.now();
  target.set_failed(true);
  failed_since_[node_id] = now;
  // Pressure-callback state is meaningless across an outage: clear it so a
  // stale "recently fired" stamp can neither suppress a legitimate callback
  // after recovery nor date from a previous incarnation of the node.
  last_pressure_callback_[node_id] = -1e18;
  ++node_crashes_;
  VRC_LOG(kInfo) << "t=" << now << " node " << node_id << " failed ("
                 << target.active_jobs() << " jobs killed)";

  // In-flight transfers toward this node lose their reservations; when their
  // completions fire, the failed remove_incoming() tells the initiator the
  // destination died (even if the node has recovered by then).
  target.clear_incoming();

  // Kill resident jobs: the node's memory is gone, so completed work is lost
  // and each job restarts from zero.
  std::vector<std::unique_ptr<RunningJob>> killed = target.take_all_jobs();
  std::vector<RunningJob*> refs;
  refs.reserve(killed.size());
  for (auto& job : killed) {
    // Close the accounting gap since the last tick: wall time on a node that
    // then crashed is wait time (transfer time for a migrating job).
    const SimTime gap = now - job->accounted_until;
    if (job->phase == JobPhase::kMigrating) {
      job->t_mig += gap;
      // Release the destination's reservation; the in-flight completion
      // aborts via its incarnation check.
      if (job->migration_dst != workload::kInvalidNode) {
        node(job->migration_dst).remove_incoming(job->id());
      }
    } else if (job->phase == JobPhase::kResizing) {
      // Killed mid-resize: the paused interval is transfer-class time, and
      // the scheduled completion aborts via its incarnation check.
      job->t_mig += gap;
      ++resizes_aborted_;
    } else {
      job->t_queue += gap;
    }
    job->accounted_until = now;
    work_lost_cpu_ += job->cpu_done;
    job->cpu_done = 0.0;
    job->phase = JobPhase::kPending;
    job->node = workload::kInvalidNode;
    job->migration_dst = workload::kInvalidNode;
    job->demand = job->spec->memory.demand_at(0.0);
    // A restarted incarnation resubmits at the spec width, like a fresh
    // arrival; the old incarnation's width history is already in
    // width_seconds.
    job->width = job->spec->initial_width();
    job->resize_target = job->width;
    ++job->restarts;
    ++job->incarnation;
    ++jobs_killed_;
    refs.push_back(job.get());
    pending_.push_back(std::move(job));
  }

  publish_to_board(target, now);  // immediate broadcast, not next exchange
  metrics::perf_add(&metrics::PerfCounters::immediate_publishes);
  policy_.on_node_failed(*this, node_id);
  if (restart_policy_ == RestartPolicy::kResubmit) {
    // Re-enter the arrival path right away; under kLose the jobs wait for
    // the policy's periodic pending retry instead.
    for (RunningJob* job : refs) {
      if (job->phase == JobPhase::kPending) policy_.on_job_arrival(*this, *job);
    }
  }
}

void Cluster::recover_node(NodeId node_id) {
  Workstation& target = node(node_id);
  if (!target.failed()) return;
  const SimTime now = sim_.now();
  target.set_failed(false);
  downtime_accum_ += now - failed_since_[node_id];
  failed_since_[node_id] = -1.0;
  last_pressure_callback_[node_id] = -1e18;
  ++node_recoveries_;
  VRC_LOG(kInfo) << "t=" << now << " node " << node_id << " recovered";
  publish_to_board(target, now);  // immediate broadcast, not next exchange
  metrics::perf_add(&metrics::PerfCounters::immediate_publishes);
  policy_.on_node_recovered(*this, node_id);
}

SimTime Cluster::downtime_node_seconds(SimTime now) const {
  SimTime total = downtime_accum_;
  for (const SimTime since : failed_since_) {
    if (since >= 0.0) total += now - since;
  }
  return total;
}

std::vector<RunningJob*> Cluster::pending_jobs() {
  std::vector<RunningJob*> jobs;
  jobs.reserve(pending_.size());
  for (auto& job : pending_) jobs.push_back(job.get());
  return jobs;
}

std::vector<int> Cluster::live_active_jobs(bool skip_reserved) const {
  std::vector<int> counts;
  counts.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node->failed()) continue;
    if (skip_reserved && node->reserved()) continue;
    counts.push_back(node->active_jobs());
  }
  return counts;
}

void Cluster::add_finish_callback(std::function<void(SimTime)> callback) {
  finish_callbacks_.push_back(std::move(callback));
}

void Cluster::handle_tick(SimTime now) {
  metrics::ScopedPerfTimer wall(&metrics::PerfCounters::tick_wall_ns);
  metrics::perf_add(&metrics::PerfCounters::tick_rounds);
  // Only nodes with needs_tick() are visited — idle workstations (no jobs,
  // settled fault EMA) are provably no-op ticks, and the active set keeps
  // them out of the loop entirely, so a tick costs O(active), not O(n).
  // Membership is exact at loop entry (publish_index refreshes it on every
  // mutation); a node *activated mid-loop* by a completion callback is the
  // one divergence from the old predicate-guarded full scan, and its tick
  // would be a provable no-op (the new job's accounted_until == now, so
  // wall == 0: no progress, no RNG draw, no EMA change) — skipping it is
  // bit-identical. The needs_tick() re-check per visit covers nodes drained
  // by an earlier visit's completion cascade.
  std::uint64_t ticked = 0;
  activity_.ticking.for_each([&](NodeId id) {
    Workstation& target = *nodes_[id];
    if (!target.needs_tick()) return;
    ++ticked;
    Workstation::TickOutcome outcome = target.tick(now, config_.tick, rng_);
    for (auto& done : outcome.completed) complete_job(std::move(done), now);
  });
  metrics::perf_add(&metrics::PerfCounters::node_ticks, ticked);
  activity_.ticking.for_each([&](NodeId id) {
    Workstation& target = *nodes_[id];
    // needs_tick() false implies zero resident demand and zero fault rate —
    // the node cannot be pressured (so restricting this loop to the active
    // set drops no candidate). A *failed* node can still report pressure
    // transiently (its fault EMA survives the crash), but it must never
    // reach the policy: migrating off a dead node is nonsense.
    if (!target.needs_tick() || target.failed()) return;
    if (!target.memory_pressured()) return;
    SimTime& last = last_pressure_callback_[id];
    if (now - last < config_.pressure_callback_interval) return;
    last = now;
    metrics::perf_add(&metrics::PerfCounters::pressure_callbacks);
    policy_.on_node_pressure(*this, target);
  });
  maybe_finish(now);
#ifdef VRC_AUDIT
  // Shadow-verify the live index against brute-force recomputation every
  // VRC_AUDIT_CADENCE ticks (every tick would make big scenarios O(n^2)).
  if (++audit::counters().tick_events % VRC_AUDIT_CADENCE == 0) {
    audit::check_cluster_index(live_index_, "live index after tick");
  }
#endif
}

void Cluster::handle_exchange(SimTime now) {
  metrics::ScopedPerfTimer wall(&metrics::PerfCounters::exchange_wall_ns);
  metrics::perf_add(&metrics::PerfCounters::exchange_rounds);
  // Incremental exchange: republish only nodes that mutated since the last
  // drain. A clean fault-free node's snapshot is value-identical to its
  // existing board entry (every snapshot field derives from state whose
  // mutations mark the node dirty, and the fault EMA keeps a node
  // needs_tick-active — hence dirtied every tick — until it snaps to zero),
  // so skipping it leaves the board bit-identical to a full rebroadcast.
  // This is the stale-but-identical contract of DESIGN.md §12, enforced by
  // tests/cluster/exchange_dirty_set_test.cc.
  activity_.dirty.drain([&](NodeId id) {
    metrics::perf_add(&metrics::PerfCounters::exchange_dirty_visited);
    Workstation& target = *nodes_[id];
    if (target.failed()) {
      // The fail-time immediate broadcast is the node's one published
      // transition while down: the board froze there (heaps already evicted
      // it, aggregates exclude it), and recover_node re-syncs with another
      // immediate broadcast — so no snapshot is built for a down node.
      metrics::perf_add(&metrics::PerfCounters::exchange_failed_skips);
      return true;
    }
    publish_to_board(target, now);
    return true;
  });
#ifdef VRC_AUDIT
  // Immediately after the dirty drain, every live node's fresh snapshot must
  // match its board row except `timestamp` — the dirty-set soundness claim of
  // DESIGN.md §12, checked here against a full rebroadcast's worth of fresh
  // snapshots. Failed nodes keep deliberately frozen rows and are skipped.
  audit::check_board(
      board_,
      [&](NodeId id) -> std::optional<LoadInfo> {
        Workstation& target = *nodes_[id];
        if (target.failed()) return std::nullopt;
        return target.snapshot(now);
      },
      "board after exchange");
  audit::check_cluster_index(board_.index(), "board index after exchange");
#endif
}

void Cluster::publish_to_board(Workstation& target, SimTime now) {
  board_.update(target.snapshot(now));
  activity_.dirty.clear(target.id());
  metrics::perf_add(&metrics::PerfCounters::snapshots_published);
}

void Cluster::complete_job(std::unique_ptr<RunningJob> job, SimTime now) {
  CompletedJob record;
  record.id = job->id();
  record.program = job->spec->program;
  record.submit_time = job->spec->submit_time;
  record.completion_time = now;
  record.cpu_seconds = job->spec->cpu_seconds;
  record.t_cpu = job->t_cpu;
  record.t_page = job->t_page;
  record.t_queue = job->t_queue;
  record.t_mig = job->t_mig;
  record.faults = job->faults;
  record.migrations = job->migrations;
  record.remote_submits = job->remote_submits;
  record.restarts = job->restarts;
  record.resizes = job->resizes;
  record.malleable = job->spec->malleable();
  record.width_seconds = job->width_seconds;
  record.final_node = job->node;
  record.working_set = job->spec->working_set();
  completed_.push_back(record);
  // A streamed spec's storage is dead once the record above captured what
  // metrics need; recycle the slot for a future arrival (the free-list keeps
  // the slab at peak-concurrency size). Materialized specs (stream_slot ==
  // nullptr) stay put: pre-scheduled arrival events still reference them.
  if (job->stream_slot != nullptr) spec_free_list_.push_back(job->stream_slot);
  policy_.on_job_completed(*this, completed_.back());
}

void Cluster::maybe_finish(SimTime now) {
  if (finished_) return;
  // An attached source still has arrivals to pump: the expected-job count is
  // open-ended until it drains, so the run cannot be over yet.
  if (source_ != nullptr) return;
  if (completed_.size() < expected_jobs_) return;
  if (!pending_.empty() || inflight_ != 0) return;
  finished_ = true;
  finish_time_ = now;
  // stop(), not reset(): this runs inside the tick task's own callback, so
  // the task object must outlive the call.
  tick_task_->stop();
  exchange_task_->stop();
  policy_task_->stop();
  for (auto& callback : finish_callbacks_) callback(now);
}

}  // namespace vrc::cluster
