#include "cluster/network.h"

#include <algorithm>
#include <utility>

namespace vrc::cluster {

Network::Network(sim::Simulator& sim, const ClusterConfig& config)
    : sim_(sim),
      bytes_per_sec_(mbps_to_bytes_per_sec(config.network_mbps)),
      remote_submit_cost_(config.remote_submit_cost),
      contention_(config.network_contention) {}

SimTime Network::migration_cost(Bytes image) const {
  return remote_submit_cost_ + static_cast<double>(image) / bytes_per_sec_;
}

SimTime Network::begin_transfer(Bytes image) {
  ++transfers_;
  bytes_ += image;
  if (contention_) {
    const SimTime start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + migration_cost(image);
    return busy_until_;
  }
  return sim_.now() + migration_cost(image);
}

}  // namespace vrc::cluster
