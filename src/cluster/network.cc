#include "cluster/network.h"

#include <algorithm>
#include <utility>

namespace vrc::cluster {

Network::Network(sim::Simulator& sim, const ClusterConfig& config)
    : sim_(sim),
      bytes_per_sec_(mbps_to_bytes_per_sec(config.network_mbps)),
      remote_submit_cost_(config.remote_submit_cost),
      contention_(config.network_contention) {}

SimTime Network::migration_cost(Bytes image) const {
  return remote_submit_cost_ + static_cast<double>(image) / bytes_per_sec_;
}

SimTime Network::start_transfer(Bytes image, std::function<void()> done) {
  ++transfers_;
  bytes_ += image;
  SimTime completion;
  if (contention_) {
    const SimTime start = std::max(sim_.now(), busy_until_);
    completion = start + migration_cost(image);
    busy_until_ = completion;
  } else {
    completion = sim_.now() + migration_cost(image);
  }
  sim_.schedule_at(completion, std::move(done));
  return completion;
}

SimTime Network::start_remote_submit(std::function<void()> done) {
  const SimTime completion = sim_.now() + remote_submit_cost_;
  sim_.schedule_at(completion, std::move(done));
  return completion;
}

}  // namespace vrc::cluster
