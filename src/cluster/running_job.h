// Runtime state of a job inside the cluster.
//
// Accounting follows the paper's §5 decomposition exactly:
//   t_exe(i) = t_cpu(i) + t_page(i) + t_que(i) + t_mig(i)
// Every simulated wall-clock second a job is alive lands in exactly one of
// the four buckets (an invariant the test suite checks).
#pragma once

#include "util/units.h"
#include "workload/job.h"

namespace vrc::cluster {

using workload::JobId;
using workload::NodeId;

/// Where a job currently is in its lifecycle.
enum class JobPhase {
  kPending,    // arrived, no qualified workstation yet (blocked submission)
  kRunning,    // active on a workstation
  kMigrating,  // memory image in flight between workstations
  kSuspended,  // swapped out by the suspension baseline policy
  kResizing,   // width change in flight on its workstation (DESIGN.md §15)
};

/// Mutable per-job simulation state. Owned by the Cluster (pending) or a
/// Workstation (running).
struct RunningJob {
  const workload::JobSpec* spec = nullptr;
  /// Non-null when `spec` lives in the cluster's streamed-spec slab
  /// (Cluster::submit_source): the slot is recycled at completion.
  workload::JobSpec* stream_slot = nullptr;
  JobPhase phase = JobPhase::kPending;
  NodeId node = workload::kInvalidNode;  // current / destination workstation
  /// Home workstation, wrapped into this cluster's node range (a trace may
  /// have been generated for a different cluster size).
  NodeId home_node = 0;

  SimTime cpu_done = 0.0;  // reference-CPU seconds of completed work
  Bytes demand = 0;        // current memory demand (cached each tick)

  // §5 breakdown accumulators (wall-clock seconds).
  SimTime t_cpu = 0.0;
  SimTime t_page = 0.0;
  SimTime t_queue = 0.0;
  SimTime t_mig = 0.0;

  double faults = 0.0;   // total page faults generated
  int migrations = 0;    // completed preemptive migrations
  int remote_submits = 0;
  int suspensions = 0;
  int restarts = 0;      // times killed by a node failure and restarted
  int resizes = 0;       // completed width changes (DESIGN.md §15)

  /// Current width in CPU slots on the owning workstation. 1 for every rigid
  /// job; malleable jobs start at spec->initial_width(). While a resize is in
  /// flight (phase == kResizing) the job holds max(old, new) slots — the
  /// grown allocation is reserved up front, the shrunk one released only when
  /// the reconfiguration completes — and `width` reflects that held maximum.
  int width = 1;
  /// Width the in-flight resize lands on; meaningful only while kResizing.
  int resize_target = 1;
  /// Integral of width over wall time spent running (slot-seconds): the
  /// width_time_product report column sums this across jobs.
  double width_seconds = 0.0;

  /// Bumped every time the job is killed and re-enqueued. In-flight transfer
  /// completions capture the value at transfer start; a mismatch at
  /// completion means the job was killed (and possibly re-placed — even back
  /// onto the same node) while the image was in flight, so the transfer must
  /// abort instead of touching the restarted incarnation.
  int incarnation = 0;

  /// Destination of the in-flight migration while phase == kMigrating, so a
  /// source-node failure can release the destination's incoming reservation.
  NodeId migration_dst = workload::kInvalidNode;

  /// Simulation time up to which this job's wall clock has been attributed
  /// to the four buckets.
  SimTime accounted_until = 0.0;

  double progress() const {
    return spec->cpu_seconds > 0.0 ? cpu_done / spec->cpu_seconds : 1.0;
  }

  Bytes demand_now() const { return spec->memory.demand_at(progress()); }

  bool finished() const { return cpu_done + 1e-9 >= spec->cpu_seconds; }

  SimTime remaining_cpu() const { return spec->cpu_seconds - cpu_done; }

  JobId id() const { return spec->id; }
};

/// Immutable record of a finished job, kept for metrics.
struct CompletedJob {
  JobId id = 0;
  std::string program;
  SimTime submit_time = 0.0;
  SimTime completion_time = 0.0;
  SimTime cpu_seconds = 0.0;  // dedicated lifetime (slowdown denominator)
  SimTime t_cpu = 0.0;
  SimTime t_page = 0.0;
  SimTime t_queue = 0.0;
  SimTime t_mig = 0.0;
  double faults = 0.0;
  int migrations = 0;
  int remote_submits = 0;
  int restarts = 0;
  int resizes = 0;              // completed width changes
  bool malleable = false;       // spec carried a non-trivial width contract
  double width_seconds = 0.0;   // integral of width over running wall time
  NodeId final_node = 0;
  Bytes working_set = 0;

  SimTime wall_clock() const { return completion_time - submit_time; }

  /// The paper's headline metric: wall-clock execution time over CPU
  /// execution time.
  double slowdown() const { return cpu_seconds > 0.0 ? wall_clock() / cpu_seconds : 1.0; }
};

}  // namespace vrc::cluster
