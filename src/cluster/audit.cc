#include "cluster/audit.h"

#include <cstdlib>
#include <string>

#include "util/log.h"

namespace vrc::cluster::audit {

Counters& counters() {
  static Counters instance;
  return instance;
}

void reset_counters() { counters() = Counters{}; }

void check_cluster_index(const ClusterIndex& index, const char* context) {
  ++counters().index_audits;
  std::string why;
  if (!index.audit_verify(&why)) {
    VRC_LOG(kError) << "VRC_AUDIT failed (" << context << "): " << why;
    std::abort();
  }
}

namespace {

// Fields compared between a board row and a freshly captured snapshot.
// `timestamp` is deliberately absent: undirtied nodes keep their old stamp.
bool rows_agree(const LoadInfo& board, const LoadInfo& fresh) {
  return board.node == fresh.node && board.active_jobs == fresh.active_jobs &&
         board.slots_used == fresh.slots_used &&
         board.user_memory == fresh.user_memory &&
         board.total_demand == fresh.total_demand &&
         board.idle_memory == fresh.idle_memory &&
         board.fault_rate == fresh.fault_rate &&
         board.reserved == fresh.reserved &&
         board.pressured == fresh.pressured && board.failed == fresh.failed;
}

}  // namespace

void check_board(const LoadInfoBoard& board,
                 const std::function<std::optional<LoadInfo>(NodeId)>& fresh,
                 const char* context) {
  ++counters().board_audits;
  for (NodeId node = 0; node < board.size(); ++node) {
    const std::optional<LoadInfo> live = fresh(node);
    if (!live.has_value()) continue;  // frozen row (failed node): not diffed
    ++counters().rows_checked;
    const LoadInfo& row = board.info(node);
    if (!rows_agree(row, *live)) {
      VRC_LOG(kError) << "VRC_AUDIT failed (" << context << "): board row for "
                      << "node " << node << " diverged from fresh state "
                      << "(board: jobs " << row.active_jobs << ", slots "
                      << row.slots_used << ", user " << row.user_memory
                      << ", demand " << row.total_demand << ", idle "
                      << row.idle_memory << "; fresh: jobs "
                      << live->active_jobs << ", slots " << live->slots_used
                      << ", user " << live->user_memory << ", demand "
                      << live->total_demand << ", idle " << live->idle_memory
                      << ") — a mutation escaped the dirty set";
      std::abort();
    }
  }
  std::string why;
  if (!board.audit_verify(&why)) {
    VRC_LOG(kError) << "VRC_AUDIT failed (" << context << "): " << why;
    std::abort();
  }
}

}  // namespace vrc::cluster::audit
