// Shadow-verification hooks for the VRC_AUDIT build (DESIGN.md §13.5).
//
// The incremental structures (ClusterIndex, the dirty-set board exchange) buy
// speed by maintaining state instead of recomputing it; a missed publish or a
// broken fold is invisible until a placement goes subtly wrong. Under
// -DVRC_AUDIT=ON, Cluster calls these checks from its tick and exchange hooks
// to compare the incremental answers against brute-force recomputation and
// abort loudly on the first divergence.
//
// Everything here is compiled in every build so the default build can
// unit-test the checkers; only the *call sites* in cluster.cc are gated
// behind #ifdef VRC_AUDIT, so the default build's behaviour — and its
// determinism fingerprints — are untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cluster/cluster_index.h"
#include "cluster/load_index.h"
#include "workload/job.h"

namespace vrc::cluster::audit {

/// Running tallies of audit activity, so tests can assert the checks actually
/// fired (a silently skipped audit is indistinguishable from a passing one).
struct Counters {
  std::uint64_t tick_events = 0;   // ticks seen by the cadence gate
  std::uint64_t index_audits = 0;  // ClusterIndex::audit_verify sweeps run
  std::uint64_t board_audits = 0;  // board-vs-live diff sweeps run
  std::uint64_t rows_checked = 0;  // board rows compared across all sweeps
};

/// Process-wide counters. A singleton, not a Cluster member, so enabling the
/// audit never changes any simulation object's layout (ODR-safe when audit
/// and non-audit objects are mixed) and multi-cluster tests aggregate.
Counters& counters();

/// Zeroes the counters; tests call this between scenarios.
void reset_counters();

/// Runs index.audit_verify() and aborts with a VRC_LOG(kError) diagnostic on
/// failure. `context` names the call site (e.g. "live index after tick").
void check_cluster_index(const ClusterIndex& index, const char* context);

/// Verifies the board against freshly captured node state: for every node,
/// `fresh(node)` returns the snapshot the node would publish right now (or
/// nullopt to skip it — failed nodes keep deliberately frozen rows), and the
/// board's row must match it field-for-field except `timestamp` (undirtied
/// nodes legitimately keep their old stamp; their *values* must still agree,
/// which is exactly the dirty-set soundness contract of DESIGN.md §12). Also
/// runs board.audit_verify(). Aborts on the first divergence.
void check_board(const LoadInfoBoard& board,
                 const std::function<std::optional<LoadInfo>(NodeId)>& fresh,
                 const char* context);

}  // namespace vrc::cluster::audit
