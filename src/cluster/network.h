// Network cost model.
//
// The paper charges a fixed r = 0.1 s for a remote submission and
// r + D/B for a preemptive migration (D = working-set image in bits,
// B = 10 Mbps Ethernet). Optionally transfers serialize on the shared
// segment (network_contention), an ablation beyond the paper's model.
#pragma once

#include <cstdint>
#include <utility>

#include "cluster/config.h"
#include "sim/simulator.h"

namespace vrc::cluster {

/// Models the cluster interconnect. All durations come from the analytic
/// cost model; completion callbacks fire through the simulator.
class Network {
 public:
  Network(sim::Simulator& sim, const ClusterConfig& config);

  /// Cost of migrating a memory image of `image` bytes: r + D/B.
  SimTime migration_cost(Bytes image) const;

  /// Cost of a remote submission (control message + remote exec setup): r.
  SimTime remote_submit_cost() const { return remote_submit_cost_; }

  /// Starts a bulk transfer of `image` bytes and invokes `done` when it
  /// completes. With contention enabled the transfer queues behind earlier
  /// transfers on the shared segment. Returns the completion event's id so
  /// the initiator can cancel it (e.g. at cluster teardown).
  /// `done` may be move-only (e.g. own the in-flight job via unique_ptr),
  /// so an unfired completion still releases its payload at teardown.
  template <typename F>
  sim::EventId start_transfer(Bytes image, F&& done) {
    const SimTime completion = begin_transfer(image);
    return sim_.schedule_at(completion, std::forward<F>(done));
  }

  /// Starts a remote-submission control exchange; `done` fires after r.
  /// Returns the completion event's id.
  template <typename F>
  sim::EventId start_remote_submit(F&& done) {
    return sim_.schedule_at(sim_.now() + remote_submit_cost_, std::forward<F>(done));
  }

  // --- statistics ---
  std::uint64_t transfers_started() const { return transfers_; }
  Bytes bytes_transferred() const { return bytes_; }
  SimTime busy_until() const { return busy_until_; }

 private:
  /// Accounts a transfer and returns its completion time (serialized behind
  /// earlier transfers when contention is enabled).
  SimTime begin_transfer(Bytes image);

  sim::Simulator& sim_;
  double bytes_per_sec_ = 0.0;
  SimTime remote_submit_cost_ = 0.0;
  bool contention_ = false;
  SimTime busy_until_ = 0.0;
  std::uint64_t transfers_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace vrc::cluster
