// Network cost model.
//
// The paper charges a fixed r = 0.1 s for a remote submission and
// r + D/B for a preemptive migration (D = working-set image in bits,
// B = 10 Mbps Ethernet). Optionally transfers serialize on the shared
// segment (network_contention), an ablation beyond the paper's model.
#pragma once

#include <cstdint>
#include <functional>

#include "cluster/config.h"
#include "sim/simulator.h"

namespace vrc::cluster {

/// Models the cluster interconnect. All durations come from the analytic
/// cost model; completion callbacks fire through the simulator.
class Network {
 public:
  Network(sim::Simulator& sim, const ClusterConfig& config);

  /// Cost of migrating a memory image of `image` bytes: r + D/B.
  SimTime migration_cost(Bytes image) const;

  /// Cost of a remote submission (control message + remote exec setup): r.
  SimTime remote_submit_cost() const { return remote_submit_cost_; }

  /// Starts a bulk transfer of `image` bytes and invokes `done` when it
  /// completes. With contention enabled the transfer queues behind earlier
  /// transfers on the shared segment. Returns the completion time.
  SimTime start_transfer(Bytes image, std::function<void()> done);

  /// Starts a remote-submission control exchange; `done` fires after r.
  SimTime start_remote_submit(std::function<void()> done);

  // --- statistics ---
  std::uint64_t transfers_started() const { return transfers_; }
  Bytes bytes_transferred() const { return bytes_; }
  SimTime busy_until() const { return busy_until_; }

 private:
  sim::Simulator& sim_;
  double bytes_per_sec_;
  SimTime remote_submit_cost_;
  bool contention_;
  SimTime busy_until_ = 0.0;
  std::uint64_t transfers_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace vrc::cluster
