#include "cluster/workstation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.h"

namespace vrc::cluster {

Workstation::Workstation(NodeId id, const NodeConfig& hardware, const ClusterConfig& config)
    : id_(id), hardware_(hardware), config_(&config) {
  speed_factor_ = hardware_.cpu_mhz / config.reference_mhz;
  rr_efficiency_ = config.quantum / (config.quantum + config.context_switch);
}

Bytes Workstation::idle_memory() const {
  return std::max<Bytes>(0, user_memory() - committed_demand());
}

double Workstation::overcommit() const {
  const Bytes resident = resident_demand();
  if (resident <= user_memory() || resident == 0) return 0.0;
  return static_cast<double>(resident - user_memory()) / static_cast<double>(resident);
}

bool Workstation::memory_pressured() const {
  return resident_demand() > user_memory() || fault_rate_ > config_->fault_rate_threshold;
}

bool Workstation::accepts_new_job(Bytes demand_hint, int width) const {
  if (failed_) return false;
  if (reserved_) return false;
  if (slots_used() + width > config_->cpu_threshold) return false;
  if (memory_pressured()) return false;
  // The memory threshold of [3]: keep headroom below user memory so running
  // jobs' demand growth does not immediately overcommit the node.
  const Bytes limit =
      static_cast<Bytes>(config_->memory_threshold * static_cast<double>(user_memory()));
  return committed_demand() + demand_hint < limit;
}

RunningJob& Workstation::add_job(std::unique_ptr<RunningJob> job) {
  job->node = id_;
  job->demand = job->demand_now();
  if (job->phase != JobPhase::kSuspended) {
    resident_bytes_ += job->demand;
    peak_bytes_ += job->spec->working_set();
    ++active_count_;
    active_slots_ += job->width;
  }
  if (job->phase == JobPhase::kRunning) {
    ++runnable_count_;
    runnable_slots_ += job->width;
  }
  jobs_.push_back(std::move(job));
  publish_index();
  return *jobs_.back();
}

std::unique_ptr<RunningJob> Workstation::remove_job(JobId id) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if ((*it)->id() == id) {
      std::unique_ptr<RunningJob> job = std::move(*it);
      jobs_.erase(it);
      if (job->phase != JobPhase::kSuspended) {
        resident_bytes_ -= job->demand;
        peak_bytes_ -= job->spec->working_set();
        --active_count_;
        active_slots_ -= job->width;
      }
      if (job->phase == JobPhase::kRunning) {
        --runnable_count_;
        runnable_slots_ -= job->width;
      }
      publish_index();
      return job;
    }
  }
  return nullptr;
}

RunningJob* Workstation::find_job(JobId id) { return find_job_impl(*this, id); }

const RunningJob* Workstation::find_job(JobId id) const { return find_job_impl(*this, id); }

void Workstation::set_job_phase(RunningJob& job, JobPhase phase) {
  if (job.phase == phase) return;
  if (job.phase != JobPhase::kSuspended) {
    resident_bytes_ -= job.demand;
    peak_bytes_ -= job.spec->working_set();
    --active_count_;
    active_slots_ -= job.width;
  }
  if (job.phase == JobPhase::kRunning) {
    --runnable_count_;
    runnable_slots_ -= job.width;
  }
  job.phase = phase;
  if (phase != JobPhase::kSuspended) {
    resident_bytes_ += job.demand;
    peak_bytes_ += job.spec->working_set();
    ++active_count_;
    active_slots_ += job.width;
  }
  if (phase == JobPhase::kRunning) {
    ++runnable_count_;
    runnable_slots_ += job.width;
  }
  publish_index();
}

void Workstation::set_job_width(RunningJob& job, int width) {
  if (job.width == width) return;
  if (job.phase != JobPhase::kSuspended) active_slots_ += width - job.width;
  if (job.phase == JobPhase::kRunning) runnable_slots_ += width - job.width;
  job.width = width;
  publish_index();
}

RunningJob* Workstation::most_memory_intensive_job() {
  RunningJob* best = nullptr;
  for (auto& job : jobs_) {
    if (job->phase != JobPhase::kRunning) continue;
    if (!best || job->demand > best->demand) best = job.get();
  }
  return best;
}

std::vector<std::unique_ptr<RunningJob>> Workstation::take_all_jobs() {
  std::vector<std::unique_ptr<RunningJob>> taken = std::move(jobs_);
  jobs_.clear();
  resident_bytes_ = 0;
  peak_bytes_ = 0;
  active_count_ = 0;
  runnable_count_ = 0;
  active_slots_ = 0;
  runnable_slots_ = 0;
  publish_index();
  return taken;
}

void Workstation::clear_incoming() {
  incoming_.clear();
  incoming_count_ = 0;
  incoming_bytes_ = 0;
  incoming_slots_ = 0;
  publish_index();
}

void Workstation::add_incoming(JobId id, Bytes demand, int width) {
  incoming_.push_back({id, demand, width});
  ++incoming_count_;
  incoming_bytes_ += demand;
  incoming_slots_ += width;
  publish_index();
}

bool Workstation::remove_incoming(JobId id) {
  for (auto it = incoming_.begin(); it != incoming_.end(); ++it) {
    if (it->id == id) {
      --incoming_count_;
      incoming_bytes_ -= it->demand;
      incoming_slots_ -= it->width;
      incoming_.erase(it);
      publish_index();
      return true;
    }
  }
  VRC_LOG(kDebug) << "node " << id_ << ": remove_incoming(" << id
                  << ") found no reservation";
  return false;
}

Workstation::TickOutcome Workstation::tick(SimTime now, SimTime dt, sim::Rng& rng) {
  TickOutcome outcome;

  // Sharing state at the start of the interval, from the O(1) aggregates.
  // Round-robin shares are width-weighted: a width-w job holds w of the
  // runnable_slots shares. With every width at 1 the slot sum equals the job
  // count, so the division below is bit-identical to the pre-malleability
  // model. Context-switch overhead still keys off the *job* count — one wide
  // job alone does not context-switch against itself.
  const int runnable = runnable_count_;
  const int runnable_slots = runnable_slots_;
  const double overcommit_now = overcommit();
  const double efficiency = runnable > 1 ? rr_efficiency_ : 1.0;
  const SimTime interval_start = now - dt;

  double tick_faults = 0.0;
  double busy_wall = 0.0;      // wall time actually spent computing or paging
  Bytes resident_delta = 0;    // demand growth/shrink of running jobs this tick
  for (std::size_t i = 0; i < jobs_.size();) {
    RunningJob& job = *jobs_[i];
    const SimTime from = std::max(job.accounted_until, interval_start);
    const SimTime wall = now - from;
    if (wall <= 0.0) {
      ++i;
      continue;
    }

    if (job.phase == JobPhase::kSuspended) {
      job.t_queue += wall;
      job.accounted_until = now;
      ++i;
      continue;
    }
    if (job.phase == JobPhase::kMigrating || job.phase == JobPhase::kResizing) {
      // Attributed to t_mig when the transfer / reconfiguration completes.
      ++i;
      continue;
    }

    // Round-robin share for this job's portion of the interval: width slots
    // out of runnable_slots, scaled by the sub-linear parallel speedup for
    // wide jobs (speedup(1) == 1, so the branch keeps width-1 arithmetic
    // untouched — DESIGN.md §15).
    double usable = efficiency * wall / static_cast<double>(runnable_slots);
    if (job.width > 1) usable *= job.spec->malleability.speedup(job.width);
    // Wall seconds per reference-CPU second: compute time at this node's
    // speed plus page-fault stalls charged against the job's own turn.
    // Fault exposure has a knee (config.fault_exposure_knee): cyclic working
    // sets mean that once demand exceeds user memory, LRU evicts pages just
    // before their reuse ([6]), so even a small relative deficit exposes a
    // large share of page touches — a big-job collision collapses the node,
    // which is the paper's blocking episode.
    const double exposure =
        overcommit_now <= 0.0
            ? 0.0
            : overcommit_now / (overcommit_now + config_->fault_exposure_knee);
    const double fault_rate_per_ref_sec = job.spec->touch_rate * exposure;
    const double stall_per_ref_sec = fault_rate_per_ref_sec * config_->page_fault_service;
    const double wall_per_ref_sec = 1.0 / speed_factor_ + stall_per_ref_sec;
    double progress = usable / wall_per_ref_sec;
    progress = std::min(progress, job.remaining_cpu());

    const double cpu_wall = progress / speed_factor_;
    const double page_wall = progress * stall_per_ref_sec;
    const double queue_wall = std::max(0.0, wall - cpu_wall - page_wall);

    double faults = fault_rate_per_ref_sec * progress;
    if (config_->stochastic_faults && faults > 0.0) {
      faults = static_cast<double>(rng.poisson(faults));
    }

    job.cpu_done += progress;
    busy_wall += cpu_wall + page_wall;
    job.t_cpu += cpu_wall;
    job.t_page += page_wall;
    job.t_queue += queue_wall;
    job.faults += faults;
    job.width_seconds += wall * static_cast<double>(job.width);
    job.accounted_until = now;
    const Bytes new_demand = job.demand_now();
    resident_delta += new_demand - job.demand;
    job.demand = new_demand;
    tick_faults += faults;

    if (job.finished()) {
      std::unique_ptr<RunningJob> done = std::move(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      resident_delta -= done->demand;
      peak_bytes_ -= done->spec->working_set();
      --active_count_;
      --runnable_count_;
      active_slots_ -= done->width;
      runnable_slots_ -= done->width;
      outcome.completed.push_back(std::move(done));
      ++jobs_completed_;
      continue;  // do not advance i; element replaced by the next one
    }
    ++i;
  }
  // Fold the per-job demand refresh into the aggregate once, outside the
  // loop: a member read-modify-write per job would chain the iterations.
  resident_bytes_ += resident_delta;
  assert(aggregates_consistent());

  // CPU busy time prorated by the wall time jobs actually progressed: when
  // the only runnable job finishes mid-tick the CPU goes idle for the rest
  // of the interval, so charging the full dt would overstate utilization.
  // Dividing by the round-robin efficiency folds the context-switch overhead
  // (also busy time) back in; a fully-utilized tick charges exactly dt.
  if (runnable > 0) cpu_busy_ += std::min<SimTime>(dt, busy_wall / efficiency);

  total_faults_ += tick_faults;
  outcome.faults = tick_faults;

  // EMA of the fault rate with time constant fault_rate_tau.
  const double fault_rate_before = fault_rate_;
  const double decay = std::exp(-dt / config_->fault_rate_tau);
  fault_rate_ = fault_rate_ * decay + (1.0 - decay) * (tick_faults / dt);
  // An exponential decay never reaches zero in floating point, which would
  // keep an otherwise-idle node ticking forever just to shave the EMA. Snap
  // once the node is empty and the rate is far below any consumer's
  // resolution (the only reader is the memory_pressured threshold compare),
  // so needs_tick() can turn the node off.
  if (jobs_.empty() && fault_rate_ < 1e-12) fault_rate_ = 0.0;

  // Republish only when a published value could differ. Every field the
  // live index and the board snapshot carry derives from resident_bytes_,
  // the job/incoming counts and aggregates, the flags, and fault_rate_;
  // within a tick the first three only move on a completion or a demand
  // delta, so a tick that completed nothing, shifted no memory, and left
  // the EMA bit-identical (exactly 0 stays exactly 0 without faults) would
  // republish the very values already published — that no-op dominated the
  // tick loop at 10k nodes (one indexed upsert per active node per tick).
  // Value-unchanged also means needs_tick() cannot have flipped, so the
  // active-set membership refresh is equally unnecessary.
  if (!outcome.completed.empty() || resident_delta != 0 ||
      fault_rate_ != fault_rate_before) {
    publish_index();
  }
  return outcome;
}

bool Workstation::aggregates_consistent() const {
  Bytes resident = 0;
  Bytes peak = 0;
  int active = 0;
  int runnable = 0;
  int active_slots = 0;
  int runnable_slots = 0;
  for (const auto& job : jobs_) {
    if (job->phase != JobPhase::kSuspended) {
      resident += job->demand;
      peak += job->spec->working_set();
      ++active;
      active_slots += job->width;
    }
    if (job->phase == JobPhase::kRunning) {
      ++runnable;
      runnable_slots += job->width;
    }
  }
  int incoming_slots = 0;
  for (const auto& res : incoming_) incoming_slots += res.width;
  return resident == resident_bytes_ && peak == peak_bytes_ && active == active_count_ &&
         runnable == runnable_count_ && active_slots == active_slots_ &&
         runnable_slots == runnable_slots_ && incoming_slots == incoming_slots_;
}

void Workstation::bind_index(ClusterIndex* index) {
  live_index_ = index;
  publish_index();
}

void Workstation::bind_activity(NodeActivity* activity) {
  activity_ = activity;
  publish_index();
}

void Workstation::publish_index() {
  if (activity_ != nullptr) activity_->note_mutation(id_, needs_tick());
  if (live_index_ == nullptr) return;
  ClusterIndex::NodeState state;
  state.idle = idle_memory();
  state.available = std::max<Bytes>(0, user_memory() - resident_bytes_);
  state.peak = future_committed();
  state.user = user_memory();
  state.active_jobs = active_count_;
  state.slots_used = slots_used();
  state.failed = failed_;
  state.reserved = reserved_;
  state.pressured = memory_pressured();
  live_index_->publish(id_, state);
}

LoadInfo Workstation::snapshot(SimTime now) const {
  LoadInfo info;
  info.node = id_;
  info.timestamp = now;
  info.active_jobs = active_jobs();
  info.slots_used = slots_used();
  info.user_memory = user_memory();
  info.total_demand = committed_demand();
  info.idle_memory = idle_memory();
  info.fault_rate = fault_rate_;
  info.reserved = reserved_;
  info.pressured = memory_pressured();
  info.failed = failed_;
  return info;
}

}  // namespace vrc::cluster
