#include "cluster/load_index.h"

#include <algorithm>
#include <sstream>

namespace vrc::cluster {

LoadInfoBoard::LoadInfoBoard(std::size_t num_nodes)
    : infos_(num_nodes),
      index_(num_nodes, ClusterIndex::Order::kMinSlotsMaxIdle, ClusterIndex::Order::kMaxIdle) {
  for (NodeId node = 0; node < num_nodes; ++node) infos_[node].node = node;
}

void LoadInfoBoard::update(const LoadInfo& info) {
  infos_[info.node] = info;
  publish(info.node);
}

void LoadInfoBoard::note_placement(NodeId node, Bytes estimated_demand, int width) {
  LoadInfo& info = infos_[node];
  info.slots_used += width;
  info.total_demand += estimated_demand;
  info.idle_memory = std::max<Bytes>(0, info.idle_memory - estimated_demand);
  publish(node);
}

void LoadInfoBoard::set_reserved(NodeId node, bool reserved) {
  infos_[node].reserved = reserved;
  publish(node);
}

Bytes LoadInfoBoard::average_user_memory() const {
  if (index_.live_count() == 0) return 0;
  return index_.total_user() / static_cast<Bytes>(index_.live_count());
}

ClusterIndex::NodeState LoadInfoBoard::state_from(const LoadInfo& info) {
  ClusterIndex::NodeState state;
  state.idle = info.idle_memory;
  state.user = info.user_memory;
  state.active_jobs = info.active_jobs;
  state.slots_used = info.slots_used;
  state.failed = info.failed;
  state.reserved = info.reserved;
  state.pressured = info.pressured;
  return state;
}

void LoadInfoBoard::publish(NodeId node) {
  index_.publish(node, state_from(infos_[node]));
}

bool LoadInfoBoard::audit_verify(std::string* why) const {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  for (const LoadInfo& info : infos_) {
    const ClusterIndex::NodeState want = state_from(info);
    const NodeId node = info.node;
    if (index_.idle(node) != want.idle || index_.user(node) != want.user ||
        index_.active_jobs(node) != want.active_jobs ||
        index_.slots_used(node) != want.slots_used ||
        index_.failed(node) != want.failed ||
        index_.reserved(node) != want.reserved ||
        index_.pressured(node) != want.pressured) {
      std::ostringstream out;
      out << "index row for node " << node
          << " does not match its LoadInfo snapshot (a writer skipped "
          << "publish(): idle " << index_.idle(node) << " vs " << want.idle
          << ", slots " << index_.slots_used(node) << " vs "
          << want.slots_used << ")";
      return fail(out.str());
    }
  }
  std::string index_why;
  if (!index_.audit_verify(&index_why)) {
    return fail("board index: " + index_why);
  }
  return true;
}

}  // namespace vrc::cluster
