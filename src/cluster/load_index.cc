#include "cluster/load_index.h"

#include <algorithm>

namespace vrc::cluster {

void LoadInfoBoard::note_placement(NodeId node, Bytes estimated_demand) {
  LoadInfo& info = infos_[node];
  ++info.slots_used;
  info.total_demand += estimated_demand;
  info.idle_memory = std::max<Bytes>(0, info.idle_memory - estimated_demand);
}

Bytes LoadInfoBoard::cluster_idle_memory() const {
  Bytes total = 0;
  for (const LoadInfo& info : infos_) total += info.idle_memory;
  return total;
}

Bytes LoadInfoBoard::average_user_memory() const {
  if (infos_.empty()) return 0;
  Bytes total = 0;
  for (const LoadInfo& info : infos_) total += info.user_memory;
  return total / static_cast<Bytes>(infos_.size());
}

}  // namespace vrc::cluster
