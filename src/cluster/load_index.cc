#include "cluster/load_index.h"

#include <algorithm>

namespace vrc::cluster {

LoadInfoBoard::LoadInfoBoard(std::size_t num_nodes)
    : infos_(num_nodes),
      index_(num_nodes, ClusterIndex::Order::kMinSlotsMaxIdle, ClusterIndex::Order::kMaxIdle) {
  for (NodeId node = 0; node < num_nodes; ++node) infos_[node].node = node;
}

void LoadInfoBoard::update(const LoadInfo& info) {
  infos_[info.node] = info;
  publish(info.node);
}

void LoadInfoBoard::note_placement(NodeId node, Bytes estimated_demand) {
  LoadInfo& info = infos_[node];
  ++info.slots_used;
  info.total_demand += estimated_demand;
  info.idle_memory = std::max<Bytes>(0, info.idle_memory - estimated_demand);
  publish(node);
}

void LoadInfoBoard::set_reserved(NodeId node, bool reserved) {
  infos_[node].reserved = reserved;
  publish(node);
}

Bytes LoadInfoBoard::average_user_memory() const {
  if (index_.live_count() == 0) return 0;
  return index_.total_user() / static_cast<Bytes>(index_.live_count());
}

void LoadInfoBoard::publish(NodeId node) {
  const LoadInfo& info = infos_[node];
  ClusterIndex::NodeState state;
  state.idle = info.idle_memory;
  state.user = info.user_memory;
  state.active_jobs = info.active_jobs;
  state.slots_used = info.slots_used;
  state.failed = info.failed;
  state.reserved = info.reserved;
  state.pressured = info.pressured;
  index_.publish(node, state);
}

}  // namespace vrc::cluster
