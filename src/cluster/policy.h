// Scheduler policy interface.
//
// The Cluster raises events (arrivals, completions, memory pressure, a
// periodic pulse); a SchedulerPolicy responds by invoking placement and
// migration operations on the Cluster. Concrete policies — the dynamic load
// sharing baseline of [3] and the paper's virtual-reconfiguration extension —
// live in src/core.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cluster/running_job.h"

namespace vrc::cluster {

class Cluster;
class Workstation;

/// Inter-workstation scheduling policy. One instance drives one Cluster run.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Short identifier used in reports (e.g. "G-Loadsharing").
  virtual const char* name() const = 0;

  /// Called once when the policy is bound to a cluster, before any event.
  virtual void attach(Cluster& cluster) { (void)cluster; }

  /// A job arrived at its home workstation. The policy must either place it
  /// (place_local / remote_submit) or leave it pending; pending jobs are
  /// re-offered via on_periodic.
  virtual void on_job_arrival(Cluster& cluster, RunningJob& job) = 0;

  /// A job finished; `record` is its final accounting.
  virtual void on_job_completed(Cluster& cluster, const CompletedJob& record) {
    (void)cluster;
    (void)record;
  }

  /// `node` is memory-pressured (page-fault rate above threshold or demand
  /// beyond user memory). Rate-limited per node by
  /// config.pressure_callback_interval.
  virtual void on_node_pressure(Cluster& cluster, Workstation& node) {
    (void)cluster;
    (void)node;
  }

  /// Periodic pulse (config.policy_period) while the simulation is active:
  /// retry pending jobs, check reservation drains, etc.
  virtual void on_periodic(Cluster& cluster) { (void)cluster; }

  /// A migration finished; `job` is now running on its destination.
  virtual void on_migration_complete(Cluster& cluster, RunningJob& job) {
    (void)cluster;
    (void)job;
  }

  /// A width reconfiguration finished; `job` is running again at its new
  /// width and the slots a shrink released are free. The natural moment for
  /// an M-Reconfiguration policy to retry blocked submissions.
  virtual void on_resize_complete(Cluster& cluster, RunningJob& job) {
    (void)cluster;
    (void)job;
  }

  /// `node` went down (fault injection). Fired after the cluster state is
  /// consistent: resident jobs killed and re-enqueued as pending, the node's
  /// incoming reservations dropped, the board snapshot marked failed.
  virtual void on_node_failed(Cluster& cluster, NodeId node) {
    (void)cluster;
    (void)node;
  }

  /// A previously failed `node` came back up (empty, accepting jobs again).
  virtual void on_node_recovered(Cluster& cluster, NodeId node) {
    (void)cluster;
    (void)node;
  }

  /// An in-flight transfer failed because its destination died. A failed
  /// remote submission leaves `job` pending again (re-offered via
  /// on_periodic); a failed migration leaves it running on its source.
  virtual void on_transfer_failed(Cluster& cluster, RunningJob& job) {
    (void)cluster;
    (void)job;
  }

  /// Policy-specific counters for reports (e.g. reservations started).
  virtual std::vector<std::pair<std::string, double>> stats() const { return {}; }
};

}  // namespace vrc::cluster
