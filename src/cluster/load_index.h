// Global load-index board.
//
// "Each workstation maintains a global load index file which contains CPU,
// memory, and I/O load status information of other computing nodes. The load
// sharing system periodically collects and distributes the load information."
// We model one shared board refreshed every load_exchange_period; policies
// read these (possibly stale) snapshots, never live node state, which
// reproduces the staleness a real system would see.
//
// The board keeps an incremental ClusterIndex over the published snapshots:
// placement scans query the index's heaps instead of walking all entries, and
// the §2.1 aggregates (cluster idle memory, average user memory) are O(1)
// running totals over *live* nodes — a crashed node's stale snapshot no
// longer leaks into the reconfiguration trigger.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster_index.h"
#include "util/units.h"
#include "workload/job.h"

namespace vrc::cluster {

using workload::NodeId;

/// One node's published load snapshot.
struct LoadInfo {
  NodeId node = 0;
  /// Time this entry was last published. Under the dirty-set incremental
  /// exchange a node that hasn't mutated keeps its old stamp (its values are
  /// provably unchanged); no simulation code reads this field, it exists for
  /// tests and debugging.
  SimTime timestamp = 0.0;
  int active_jobs = 0;      // running (non-suspended) jobs
  int slots_used = 0;       // active jobs + in-flight placements
  Bytes user_memory = 0;
  Bytes total_demand = 0;   // committed memory incl. in-flight placements
  Bytes idle_memory = 0;    // max(0, user_memory - total_demand)
  double fault_rate = 0.0;  // page faults/s (EMA)
  bool reserved = false;    // virtual-reconfiguration reservation flag
  bool pressured = false;   // memory-pressure predicate at publication time
  bool failed = false;      // node is down (fault injection); never a target
};

/// The shared snapshot table.
class LoadInfoBoard {
 public:
  explicit LoadInfoBoard(std::size_t num_nodes);

  void update(const LoadInfo& info);

  /// Sender-side bookkeeping: every scheduler immediately accounts a
  /// placement it initiated (`width` slots plus estimated demand) against its
  /// copy of the board, so successive placements spread instead of
  /// dog-piling one stale "lightly loaded" entry. The *actual* demand remains
  /// unknown until the next exchange — which is what lets big jobs collide.
  void note_placement(NodeId node, Bytes estimated_demand, int width = 1);

  /// Reservations are control-path actions coordinated by the
  /// reconfiguration routine, not subject to exchange staleness: the flag is
  /// reflected on the board immediately.
  void set_reserved(NodeId node, bool reserved);

  const LoadInfo& info(NodeId node) const { return infos_[node]; }
  const std::vector<LoadInfo>& all() const { return infos_; }
  std::size_t size() const { return infos_.size(); }

  /// Heap-indexed view of the snapshots. First heap: (slots asc, idle desc)
  /// for submission targets; second heap: (idle desc) for migration targets.
  /// Failed and reserved nodes are absent from both heaps.
  const ClusterIndex& index() const { return index_; }

  /// Accumulated idle memory across the *live* workstations — the quantity
  /// §2.1 compares against the average user memory to decide whether
  /// reconfiguring can help at all. Failed nodes' stale snapshots are
  /// excluded: a crashed node contributes no usable idle memory.
  Bytes cluster_idle_memory() const { return index_.total_idle(); }

  /// Average per-workstation user memory over live nodes.
  Bytes average_user_memory() const;

  // --- shadow-audit surface (DESIGN.md §13.5) ---
  /// Cross-checks the indexed view against the snapshot table it mirrors:
  /// every index row must equal state_from() of the corresponding LoadInfo,
  /// and the index must pass its own audit_verify(). Compiled in every build;
  /// called under -DVRC_AUDIT=ON from Cluster's exchange hook. Returns false
  /// and describes the first mismatch in `why` (when non-null).
  bool audit_verify(std::string* why) const;

 private:
  /// Projection of one published snapshot onto the index's key fields —
  /// the single definition both publish() and audit_verify() rank by.
  static ClusterIndex::NodeState state_from(const LoadInfo& info);

  /// Re-syncs `node`'s row into the indexed view after an infos_ write.
  void publish(NodeId node);  // vrc:publish-fn

  // Both halves of the board are board-visible by definition; the
  // publish-audit lint (DESIGN.md §13.3) checks every writer re-syncs the
  // index via publish() before returning.
  std::vector<LoadInfo> infos_;  // vrc:board-visible
  ClusterIndex index_;           // vrc:board-visible
};

}  // namespace vrc::cluster
