#include "cluster/config.h"

#include <cerrno>
#include <cstdlib>

namespace vrc::cluster {

std::optional<RestartPolicy> parse_restart_policy(const std::string& text) {
  if (text == "lose") return RestartPolicy::kLose;
  if (text == "resubmit") return RestartPolicy::kResubmit;
  return std::nullopt;
}

ClusterConfig ClusterConfig::homogeneous(std::size_t count, const NodeConfig& node,
                                         double reference_mhz) {
  ClusterConfig config;
  config.nodes.assign(count, node);
  config.reference_mhz = reference_mhz;
  return config;
}

ClusterConfig ClusterConfig::paper_cluster1(std::size_t count) {
  NodeConfig node;
  node.cpu_mhz = 400.0;
  node.memory = megabytes(384);
  node.swap = megabytes(380);
  return homogeneous(count, node, 400.0);
}

ClusterConfig ClusterConfig::paper_cluster2(std::size_t count) {
  NodeConfig node;
  node.cpu_mhz = 233.0;
  node.memory = megabytes(128);
  node.swap = megabytes(128);
  ClusterConfig config = homogeneous(count, node, 233.0);
  config.admission_demand_estimate = megabytes(18);
  return config;
}

namespace {

// One override assignment attempt: false + a "expected <type>, e.g. <ex>"
// fragment in *expected on a malformed value.
bool set_double(const std::string& value, double* out, std::string* expected) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || errno != 0 || end == value.c_str() || *end != '\0') {
    *expected = "double, e.g. 0.85";
    return false;
  }
  *out = parsed;
  return true;
}

bool set_int(const std::string& value, int* out, std::string* expected) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || errno != 0 || end == value.c_str() || *end != '\0') {
    *expected = "int, e.g. 5";
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool set_uint64(const std::string& value, std::uint64_t* out, std::string* expected) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || errno != 0 || end == value.c_str() || *end != '\0' ||
      value.front() == '-') {
    *expected = "uint64, e.g. 42";
    return false;
  }
  *out = parsed;
  return true;
}

bool set_bool(const std::string& value, bool* out, std::string* expected) {
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    *out = false;
    return true;
  }
  *expected = "bool, e.g. 1";
  return false;
}

bool set_bytes(const std::string& value, Bytes* out, std::string* expected) {
  if (!parse_bytes(value, out)) {
    *expected = "bytes with optional unit suffix, e.g. 128MB";
    return false;
  }
  return true;
}

bool set_duration(const std::string& value, SimTime* out, std::string* expected) {
  if (!parse_duration(value, out)) {
    *expected = "duration with optional unit suffix, e.g. 10ms";
    return false;
  }
  return true;
}

/// Applies one `node.<i>.<field>` / `node.*.<field>` override to `config`.
bool apply_node_override(ClusterConfig& config, const std::string& key,
                         const std::string& value, std::string* error) {
  const std::string rest = key.substr(5);  // past "node."
  const std::size_t dot = rest.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
    *error = "config override '" + key +
             "': per-node keys are node.<index>.<field> or node.*.<field> "
             "(fields: cpu_mhz, memory, swap, kernel_reserved)";
    return false;
  }
  const std::string index_text = rest.substr(0, dot);
  const std::string field = rest.substr(dot + 1);

  std::size_t first = 0;
  std::size_t last = config.nodes.size();  // exclusive
  if (index_text != "*") {
    errno = 0;
    char* end = nullptr;
    const unsigned long long index = std::strtoull(index_text.c_str(), &end, 10);
    if (errno != 0 || end == index_text.c_str() || *end != '\0') {
      *error = "config override '" + key + "': node index must be a number or '*'";
      return false;
    }
    if (index >= config.nodes.size()) {
      *error = "config override '" + key + "': node index " + index_text +
               " out of range (cluster has " + std::to_string(config.nodes.size()) + " nodes)";
      return false;
    }
    first = static_cast<std::size_t>(index);
    last = first + 1;
  }

  std::string expected;
  for (std::size_t i = first; i < last; ++i) {
    NodeConfig& node = config.nodes[i];
    bool ok = true;
    if (field == "cpu_mhz") {
      ok = set_double(value, &node.cpu_mhz, &expected);
    } else if (field == "memory") {
      ok = set_bytes(value, &node.memory, &expected);
    } else if (field == "swap") {
      ok = set_bytes(value, &node.swap, &expected);
    } else if (field == "kernel_reserved") {
      ok = set_bytes(value, &node.kernel_reserved, &expected);
    } else {
      *error = "config override '" + key + "': unknown node field '" + field +
               "' (known fields: cpu_mhz, memory, swap, kernel_reserved)";
      return false;
    }
    if (!ok) {
      *error = "config override '" + key + "': invalid value '" + value + "' (expected " +
               expected + ")";
      return false;
    }
  }
  return true;
}

}  // namespace

bool ClusterConfig::apply_overrides(const std::map<std::string, std::string>& overrides,
                                    std::string* error) {
  std::string local_error;
  std::string* err = error ? error : &local_error;
  ClusterConfig updated = *this;

  auto fail_value = [err](const std::string& key, const std::string& value,
                          const std::string& expected) {
    *err = "config override '" + key + "': invalid value '" + value + "' (expected " +
           expected + ")";
    return false;
  };

  // Scalar keys first (including a `nodes` resize), so per-node overrides in
  // the same map always target the final node count.
  for (const auto& [key, value] : overrides) {
    if (key.rfind("node.", 0) == 0) continue;
    std::string expected;
    bool ok = true;
    if (key == "nodes") {
      int count = 0;
      ok = set_int(value, &count, &expected);
      if (ok && count <= 0) {
        ok = false;
        expected = "positive int, e.g. 32";
      }
      if (ok) {
        if (updated.nodes.empty()) {
          *err = "config override 'nodes': cannot resize a cluster with no node template";
          return false;
        }
        updated.nodes.assign(static_cast<std::size_t>(count), updated.nodes[0]);
      }
    } else if (key == "reference_mhz") {
      ok = set_double(value, &updated.reference_mhz, &expected);
    } else if (key == "page_size") {
      ok = set_bytes(value, &updated.page_size, &expected);
    } else if (key == "page_fault_service") {
      ok = set_duration(value, &updated.page_fault_service, &expected);
    } else if (key == "context_switch") {
      ok = set_duration(value, &updated.context_switch, &expected);
    } else if (key == "quantum") {
      ok = set_duration(value, &updated.quantum, &expected);
    } else if (key == "tick") {
      ok = set_duration(value, &updated.tick, &expected);
    } else if (key == "network_mbps") {
      ok = set_double(value, &updated.network_mbps, &expected);
    } else if (key == "remote_submit_cost") {
      ok = set_duration(value, &updated.remote_submit_cost, &expected);
    } else if (key == "network_contention") {
      ok = set_bool(value, &updated.network_contention, &expected);
    } else if (key == "cpu_threshold") {
      ok = set_int(value, &updated.cpu_threshold, &expected);
    } else if (key == "memory_threshold") {
      ok = set_double(value, &updated.memory_threshold, &expected);
    } else if (key == "admission_demand_estimate") {
      ok = set_bytes(value, &updated.admission_demand_estimate, &expected);
    } else if (key == "fault_rate_threshold") {
      ok = set_double(value, &updated.fault_rate_threshold, &expected);
    } else if (key == "fault_rate_tau") {
      ok = set_duration(value, &updated.fault_rate_tau, &expected);
    } else if (key == "load_exchange_period") {
      ok = set_duration(value, &updated.load_exchange_period, &expected);
    } else if (key == "policy_period") {
      ok = set_duration(value, &updated.policy_period, &expected);
    } else if (key == "pressure_callback_interval") {
      ok = set_duration(value, &updated.pressure_callback_interval, &expected);
    } else if (key == "migration_cooldown") {
      ok = set_duration(value, &updated.migration_cooldown, &expected);
    } else if (key == "resize.fixed_cost") {
      ok = set_duration(value, &updated.resize_fixed_cost, &expected);
      if (ok && updated.resize_fixed_cost < 0.0) {
        ok = false;
        expected = "non-negative duration, e.g. 0.5s";
      }
    } else if (key == "resize.per_slot_cost") {
      ok = set_duration(value, &updated.resize_per_slot_cost, &expected);
      if (ok && updated.resize_per_slot_cost < 0.0) {
        ok = false;
        expected = "non-negative duration, e.g. 0.25s";
      }
    } else if (key == "resize.min_interval") {
      ok = set_duration(value, &updated.resize_min_interval, &expected);
      if (ok && updated.resize_min_interval < 0.0) {
        ok = false;
        expected = "non-negative duration, e.g. 2s (0 disables)";
      }
    } else if (key == "fault_exposure_knee") {
      ok = set_double(value, &updated.fault_exposure_knee, &expected);
    } else if (key == "stochastic_faults") {
      ok = set_bool(value, &updated.stochastic_faults, &expected);
    } else if (key == "seed") {
      ok = set_uint64(value, &updated.seed, &expected);
    } else if (key == "fault.mtbf") {
      ok = set_duration(value, &updated.fault_mtbf, &expected);
      if (ok && updated.fault_mtbf < 0.0) {
        ok = false;
        expected = "non-negative duration, e.g. 2000s (0 disables)";
      }
    } else if (key == "fault.mttr") {
      ok = set_duration(value, &updated.fault_mttr, &expected);
      if (ok && updated.fault_mttr <= 0.0) {
        ok = false;
        expected = "positive duration, e.g. 60s";
      }
    } else if (key == "fault.seed") {
      ok = set_uint64(value, &updated.fault_seed, &expected);
    } else if (key == "fault.restart") {
      if (parse_restart_policy(value)) {
        updated.fault_restart = value;
      } else {
        ok = false;
        expected = "'lose' or 'resubmit'";
      }
    } else {
      std::string known;
      for (const OverrideKeyDoc& doc : override_keys()) {
        known += (known.empty() ? "" : ", ") + doc.key;
      }
      *err = "unknown config override '" + key + "' (known keys: " + known + ")";
      return false;
    }
    if (!ok) return fail_value(key, value, expected);
  }

  for (const auto& [key, value] : overrides) {
    if (key.rfind("node.", 0) != 0) continue;
    if (!apply_node_override(updated, key, value, err)) return false;
  }

  *this = std::move(updated);
  return true;
}

const std::vector<ClusterConfig::OverrideKeyDoc>& ClusterConfig::override_keys() {
  static const std::vector<OverrideKeyDoc>* keys = new std::vector<OverrideKeyDoc>{
      {"nodes", "int", "workstation count (replicates the first node's hardware)"},
      {"reference_mhz", "double", "CPU speed the workload lifetimes were measured at"},
      {"page_size", "bytes", "VM page size (paper: 4KB)"},
      {"page_fault_service", "duration", "page-fault service time (paper: 10ms)"},
      {"context_switch", "duration", "context-switch cost (paper: 0.1ms)"},
      {"quantum", "duration", "round-robin quantum of the local scheduler"},
      {"tick", "duration", "simulation tick (paper trace granularity: 10ms)"},
      {"network_mbps", "double", "Ethernet bandwidth (paper: 10)"},
      {"remote_submit_cost", "duration", "fixed remote submission cost r (paper: 0.1s)"},
      {"network_contention", "bool", "serialize migrations on the shared segment"},
      {"cpu_threshold", "int", "CPU threshold: max job slots per workstation"},
      {"memory_threshold", "double", "memory threshold of [3], fraction of user memory"},
      {"admission_demand_estimate", "bytes", "assumed demand of an unknown incoming job"},
      {"fault_rate_threshold", "double", "page-fault rate (faults/s EMA) marking pressure"},
      {"fault_rate_tau", "duration", "EMA time constant of the fault-rate monitor"},
      {"load_exchange_period", "duration", "load-index exchange period"},
      {"policy_period", "duration", "periodic policy pulse (pending retries, drains)"},
      {"pressure_callback_interval", "duration", "min spacing of on_node_pressure per node"},
      {"migration_cooldown", "duration", "min time between outgoing migrations per node"},
      {"resize.fixed_cost", "duration", "fixed malleable-resize pause; overrides job contracts"},
      {"resize.per_slot_cost", "duration",
       "per-slot malleable-resize pause; overrides job contracts"},
      {"resize.min_interval", "duration", "min spacing of resize starts per node (0 = off)"},
      {"fault_exposure_knee", "double", "knee of the fault-exposure curve (DESIGN.md §5)"},
      {"stochastic_faults", "bool", "Poisson-sample per-tick faults instead of expectation"},
      {"seed", "uint64", "cluster-internal RNG seed (stochastic faults)"},
      {"fault.mtbf", "duration", "per-node mean time between failures; 0 = generator off"},
      {"fault.mttr", "duration", "per-node mean time to repair"},
      {"fault.seed", "uint64", "fault-schedule RNG seed; 0 derives it from `seed`"},
      {"fault.restart", "string", "restart policy for killed jobs: lose | resubmit"},
      {"node.<i>.cpu_mhz", "double", "per-node CPU speed; <i> is an index or '*'"},
      {"node.<i>.memory", "bytes", "per-node physical memory, e.g. node.3.memory=128MB"},
      {"node.<i>.swap", "bytes", "per-node swap space"},
      {"node.<i>.kernel_reserved", "bytes", "per-node kernel/daemon memory"},
  };
  return *keys;
}

}  // namespace vrc::cluster

