#include "cluster/config.h"

namespace vrc::cluster {

ClusterConfig ClusterConfig::homogeneous(std::size_t count, const NodeConfig& node,
                                         double reference_mhz) {
  ClusterConfig config;
  config.nodes.assign(count, node);
  config.reference_mhz = reference_mhz;
  return config;
}

ClusterConfig ClusterConfig::paper_cluster1(std::size_t count) {
  NodeConfig node;
  node.cpu_mhz = 400.0;
  node.memory = megabytes(384);
  node.swap = megabytes(380);
  return homogeneous(count, node, 400.0);
}

ClusterConfig ClusterConfig::paper_cluster2(std::size_t count) {
  NodeConfig node;
  node.cpu_mhz = 233.0;
  node.memory = megabytes(128);
  node.swap = megabytes(128);
  ClusterConfig config = homogeneous(count, node, 233.0);
  config.admission_demand_estimate = megabytes(18);
  return config;
}

}  // namespace vrc::cluster
