// Cluster configuration and the paper's two simulated testbeds.
//
// Section 3.3.1: two homogeneous 32-workstation clusters. Cluster 1 (for the
// SPEC group): 400 MHz CPUs, 384 MB memory, 380 MB swap. Cluster 2 (for the
// application group): 233 MHz, 128 MB, 128 MB swap. Both: 4 KB pages, 10 ms
// page-fault service, 0.1 ms context switch, 10 Mbps Ethernet, 0.1 s remote
// submission cost, migration cost r + D/B.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace vrc::cluster {

/// What happens to a job killed by a node failure (fault injection).
enum class RestartPolicy {
  kLose,      // restart from zero work; re-placed via the periodic retry
  kResubmit,  // restart from zero work and re-enter the arrival path
};

/// Parses "lose" / "resubmit"; std::nullopt on anything else.
std::optional<RestartPolicy> parse_restart_policy(const std::string& text);

/// Per-workstation hardware description (heterogeneous clusters give each
/// node its own entry).
struct NodeConfig {
  double cpu_mhz = 400.0;
  Bytes memory = megabytes(384);
  Bytes swap = megabytes(380);
  /// Memory held by the kernel and system daemons; user space is
  /// memory - kernel_reserved.
  Bytes kernel_reserved = megabytes(16);
};

/// Full simulation configuration: hardware, OS cost model, network model,
/// and the load-sharing thresholds of [3].
struct ClusterConfig {
  std::vector<NodeConfig> nodes;

  /// CPU speed the workload lifetimes were measured at; a node with
  /// cpu_mhz == reference_mhz executes a job in exactly its catalog lifetime.
  double reference_mhz = 400.0;

  // --- OS cost model (paper §3.3.1) ---
  Bytes page_size = 4 * kKiB;
  SimTime page_fault_service = milliseconds(10);
  SimTime context_switch = milliseconds(0.1);
  /// Round-robin quantum of the intra-workstation scheduler.
  SimTime quantum = milliseconds(10);
  /// Simulation tick; matches the paper's 10 ms trace-record granularity.
  SimTime tick = milliseconds(10);

  // --- network model ---
  double network_mbps = 10.0;
  /// Fixed remote submission / execution cost r.
  SimTime remote_submit_cost = 0.1;
  /// When true, migrations serialize on the shared Ethernet segment instead
  /// of using the paper's contention-free r + D/B cost (ablation).
  bool network_contention = false;

  // --- load-sharing thresholds (reconstruction of [3]) ---
  /// CPU threshold: maximum job slots a workstation is willing to take.
  int cpu_threshold = 5;
  /// Memory threshold of [3]: the scheduler only admits a job while the
  /// node's committed demand stays below this fraction of user memory,
  /// keeping headroom for the (unknown) demand growth of running jobs.
  double memory_threshold = 0.85;
  /// Demand the admission control assumes for an incoming job whose memory
  /// requirement is still unknown (set to a typical working set). Fragments
  /// of idle memory smaller than this stay unused — the "accumulated idle
  /// memory" a virtual reconfiguration consolidates.
  Bytes admission_demand_estimate = megabytes(60);
  /// A node is memory-pressured when its page-fault rate (faults/s, EMA)
  /// exceeds this, or when its demand exceeds user memory.
  double fault_rate_threshold = 15.0;
  /// EMA time constant for the per-node fault-rate monitor.
  SimTime fault_rate_tau = 2.0;
  /// Load-index exchange period ("periodically collects and distributes").
  SimTime load_exchange_period = 1.0;
  /// How often pending (blocked) jobs retry placement and policies run their
  /// periodic logic (reservation drain checks etc.).
  SimTime policy_period = 0.25;
  /// Minimum spacing of on_node_pressure callbacks per node.
  SimTime pressure_callback_interval = 0.5;
  /// Minimum time between two outgoing preemptive migrations from one node.
  SimTime migration_cooldown = 4.0;

  // --- malleable reconfiguration (DESIGN.md §15) ---
  /// When >= 0, overrides the fixed pause cost of every malleable resize;
  /// negative (default) uses each job's Malleability contract.
  SimTime resize_fixed_cost = -1.0;
  /// When >= 0, overrides the per-slot pause cost of every malleable resize;
  /// negative (default) uses each job's Malleability contract.
  SimTime resize_per_slot_cost = -1.0;
  /// Minimum spacing between resize starts on one node; 0 (default) is
  /// unlimited. Damps shrink/grow oscillation at the mechanism level.
  SimTime resize_min_interval = 0.0;

  // --- paging model (DESIGN.md §5 substitution 2) ---
  /// Knee of the fault-exposure curve exposure = O / (O + knee). Working
  /// sets cycle (LRU-loop behaviour, [6]): once demand exceeds user memory,
  /// pages are evicted shortly before reuse, so even a small relative
  /// deficit exposes a large share of page touches; exposure saturates
  /// toward 1 as overcommit grows.
  double fault_exposure_knee = 0.05;
  /// When true, per-tick fault counts are Poisson-sampled instead of using
  /// the deterministic expectation.
  bool stochastic_faults = false;
  /// Seed for the cluster's internal randomness (stochastic faults).
  std::uint64_t seed = 42;

  // --- fault injection (src/faults; DESIGN.md §10) ---
  /// Per-node mean time between failures (exponential). 0 disables the
  /// stochastic generator; explicit scenario `fault` entries still apply.
  SimTime fault_mtbf = 0.0;
  /// Per-node mean time to repair (exponential).
  SimTime fault_mttr = 60.0;
  /// Seed of the fault schedule's dedicated RNG stream; 0 derives it from
  /// `seed`, so matched-pairs policy comparisons see identical failures.
  std::uint64_t fault_seed = 0;
  /// "lose" or "resubmit" — what happens to jobs killed by a failure.
  std::string fault_restart = "lose";

  /// Number of workstations.
  std::size_t num_nodes() const { return nodes.size(); }

  /// Builds a homogeneous cluster of `count` identical nodes.
  static ClusterConfig homogeneous(std::size_t count, const NodeConfig& node,
                                   double reference_mhz);

  /// Paper testbed 1: 32 x (400 MHz, 384 MB, 380 MB swap) for the SPEC group.
  static ClusterConfig paper_cluster1(std::size_t count = 32);

  /// Paper testbed 2: 32 x (233 MHz, 128 MB, 128 MB swap) for the app group.
  static ClusterConfig paper_cluster2(std::size_t count = 32);

  /// Applies text-form `key=value` overrides to this config — the cluster
  /// half of a declarative scenario. Covers every §3.3.1 knob (see
  /// override_keys()), with unit suffixes on memory ("128MB") and time
  /// ("10ms") values, plus per-node heterogeneous overrides:
  ///
  ///   node.3.memory=128MB        one workstation
  ///   node.*.cpu_mhz=233        every workstation
  ///
  /// Strict: an unknown key or malformed value fails with a precise message
  /// (key, expected type, an example) and *this is left unmodified.
  bool apply_overrides(const std::map<std::string, std::string>& overrides,
                       std::string* error = nullptr);

  /// Documentation for one override key (drives error text and DESIGN.md §9).
  struct OverrideKeyDoc {
    std::string key;
    std::string type;  // "int" | "double" | "bool" | "uint64" | "bytes" | "duration" | "string"
    std::string help;
  };

  /// Every key apply_overrides accepts, in a stable order. Per-node fields
  /// are documented once under the "node.<i>." prefix.
  static const std::vector<OverrideKeyDoc>& override_keys();
};

}  // namespace vrc::cluster
