// Zero-overhead-when-off performance counters for the simulation hot paths.
//
// The scaling work (DESIGN.md §12) needs to *attribute* cost — how many
// snapshots an exchange published, how many nodes a tick visited, how many
// heap operations a run performed — without perturbing the paths it measures.
// The design:
//
//   - Counting sites call `perf_add(&PerfCounters::field)`. When no capture
//     is installed on the current thread this is a thread-local pointer load
//     plus a branch; no atomics, no locks, no allocation.
//   - `ScopedPerfCapture` (installed by core::run_experiment) binds a local
//     PerfCounters to the thread for the duration of a run and merges it
//     into a process-wide, mutex-protected aggregate at destruction. Sweep
//     cells run on ThreadPool workers, so per-thread locals + one merge per
//     run keeps the counters data-race-free under TSan.
//   - Capture only activates when `set_perf_capture_enabled(true)` was called
//     (the `vrc_run --perf-counters` flag); otherwise ScopedPerfCapture is a
//     no-op and every counting site stays on the null-pointer fast path.
//
// Counter values are write-only observability: nothing in the simulation
// reads them, so they cannot affect event order or any golden.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace vrc::metrics {

/// One thread's (or the merged global) counter set. Plain additive fields so
/// merging is field-wise summation.
struct PerfCounters {
  // Discrete-event engine.
  std::uint64_t events_executed = 0;
  // IndexedHeap maintenance across both ClusterIndex instances.
  std::uint64_t heap_upserts = 0;
  std::uint64_t heap_erases = 0;
  std::uint64_t heap_best_queries = 0;
  // Load-information exchange (dirty-set incremental path).
  std::uint64_t exchange_rounds = 0;
  std::uint64_t exchange_dirty_visited = 0;   // dirty-set entries drained
  std::uint64_t exchange_failed_skips = 0;    // dirty-but-down nodes, no snapshot built
  std::uint64_t snapshots_published = 0;      // board publishes (exchange + immediate)
  std::uint64_t immediate_publishes = 0;      // fail/recover out-of-band broadcasts
  // Tick loop (active-set path).
  std::uint64_t tick_rounds = 0;
  std::uint64_t node_ticks = 0;               // workstation ticks actually executed
  std::uint64_t pressure_callbacks = 0;
  // Policy placement scans (each is one indexed best() decision).
  std::uint64_t submission_scans = 0;
  std::uint64_t migration_scans = 0;
  std::uint64_t reservation_scans = 0;
  // M-Reconfiguration (malleable width changes, DESIGN.md §15).
  std::uint64_t resizes_started = 0;
  std::uint64_t resize_completions = 0;
  // Streaming arrival pump (Cluster::submit_source).
  std::uint64_t stream_arrivals = 0;       // specs pulled from an ArrivalSource
  std::uint64_t spec_slots_recycled = 0;   // free-list hits (slab reuse)
  std::uint64_t peak_live_specs = 0;       // MAX-merged: high-water live specs
  // Wall-time buckets (ns). Observability only — never read by simulation
  // code, so host timing cannot leak into event order.
  std::uint64_t exchange_wall_ns = 0;
  std::uint64_t tick_wall_ns = 0;

  /// Field-wise sum of `other` into this (peak_live_specs is max-merged: a
  /// high-water mark across runs is the max of per-run peaks, not their sum).
  void merge(const PerfCounters& other);

  /// (label, value) pairs in declaration order, for printing.
  std::vector<std::pair<const char*, std::uint64_t>> entries() const;
};

namespace perf_detail {
/// Thread-local capture target; null when no ScopedPerfCapture is active on
/// this thread (the common case — every counting site fast-paths on it).
inline thread_local PerfCounters* tl_counters = nullptr;

/// Monotonic nanoseconds for the wall-time buckets (implemented in the .cc
/// behind the determinism escape hatch; only called while a capture is
/// active).
std::uint64_t monotonic_ns();
}  // namespace perf_detail

/// Adds `n` to `field` of the thread's active capture; no-op otherwise.
inline void perf_add(std::uint64_t PerfCounters::* field, std::uint64_t n = 1) {
  if (PerfCounters* counters = perf_detail::tl_counters) counters->*field += n;
}

/// Raises `field` of the thread's active capture to at least `value`
/// (high-water-mark counters); no-op when no capture is active.
inline void perf_max(std::uint64_t PerfCounters::* field, std::uint64_t value) {
  if (PerfCounters* counters = perf_detail::tl_counters) {
    if (counters->*field < value) counters->*field = value;
  }
}

/// True when a ScopedPerfCapture is active on the current thread.
inline bool perf_capture_active() { return perf_detail::tl_counters != nullptr; }

/// Global switch read by ScopedPerfCapture at construction. Off by default so
/// every run outside `vrc_run --perf-counters` stays on the fast path.
bool perf_capture_enabled();
void set_perf_capture_enabled(bool enabled);

/// Returns the process-wide aggregate merged from finished captures and
/// resets it to zero (read-and-clear, so sequential runs don't bleed).
PerfCounters take_perf_aggregate();

/// RAII capture: when the global switch is on, binds a fresh PerfCounters to
/// this thread for its lifetime and merges it into the process aggregate at
/// destruction. Nestable (the outer capture resumes); cheap no-op when off.
class ScopedPerfCapture {
 public:
  ScopedPerfCapture();
  ~ScopedPerfCapture();
  ScopedPerfCapture(const ScopedPerfCapture&) = delete;
  ScopedPerfCapture& operator=(const ScopedPerfCapture&) = delete;

  bool active() const { return active_; }

 private:
  PerfCounters local_;
  PerfCounters* previous_ = nullptr;
  bool active_ = false;
};

/// RAII wall-time bucket: adds the scope's duration (ns) to `field` of the
/// thread's active capture. No clock is read when no capture is active.
class ScopedPerfTimer {
 public:
  explicit ScopedPerfTimer(std::uint64_t PerfCounters::* field) : field_(field) {
    if (perf_detail::tl_counters != nullptr) start_ns_ = perf_detail::monotonic_ns() + 1;
  }
  ~ScopedPerfTimer() {
    if (start_ns_ == 0) return;
    if (PerfCounters* counters = perf_detail::tl_counters) {
      counters->*field_ += perf_detail::monotonic_ns() + 1 - start_ns_;
    }
  }
  ScopedPerfTimer(const ScopedPerfTimer&) = delete;
  ScopedPerfTimer& operator=(const ScopedPerfTimer&) = delete;

 private:
  std::uint64_t PerfCounters::* field_;
  std::uint64_t start_ns_ = 0;  // 0 = inactive (start stored with +1 bias)
};

}  // namespace vrc::metrics
