// Run reports: every quantity the paper's evaluation section reports,
// computed from one simulated (trace, policy) run.
//
//  * total execution time T_exe = sum of per-job wall-clock times and its §5
//    breakdown T_cpu + T_page + T_que + T_mig;
//  * average slowdown (wall-clock / CPU execution time) — Figures 2 & 4;
//  * average idle memory volume, sampled periodically — Figure 2 (right);
//  * average job balance skew: the standard deviation of active-job counts
//    across non-reserved workstations, sampled periodically — Figure 4
//    (right).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cluster/running_job.h"
#include "sim/stats.h"
#include "util/units.h"

namespace vrc::metrics {

/// Time-sampled cluster signal summarized at one sampling interval.
struct SampledSignal {
  SimTime interval = 1.0;
  double average = 0.0;
  double minimum = 0.0;
  double maximum = 0.0;
  std::size_t samples = 0;
};

/// Aggregate result of one simulation run.
struct RunReport {
  std::string policy;
  std::string trace;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  SimTime makespan = 0.0;  // completion time of the last job

  // §5 decomposition (sums over all completed jobs, seconds).
  SimTime total_execution = 0.0;  // T_exe = sum of wall-clock times
  SimTime total_cpu = 0.0;
  SimTime total_page = 0.0;
  SimTime total_queue = 0.0;
  SimTime total_migration = 0.0;

  double avg_slowdown = 0.0;
  double median_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double max_slowdown = 0.0;

  // Figure 2/4 right-hand metrics at the default 1 s interval.
  double avg_idle_memory_mb = 0.0;
  double avg_balance_skew = 0.0;
  // The same signals at every configured sampling interval (the paper's
  // insensitivity check across 1 s / 10 s / 30 s / 1 min).
  std::vector<SampledSignal> idle_memory_mb;
  std::vector<SampledSignal> balance_skew;

  // Mechanism counters.
  std::uint64_t migrations = 0;
  std::uint64_t remote_submits = 0;
  std::uint64_t local_placements = 0;
  double total_faults = 0.0;

  // Fault-injection outcomes (all zero on a fault-free run; DESIGN.md §10).
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t job_restarts = 0;  // sum of per-job restart counts
  std::uint64_t transfer_failures = 0;
  /// Reference-CPU seconds of completed work discarded by node failures.
  double work_lost_cpu_seconds = 0.0;
  /// Node-seconds the cluster spent down over the observation window.
  double downtime_node_seconds = 0.0;
  /// Fraction of node-time the cluster was up: 1 - downtime / (N * elapsed).
  double availability = 1.0;

  // Malleable reconfiguration outcomes (DESIGN.md §15). All zero on a rigid
  // workload, so pre-malleability report renderings stay byte-identical.
  /// Completed jobs whose spec carried a resizable malleability contract.
  std::uint64_t malleable_jobs = 0;
  /// Width reconfigurations that ran to completion (sum over completed jobs).
  std::uint64_t resizes = 0;
  /// Resizes cut short by the owning node failing mid-flight.
  std::uint64_t resizes_aborted = 0;
  /// Integral of width over running time, slot-seconds: the slot-time a rigid
  /// run of the same jobs would have pinned is jobs * max_width * runtime;
  /// the gap is capacity malleability handed back to the cluster.
  double width_time_product = 0.0;

  // Streaming-pump statistics (DESIGN.md §14): false/0 on materialized runs,
  // so pre-streaming report renderings stay byte-identical.
  bool streamed = false;
  /// High-water mark of live streamed JobSpecs — the bounded-memory evidence
  /// that a long stream ran in O(concurrent jobs) spec storage.
  std::uint64_t peak_live_specs = 0;

  // Policy-specific counters (SchedulerPolicy::stats()), filled by the
  // experiment runner.
  std::vector<std::pair<std::string, double>> policy_stats;

  std::vector<cluster::CompletedJob> jobs;  // per-job records (completion order)

  /// Average of per-job t_queue — the paper's "queuing times" series.
  SimTime total_queuing_time() const { return total_queue; }
};

/// Relative reduction of `ours` versus `baseline` (positive = improvement),
/// e.g. reduction(T_exe(G-LS), T_exe(V-Recon)) ~ 0.3 for the SPEC traces.
double reduction(double baseline, double ours);

/// Renders a one-run summary (human-readable, multi-line).
std::string describe(const RunReport& report);

}  // namespace vrc::metrics
