#include "metrics/report.h"

#include <sstream>

namespace vrc::metrics {

double reduction(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline;
}

std::string describe(const RunReport& report) {
  std::ostringstream os;
  os.precision(4);
  os << report.policy << " on " << report.trace << ": " << report.jobs_completed << '/'
     << report.jobs_submitted << " jobs, makespan " << report.makespan << " s\n";
  os << "  T_exe=" << report.total_execution << " s (cpu=" << report.total_cpu
     << " page=" << report.total_page << " queue=" << report.total_queue
     << " mig=" << report.total_migration << ")\n";
  os << "  slowdown avg=" << report.avg_slowdown << " median=" << report.median_slowdown
     << " p95=" << report.p95_slowdown << " max=" << report.max_slowdown << '\n';
  os << "  idle memory avg=" << report.avg_idle_memory_mb
     << " MB, balance skew avg=" << report.avg_balance_skew << '\n';
  os << "  migrations=" << report.migrations << " remote=" << report.remote_submits
     << " local=" << report.local_placements << " faults=" << report.total_faults << '\n';
  if (report.node_crashes > 0) {
    os << "  crashes=" << report.node_crashes << " recoveries=" << report.node_recoveries
       << " jobs_killed=" << report.jobs_killed << " restarts=" << report.job_restarts
       << " transfer_failures=" << report.transfer_failures << '\n';
    os << "  work lost=" << report.work_lost_cpu_seconds
       << " cpu-s, downtime=" << report.downtime_node_seconds
       << " node-s, availability=" << report.availability << '\n';
  }
  if (report.malleable_jobs > 0) {
    os << "  malleable: jobs=" << report.malleable_jobs << " resizes=" << report.resizes
       << " aborted=" << report.resizes_aborted
       << " width-time=" << report.width_time_product << " slot-s\n";
  }
  if (report.streamed) {
    os << "  streamed: peak live specs=" << report.peak_live_specs << '\n';
  }
  if (!report.policy_stats.empty()) {
    os << "  policy:";
    for (const auto& [key, value] : report.policy_stats) os << ' ' << key << '=' << value;
    os << '\n';
  }
  return os.str();
}

}  // namespace vrc::metrics
