#include "metrics/collector.h"

#include <algorithm>

namespace vrc::metrics {

double balance_skew(const cluster::Cluster& cluster) {
  sim::RunningStats stats;
  for (int count : cluster.live_active_jobs(/*skip_reserved=*/true)) {
    stats.add(static_cast<double>(count));
  }
  return stats.population_stddev();
}

Collector::Collector(cluster::Cluster& cluster, CollectorOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  sim::Simulator& sim = cluster.simulator();
  for (SimTime interval : options_.sampling_intervals) {
    idle_samplers_.push_back(std::make_unique<sim::IntervalSampler>(
        sim, sim.now() + interval, interval,
        [this](SimTime) { return to_megabytes(cluster_.live_idle_memory()); }));
    skew_samplers_.push_back(std::make_unique<sim::IntervalSampler>(
        sim, sim.now() + interval, interval, [this](SimTime) { return balance_skew(cluster_); }));
  }
  cluster.add_finish_callback([this](SimTime) { stop(); });
}

void Collector::stop() {
  for (auto& sampler : idle_samplers_) sampler->stop();
  for (auto& sampler : skew_samplers_) sampler->stop();
}

namespace {

SampledSignal summarize(const sim::IntervalSampler& sampler) {
  SampledSignal signal;
  signal.interval = sampler.interval();
  signal.average = sampler.stats().mean();
  signal.minimum = sampler.stats().min();
  signal.maximum = sampler.stats().max();
  signal.samples = sampler.stats().count();
  return signal;
}

}  // namespace

RunReport Collector::report(const std::string& trace_name, const std::string& policy_name) const {
  RunReport report;
  report.policy = policy_name;
  report.trace = trace_name;
  report.jobs_submitted = cluster_.submitted_count();
  report.jobs_completed = cluster_.completed().size();

  sim::Percentiles slowdowns;
  sim::RunningStats slowdown_stats;
  for (const cluster::CompletedJob& job : cluster_.completed()) {
    report.makespan = std::max(report.makespan, job.completion_time);
    report.total_execution += job.wall_clock();
    report.total_cpu += job.t_cpu;
    report.total_page += job.t_page;
    report.total_queue += job.t_queue;
    report.total_migration += job.t_mig;
    report.total_faults += job.faults;
    if (job.malleable) {
      ++report.malleable_jobs;
      report.width_time_product += job.width_seconds;
    }
    report.resizes += static_cast<std::uint64_t>(job.resizes);
    slowdowns.add(job.slowdown());
    slowdown_stats.add(job.slowdown());
  }
  report.avg_slowdown = slowdown_stats.mean();
  report.median_slowdown = slowdowns.quantile(0.5);
  report.p95_slowdown = slowdowns.quantile(0.95);
  report.max_slowdown = slowdown_stats.max();

  for (const auto& sampler : idle_samplers_) {
    report.idle_memory_mb.push_back(summarize(*sampler));
  }
  for (const auto& sampler : skew_samplers_) {
    report.balance_skew.push_back(summarize(*sampler));
  }
  if (!report.idle_memory_mb.empty()) {
    report.avg_idle_memory_mb = report.idle_memory_mb.front().average;
  }
  if (!report.balance_skew.empty()) {
    report.avg_balance_skew = report.balance_skew.front().average;
  }

  report.resizes_aborted = cluster_.resizes_aborted();

  report.migrations = cluster_.migrations_started();
  report.remote_submits = cluster_.remote_submits();
  report.local_placements = cluster_.local_placements();

  report.node_crashes = cluster_.node_crashes();
  report.node_recoveries = cluster_.node_recoveries();
  report.jobs_killed = cluster_.jobs_killed();
  report.transfer_failures = cluster_.transfer_failures();
  for (const cluster::CompletedJob& job : cluster_.completed()) {
    report.job_restarts += static_cast<std::uint64_t>(job.restarts);
  }
  report.work_lost_cpu_seconds = cluster_.work_lost_cpu_seconds();
  const SimTime now = cluster_.simulator().now();
  report.downtime_node_seconds = cluster_.downtime_node_seconds(now);
  const double node_seconds = static_cast<double>(cluster_.num_nodes()) * now;
  report.availability =
      node_seconds > 0.0 ? 1.0 - report.downtime_node_seconds / node_seconds : 1.0;

  report.jobs = cluster_.completed();
  return report;
}

}  // namespace vrc::metrics
