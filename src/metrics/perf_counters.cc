#include "metrics/perf_counters.h"

#include <atomic>
#include <chrono>
#include <mutex>

namespace vrc::metrics {
namespace {

std::atomic<bool> g_capture_enabled{false};

std::mutex& aggregate_mutex() {
  static std::mutex mutex;
  return mutex;
}

PerfCounters& aggregate_storage() {
  static PerfCounters aggregate;
  return aggregate;
}

}  // namespace

void PerfCounters::merge(const PerfCounters& other) {
  events_executed += other.events_executed;
  heap_upserts += other.heap_upserts;
  heap_erases += other.heap_erases;
  heap_best_queries += other.heap_best_queries;
  exchange_rounds += other.exchange_rounds;
  exchange_dirty_visited += other.exchange_dirty_visited;
  exchange_failed_skips += other.exchange_failed_skips;
  snapshots_published += other.snapshots_published;
  immediate_publishes += other.immediate_publishes;
  tick_rounds += other.tick_rounds;
  node_ticks += other.node_ticks;
  pressure_callbacks += other.pressure_callbacks;
  submission_scans += other.submission_scans;
  migration_scans += other.migration_scans;
  reservation_scans += other.reservation_scans;
  resizes_started += other.resizes_started;
  resize_completions += other.resize_completions;
  stream_arrivals += other.stream_arrivals;
  spec_slots_recycled += other.spec_slots_recycled;
  if (other.peak_live_specs > peak_live_specs) peak_live_specs = other.peak_live_specs;
  exchange_wall_ns += other.exchange_wall_ns;
  tick_wall_ns += other.tick_wall_ns;
}

std::vector<std::pair<const char*, std::uint64_t>> PerfCounters::entries() const {
  return {
      {"events_executed", events_executed},
      {"heap_upserts", heap_upserts},
      {"heap_erases", heap_erases},
      {"heap_best_queries", heap_best_queries},
      {"exchange_rounds", exchange_rounds},
      {"exchange_dirty_visited", exchange_dirty_visited},
      {"exchange_failed_skips", exchange_failed_skips},
      {"snapshots_published", snapshots_published},
      {"immediate_publishes", immediate_publishes},
      {"tick_rounds", tick_rounds},
      {"node_ticks", node_ticks},
      {"pressure_callbacks", pressure_callbacks},
      {"submission_scans", submission_scans},
      {"migration_scans", migration_scans},
      {"reservation_scans", reservation_scans},
      {"resizes_started", resizes_started},
      {"resize_completions", resize_completions},
      {"stream_arrivals", stream_arrivals},
      {"spec_slots_recycled", spec_slots_recycled},
      {"peak_live_specs", peak_live_specs},
      {"exchange_wall_ns", exchange_wall_ns},
      {"tick_wall_ns", tick_wall_ns},
  };
}

namespace perf_detail {

std::uint64_t monotonic_ns() {
  // Host wall time feeding write-only observability counters: no simulation
  // code ever reads them, so this cannot affect event order or any golden.
  // NOLINT-determinism(write-only perf observability; values never read by simulation logic)
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace perf_detail

bool perf_capture_enabled() { return g_capture_enabled.load(std::memory_order_relaxed); }

void set_perf_capture_enabled(bool enabled) {
  g_capture_enabled.store(enabled, std::memory_order_relaxed);
}

PerfCounters take_perf_aggregate() {
  const std::lock_guard<std::mutex> lock(aggregate_mutex());
  PerfCounters& aggregate = aggregate_storage();
  PerfCounters out = aggregate;
  aggregate = PerfCounters{};
  return out;
}

ScopedPerfCapture::ScopedPerfCapture() {
  if (!perf_capture_enabled()) return;
  active_ = true;
  previous_ = perf_detail::tl_counters;
  perf_detail::tl_counters = &local_;
}

ScopedPerfCapture::~ScopedPerfCapture() {
  if (!active_) return;
  perf_detail::tl_counters = previous_;
  const std::lock_guard<std::mutex> lock(aggregate_mutex());
  aggregate_storage().merge(local_);
}

}  // namespace vrc::metrics
