// Metrics collection for a cluster run.
//
// A Collector attaches samplers to a live Cluster (idle memory volume and
// job-balance skew, at one or more sampling intervals) and, when the run
// finishes, folds the per-job records into a RunReport.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "metrics/report.h"
#include "sim/sampler.h"

namespace vrc::metrics {

/// Options controlling what a Collector samples.
struct CollectorOptions {
  /// Sampling intervals for the idle-memory / balance-skew signals. The
  /// first entry is the "primary" interval quoted in RunReport's scalar
  /// fields; the paper uses 1 s and cross-checks 10 s / 30 s / 60 s.
  std::vector<SimTime> sampling_intervals{1.0};
};

/// Attaches to a cluster before the run and produces the RunReport after.
class Collector {
 public:
  Collector(cluster::Cluster& cluster, CollectorOptions options = {});

  /// Stops sampling (also done automatically when the cluster finishes).
  void stop();

  /// Builds the report. Valid any time; normally called once the simulator
  /// drains. `trace_name` labels the report. On a streaming run
  /// (Cluster::submit_source) the total job count is open-ended until the
  /// source drains: jobs_submitted reflects the arrivals pumped so far, so a
  /// mid-stream report is a consistent progress snapshot rather than a
  /// fraction of a known total.
  RunReport report(const std::string& trace_name, const std::string& policy_name) const;

 private:
  cluster::Cluster& cluster_;
  CollectorOptions options_;
  std::vector<std::unique_ptr<sim::IntervalSampler>> idle_samplers_;
  std::vector<std::unique_ptr<sim::IntervalSampler>> skew_samplers_;
};

/// Population standard deviation of active-job counts over non-reserved
/// workstations — the paper's instantaneous "job balance skew".
double balance_skew(const cluster::Cluster& cluster);

}  // namespace vrc::metrics
