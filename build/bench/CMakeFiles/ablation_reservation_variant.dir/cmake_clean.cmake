file(REMOVE_RECURSE
  "CMakeFiles/ablation_reservation_variant.dir/ablation_reservation_variant.cc.o"
  "CMakeFiles/ablation_reservation_variant.dir/ablation_reservation_variant.cc.o.d"
  "CMakeFiles/ablation_reservation_variant.dir/bench_common.cc.o"
  "CMakeFiles/ablation_reservation_variant.dir/bench_common.cc.o.d"
  "ablation_reservation_variant"
  "ablation_reservation_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reservation_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
