# Empty compiler generated dependencies file for ablation_reservation_variant.
# This may be replaced when dependencies are built.
