file(REMOVE_RECURSE
  "CMakeFiles/table2_app_programs.dir/bench_common.cc.o"
  "CMakeFiles/table2_app_programs.dir/bench_common.cc.o.d"
  "CMakeFiles/table2_app_programs.dir/table2_app_programs.cc.o"
  "CMakeFiles/table2_app_programs.dir/table2_app_programs.cc.o.d"
  "table2_app_programs"
  "table2_app_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_app_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
