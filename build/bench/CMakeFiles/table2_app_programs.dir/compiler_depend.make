# Empty compiler generated dependencies file for table2_app_programs.
# This may be replaced when dependencies are built.
