file(REMOVE_RECURSE
  "CMakeFiles/ablation_suspension.dir/ablation_suspension.cc.o"
  "CMakeFiles/ablation_suspension.dir/ablation_suspension.cc.o.d"
  "CMakeFiles/ablation_suspension.dir/bench_common.cc.o"
  "CMakeFiles/ablation_suspension.dir/bench_common.cc.o.d"
  "ablation_suspension"
  "ablation_suspension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_suspension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
