file(REMOVE_RECURSE
  "CMakeFiles/fig1_group1_exec_queue.dir/bench_common.cc.o"
  "CMakeFiles/fig1_group1_exec_queue.dir/bench_common.cc.o.d"
  "CMakeFiles/fig1_group1_exec_queue.dir/fig1_group1_exec_queue.cc.o"
  "CMakeFiles/fig1_group1_exec_queue.dir/fig1_group1_exec_queue.cc.o.d"
  "fig1_group1_exec_queue"
  "fig1_group1_exec_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_group1_exec_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
