# Empty dependencies file for fig1_group1_exec_queue.
# This may be replaced when dependencies are built.
