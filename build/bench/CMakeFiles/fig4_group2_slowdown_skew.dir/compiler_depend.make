# Empty compiler generated dependencies file for fig4_group2_slowdown_skew.
# This may be replaced when dependencies are built.
