file(REMOVE_RECURSE
  "CMakeFiles/fig4_group2_slowdown_skew.dir/bench_common.cc.o"
  "CMakeFiles/fig4_group2_slowdown_skew.dir/bench_common.cc.o.d"
  "CMakeFiles/fig4_group2_slowdown_skew.dir/fig4_group2_slowdown_skew.cc.o"
  "CMakeFiles/fig4_group2_slowdown_skew.dir/fig4_group2_slowdown_skew.cc.o.d"
  "fig4_group2_slowdown_skew"
  "fig4_group2_slowdown_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_group2_slowdown_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
