# Empty compiler generated dependencies file for fig3_group2_exec_queue.
# This may be replaced when dependencies are built.
