file(REMOVE_RECURSE
  "CMakeFiles/fig3_group2_exec_queue.dir/bench_common.cc.o"
  "CMakeFiles/fig3_group2_exec_queue.dir/bench_common.cc.o.d"
  "CMakeFiles/fig3_group2_exec_queue.dir/fig3_group2_exec_queue.cc.o"
  "CMakeFiles/fig3_group2_exec_queue.dir/fig3_group2_exec_queue.cc.o.d"
  "fig3_group2_exec_queue"
  "fig3_group2_exec_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_group2_exec_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
