file(REMOVE_RECURSE
  "CMakeFiles/ablation_bigjob_fraction.dir/ablation_bigjob_fraction.cc.o"
  "CMakeFiles/ablation_bigjob_fraction.dir/ablation_bigjob_fraction.cc.o.d"
  "CMakeFiles/ablation_bigjob_fraction.dir/bench_common.cc.o"
  "CMakeFiles/ablation_bigjob_fraction.dir/bench_common.cc.o.d"
  "ablation_bigjob_fraction"
  "ablation_bigjob_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bigjob_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
