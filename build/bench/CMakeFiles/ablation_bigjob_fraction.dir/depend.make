# Empty dependencies file for ablation_bigjob_fraction.
# This may be replaced when dependencies are built.
