file(REMOVE_RECURSE
  "CMakeFiles/table1_spec_programs.dir/bench_common.cc.o"
  "CMakeFiles/table1_spec_programs.dir/bench_common.cc.o.d"
  "CMakeFiles/table1_spec_programs.dir/table1_spec_programs.cc.o"
  "CMakeFiles/table1_spec_programs.dir/table1_spec_programs.cc.o.d"
  "table1_spec_programs"
  "table1_spec_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spec_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
