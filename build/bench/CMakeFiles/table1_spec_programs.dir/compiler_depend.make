# Empty compiler generated dependencies file for table1_spec_programs.
# This may be replaced when dependencies are built.
