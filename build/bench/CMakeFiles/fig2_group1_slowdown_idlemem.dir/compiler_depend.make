# Empty compiler generated dependencies file for fig2_group1_slowdown_idlemem.
# This may be replaced when dependencies are built.
