file(REMOVE_RECURSE
  "CMakeFiles/fig2_group1_slowdown_idlemem.dir/bench_common.cc.o"
  "CMakeFiles/fig2_group1_slowdown_idlemem.dir/bench_common.cc.o.d"
  "CMakeFiles/fig2_group1_slowdown_idlemem.dir/fig2_group1_slowdown_idlemem.cc.o"
  "CMakeFiles/fig2_group1_slowdown_idlemem.dir/fig2_group1_slowdown_idlemem.cc.o.d"
  "fig2_group1_slowdown_idlemem"
  "fig2_group1_slowdown_idlemem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_group1_slowdown_idlemem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
