
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/vrc_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/vrc_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/memory_profile.cc" "src/workload/CMakeFiles/vrc_workload.dir/memory_profile.cc.o" "gcc" "src/workload/CMakeFiles/vrc_workload.dir/memory_profile.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/vrc_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/vrc_workload.dir/program.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/vrc_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/vrc_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_generator.cc" "src/workload/CMakeFiles/vrc_workload.dir/trace_generator.cc.o" "gcc" "src/workload/CMakeFiles/vrc_workload.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vrc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
