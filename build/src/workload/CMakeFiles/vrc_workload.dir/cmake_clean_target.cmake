file(REMOVE_RECURSE
  "libvrc_workload.a"
)
