file(REMOVE_RECURSE
  "CMakeFiles/vrc_workload.dir/catalog.cc.o"
  "CMakeFiles/vrc_workload.dir/catalog.cc.o.d"
  "CMakeFiles/vrc_workload.dir/memory_profile.cc.o"
  "CMakeFiles/vrc_workload.dir/memory_profile.cc.o.d"
  "CMakeFiles/vrc_workload.dir/program.cc.o"
  "CMakeFiles/vrc_workload.dir/program.cc.o.d"
  "CMakeFiles/vrc_workload.dir/trace.cc.o"
  "CMakeFiles/vrc_workload.dir/trace.cc.o.d"
  "CMakeFiles/vrc_workload.dir/trace_generator.cc.o"
  "CMakeFiles/vrc_workload.dir/trace_generator.cc.o.d"
  "libvrc_workload.a"
  "libvrc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
