# Empty compiler generated dependencies file for vrc_workload.
# This may be replaced when dependencies are built.
