# Empty compiler generated dependencies file for vrc_util.
# This may be replaced when dependencies are built.
