file(REMOVE_RECURSE
  "libvrc_util.a"
)
