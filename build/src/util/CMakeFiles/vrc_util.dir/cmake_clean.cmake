file(REMOVE_RECURSE
  "CMakeFiles/vrc_util.dir/flags.cc.o"
  "CMakeFiles/vrc_util.dir/flags.cc.o.d"
  "CMakeFiles/vrc_util.dir/log.cc.o"
  "CMakeFiles/vrc_util.dir/log.cc.o.d"
  "CMakeFiles/vrc_util.dir/table.cc.o"
  "CMakeFiles/vrc_util.dir/table.cc.o.d"
  "libvrc_util.a"
  "libvrc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
