file(REMOVE_RECURSE
  "libvrc_metrics.a"
)
