# Empty dependencies file for vrc_metrics.
# This may be replaced when dependencies are built.
