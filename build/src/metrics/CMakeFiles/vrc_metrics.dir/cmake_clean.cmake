file(REMOVE_RECURSE
  "CMakeFiles/vrc_metrics.dir/collector.cc.o"
  "CMakeFiles/vrc_metrics.dir/collector.cc.o.d"
  "CMakeFiles/vrc_metrics.dir/report.cc.o"
  "CMakeFiles/vrc_metrics.dir/report.cc.o.d"
  "libvrc_metrics.a"
  "libvrc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
