file(REMOVE_RECURSE
  "libvrc_analysis.a"
)
