file(REMOVE_RECURSE
  "CMakeFiles/vrc_analysis.dir/model.cc.o"
  "CMakeFiles/vrc_analysis.dir/model.cc.o.d"
  "libvrc_analysis.a"
  "libvrc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
