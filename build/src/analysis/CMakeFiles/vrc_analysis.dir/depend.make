# Empty dependencies file for vrc_analysis.
# This may be replaced when dependencies are built.
