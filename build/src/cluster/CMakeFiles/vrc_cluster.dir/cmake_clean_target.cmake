file(REMOVE_RECURSE
  "libvrc_cluster.a"
)
