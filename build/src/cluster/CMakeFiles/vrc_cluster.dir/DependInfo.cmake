
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/vrc_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/vrc_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/config.cc" "src/cluster/CMakeFiles/vrc_cluster.dir/config.cc.o" "gcc" "src/cluster/CMakeFiles/vrc_cluster.dir/config.cc.o.d"
  "/root/repo/src/cluster/load_index.cc" "src/cluster/CMakeFiles/vrc_cluster.dir/load_index.cc.o" "gcc" "src/cluster/CMakeFiles/vrc_cluster.dir/load_index.cc.o.d"
  "/root/repo/src/cluster/network.cc" "src/cluster/CMakeFiles/vrc_cluster.dir/network.cc.o" "gcc" "src/cluster/CMakeFiles/vrc_cluster.dir/network.cc.o.d"
  "/root/repo/src/cluster/workstation.cc" "src/cluster/CMakeFiles/vrc_cluster.dir/workstation.cc.o" "gcc" "src/cluster/CMakeFiles/vrc_cluster.dir/workstation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vrc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vrc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
