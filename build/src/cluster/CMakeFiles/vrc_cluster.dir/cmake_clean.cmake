file(REMOVE_RECURSE
  "CMakeFiles/vrc_cluster.dir/cluster.cc.o"
  "CMakeFiles/vrc_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/vrc_cluster.dir/config.cc.o"
  "CMakeFiles/vrc_cluster.dir/config.cc.o.d"
  "CMakeFiles/vrc_cluster.dir/load_index.cc.o"
  "CMakeFiles/vrc_cluster.dir/load_index.cc.o.d"
  "CMakeFiles/vrc_cluster.dir/network.cc.o"
  "CMakeFiles/vrc_cluster.dir/network.cc.o.d"
  "CMakeFiles/vrc_cluster.dir/workstation.cc.o"
  "CMakeFiles/vrc_cluster.dir/workstation.cc.o.d"
  "libvrc_cluster.a"
  "libvrc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
