# Empty compiler generated dependencies file for vrc_cluster.
# This may be replaced when dependencies are built.
