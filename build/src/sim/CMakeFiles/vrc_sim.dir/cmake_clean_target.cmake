file(REMOVE_RECURSE
  "libvrc_sim.a"
)
