# Empty dependencies file for vrc_sim.
# This may be replaced when dependencies are built.
