file(REMOVE_RECURSE
  "CMakeFiles/vrc_sim.dir/rng.cc.o"
  "CMakeFiles/vrc_sim.dir/rng.cc.o.d"
  "CMakeFiles/vrc_sim.dir/sampler.cc.o"
  "CMakeFiles/vrc_sim.dir/sampler.cc.o.d"
  "CMakeFiles/vrc_sim.dir/simulator.cc.o"
  "CMakeFiles/vrc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/vrc_sim.dir/stats.cc.o"
  "CMakeFiles/vrc_sim.dir/stats.cc.o.d"
  "libvrc_sim.a"
  "libvrc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
