file(REMOVE_RECURSE
  "CMakeFiles/vrc_core.dir/baselines.cc.o"
  "CMakeFiles/vrc_core.dir/baselines.cc.o.d"
  "CMakeFiles/vrc_core.dir/experiment.cc.o"
  "CMakeFiles/vrc_core.dir/experiment.cc.o.d"
  "CMakeFiles/vrc_core.dir/g_load_sharing.cc.o"
  "CMakeFiles/vrc_core.dir/g_load_sharing.cc.o.d"
  "CMakeFiles/vrc_core.dir/oracle.cc.o"
  "CMakeFiles/vrc_core.dir/oracle.cc.o.d"
  "CMakeFiles/vrc_core.dir/v_reconfiguration.cc.o"
  "CMakeFiles/vrc_core.dir/v_reconfiguration.cc.o.d"
  "libvrc_core.a"
  "libvrc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
