
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/vrc_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/vrc_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/vrc_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/vrc_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/g_load_sharing.cc" "src/core/CMakeFiles/vrc_core.dir/g_load_sharing.cc.o" "gcc" "src/core/CMakeFiles/vrc_core.dir/g_load_sharing.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/vrc_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/vrc_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/v_reconfiguration.cc" "src/core/CMakeFiles/vrc_core.dir/v_reconfiguration.cc.o" "gcc" "src/core/CMakeFiles/vrc_core.dir/v_reconfiguration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/vrc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vrc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vrc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vrc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
