file(REMOVE_RECURSE
  "libvrc_core.a"
)
