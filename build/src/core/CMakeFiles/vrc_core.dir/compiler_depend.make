# Empty compiler generated dependencies file for vrc_core.
# This may be replaced when dependencies are built.
