# Empty compiler generated dependencies file for spec_cluster.
# This may be replaced when dependencies are built.
