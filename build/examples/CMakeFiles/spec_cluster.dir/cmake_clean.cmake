file(REMOVE_RECURSE
  "CMakeFiles/spec_cluster.dir/spec_cluster.cpp.o"
  "CMakeFiles/spec_cluster.dir/spec_cluster.cpp.o.d"
  "spec_cluster"
  "spec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
