file(REMOVE_RECURSE
  "CMakeFiles/blocking_demo.dir/blocking_demo.cpp.o"
  "CMakeFiles/blocking_demo.dir/blocking_demo.cpp.o.d"
  "blocking_demo"
  "blocking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
