# Empty dependencies file for blocking_demo.
# This may be replaced when dependencies are built.
