file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baselines_test.cc.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/experiment_test.cc.o"
  "CMakeFiles/core_test.dir/core/experiment_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/g_load_sharing_test.cc.o"
  "CMakeFiles/core_test.dir/core/g_load_sharing_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/oracle_test.cc.o"
  "CMakeFiles/core_test.dir/core/oracle_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/v_reconfiguration_test.cc.o"
  "CMakeFiles/core_test.dir/core/v_reconfiguration_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
