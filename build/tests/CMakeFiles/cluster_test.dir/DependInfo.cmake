
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_test.cc.o.d"
  "/root/repo/tests/cluster/load_index_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/load_index_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/load_index_test.cc.o.d"
  "/root/repo/tests/cluster/network_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/network_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/network_test.cc.o.d"
  "/root/repo/tests/cluster/workstation_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/workstation_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/workstation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vrc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vrc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vrc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vrc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vrc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vrc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
