// Engine micro-benchmarks (google-benchmark): event queue throughput,
// workstation tick cost, trace generation, and a small end-to-end run. These
// guard the simulator's performance envelope — a full Figure-1 sweep
// executes hundreds of millions of node-ticks.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/arrival_source.h"
#include "workload/swf_source.h"
#include "workload/trace_generator.h"
#include "workload/trace_spec.h"

namespace {

void BM_EventScheduleExecute(benchmark::State& state) {
  vrc::sim::Simulator sim;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(static_cast<double>(i % 17), [&fired] { ++fired; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleExecute);

void BM_EventCancel(benchmark::State& state) {
  vrc::sim::Simulator sim;
  std::vector<vrc::sim::EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 1000; ++i) ids.push_back(sim.schedule_after(1e9, [] {}));
    for (vrc::sim::EventId id : ids) sim.cancel(id);
    sim.run();  // drains cancelled entries
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancel);

// Cancel-heavy steady state, shaped like the load-information exchange:
// a standing pool of far-future timers where each round retracts half of
// them and re-arms replacements. Exercises the slab free-list under churn
// and the heap's tombstone compaction.
void BM_EventCancelHeavy(benchmark::State& state) {
  vrc::sim::Simulator sim;
  constexpr int kPool = 512;
  std::vector<vrc::sim::EventId> pool;
  pool.reserve(kPool);
  for (int i = 0; i < kPool; ++i) {
    pool.push_back(sim.schedule_after(1e6 + i, [] {}));
  }
  std::size_t victim = 0;
  for (auto _ : state) {
    for (int i = 0; i < kPool / 2; ++i) {
      victim = (victim * 2654435761u + 1) % kPool;  // deterministic scatter
      if (sim.cancel(pool[victim])) {
        pool[victim] = sim.schedule_after(1e6 + static_cast<double>(i), [] {});
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * (kPool / 2));
}
BENCHMARK(BM_EventCancelHeavy);

// Mixed schedule/cancel/execute at the ratios a policy run produces: most
// events fire, a minority are retracted before their timestamp arrives.
void BM_EventMixedScheduleCancel(benchmark::State& state) {
  vrc::sim::Simulator sim;
  std::uint64_t fired = 0;
  std::uint64_t rng_state = 0x2545f4914f6cdd1dull;
  std::vector<vrc::sim::EventId> cancellable;
  cancellable.reserve(256);
  for (auto _ : state) {
    cancellable.clear();
    for (int i = 0; i < 1000; ++i) {
      rng_state ^= rng_state << 13;
      rng_state ^= rng_state >> 7;
      rng_state ^= rng_state << 17;
      const double when = static_cast<double>(rng_state % 97);
      const vrc::sim::EventId id = sim.schedule_after(when, [&fired] { ++fired; });
      if (rng_state % 5 == 0) cancellable.push_back(id);  // ~20% retracted
    }
    for (vrc::sim::EventId id : cancellable) sim.cancel(id);
    sim.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventMixedScheduleCancel);

void BM_RngLognormal(benchmark::State& state) {
  vrc::sim::Rng rng(1);
  double sum = 0.0;
  for (auto _ : state) sum += rng.lognormal(3.0, 3.0);
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_RngLognormal);

void BM_WorkstationTick(benchmark::State& state) {
  using namespace vrc;
  const auto config = cluster::ClusterConfig::paper_cluster1(1);
  cluster::Workstation node(0, config.nodes[0], config);
  std::vector<workload::JobSpec> specs(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = static_cast<workload::JobId>(i + 1);
    specs[i].cpu_seconds = 1e9;
    specs[i].touch_rate = 200.0;
    specs[i].memory = workload::MemoryProfile::constant(megabytes(120));
    auto job = std::make_unique<cluster::RunningJob>();
    job->spec = &specs[i];
    job->phase = cluster::JobPhase::kRunning;
    job->demand = specs[i].memory.demand_at(0.0);
    node.add_job(std::move(job));
  }
  sim::Rng rng(1);
  double now = 0.0;
  for (auto _ : state) {
    now += config.tick;
    auto outcome = node.tick(now, config.tick, rng);
    benchmark::DoNotOptimize(outcome.faults);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkstationTick)->Arg(1)->Arg(4)->Arg(8);

// Load snapshot cost with N resident jobs: the exchange task publishes one
// per node per period, so this tracks the O(1) aggregate maintenance win
// over rescanning the job list.
void BM_WorkstationSnapshot(benchmark::State& state) {
  using namespace vrc;
  const auto config = cluster::ClusterConfig::paper_cluster1(1);
  cluster::Workstation node(0, config.nodes[0], config);
  std::vector<workload::JobSpec> specs(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = static_cast<workload::JobId>(i + 1);
    specs[i].cpu_seconds = 1e9;
    specs[i].memory = workload::MemoryProfile::constant(megabytes(30));
    auto job = std::make_unique<cluster::RunningJob>();
    job->spec = &specs[i];
    job->phase = cluster::JobPhase::kRunning;
    job->demand = specs[i].memory.demand_at(0.0);
    node.add_job(std::move(job));
  }
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    auto info = node.snapshot(now);
    benchmark::DoNotOptimize(info.idle_memory);
  }
}
BENCHMARK(BM_WorkstationSnapshot)->Arg(4)->Arg(16);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    vrc::workload::TraceParams params;
    params.num_jobs = 578;
    params.seed = 3;
    auto trace = vrc::workload::generate_trace(params);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSmallRun(benchmark::State& state) {
  using namespace vrc;
  workload::TraceParams params;
  params.num_jobs = 40;
  params.duration = 600.0;
  params.num_nodes = 4;
  params.seed = 9;
  const auto trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  for (auto _ : state) {
    auto report = core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config);
    benchmark::DoNotOptimize(report.total_execution);
  }
}
BENCHMARK(BM_EndToEndSmallRun)->Unit(benchmark::kMillisecond);

// The same small run with fault injection on: an explicit crash window plus
// a stochastic MTBF/MTTR stream, so every fail/recover transition, job kill,
// and hardened transfer path is on the measured path. Tracks the overhead
// the faults subsystem adds to an end-to-end run.
void BM_EndToEndFaultedRun(benchmark::State& state) {
  using namespace vrc;
  workload::TraceParams params;
  params.num_jobs = 40;
  params.duration = 600.0;
  params.num_nodes = 4;
  params.seed = 9;
  const auto trace = workload::generate_trace(params);
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  config.fault_mtbf = 500.0;
  config.fault_mttr = 40.0;
  config.fault_seed = 11;
  config.fault_restart = "resubmit";
  core::ExperimentOptions options;
  options.fault_entries = {{1, 50.0, 20.0}};
  options.max_sim_time = 50000.0;
  for (auto _ : state) {
    auto report =
        core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config, options);
    benchmark::DoNotOptimize(report.total_execution);
  }
}
BENCHMARK(BM_EndToEndFaultedRun)->Unit(benchmark::kMillisecond);

// Large-cluster scaling run: N workstations, 100 jobs per workstation
// (10240 -> 1,024,000 jobs), submissions concentrated on the first N/32
// homes so nearly every placement overflows the home node and goes through
// the board's indexed submission scan. Short uniform jobs keep the run
// placement-bound: jobs/s across the Arg sweep is the decision-cost scaling
// curve quoted in EXPERIMENTS.md — roughly flat (sub-linear total cost)
// now that placement is O(log n) and idle workstations skip their ticks,
// where the pre-index linear scans degraded with the node count.
void BM_EndToEndLargeRun(benchmark::State& state) {
  using namespace vrc;
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs = nodes * 100;
  const std::size_t homes = std::max<std::size_t>(1, nodes / 32);
  const SimTime window = 200.0;

  std::vector<workload::JobSpec> specs;
  specs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::JobSpec spec;
    spec.id = static_cast<workload::JobId>(i + 1);
    spec.program = "uniform";
    spec.submit_time = window * static_cast<double>(i) / static_cast<double>(jobs);
    spec.home_node = static_cast<workload::NodeId>(i % homes);
    spec.cpu_seconds = 1.0;
    spec.touch_rate = 0.0;  // no paging: measure scheduling, not fault service
    spec.memory = workload::MemoryProfile::constant(megabytes(50));
    specs.push_back(spec);
  }
  const workload::Trace trace("large-run", workload::WorkloadGroup::kSpec, window,
                              std::move(specs));

  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, nodes);
  config.tick = 0.1;                 // 10 ms ticks would swamp the placement signal
  config.load_exchange_period = 5.0; // a 10k-node board refresh is O(n log n)

  for (auto _ : state) {
    auto report = core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
    if (report.jobs_completed != jobs) {
      state.SkipWithError("large run did not drain");
      break;
    }
    benchmark::DoNotOptimize(report.total_execution);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_EndToEndLargeRun)
    ->Arg(32)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(10240)
    ->Unit(benchmark::kMillisecond);

// Isolates the periodic state-propagation cost from job churn: N nodes, a
// fixed 32-node busy set running everlasting jobs, no arrivals or
// completions inside the measured window. Each iteration advances ten load
// exchange periods (with all the ticks and policy rounds inside them).
// Under the dirty-set exchange and active-set tick loop the per-period cost
// tracks the busy-set size, not N, so time per iteration should stay flat
// across the Arg sweep — the O(active) evidence the perf counters attribute
// (DESIGN.md §12). The pre-PR-7 full-rebroadcast engine was linear in N
// here (~40x from first to last Arg).
void BM_ExchangeScaling(benchmark::State& state) {
  using namespace vrc;
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const std::size_t busy = 32;
  const std::size_t jobs_per_node = 2;

  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, nodes);
  config.tick = 0.1;
  config.load_exchange_period = 0.5;

  sim::Simulator sim;
  core::LocalOnly policy;
  cluster::Cluster cluster(sim, config, policy);
  for (std::size_t i = 0; i < busy * jobs_per_node; ++i) {
    workload::JobSpec spec;
    spec.id = static_cast<workload::JobId>(i + 1);
    spec.program = "everlasting";
    spec.submit_time = 0.0;
    spec.home_node = static_cast<workload::NodeId>(i % busy);
    spec.cpu_seconds = 1e15;  // never completes: the busy set stays fixed
    spec.touch_rate = 0.0;
    spec.memory = workload::MemoryProfile::constant(megabytes(50));
    cluster.submit_job(spec);
  }
  sim.run_until(1.0);  // placements settle; periodic tasks armed

  const int periods_per_iteration = 10;
  SimTime deadline = 1.0;
  for (auto _ : state) {
    deadline += periods_per_iteration * config.load_exchange_period;
    sim.run_until(deadline);
  }
  benchmark::DoNotOptimize(cluster.board().cluster_idle_memory());
  state.SetItemsProcessed(state.iterations() * periods_per_iteration);
}
BENCHMARK(BM_ExchangeScaling)
    ->Arg(256)
    ->Arg(2048)
    ->Arg(10240)
    ->Unit(benchmark::kMicrosecond);

// SWF line-parse throughput: drain an in-memory archive-style log through
// SwfTraceSource (DESIGN.md §14.4). The body is synthesized once outside the
// measured loop; each iteration re-parses all of it, so items/s is
// jobs-parsed/s including the skip rules (a slice of cancelled and
// never-ran entries is mixed in, as in the real logs).
void BM_SwfParse(benchmark::State& state) {
  using namespace vrc;
  constexpr int kLines = 8192;
  std::string body = "; synthetic SWF body for the parse bench\n";
  body.reserve(static_cast<std::size_t>(kLines) * 64);
  for (int i = 1; i <= kLines; ++i) {
    const int status = (i % 31 == 0) ? 5 : 1;      // ~3% cancelled
    const int run = (i % 47 == 0) ? 0 : 30 + i % 600;  // ~2% never ran
    const int procs = 1 + i % 8;
    const int mem_kb = (i % 3 == 0) ? -1 : 1024 + (i % 8) * 512;
    body += std::to_string(i) + ' ' + std::to_string(i * 7) + " 0 " + std::to_string(run) + ' ' +
            std::to_string(procs) + " -1 " + std::to_string(mem_kb) + ' ' +
            std::to_string(procs) + " -1 -1 " + std::to_string(status) + " 1 1 " +
            std::to_string(1 + i % 16) + " 1 1 -1 -1\n";
  }
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    workload::SwfTraceSource source("bench", std::istringstream(body));
    while (source.next()) ++jobs;
  }
  benchmark::DoNotOptimize(jobs);
  state.SetItemsProcessed(state.iterations() * kLines);
}
BENCHMARK(BM_SwfParse);

// Width-reconfiguration mechanics in isolation: one node, one everlasting
// malleable job, alternating shrink/grow cycles through Cluster::resize_job
// (DESIGN.md §15). Each cycle pays the resize event, the slot re-accounting,
// and the indexed republish; items/s is resize cycles per second. Guards the
// resize path against accidental O(jobs) or O(nodes) work.
void BM_MalleableResize(benchmark::State& state) {
  using namespace vrc;
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 1);
  sim::Simulator sim;
  core::LocalOnly policy;
  cluster::Cluster cluster(sim, config, policy);
  workload::JobSpec spec;
  spec.id = 1;
  spec.program = "everlasting-malleable";
  spec.submit_time = 0.0;
  spec.home_node = 0;
  spec.cpu_seconds = 1e15;  // never completes: the resize target stays live
  spec.touch_rate = 0.0;
  spec.memory = workload::MemoryProfile::constant(megabytes(50));
  spec.malleability.min_width = 1;
  spec.malleability.max_width = 4;
  cluster.submit_job(spec);
  sim.run_until(1.0);  // placement settles at width 4

  SimTime deadline = 1.0;
  int width = 1;
  for (auto _ : state) {
    if (!cluster.resize_job(0, 1, width)) {
      state.SkipWithError("resize refused");
      break;
    }
    deadline += 5.0;  // covers the resize pause (fixed 0.5 s + 0.25 s/slot)
    sim.run_until(deadline);
    width = width == 1 ? 4 : 1;
  }
  if (cluster.resizes_completed() <
      static_cast<std::uint64_t>(state.iterations())) {
    state.SkipWithError("resizes did not complete");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MalleableResize);

// Malleable-vs-rigid end-to-end pair: the identical generated shape on a
// slot-tight 4-node cluster, Arg(0) rigid under G-Loadsharing, Arg(1)
// all-malleable (widths [1, 2]) under M-Reconfiguration. The Arg(1)/Arg(0)
// delta prices the whole third axis — wide-job tick arithmetic, shrink
// waves, regrow scans, and resize completions — on a run where the levers
// actually fire.
void BM_MalleableEndToEnd(benchmark::State& state) {
  using namespace vrc;
  const bool malleable = state.range(0) != 0;
  workload::TraceSpec spec;
  spec.group = workload::WorkloadGroup::kSpec;
  spec.num_jobs = 80;
  spec.duration = 400.0;
  spec.seed = 5;
  if (malleable) spec.malleable_fraction = 1.0;
  const workload::Trace trace = spec.build(4);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const core::PolicySpec policy(malleable ? "m-reconfiguration" : "g-loadsharing");

  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    auto report = core::run_policy_on_trace(policy, trace, config);
    if (!report || report->jobs_completed != report->jobs_submitted) {
      state.SkipWithError("run did not drain");
      break;
    }
    jobs_done += report->jobs_completed;
  }
  benchmark::DoNotOptimize(jobs_done);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs_done));
}
BENCHMARK(BM_MalleableEndToEnd)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Streamed end-to-end run: the standard trace-3 shape (578 SPEC jobs,
// ~3581 s, 32 nodes) driven through Cluster::submit_source with a
// GeneratedStreamSource instead of a materialized Trace. Arg(0) runs the
// materialized baseline on the identical shape, Arg(1) the streamed pump;
// the delta between the two rows is the pump's per-job overhead (one
// lookahead event plus free-list recycling) — it should be noise-level,
// while peak live JobSpec storage drops from O(total jobs) to
// O(concurrent jobs).
void BM_StreamingArrivals(benchmark::State& state) {
  using namespace vrc;
  const bool streamed = state.range(0) != 0;
  const workload::TraceSpec spec = workload::TraceSpec::standard(workload::WorkloadGroup::kSpec, 3);
  const workload::TraceParams params = spec.to_params(32);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 32);
  const workload::Trace trace = streamed ? workload::Trace{} : spec.build(32);

  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    std::optional<metrics::RunReport> report;
    if (streamed) {
      workload::GeneratedStreamSource source(params);
      report = core::run_policy_on_source(core::PolicySpec("g-loadsharing"), source, config);
    } else {
      report = core::run_policy_on_trace(core::PolicySpec("g-loadsharing"), trace, config);
    }
    if (!report || report->jobs_completed != params.num_jobs) {
      state.SkipWithError("run did not drain");
      break;
    }
    jobs_done += report->jobs_completed;
  }
  benchmark::DoNotOptimize(jobs_done);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(params.num_jobs));
}
BENCHMARK(BM_StreamingArrivals)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
