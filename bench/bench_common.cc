#include "bench_common.h"

#include <cstdio>

namespace vrc::bench {

bool parse_sweep_flags(int argc, const char* const* argv, SweepOptions* options,
                       util::FlagSet* flags) {
  util::FlagSet local;
  util::FlagSet& set = flags ? *flags : local;
  set.add_int("nodes", &options->nodes, "number of workstations per cluster");
  set.add_bool("csv", &options->csv, "emit CSV instead of an ASCII table");
  set.add_int("trace-from", &options->trace_from, "first standard trace index (1..5)");
  set.add_int("trace-to", &options->trace_to, "last standard trace index (1..5)");
  set.add_double("sampling-interval", &options->sampling_interval,
                 "idle-memory / skew sampling interval in seconds");
  if (!set.parse(argc, argv)) return false;
  if (options->trace_from < 1 || options->trace_to > 5 ||
      options->trace_from > options->trace_to) {
    std::fprintf(stderr, "trace range must satisfy 1 <= from <= to <= 5\n");
    return false;
  }
  return true;
}

std::vector<SweepResult> run_group_sweep(workload::WorkloadGroup group,
                                         const SweepOptions& options) {
  std::vector<SweepResult> results;
  const cluster::ClusterConfig config =
      core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));
  core::ExperimentOptions experiment;
  experiment.collector.sampling_intervals = {options.sampling_interval};
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const workload::Trace trace =
        workload::standard_trace(group, index, static_cast<std::uint32_t>(options.nodes));
    SweepResult result;
    result.trace_index = index;
    result.comparison =
        core::compare_policies(core::PolicyKind::kGLoadSharing,
                               core::PolicyKind::kVReconfiguration, trace, config, experiment);
    results.push_back(std::move(result));
  }
  return results;
}

void emit(const util::Table& table, const SweepOptions& options) {
  std::fputs(options.csv ? table.to_csv().c_str() : table.to_ascii().c_str(), stdout);
}

std::string standard_trace_name(workload::WorkloadGroup group, int index) {
  return (group == workload::WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                                  : std::string("App-Trace-")) +
         std::to_string(index);
}

}  // namespace vrc::bench
