#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace vrc::bench {

bool parse_sweep_flags(int argc, const char* const* argv, SweepOptions* options,
                       util::FlagSet* flags) {
  util::FlagSet local;
  util::FlagSet& set = flags ? *flags : local;
  set.add_int("nodes", &options->nodes, "number of workstations per cluster");
  set.add_bool("csv", &options->csv, "emit CSV instead of an ASCII table");
  set.add_int("trace-from", &options->trace_from, "first standard trace index (1..5)");
  set.add_int("trace-to", &options->trace_to, "last standard trace index (1..5)");
  set.add_double("sampling-interval", &options->sampling_interval,
                 "idle-memory / skew sampling interval in seconds");
  set.add_int("jobs", &options->jobs,
              "parallel worker threads (0 = one per hardware thread)");
  if (!set.parse(argc, argv)) return false;
  if (options->trace_from < 1 || options->trace_to > 5 ||
      options->trace_from > options->trace_to) {
    std::fprintf(stderr, "trace range must satisfy 1 <= from <= to <= 5\n");
    return false;
  }
  return true;
}

runner::ScenarioSpec group_sweep_scenario(workload::WorkloadGroup group,
                                          const SweepOptions& options) {
  runner::ScenarioSpec spec;
  spec.cluster = group == workload::WorkloadGroup::kSpec ? "paper1" : "paper2";
  spec.nodes = static_cast<std::size_t>(options.nodes);
  spec.sampling_interval = options.sampling_interval;
  spec.policies = {core::PolicySpec("g-loadsharing"), core::PolicySpec("v-reconf")};
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    spec.traces.push_back(workload::TraceSpec::standard(group, index));
  }
  return spec;
}

runner::ScenarioRun run_scenario_or_die(const runner::ScenarioSpec& spec, int jobs) {
  std::string error;
  std::optional<runner::ScenarioRun> run = runner::run_scenario(spec, jobs, &error);
  if (!run) {
    std::fprintf(stderr, "bench scenario error: %s\n", error.c_str());
    std::abort();
  }
  return std::move(*run);
}

std::vector<SweepResult> run_group_sweep(workload::WorkloadGroup group,
                                         const SweepOptions& options) {
  // All (trace x policy) cells run concurrently on the sweep runner.
  const runner::ScenarioRun run =
      run_scenario_or_die(group_sweep_scenario(group, options), options.jobs);

  std::vector<SweepResult> results;
  for (std::size_t t = 0; t < run.num_traces; ++t) {
    SweepResult result;
    result.trace_index = options.trace_from + static_cast<int>(t);
    result.comparison.baseline = run.cell(0, t, 0).report;
    result.comparison.ours = run.cell(0, t, 1).report;
    results.push_back(std::move(result));
  }
  return results;
}

void emit(const util::Table& table, const SweepOptions& options) {
  std::fputs(options.csv ? table.to_csv().c_str() : table.to_ascii().c_str(), stdout);
}

std::string standard_trace_name(workload::WorkloadGroup group, int index) {
  return (group == workload::WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                                  : std::string("App-Trace-")) +
         std::to_string(index);
}

}  // namespace vrc::bench
