#include "bench_common.h"

#include <cstdio>

namespace vrc::bench {

bool parse_sweep_flags(int argc, const char* const* argv, SweepOptions* options,
                       util::FlagSet* flags) {
  util::FlagSet local;
  util::FlagSet& set = flags ? *flags : local;
  set.add_int("nodes", &options->nodes, "number of workstations per cluster");
  set.add_bool("csv", &options->csv, "emit CSV instead of an ASCII table");
  set.add_int("trace-from", &options->trace_from, "first standard trace index (1..5)");
  set.add_int("trace-to", &options->trace_to, "last standard trace index (1..5)");
  set.add_double("sampling-interval", &options->sampling_interval,
                 "idle-memory / skew sampling interval in seconds");
  set.add_int("jobs", &options->jobs,
              "parallel worker threads (0 = one per hardware thread)");
  if (!set.parse(argc, argv)) return false;
  if (options->trace_from < 1 || options->trace_to > 5 ||
      options->trace_from > options->trace_to) {
    std::fprintf(stderr, "trace range must satisfy 1 <= from <= to <= 5\n");
    return false;
  }
  return true;
}

std::vector<SweepResult> run_group_sweep(workload::WorkloadGroup group,
                                         const SweepOptions& options) {
  // All (trace x policy) cells run concurrently on the sweep runner; the
  // grid enumeration is policy-fastest, so cells 2i / 2i+1 are the baseline
  // and V-Reconfiguration runs of trace i.
  runner::SweepGrid grid;
  grid.configs = {core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes))};
  grid.policies = {core::PolicyKind::kGLoadSharing, core::PolicyKind::kVReconfiguration};
  grid.experiment.collector.sampling_intervals = {options.sampling_interval};
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    grid.traces.push_back(
        workload::standard_trace(group, index, static_cast<std::uint32_t>(options.nodes)));
  }

  runner::SweepRunner sweep(options.jobs);
  const std::vector<runner::CellResult> cells = sweep.run(grid);

  std::vector<SweepResult> results;
  for (std::size_t t = 0; t < grid.traces.size(); ++t) {
    SweepResult result;
    result.trace_index = options.trace_from + static_cast<int>(t);
    result.comparison.baseline = cells[2 * t].report;
    result.comparison.ours = cells[2 * t + 1].report;
    results.push_back(std::move(result));
  }
  return results;
}

void emit(const util::Table& table, const SweepOptions& options) {
  std::fputs(options.csv ? table.to_csv().c_str() : table.to_ascii().c_str(), stdout);
}

std::string standard_trace_name(workload::WorkloadGroup group, int index) {
  return (group == workload::WorkloadGroup::kSpec ? std::string("SPEC-Trace-")
                                                  : std::string("App-Trace-")) +
         std::to_string(index);
}

}  // namespace vrc::bench
