// §2.3 limitation study: "The virtual reconfiguration may not work well for
// specific workloads where big jobs are dominant." This bench sweeps the
// fraction of large jobs in the mix (overriding the catalog weights) and
// reports where the benefit of reconfiguration peaks and where it fades.
#include "bench_common.h"

#include "workload/catalog.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  int trace_index = 3;
  vrc::util::FlagSet flags;
  flags.add_int("trace", &trace_index, "standard trace shape 1..5");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  const auto group = vrc::workload::WorkloadGroup::kSpec;
  const auto config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));
  const auto shape = vrc::workload::standard_trace_shape(trace_index);
  const auto& programs = vrc::workload::catalog(group);

  using vrc::util::Table;
  Table table({"big-job share", "T_exe G-LS (s)", "T_exe V-Recon (s)", "exec reduction",
               "queue reduction", "slowdown reduction"});
  for (double big_share : {0.0, 0.03, 0.08, 0.15, 0.30, 0.50}) {
    // Split the arrival probability between the two large programs (apsi,
    // mcf) and the four normal ones, preserving relative normal weights.
    std::vector<double> weights;
    double normal_total = 0.0;
    for (const auto& p : programs) {
      if (p.working_set < vrc::megabytes(150)) normal_total += p.mix_weight;
    }
    for (const auto& p : programs) {
      if (p.working_set >= vrc::megabytes(150)) {
        weights.push_back(big_share / 2.0);
      } else {
        weights.push_back((1.0 - big_share) * p.mix_weight / normal_total);
      }
    }
    vrc::workload::TraceParams params;
    params.name = "bigshare";
    params.group = group;
    params.sigma = shape.sigma;
    params.mu = shape.mu;
    params.num_jobs = shape.num_jobs;
    params.duration = shape.duration;
    params.num_nodes = static_cast<std::uint32_t>(options.nodes);
    params.seed = 4242;
    params.program_weights = weights;
    const auto trace = vrc::workload::generate_trace(params);

    const auto c = vrc::core::compare_policies(vrc::core::PolicyKind::kGLoadSharing,
                                               vrc::core::PolicyKind::kVReconfiguration, trace,
                                               config);
    table.add_row({Table::pct(big_share, 0), Table::fmt(c.baseline.total_execution, 0),
                   Table::fmt(c.ours.total_execution, 0), Table::pct(c.execution_reduction()),
                   Table::pct(c.queue_reduction()), Table::pct(c.slowdown_reduction())});
  }
  std::printf("Big-job dominance sweep — SPEC trace shape %d, %d workstations\n", trace_index,
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper §2.2/§2.3: benefits require large jobs to exist but stay a small\n"
              "percentage; with none there is nothing to fix, with dominance the\n"
              "reconfiguration cannot keep up\n");
  return 0;
}
