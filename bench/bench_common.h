// Shared plumbing for the bench binaries: flag parsing and the standard
// five-trace sweep each figure of the paper is built from.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "runner/scenario.h"
#include "runner/sweep_runner.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_generator.h"
#include "workload/trace_spec.h"

namespace vrc::bench {

/// Common bench flags.
struct SweepOptions {
  int nodes = 32;
  bool csv = false;           // emit CSV instead of the ASCII table
  int trace_from = 1;
  int trace_to = 5;
  double sampling_interval = 1.0;
  int jobs = 0;               // worker threads; 0 = one per hardware thread
};

/// Parses the standard flags (--nodes, --csv, --trace-from, --trace-to,
/// --jobs). Additional flags can be registered on `flags` before the call.
/// Returns false if parsing failed (the binary should exit 1).
bool parse_sweep_flags(int argc, const char* const* argv, SweepOptions* options,
                       util::FlagSet* flags = nullptr);

/// One (trace index, baseline, ours) result row.
struct SweepResult {
  int trace_index;
  core::Comparison comparison;
};

/// The declarative scenario behind run_group_sweep: standard traces
/// [trace_from, trace_to] of `group`, G-Loadsharing vs V-Reconfiguration, on
/// the paper's matching cluster. Ablation benches start from this spec and
/// swap the policy list / trace axis before running it.
runner::ScenarioSpec group_sweep_scenario(workload::WorkloadGroup group,
                                          const SweepOptions& options);

/// Runs a code-defined scenario on `jobs` workers; a scenario error aborts
/// with the message (it is a bench bug, not user input).
runner::ScenarioRun run_scenario_or_die(const runner::ScenarioSpec& spec, int jobs);

/// Runs G-Loadsharing vs V-Reconfiguration on standard traces
/// [trace_from, trace_to] of `group` on the paper's matching cluster.
std::vector<SweepResult> run_group_sweep(workload::WorkloadGroup group,
                                         const SweepOptions& options);

/// Prints `table` as ASCII or CSV per the options.
void emit(const util::Table& table, const SweepOptions& options);

/// Name of a standard trace ("SPEC-Trace-3" / "App-Trace-3").
std::string standard_trace_name(workload::WorkloadGroup group, int index);

}  // namespace vrc::bench
