// §1 alternative-solution ablation: "One simple solution would be to
// temporarily suspend the large jobs... However, this approach will not be
// fair to the large jobs that may starve." This bench compares the
// suspension baseline against virtual reconfiguration on overall metrics
// and on the slowdown of the large jobs specifically (the fairness axis).
#include "bench_common.h"

#include "workload/catalog.h"

namespace {

/// Mean slowdown of jobs whose working set marks them as large.
double big_job_slowdown(const vrc::metrics::RunReport& report, vrc::Bytes threshold) {
  double sum = 0.0;
  int count = 0;
  for (const auto& job : report.jobs) {
    if (job.working_set >= threshold) {
      sum += job.slowdown();
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 3;
  options.trace_to = 4;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;
  const vrc::Bytes big_threshold =
      group == vrc::workload::WorkloadGroup::kSpec ? vrc::megabytes(150) : vrc::megabytes(40);

  vrc::runner::ScenarioSpec spec = vrc::bench::group_sweep_scenario(group, options);
  spec.policies = {vrc::core::PolicySpec("g-loadsharing"), vrc::core::PolicySpec("suspension"),
                   vrc::core::PolicySpec("v-reconf")};
  const auto run = vrc::bench::run_scenario_or_die(spec, options.jobs);

  using vrc::util::Table;
  Table table({"trace", "policy", "T_exe (s)", "avg slowdown", "big-job slowdown",
               "suspensions"});
  for (std::size_t t = 0; t < run.num_traces; ++t) {
    for (std::size_t p = 0; p < run.num_policies; ++p) {
      const auto& report = run.cell(0, t, p).report;
      double suspensions = 0.0;
      for (const auto& [key, value] : report.policy_stats) {
        if (key == "suspensions") suspensions = value;
      }
      table.add_row({report.trace, report.policy, Table::fmt(report.total_execution, 0),
                     Table::fmt(report.avg_slowdown),
                     Table::fmt(big_job_slowdown(report, big_threshold)),
                     Table::fmt(suspensions, 0)});
    }
  }
  std::printf("Suspension vs reconfiguration — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper §1/§2.2: suspension starves large jobs; reconfiguration serves them on\n"
              "reserved workstations, so their slowdown stays bounded\n");
  return 0;
}
