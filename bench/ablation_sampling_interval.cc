// §4.1/§4.2 methodology check: the average idle-memory volume and the
// average job-balance skew are insensitive to the sampling interval. The
// paper repeats its 1 s measurements at 10 s, 30 s, and 1 min and reports
// "almost identical average values"; this bench regenerates that check.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  int trace_index = 3;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_int("trace", &trace_index, "standard trace index 1..5");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;

  // Both policy runs execute concurrently on the sweep runner.
  vrc::runner::SweepGrid grid;
  grid.traces = {vrc::workload::standard_trace(group, trace_index,
                                               static_cast<std::uint32_t>(options.nodes))};
  grid.configs = {
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes))};
  // Multi-interval collection is a per-run collector option the scenario
  // layer's single sampling_interval deliberately does not model, so this
  // bench stays on the raw SweepGrid (with registry policy specs).
  grid.policies = {vrc::core::PolicySpec("g-loadsharing"), vrc::core::PolicySpec("v-reconf")};
  grid.experiment.collector.sampling_intervals = {1.0, 10.0, 30.0, 60.0};

  vrc::runner::SweepRunner sweep(options.jobs);
  const auto cells = sweep.run(grid);

  using vrc::util::Table;
  Table table({"policy", "interval (s)", "avg idle memory (MB)", "avg balance skew",
               "samples"});
  for (const auto& cell : cells) {
    const auto& report = cell.report;
    for (std::size_t i = 0; i < report.idle_memory_mb.size(); ++i) {
      table.add_row({report.policy, Table::fmt(report.idle_memory_mb[i].interval, 0),
                     Table::fmt(report.idle_memory_mb[i].average, 1),
                     Table::fmt(report.balance_skew[i].average, 3),
                     std::to_string(report.idle_memory_mb[i].samples)});
    }
  }
  std::printf("Sampling-interval insensitivity — %s, %d workstations\n",
              grid.traces[0].name().c_str(), options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper: averages at 10 s / 30 s / 1 min almost identical to the 1 s values\n");
  return 0;
}
