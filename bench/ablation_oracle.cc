// The price of unknown demands: the paper's premise is that memory demands
// are unknown at submission ([3]), which is what makes unsuitable placements
// — and hence the blocking problem — possible. This ablation compares
// G-Loadsharing and V-Reconfiguration against an oracle that knows every
// job's peak working set in advance: the gap between G-Loadsharing and the
// oracle is the total damage of demand uncertainty; how much of that gap
// V-Reconfiguration recovers is the paper's contribution in one number.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 3;
  options.trace_to = 5;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;

  vrc::runner::ScenarioSpec spec = vrc::bench::group_sweep_scenario(group, options);
  spec.policies = {vrc::core::PolicySpec("g-loadsharing"), vrc::core::PolicySpec("v-reconf"),
                   vrc::core::PolicySpec("oracle")};
  const auto run = vrc::bench::run_scenario_or_die(spec, options.jobs);

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "T_exe V-Recon (s)", "T_exe Oracle (s)",
               "uncertainty cost", "recovered by V-Recon"});
  for (std::size_t t = 0; t < run.num_traces; ++t) {
    const auto& gls = run.cell(0, t, 0).report;
    const auto& vrc_report = run.cell(0, t, 1).report;
    const auto& oracle = run.cell(0, t, 2).report;
    const double gap = gls.total_execution - oracle.total_execution;
    const double recovered =
        gap > 0.0 ? (gls.total_execution - vrc_report.total_execution) / gap : 0.0;
    table.add_row({gls.trace, Table::fmt(gls.total_execution, 0),
                   Table::fmt(vrc_report.total_execution, 0),
                   Table::fmt(oracle.total_execution, 0),
                   Table::pct(vrc::metrics::reduction(gls.total_execution,
                                                      oracle.total_execution)),
                   Table::pct(recovered)});
  }
  std::printf("The price of unknown demands — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("'uncertainty cost' = how much faster an oracle with known demands finishes;\n"
              "'recovered' = the share of that gap V-Reconfiguration closes\n");
  return 0;
}
