// The price of unknown demands: the paper's premise is that memory demands
// are unknown at submission ([3]), which is what makes unsuitable placements
// — and hence the blocking problem — possible. This ablation compares
// G-Loadsharing and V-Reconfiguration against an oracle that knows every
// job's peak working set in advance: the gap between G-Loadsharing and the
// oracle is the total damage of demand uncertainty; how much of that gap
// V-Reconfiguration recovers is the paper's contribution in one number.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 3;
  options.trace_to = 5;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;
  const auto config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "T_exe V-Recon (s)", "T_exe Oracle (s)",
               "uncertainty cost", "recovered by V-Recon"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const auto trace = vrc::workload::standard_trace(group, index,
                                                     static_cast<std::uint32_t>(options.nodes));
    const auto gls =
        vrc::core::run_policy_on_trace(vrc::core::PolicyKind::kGLoadSharing, trace, config);
    const auto vrc_report =
        vrc::core::run_policy_on_trace(vrc::core::PolicyKind::kVReconfiguration, trace, config);
    const auto oracle =
        vrc::core::run_policy_on_trace(vrc::core::PolicyKind::kOracleDemands, trace, config);
    const double gap = gls.total_execution - oracle.total_execution;
    const double recovered =
        gap > 0.0 ? (gls.total_execution - vrc_report.total_execution) / gap : 0.0;
    table.add_row({trace.name(), Table::fmt(gls.total_execution, 0),
                   Table::fmt(vrc_report.total_execution, 0),
                   Table::fmt(oracle.total_execution, 0),
                   Table::pct(vrc::metrics::reduction(gls.total_execution,
                                                      oracle.total_execution)),
                   Table::pct(recovered)});
  }
  std::printf("The price of unknown demands — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("'uncertainty cost' = how much faster an oracle with known demands finishes;\n"
              "'recovered' = the share of that gap V-Reconfiguration closes\n");
  return 0;
}
