// Robustness of the headline comparison across trace realizations: the
// paper evaluates one collected trace per (group, rate) pair; this ablation
// regenerates each standard trace shape with several seeds and reports the
// spread of V-Reconfiguration's reductions, separating the policy effect
// from trace-sampling noise.
//
// All (shape x seed x policy) cells run concurrently on the sweep runner
// (--jobs); per-seed reductions are folded into RunningStats accumulators.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  int seeds = 2;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_int("seeds", &seeds, "trace realizations per shape");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;

  // One scenario over every (shape, seed) realization: a standard-shape
  // TraceSpec with an explicit seed regenerates the shape as a fresh
  // realization, so the whole (shape x seed) axis is declarative.
  vrc::runner::ScenarioSpec spec = vrc::bench::group_sweep_scenario(group, options);
  spec.traces.clear();
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    for (int seed = 0; seed < seeds; ++seed) {
      auto trace = vrc::workload::TraceSpec::standard(group, index);
      trace.seed = 7700 + static_cast<std::uint64_t>(100 * index + seed);
      spec.traces.push_back(trace);
    }
  }
  const auto run = vrc::bench::run_scenario_or_die(spec, options.jobs);

  using vrc::util::Table;
  Table table({"trace shape", "exec red. mean", "exec red. min", "exec red. max",
               "queue red. mean", "slowdown red. mean"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    vrc::sim::RunningStats exec_red, queue_red, slow_red;
    for (int seed = 0; seed < seeds; ++seed) {
      const std::size_t trace =
          static_cast<std::size_t>((index - options.trace_from) * seeds + seed);
      vrc::core::Comparison c;
      c.baseline = run.cell(0, trace, 0).report;
      c.ours = run.cell(0, trace, 1).report;
      exec_red.add(c.execution_reduction());
      queue_red.add(c.queue_reduction());
      slow_red.add(c.slowdown_reduction());
    }
    table.add_row({vrc::bench::standard_trace_name(group, index),
                   Table::pct(exec_red.mean()), Table::pct(exec_red.min()),
                   Table::pct(exec_red.max()), Table::pct(queue_red.mean()),
                   Table::pct(slow_red.mean())});
  }
  std::printf("Seed robustness — %s group, %d seeds per shape\n", group_name.c_str(), seeds);
  vrc::bench::emit(table, options);
  return 0;
}
