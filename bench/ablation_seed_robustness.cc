// Robustness of the headline comparison across trace realizations: the
// paper evaluates one collected trace per (group, rate) pair; this ablation
// regenerates each standard trace shape with several seeds and reports the
// spread of V-Reconfiguration's reductions, separating the policy effect
// from trace-sampling noise.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  int seeds = 2;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_int("seeds", &seeds, "trace realizations per shape");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;
  const auto config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));

  using vrc::util::Table;
  Table table({"trace shape", "exec red. mean", "exec red. min", "exec red. max",
               "queue red. mean", "slowdown red. mean"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const auto shape = vrc::workload::standard_trace_shape(index);
    double exec_sum = 0, exec_min = 1e9, exec_max = -1e9, queue_sum = 0, slow_sum = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      vrc::workload::TraceParams params;
      params.name = vrc::bench::standard_trace_name(group, index);
      params.group = group;
      params.sigma = shape.sigma;
      params.mu = shape.mu;
      params.num_jobs = shape.num_jobs;
      params.duration = shape.duration;
      params.num_nodes = static_cast<std::uint32_t>(options.nodes);
      params.seed = 7700 + static_cast<std::uint64_t>(100 * index + seed);
      const auto trace = vrc::workload::generate_trace(params);
      const auto c = vrc::core::compare_policies(vrc::core::PolicyKind::kGLoadSharing,
                                                 vrc::core::PolicyKind::kVReconfiguration,
                                                 trace, config);
      const double e = c.execution_reduction();
      exec_sum += e;
      exec_min = std::min(exec_min, e);
      exec_max = std::max(exec_max, e);
      queue_sum += c.queue_reduction();
      slow_sum += c.slowdown_reduction();
    }
    const double n = seeds;
    table.add_row({vrc::bench::standard_trace_name(group, index), Table::pct(exec_sum / n),
                   Table::pct(exec_min), Table::pct(exec_max), Table::pct(queue_sum / n),
                   Table::pct(slow_sum / n)});
  }
  std::printf("Seed robustness — %s group, %d seeds per shape\n", group_name.c_str(), seeds);
  vrc::bench::emit(table, options);
  return 0;
}
