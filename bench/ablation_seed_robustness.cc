// Robustness of the headline comparison across trace realizations: the
// paper evaluates one collected trace per (group, rate) pair; this ablation
// regenerates each standard trace shape with several seeds and reports the
// spread of V-Reconfiguration's reductions, separating the policy effect
// from trace-sampling noise.
//
// All (shape x seed x policy) cells run concurrently on the sweep runner
// (--jobs); per-seed reductions are folded into RunningStats accumulators.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  int seeds = 2;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_int("seeds", &seeds, "trace realizations per shape");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;

  // One grid over every (shape, seed) realization; the policy axis carries
  // the baseline/ours pair, so cells 2i / 2i+1 belong to trace i.
  vrc::runner::SweepGrid grid;
  grid.configs = {
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes))};
  grid.policies = {vrc::core::PolicyKind::kGLoadSharing,
                   vrc::core::PolicyKind::kVReconfiguration};
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const auto shape = vrc::workload::standard_trace_shape(index);
    for (int seed = 0; seed < seeds; ++seed) {
      vrc::workload::TraceParams params;
      params.name = vrc::bench::standard_trace_name(group, index);
      params.group = group;
      params.sigma = shape.sigma;
      params.mu = shape.mu;
      params.num_jobs = shape.num_jobs;
      params.duration = shape.duration;
      params.num_nodes = static_cast<std::uint32_t>(options.nodes);
      params.seed = 7700 + static_cast<std::uint64_t>(100 * index + seed);
      grid.traces.push_back(vrc::workload::generate_trace(params));
    }
  }

  vrc::runner::SweepRunner sweep(options.jobs);
  const auto cells = sweep.run(grid);

  using vrc::util::Table;
  Table table({"trace shape", "exec red. mean", "exec red. min", "exec red. max",
               "queue red. mean", "slowdown red. mean"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    vrc::sim::RunningStats exec_red, queue_red, slow_red;
    for (int seed = 0; seed < seeds; ++seed) {
      const std::size_t trace =
          static_cast<std::size_t>((index - options.trace_from) * seeds + seed);
      vrc::core::Comparison c;
      c.baseline = cells[2 * trace].report;
      c.ours = cells[2 * trace + 1].report;
      exec_red.add(c.execution_reduction());
      queue_red.add(c.queue_reduction());
      slow_red.add(c.slowdown_reduction());
    }
    table.add_row({vrc::bench::standard_trace_name(group, index),
                   Table::pct(exec_red.mean()), Table::pct(exec_red.min()),
                   Table::pct(exec_red.max()), Table::pct(queue_red.mean()),
                   Table::pct(slow_red.mean())});
  }
  std::printf("Seed robustness — %s group, %d seeds per shape, %d worker threads\n",
              group_name.c_str(), seeds, sweep.jobs());
  vrc::bench::emit(table, options);
  return 0;
}
