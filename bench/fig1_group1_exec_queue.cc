// Figure 1 of the paper: total execution times (left) and total queuing
// times (right) of the five workload-group-1 traces on a 32-workstation
// cluster, G-Loadsharing vs V-Reconfiguration.
//
// Paper reference points (reductions by V-Reconfiguration):
//   execution: 29.3% / 32.4% / 32.4% / 30.3% / 27.4%
//   queuing:   24.8% / 35.8% / 36.7% / 34.0% / 38.2%
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options)) return 1;

  const auto results =
      vrc::bench::run_group_sweep(vrc::workload::WorkloadGroup::kSpec, options);

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "T_exe V-Recon (s)", "exec reduction",
               "T_que G-LS (s)", "T_que V-Recon (s)", "queue reduction"});
  for (const auto& r : results) {
    const auto& c = r.comparison;
    table.add_row({c.baseline.trace, Table::fmt(c.baseline.total_execution, 0),
                   Table::fmt(c.ours.total_execution, 0), Table::pct(c.execution_reduction()),
                   Table::fmt(c.baseline.total_queue, 0), Table::fmt(c.ours.total_queue, 0),
                   Table::pct(c.queue_reduction())});
  }
  std::printf("Figure 1 — workload group 1 (SPEC), %d workstations\n", options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper: exec reductions 29.3/32.4/32.4/30.3/27.4%%, "
              "queue reductions 24.8/35.8/36.7/34.0/38.2%%\n");
  return 0;
}
