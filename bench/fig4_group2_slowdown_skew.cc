// Figure 4 of the paper: average slowdowns (left) and average job balance
// skews (right) for the five workload-group-2 traces, G-Loadsharing vs
// V-Reconfiguration. The skew is the standard deviation of active-job counts
// across non-reserved workstations, sampled every second and averaged.
//
// Paper reference points (reductions): slowdown 16.3/16.8/6.8% for traces
// 2/3/4 (1 and 5 modest); skew 10.3/16.5/6.3% for traces 2/3/4.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options)) return 1;

  const auto results =
      vrc::bench::run_group_sweep(vrc::workload::WorkloadGroup::kApps, options);

  using vrc::util::Table;
  Table table({"trace", "slowdown G-LS", "slowdown V-Recon", "slowdown reduction",
               "skew G-LS", "skew V-Recon", "skew reduction"});
  for (const auto& r : results) {
    const auto& c = r.comparison;
    table.add_row({c.baseline.trace, Table::fmt(c.baseline.avg_slowdown),
                   Table::fmt(c.ours.avg_slowdown), Table::pct(c.slowdown_reduction()),
                   Table::fmt(c.baseline.avg_balance_skew),
                   Table::fmt(c.ours.avg_balance_skew),
                   Table::pct(c.balance_skew_reduction())});
  }
  std::printf("Figure 4 — workload group 2 (applications), %d workstations\n", options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper: slowdown reductions 16.3/16.8/6.8%% (traces 2-4), "
              "skew reductions 10.3/16.5/6.3%%\n");
  return 0;
}
