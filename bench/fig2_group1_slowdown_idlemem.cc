// Figure 2 of the paper: average slowdowns (left) and average idle memory
// volumes (right) for the five workload-group-1 traces, G-Loadsharing vs
// V-Reconfiguration.
//
// Paper reference points (reductions by V-Reconfiguration):
//   slowdown:    23.4% / 27.7% / 22.6% / 24.6% / 28.46%
//   idle memory: 12.9% / 24.2% / 29.7% / 40.9% / 50.8%
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options)) return 1;

  const auto results =
      vrc::bench::run_group_sweep(vrc::workload::WorkloadGroup::kSpec, options);

  using vrc::util::Table;
  Table table({"trace", "slowdown G-LS", "slowdown V-Recon", "slowdown reduction",
               "idle mem G-LS (MB)", "idle mem V-Recon (MB)", "idle mem reduction"});
  for (const auto& r : results) {
    const auto& c = r.comparison;
    table.add_row({c.baseline.trace, Table::fmt(c.baseline.avg_slowdown),
                   Table::fmt(c.ours.avg_slowdown), Table::pct(c.slowdown_reduction()),
                   Table::fmt(c.baseline.avg_idle_memory_mb, 0),
                   Table::fmt(c.ours.avg_idle_memory_mb, 0),
                   Table::pct(c.idle_memory_reduction())});
  }
  std::printf("Figure 2 — workload group 1 (SPEC), %d workstations\n", options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper: slowdown reductions 23.4/27.7/22.6/24.6/28.46%%, "
              "idle memory reductions 12.9/24.2/29.7/40.9/50.8%%\n");
  return 0;
}
