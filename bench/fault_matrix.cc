// Fault matrix: every shipped policy under an identical failure schedule, at
// a sweep of per-node MTBF values (DESIGN.md §10). The fault schedule runs on
// its own seeded RNG stream, so within one MTBF level all policies face the
// same outages (matched pairs) and the rows isolate the policy's resilience:
// how much completed work a crash destroys, how quickly killed jobs are
// re-placed, and what the availability loss does to slowdown.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.nodes = 8;
  std::string mtbfs_flag = "0;3000;1500;750";
  std::string restart = "resubmit";
  std::string trace = "spec:jobs=120,duration=900,seed=7,name=fault-matrix";
  double mttr = 120.0;
  vrc::util::FlagSet flags;
  flags.add_string("mtbfs", &mtbfs_flag,
                   "';'-separated per-node MTBF values in seconds (0 = faults off)");
  flags.add_string("restart", &restart, "restart policy for killed jobs: lose | resubmit");
  flags.add_string("trace", &trace, "trace spec to run");
  flags.add_double("mttr", &mttr, "per-node mean time to repair in seconds");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  std::vector<double> mtbfs;
  {
    std::size_t start = 0;
    while (start <= mtbfs_flag.size()) {
      std::size_t end = mtbfs_flag.find(';', start);
      if (end == std::string::npos) end = mtbfs_flag.size();
      const std::string item = mtbfs_flag.substr(start, end - start);
      if (!item.empty()) mtbfs.push_back(std::stod(item));
      if (end == mtbfs_flag.size()) break;
      start = end + 1;
    }
  }

  using vrc::util::Table;
  Table table({"mtbf", "policy", "completed", "makespan", "t_exe", "avg_slowdown", "crashes",
               "killed", "restarts", "xfail", "avail"});
  for (const double mtbf : mtbfs) {
    vrc::runner::ScenarioSpec spec;
    std::string error;
    const bool ok =
        spec.apply_line("cluster paper1", &error) &&
        spec.apply_line("nodes " + std::to_string(options.nodes), &error) &&
        spec.apply_line("trace " + trace, &error) &&
        spec.apply_line("policy g-loadsharing", &error) &&
        spec.apply_line("policy local-only", &error) &&
        spec.apply_line("policy oracle", &error) &&
        spec.apply_line("policy suspension", &error) &&
        spec.apply_line("policy v-reconf", &error) &&
        spec.apply_line("sampling_interval 1", &error) &&
        spec.apply_line("max_sim_time 20000", &error) &&
        (mtbf <= 0.0 ||
         spec.apply_line("set fault.mtbf=" + Table::fmt(mtbf, 0) +
                             ",fault.mttr=" + Table::fmt(mttr, 0) +
                             ",fault.seed=11,fault.restart=" + restart,
                         &error));
    if (!ok) {
      std::fprintf(stderr, "fault_matrix: %s\n", error.c_str());
      return 1;
    }
    const auto run = vrc::bench::run_scenario_or_die(spec, options.jobs);
    for (std::size_t p = 0; p < run.num_policies; ++p) {
      const vrc::metrics::RunReport& report = run.cell(0, 0, p).report;
      table.add_row({mtbf > 0.0 ? Table::fmt(mtbf, 0) : "off", spec.policies[p].print(),
                     std::to_string(report.jobs_completed) + "/" +
                         std::to_string(report.jobs_submitted),
                     Table::fmt(report.makespan, 1), Table::fmt(report.total_execution, 1),
                     Table::fmt(report.avg_slowdown, 4), std::to_string(report.node_crashes),
                     std::to_string(report.jobs_killed), std::to_string(report.job_restarts),
                     std::to_string(report.transfer_failures),
                     Table::fmt(report.availability, 4)});
    }
  }
  std::printf("Fault matrix — %d workstations, mttr %.0f s, restart=%s\n", options.nodes, mttr,
              restart.c_str());
  vrc::bench::emit(table, options);
  std::printf("matched pairs: all policies of one mtbf row face the identical outage\n"
              "schedule (fault.seed pinned); completed < submitted marks a run that had\n"
              "not drained by max_sim_time\n");
  return 0;
}
