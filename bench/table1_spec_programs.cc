// Table 1 of the paper: execution performance and memory-related data of the
// six SPEC-2000 benchmark programs (workload group 1), as our synthetic
// workload substrate models them, plus a verification run of each program in
// a dedicated environment (one job alone on a paper-cluster-1 workstation —
// the measurement setup §3.2 describes).
#include "bench_common.h"

#include "cluster/cluster.h"
#include "workload/catalog.h"

namespace {

/// Runs one program alone on one reference workstation and returns its
/// wall-clock time (must equal the catalog lifetime: no faults, no queuing).
double dedicated_runtime(const vrc::workload::ProgramSpec& program) {
  using namespace vrc;
  class Dedicated : public cluster::SchedulerPolicy {
   public:
    const char* name() const override { return "dedicated"; }
    void on_job_arrival(cluster::Cluster& cluster, cluster::RunningJob& job) override {
      cluster.place_local(job, 0);
    }
  };
  sim::Simulator sim;
  Dedicated policy;
  cluster::Cluster cluster(
      sim, cluster::ClusterConfig::homogeneous(1, {program.reference_mhz, megabytes(384),
                                                   megabytes(380), megabytes(16)},
                                               program.reference_mhz),
      policy);
  workload::JobSpec spec;
  spec.id = 1;
  spec.program = program.name;
  spec.cpu_seconds = program.lifetime;
  spec.touch_rate = program.touch_rate;
  spec.memory = program.profile();
  cluster.submit_job(spec);
  sim.run_until(program.lifetime * 10.0 + 100.0);
  return cluster.completed().empty() ? -1.0 : cluster.completed()[0].wall_clock();
}

}  // namespace

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options)) return 1;

  using vrc::util::Table;
  Table table({"program", "description", "input", "working set (MB)", "lifetime (s)",
               "dedicated run (s)", "page touches/s", "mix share"});
  double total_weight = 0.0;
  const auto& programs = vrc::workload::catalog(vrc::workload::WorkloadGroup::kSpec);
  for (const auto& p : programs) total_weight += p.mix_weight;
  for (const auto& p : programs) {
    table.add_row({p.name, p.description, p.input, Table::fmt(vrc::to_megabytes(p.working_set), 1),
                   Table::fmt(p.lifetime, 1), Table::fmt(dedicated_runtime(p), 1),
                   Table::fmt(p.touch_rate, 0), Table::pct(p.mix_weight / total_weight)});
  }
  std::printf("Table 1 — SPEC-2000 programs (workload group 1), measured on the\n"
              "400 MHz / 384 MB reference workstation of paper cluster 1\n");
  vrc::bench::emit(table, options);
  std::printf("dedicated run must equal lifetime: the working set fits, so no faults occur\n");
  return 0;
}
