// §2.1 design-choice ablation: the reserving period ends either when all
// running jobs of the reserved workstation complete (the paper's primary
// description) or as soon as its idle memory is sufficiently large for the
// blocked big job (the paper's stated alternative, our default). This bench
// compares both variants against the G-Loadsharing baseline.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 2;
  options.trace_to = 4;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;

  // The whole ablation is one declarative scenario: the reserving-period
  // variant is just a policy param, so the variants ride the policy axis.
  vrc::runner::ScenarioSpec spec = vrc::bench::group_sweep_scenario(group, options);
  spec.policies = {vrc::core::PolicySpec("g-loadsharing"),
                   vrc::core::PolicySpec::parse("v-reconf:early_release=0").value(),
                   vrc::core::PolicySpec::parse("v-reconf:early_release=1").value()};
  const auto run = vrc::bench::run_scenario_or_die(spec, options.jobs);

  auto timed_out = [](const vrc::metrics::RunReport& report) {
    for (const auto& [key, value] : report.policy_stats) {
      if (key == "drains_timed_out") return value;
    }
    return 0.0;
  };

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "full-drain red.", "early-release red.",
               "drains timed out (full)", "drains timed out (early)"});
  for (std::size_t t = 0; t < run.num_traces; ++t) {
    const auto& baseline = run.cell(0, t, 0).report;
    const auto& full = run.cell(0, t, 1).report;
    const auto& early = run.cell(0, t, 2).report;
    table.add_row({baseline.trace, Table::fmt(baseline.total_execution, 0),
                   Table::pct(vrc::metrics::reduction(baseline.total_execution,
                                                      full.total_execution)),
                   Table::pct(vrc::metrics::reduction(baseline.total_execution,
                                                      early.total_execution)),
                   Table::fmt(timed_out(full), 0), Table::fmt(timed_out(early), 0)});
  }
  std::printf("Reserving-period variants — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("early release ends the reserving period as soon as the blocked job fits;\n"
              "full drain (the paper's primary wording) waits for every running job\n");
  return 0;
}
