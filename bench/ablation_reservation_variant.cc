// §2.1 design-choice ablation: the reserving period ends either when all
// running jobs of the reserved workstation complete (the paper's primary
// description) or as soon as its idle memory is sufficiently large for the
// blocked big job (the paper's stated alternative, our default). This bench
// compares both variants against the G-Loadsharing baseline.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 2;
  options.trace_to = 4;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;
  const auto config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "full-drain red.", "early-release red.",
               "drains timed out (full)", "drains timed out (early)"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const auto trace = vrc::workload::standard_trace(group, index,
                                                     static_cast<std::uint32_t>(options.nodes));
    const auto baseline =
        vrc::core::run_policy_on_trace(vrc::core::PolicyKind::kGLoadSharing, trace, config);

    auto run_variant = [&](bool early_release) {
      vrc::core::VReconfiguration::Options opts;
      opts.early_release = early_release;
      vrc::core::VReconfiguration policy(opts);
      return vrc::core::run_experiment(trace, config, policy);
    };
    const auto full = run_variant(false);
    const auto early = run_variant(true);

    auto timed_out = [](const vrc::metrics::RunReport& report) {
      for (const auto& [key, value] : report.policy_stats) {
        if (key == "drains_timed_out") return value;
      }
      return 0.0;
    };
    table.add_row({trace.name(), Table::fmt(baseline.total_execution, 0),
                   Table::pct(vrc::metrics::reduction(baseline.total_execution,
                                                      full.total_execution)),
                   Table::pct(vrc::metrics::reduction(baseline.total_execution,
                                                      early.total_execution)),
                   Table::fmt(timed_out(full), 0), Table::fmt(timed_out(early), 0)});
  }
  std::printf("Reserving-period variants — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("early release ends the reserving period as soon as the blocked job fits;\n"
              "full drain (the paper's primary wording) waits for every running job\n");
  return 0;
}
