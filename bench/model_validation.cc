// §5 analytic model validation: the execution-time decomposition
// T_exe = T_cpu + T_page + T_que + T_mig, the approximation
// T_exe - T̂_exe ≈ (T_page - T̂_page) + (T_que - T̂_que), and the FIFO bound
// on reserved-workstation queuing, all evaluated from simulation output.
#include "bench_common.h"

#include "analysis/model.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  options.trace_from = 3;
  options.trace_to = 5;
  std::string group_name = "spec";
  vrc::util::FlagSet flags;
  flags.add_string("group", &group_name, "workload group: spec | apps");
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options, &flags)) return 1;

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) return 1;
  const auto config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(options.nodes));

  using vrc::util::Table;
  Table table({"trace", "gain T_exe-T̂_exe (s)", "ΔT_page (s)", "ΔT_que (s)", "ΔT_cpu (s)",
               "ΔT_mig (s)", "model approx error"});
  for (int index = options.trace_from; index <= options.trace_to; ++index) {
    const auto trace = vrc::workload::standard_trace(group, index,
                                                     static_cast<std::uint32_t>(options.nodes));
    const auto c = vrc::core::compare_policies(vrc::core::PolicyKind::kGLoadSharing,
                                               vrc::core::PolicyKind::kVReconfiguration, trace,
                                               config);
    const auto delta = vrc::analysis::compare_runs(c.baseline, c.ours);
    table.add_row({trace.name(), Table::fmt(delta.gain(), 0), Table::fmt(delta.d_page, 0),
                   Table::fmt(delta.d_queue, 0), Table::fmt(delta.d_cpu, 0),
                   Table::fmt(delta.d_migration, 0), Table::pct(delta.approximation_error())});
  }
  std::printf("Section 5 model validation — %s group, %d workstations\n", group_name.c_str(),
              options.nodes);
  vrc::bench::emit(table, options);
  std::printf("model: ΔT_cpu = 0 (identical CPU demand), ΔT_mig insignificant, so the gain\n"
              "is explained by the paging and queuing deltas (small approx error)\n");

  // FIFO-bound demonstration on a synthetic reserved queue (§5 item 3).
  const std::vector<double> waits{12.0, 3.0, 7.0, 21.0};
  std::printf("\nreserved-queue FIFO bound g(Q_r) for waits {12,3,7,21}: arrival order %.0f s, "
              "ascending order %.0f s (the minimum, per §5)\n",
              vrc::analysis::reserved_queue_fifo_bound(waits),
              vrc::analysis::reserved_queue_min_bound(waits));
  return 0;
}
