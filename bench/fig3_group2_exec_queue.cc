// Figure 3 of the paper: total execution times (left) and total queuing
// times (right) of the five workload-group-2 traces, G-Loadsharing vs
// V-Reconfiguration.
//
// Paper reference points: reductions concentrated on App-Trace-2 (13.4%
// exec / 16.3% queue) and App-Trace-3 (14.0% / 16.8%); other traces modest.
#include "bench_common.h"

int main(int argc, char** argv) {
  vrc::bench::SweepOptions options;
  if (!vrc::bench::parse_sweep_flags(argc, argv, &options)) return 1;

  const auto results =
      vrc::bench::run_group_sweep(vrc::workload::WorkloadGroup::kApps, options);

  using vrc::util::Table;
  Table table({"trace", "T_exe G-LS (s)", "T_exe V-Recon (s)", "exec reduction",
               "T_que G-LS (s)", "T_que V-Recon (s)", "queue reduction"});
  for (const auto& r : results) {
    const auto& c = r.comparison;
    table.add_row({c.baseline.trace, Table::fmt(c.baseline.total_execution, 0),
                   Table::fmt(c.ours.total_execution, 0), Table::pct(c.execution_reduction()),
                   Table::fmt(c.baseline.total_queue, 0), Table::fmt(c.ours.total_queue, 0),
                   Table::pct(c.queue_reduction())});
  }
  std::printf("Figure 3 — workload group 2 (applications), %d workstations\n", options.nodes);
  vrc::bench::emit(table, options);
  std::printf("paper: App-Trace-2 13.4%%/16.3%%, App-Trace-3 14.0%%/16.8%%, others modest\n");
  return 0;
}
