#include "util/flags.h"

#include <gtest/gtest.h>

namespace vrc::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(FlagSetTest, ParsesIntWithEquals) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "a count");
  auto argv = argv_of({"--count=42"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 42);
}

TEST(FlagSetTest, ParsesIntWithSeparateValue) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "a count");
  auto argv = argv_of({"--count", "7"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 7);
}

TEST(FlagSetTest, ParsesNegativeInt) {
  FlagSet flags;
  int value = 0;
  flags.add_int("delta", &value, "");
  auto argv = argv_of({"--delta=-5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, -5);
}

TEST(FlagSetTest, ParsesDouble) {
  FlagSet flags;
  double value = 0.0;
  flags.add_double("ratio", &value, "");
  auto argv = argv_of({"--ratio=2.5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(value, 2.5);
}

TEST(FlagSetTest, ParsesInt64) {
  FlagSet flags;
  long long value = 0;
  flags.add_int64("big", &value, "");
  auto argv = argv_of({"--big=9000000000"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 9000000000LL);
}

TEST(FlagSetTest, BoolWithoutValueIsTrue) {
  FlagSet flags;
  bool value = false;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(value);
}

TEST(FlagSetTest, BoolExplicitFalse) {
  FlagSet flags;
  bool value = true;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose=false"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(value);
}

TEST(FlagSetTest, ParsesString) {
  FlagSet flags;
  std::string value;
  flags.add_string("name", &value, "");
  auto argv = argv_of({"--name=hello world"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, "hello world");
}

TEST(FlagSetTest, UnknownFlagFails) {
  FlagSet flags;
  auto argv = argv_of({"--nope"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, BadIntFails) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count=abc"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, MissingValueFails) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, HelpReturnsFalse) {
  FlagSet flags;
  auto argv = argv_of({"--help"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, PositionalArgsCollected) {
  FlagSet flags;
  int value = 0;
  flags.add_int("n", &value, "");
  auto argv = argv_of({"alpha", "--n=3", "beta"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(FlagSetTest, DefaultsSurviveWhenNotGiven) {
  FlagSet flags;
  int value = 99;
  flags.add_int("n", &value, "");
  auto argv = argv_of({});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 99);
}

TEST(FlagSetTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  int value = 5;
  flags.add_int("workers", &value, "number of workers");
  std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--workers"), std::string::npos);
  EXPECT_NE(usage.find("number of workers"), std::string::npos);
  EXPECT_NE(usage.find("5"), std::string::npos);
}

}  // namespace
}  // namespace vrc::util
