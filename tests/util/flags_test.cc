#include "util/flags.h"

#include <gtest/gtest.h>

namespace vrc::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(FlagSetTest, ParsesIntWithEquals) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "a count");
  auto argv = argv_of({"--count=42"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 42);
}

TEST(FlagSetTest, ParsesIntWithSeparateValue) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "a count");
  auto argv = argv_of({"--count", "7"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 7);
}

TEST(FlagSetTest, ParsesNegativeInt) {
  FlagSet flags;
  int value = 0;
  flags.add_int("delta", &value, "");
  auto argv = argv_of({"--delta=-5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, -5);
}

TEST(FlagSetTest, ParsesDouble) {
  FlagSet flags;
  double value = 0.0;
  flags.add_double("ratio", &value, "");
  auto argv = argv_of({"--ratio=2.5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(value, 2.5);
}

TEST(FlagSetTest, ParsesInt64) {
  FlagSet flags;
  long long value = 0;
  flags.add_int64("big", &value, "");
  auto argv = argv_of({"--big=9000000000"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 9000000000LL);
}

TEST(FlagSetTest, BoolWithoutValueIsTrue) {
  FlagSet flags;
  bool value = false;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(value);
}

TEST(FlagSetTest, BoolExplicitFalse) {
  FlagSet flags;
  bool value = true;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose=false"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(value);
}

TEST(FlagSetTest, ParsesString) {
  FlagSet flags;
  std::string value;
  flags.add_string("name", &value, "");
  auto argv = argv_of({"--name=hello world"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, "hello world");
}

TEST(FlagSetTest, UnknownFlagFails) {
  FlagSet flags;
  auto argv = argv_of({"--nope"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, BadIntFails) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count=abc"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, MissingValueFails) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, HelpReturnsFalse) {
  FlagSet flags;
  auto argv = argv_of({"--help"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, PositionalArgsCollected) {
  FlagSet flags;
  int value = 0;
  flags.add_int("n", &value, "");
  auto argv = argv_of({"alpha", "--n=3", "beta"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(FlagSetTest, DefaultsSurviveWhenNotGiven) {
  FlagSet flags;
  int value = 99;
  flags.add_int("n", &value, "");
  auto argv = argv_of({});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 99);
}

TEST(FlagSetTest, RepeatedFlagLastValueWins) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count=1", "--count", "2", "--count=3"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 3);
}

TEST(FlagSetTest, RepeatedFlagStopsAtFirstBadValue) {
  FlagSet flags;
  int value = 0;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count=4", "--count=oops", "--count=9"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 4);  // the valid assignment before the error sticks
}

TEST(FlagSetTest, JobsZeroIsParsedVerbatim) {
  // --jobs 0 means "auto" to the sweep benches; the parser itself must pass
  // the literal 0 through rather than rejecting or defaulting it.
  FlagSet flags;
  int jobs = 8;
  flags.add_int("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  auto argv = argv_of({"--jobs", "0"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(jobs, 0);
}

TEST(FlagSetTest, MissingValueAtEndOfArgvFails) {
  FlagSet flags;
  std::string value = "keep";
  flags.add_string("name", &value, "");
  auto argv = argv_of({"positional", "--name"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, "keep");
}

TEST(FlagSetTest, EmptyEqualsValueForIntFails) {
  FlagSet flags;
  int value = 11;
  flags.add_int("count", &value, "");
  auto argv = argv_of({"--count="});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 11);
}

TEST(FlagSetTest, EmptyEqualsValueForStringIsEmpty) {
  FlagSet flags;
  std::string value = "original";
  flags.add_string("name", &value, "");
  auto argv = argv_of({"--name="});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, "");
}

TEST(FlagSetTest, NegativeSeparateValueIsConsumedAsValue) {
  FlagSet flags;
  int value = 0;
  flags.add_int("delta", &value, "");
  auto argv = argv_of({"--delta", "-5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, -5);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagSetTest, BoolRejectsGarbageValue) {
  FlagSet flags;
  bool value = false;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose=maybe"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, BoolDoesNotConsumeFollowingArgument) {
  FlagSet flags;
  bool value = false;
  flags.add_bool("verbose", &value, "");
  auto argv = argv_of({"--verbose", "trailing"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(value);
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"trailing"}));
}

TEST(FlagSetTest, Int64OverflowFails) {
  FlagSet flags;
  long long value = 3;
  flags.add_int64("big", &value, "");
  auto argv = argv_of({"--big=99999999999999999999999999"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, 3);
}

TEST(FlagSetTest, TrailingJunkAfterNumberFails) {
  FlagSet flags;
  double value = 1.0;
  flags.add_double("ratio", &value, "");
  auto argv = argv_of({"--ratio=2.5x"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(FlagSetTest, ScientificNotationDoubleParses) {
  FlagSet flags;
  double value = 0.0;
  flags.add_double("ratio", &value, "");
  auto argv = argv_of({"--ratio=1e-3"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(value, 1e-3);
}

TEST(FlagSetTest, BareDoubleDashIsUnknownFlag) {
  FlagSet flags;
  auto argv = argv_of({"--"});
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSetTest, ValueContainingEqualsIsPreserved) {
  FlagSet flags;
  std::string value;
  flags.add_string("expr", &value, "");
  auto argv = argv_of({"--expr=a=b=c"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(value, "a=b=c");
}

TEST(FlagSetTest, ReparseClearsPreviousPositionals) {
  FlagSet flags;
  auto first = argv_of({"one", "two"});
  ASSERT_TRUE(flags.parse(static_cast<int>(first.size()), first.data()));
  auto second = argv_of({"three"});
  ASSERT_TRUE(flags.parse(static_cast<int>(second.size()), second.data()));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"three"}));
}

TEST(FlagSetTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  int value = 5;
  flags.add_int("workers", &value, "number of workers");
  std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--workers"), std::string::npos);
  EXPECT_NE(usage.find("number of workers"), std::string::npos);
  EXPECT_NE(usage.find("5"), std::string::npos);
}

}  // namespace
}  // namespace vrc::util
