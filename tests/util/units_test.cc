#include "util/units.h"

#include <gtest/gtest.h>

namespace vrc {
namespace {

TEST(UnitsTest, MegabytesRoundTrip) {
  EXPECT_EQ(megabytes(1), kMiB);
  EXPECT_EQ(megabytes(384), 384 * kMiB);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(128)), 128.0);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(0.5)), 0.5);
}

TEST(UnitsTest, MillisecondsToSeconds) {
  EXPECT_DOUBLE_EQ(milliseconds(10), 0.01);
  EXPECT_DOUBLE_EQ(milliseconds(0.1), 0.0001);
}

TEST(UnitsTest, MbpsConversionMatchesPaperMigrationCost) {
  // 10 Mbps Ethernet moves 1.25e6 bytes/s; a 100 MB image takes ~83.9 s.
  const double bytes_per_sec = mbps_to_bytes_per_sec(10.0);
  EXPECT_DOUBLE_EQ(bytes_per_sec, 1.25e6);
  const double seconds = static_cast<double>(megabytes(100)) / bytes_per_sec;
  EXPECT_NEAR(seconds, 83.9, 0.1);
}

TEST(UnitsTest, ConstantsAreConsistent) {
  EXPECT_EQ(kMiB, 1024 * kKiB);
  EXPECT_EQ(kGiB, 1024 * kMiB);
}

}  // namespace
}  // namespace vrc
