#include "util/units.h"

#include <gtest/gtest.h>

namespace vrc {
namespace {

TEST(UnitsTest, MegabytesRoundTrip) {
  EXPECT_EQ(megabytes(1), kMiB);
  EXPECT_EQ(megabytes(384), 384 * kMiB);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(128)), 128.0);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(0.5)), 0.5);
}

TEST(UnitsTest, MillisecondsToSeconds) {
  EXPECT_DOUBLE_EQ(milliseconds(10), 0.01);
  EXPECT_DOUBLE_EQ(milliseconds(0.1), 0.0001);
}

TEST(UnitsTest, MbpsConversionMatchesPaperMigrationCost) {
  // 10 Mbps Ethernet moves 1.25e6 bytes/s; a 100 MB image takes ~83.9 s.
  const double bytes_per_sec = mbps_to_bytes_per_sec(10.0);
  EXPECT_DOUBLE_EQ(bytes_per_sec, 1.25e6);
  const double seconds = static_cast<double>(megabytes(100)) / bytes_per_sec;
  EXPECT_NEAR(seconds, 83.9, 0.1);
}

TEST(UnitsTest, ConstantsAreConsistent) {
  EXPECT_EQ(kMiB, 1024 * kKiB);
  EXPECT_EQ(kGiB, 1024 * kMiB);
}

TEST(ParseBytesTest, AcceptsSuffixesAndPlainBytes) {
  Bytes out = 0;
  EXPECT_TRUE(parse_bytes("384MB", &out));
  EXPECT_EQ(out, megabytes(384));
  EXPECT_TRUE(parse_bytes("128MiB", &out));
  EXPECT_EQ(out, megabytes(128));
  EXPECT_TRUE(parse_bytes("4KB", &out));
  EXPECT_EQ(out, 4 * kKiB);
  EXPECT_TRUE(parse_bytes("1.5GB", &out));
  EXPECT_EQ(out, kGiB + kGiB / 2);
  EXPECT_TRUE(parse_bytes("65536", &out));
  EXPECT_EQ(out, 65536);
  EXPECT_TRUE(parse_bytes("512B", &out));
  EXPECT_EQ(out, 512);
  EXPECT_TRUE(parse_bytes("16 MB", &out));  // space before the suffix is fine
  EXPECT_EQ(out, megabytes(16));
}

TEST(ParseBytesTest, RejectsGarbageUnknownSuffixAndNegative) {
  Bytes out = 0;
  EXPECT_FALSE(parse_bytes("", &out));
  EXPECT_FALSE(parse_bytes("lots", &out));
  EXPECT_FALSE(parse_bytes("128TB", &out));
  EXPECT_FALSE(parse_bytes("-4MB", &out));
  EXPECT_FALSE(parse_bytes("4MBx", &out));
}

TEST(ParseDurationTest, AcceptsSuffixesAndPlainSeconds) {
  SimTime out = 0.0;
  EXPECT_TRUE(parse_duration("10ms", &out));
  EXPECT_DOUBLE_EQ(out, 0.010);
  EXPECT_TRUE(parse_duration("0.5s", &out));
  EXPECT_DOUBLE_EQ(out, 0.5);
  EXPECT_TRUE(parse_duration("2min", &out));
  EXPECT_DOUBLE_EQ(out, 120.0);
  EXPECT_TRUE(parse_duration("15m", &out));
  EXPECT_DOUBLE_EQ(out, 900.0);
  EXPECT_TRUE(parse_duration("250us", &out));
  EXPECT_DOUBLE_EQ(out, 2.5e-4);
  EXPECT_TRUE(parse_duration("1h", &out));
  EXPECT_DOUBLE_EQ(out, 3600.0);
  EXPECT_TRUE(parse_duration("1800", &out));
  EXPECT_DOUBLE_EQ(out, 1800.0);
  EXPECT_TRUE(parse_duration("3sec", &out));
  EXPECT_DOUBLE_EQ(out, 3.0);
}

TEST(ParseDurationTest, RejectsGarbageUnknownSuffixAndNegative) {
  SimTime out = 0.0;
  EXPECT_FALSE(parse_duration("", &out));
  EXPECT_FALSE(parse_duration("soon", &out));
  EXPECT_FALSE(parse_duration("2 fortnights", &out));
  EXPECT_FALSE(parse_duration("-5s", &out));
  EXPECT_FALSE(parse_duration("10msx", &out));
}

}  // namespace
}  // namespace vrc
