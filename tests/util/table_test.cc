#include "util/table.h"

#include <gtest/gtest.h>

namespace vrc::util {
namespace {

TEST(TableTest, AsciiAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.to_ascii();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("1,,"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table table({"text"});
  table.add_row({"hello, world"});
  table.add_row({"quote\"inside"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, CsvHasHeaderAndRows) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, FmtRespectsPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 0), "3");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(TableTest, PctFormatsFraction) {
  EXPECT_EQ(Table::pct(0.293), "29.3%");
  EXPECT_EQ(Table::pct(-0.05), "-5.0%");
  EXPECT_EQ(Table::pct(0.29346, 2), "29.35%");
}

TEST(TableDeathTest, RejectsOverlongRow) {
  Table table({"only"});
  EXPECT_DEATH(table.add_row({"1", "2"}), "row has");
}

}  // namespace
}  // namespace vrc::util
