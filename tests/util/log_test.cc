#include "util/log.h"

#include <gtest/gtest.h>

namespace vrc::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelSuppressesInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  VRC_LOG(kInfo) << "hidden";
  VRC_LOG(kWarn) << "visible";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible"), std::string::npos);
  EXPECT_NE(output.find("[WARN]"), std::string::npos);
}

TEST(LogTest, LevelChangeTakesEffect) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  VRC_LOG(kDebug) << "now " << 42 << " visible";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("now 42 visible"), std::string::npos);
  EXPECT_NE(output.find("[DEBUG]"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  VRC_LOG(kError) << "nope";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  VRC_LOG(kInfo) << "pi=" << 3.5 << " s=" << std::string("abc") << " b=" << true;
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("pi=3.5 s=abc b=1"), std::string::npos);
}

}  // namespace
}  // namespace vrc::util
