#include "util/log.h"

#include <gtest/gtest.h>

namespace vrc::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelSuppressesInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  VRC_LOG(kInfo) << "hidden";
  VRC_LOG(kWarn) << "visible";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible"), std::string::npos);
  EXPECT_NE(output.find("[WARN]"), std::string::npos);
}

TEST(LogTest, LevelChangeTakesEffect) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  VRC_LOG(kDebug) << "now " << 42 << " visible";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("now 42 visible"), std::string::npos);
  EXPECT_NE(output.find("[DEBUG]"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  VRC_LOG(kError) << "nope";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, EveryLevelFiltersStrictlyBelowItself) {
  LogLevelGuard guard;
  const struct {
    LogLevel threshold;
    bool debug, info, warn, error;
  } kCases[] = {
      {LogLevel::kDebug, true, true, true, true},
      {LogLevel::kInfo, false, true, true, true},
      {LogLevel::kWarn, false, false, true, true},
      {LogLevel::kError, false, false, false, true},
      {LogLevel::kOff, false, false, false, false},
  };
  for (const auto& c : kCases) {
    set_log_level(c.threshold);
    testing::internal::CaptureStderr();
    log_line(LogLevel::kDebug, "dbg-probe");
    log_line(LogLevel::kInfo, "info-probe");
    log_line(LogLevel::kWarn, "warn-probe");
    log_line(LogLevel::kError, "error-probe");
    const std::string output = testing::internal::GetCapturedStderr();
    EXPECT_EQ(output.find("dbg-probe") != std::string::npos, c.debug)
        << "threshold=" << static_cast<int>(c.threshold);
    EXPECT_EQ(output.find("info-probe") != std::string::npos, c.info)
        << "threshold=" << static_cast<int>(c.threshold);
    EXPECT_EQ(output.find("warn-probe") != std::string::npos, c.warn)
        << "threshold=" << static_cast<int>(c.threshold);
    EXPECT_EQ(output.find("error-probe") != std::string::npos, c.error)
        << "threshold=" << static_cast<int>(c.threshold);
  }
}

TEST(LogTest, LogLevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(LogTest, EmptyMessageStillEmitsTaggedLine) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "[INFO] \n");
}

TEST(LogTest, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  VRC_LOG(kInfo) << "pi=" << 3.5 << " s=" << std::string("abc") << " b=" << true;
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("pi=3.5 s=abc b=1"), std::string::npos);
}

}  // namespace
}  // namespace vrc::util
