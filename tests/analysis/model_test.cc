#include "analysis/model.h"

#include <gtest/gtest.h>

namespace vrc::analysis {
namespace {

metrics::RunReport report_with(double cpu, double page, double queue, double mig) {
  metrics::RunReport report;
  report.total_cpu = cpu;
  report.total_page = page;
  report.total_queue = queue;
  report.total_migration = mig;
  report.total_execution = cpu + page + queue + mig;
  return report;
}

TEST(BreakdownTest, ExtractsAndSums) {
  const auto report = report_with(10.0, 2.0, 30.0, 1.0);
  const Breakdown b = breakdown_of(report);
  EXPECT_DOUBLE_EQ(b.cpu, 10.0);
  EXPECT_DOUBLE_EQ(b.page, 2.0);
  EXPECT_DOUBLE_EQ(b.queue, 30.0);
  EXPECT_DOUBLE_EQ(b.migration, 1.0);
  EXPECT_DOUBLE_EQ(b.total(), 43.0);
}

TEST(ModelDeltaTest, GainIsSumOfTermDeltas) {
  const auto baseline = report_with(10.0, 8.0, 40.0, 2.0);
  const auto ours = report_with(10.0, 3.0, 25.0, 3.0);
  const ModelDelta delta = compare_runs(baseline, ours);
  EXPECT_DOUBLE_EQ(delta.d_cpu, 0.0);
  EXPECT_DOUBLE_EQ(delta.d_page, 5.0);
  EXPECT_DOUBLE_EQ(delta.d_queue, 15.0);
  EXPECT_DOUBLE_EQ(delta.d_migration, -1.0);
  EXPECT_DOUBLE_EQ(delta.gain(), 19.0);
  EXPECT_DOUBLE_EQ(delta.approximate_gain(), 20.0);
}

TEST(ModelDeltaTest, ApproximationErrorSmallWhenCpuAndMigMatch) {
  // The §5 approximation drops the CPU and migration terms; when they are
  // equal across runs (T_cpu = T̂_cpu, T_mig ≈ T̂_mig) it is exact.
  const auto baseline = report_with(10.0, 8.0, 40.0, 2.0);
  const auto ours = report_with(10.0, 3.0, 25.0, 2.0);
  const ModelDelta delta = compare_runs(baseline, ours);
  EXPECT_DOUBLE_EQ(delta.approximation_error(), 0.0);
}

TEST(ModelDeltaTest, ZeroGainHasZeroError) {
  const auto same = report_with(1.0, 1.0, 1.0, 1.0);
  const ModelDelta delta = compare_runs(same, same);
  EXPECT_DOUBLE_EQ(delta.gain(), 0.0);
  EXPECT_DOUBLE_EQ(delta.approximation_error(), 0.0);
}

TEST(FifoBoundTest, MatchesHandComputation) {
  // Q = 3 jobs with waits w1=2, w2=4, w3=6:
  // bound = (3-1)*2 + (3-2)*4 + (3-3)*6 = 8.
  EXPECT_DOUBLE_EQ(reserved_queue_fifo_bound({2.0, 4.0, 6.0}), 8.0);
}

TEST(FifoBoundTest, EmptyAndSingleAreZero) {
  EXPECT_DOUBLE_EQ(reserved_queue_fifo_bound({}), 0.0);
  EXPECT_DOUBLE_EQ(reserved_queue_fifo_bound({5.0}), 0.0);
}

TEST(FifoBoundTest, AscendingOrderMinimizesBound) {
  // §5: "the queuing time in the reserved workstations are minimized if
  // w_k1 < w_k2 < ... < w_kQr(k)".
  const std::vector<double> waits{5.0, 1.0, 3.0, 2.0};
  const double min_bound = reserved_queue_min_bound(waits);
  // Try every permutation; none may beat the ascending bound.
  std::vector<double> perm = waits;
  std::sort(perm.begin(), perm.end());
  do {
    EXPECT_GE(reserved_queue_fifo_bound(perm) + 1e-12, min_bound);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(GainConditionTest, PredictsGainWhenQueueShrinks) {
  GainCondition condition;
  condition.baseline_queue = 100.0;
  condition.non_reserved_queue = 60.0;
  condition.reserved_bound = 20.0;
  EXPECT_TRUE(condition.predicts_gain());
  EXPECT_DOUBLE_EQ(condition.predicted_lower_bound(), 20.0);
}

TEST(GainConditionTest, NoGainWhenReservedQueueDominates) {
  GainCondition condition;
  condition.baseline_queue = 100.0;
  condition.non_reserved_queue = 70.0;
  condition.reserved_bound = 40.0;
  EXPECT_FALSE(condition.predicts_gain());
  EXPECT_LT(condition.predicted_lower_bound(), 0.0);
}

}  // namespace
}  // namespace vrc::analysis
