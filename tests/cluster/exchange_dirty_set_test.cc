// Tests for the dirty-set incremental load exchange and active-set tick loop
// (DESIGN.md §12).
//
// The contract under test is *stale-but-identical*: the board is stale by
// design (policies must see exchange-period-old state), but after every
// exchange its content for live nodes must be value-identical to what a full
// rebroadcast of every node would have produced. Failed nodes are the one
// deliberate divergence: they publish exactly one final transition (the
// fail-time immediate broadcast) and stay frozen until the recovery
// broadcast, instead of a fresh snapshot per period while down.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/node_activity.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace vrc::cluster {
namespace {

using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

// --- NodeBitset / DirtyNodeSet unit coverage ------------------------------

TEST(NodeBitsetTest, InsertEraseCountContains) {
  NodeBitset set(200);
  EXPECT_EQ(set.count(), 0u);
  set.insert(0);
  set.insert(63);
  set.insert(64);
  set.insert(199);
  set.insert(63);  // duplicate insert must not double-count
  EXPECT_EQ(set.count(), 4u);
  EXPECT_TRUE(set.contains(63));
  EXPECT_FALSE(set.contains(1));
  set.erase(63);
  set.erase(63);  // duplicate erase must not underflow
  EXPECT_EQ(set.count(), 3u);
  EXPECT_FALSE(set.contains(63));
  set.set(5, true);
  set.set(5, false);
  EXPECT_FALSE(set.contains(5));
}

TEST(NodeBitsetTest, ForEachVisitsAscendingNodeIdOrder) {
  NodeBitset set(300);
  const std::vector<NodeId> members = {271, 0, 64, 63, 129, 5, 299};
  for (NodeId node : members) set.insert(node);
  std::vector<NodeId> visited;
  set.for_each([&](NodeId node) { visited.push_back(node); });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 5, 63, 64, 129, 271, 299}));
}

TEST(NodeBitsetTest, EraseAheadOfCursorDuringIterationIsHonored) {
  NodeBitset set(128);
  set.insert(1);
  set.insert(100);
  std::vector<NodeId> visited;
  set.for_each([&](NodeId node) {
    visited.push_back(node);
    if (node == 1) const_cast<NodeBitset&>(set).erase(100);
  });
  // Word 1 (ids 64..127) is read only when the cursor reaches it, so the
  // erase takes effect — exactly like a predicate turning false under the
  // old full scan.
  EXPECT_EQ(visited, (std::vector<NodeId>{1}));
}

TEST(DirtyNodeSetTest, MarkIsDedupedAndDrainClearsInFirstMarkOrder) {
  DirtyNodeSet dirty(8);
  dirty.mark(3);
  dirty.mark(1);
  dirty.mark(3);  // dedup
  std::vector<NodeId> drained;
  dirty.drain([&](NodeId node) {
    drained.push_back(node);
    return true;
  });
  EXPECT_EQ(drained, (std::vector<NodeId>{3, 1}));
  drained.clear();
  dirty.drain([&](NodeId node) {
    drained.push_back(node);
    return true;
  });
  EXPECT_TRUE(drained.empty());
}

TEST(DirtyNodeSetTest, OutOfBandClearSuppressesDrainAndRetainKeepsMark) {
  DirtyNodeSet dirty(8);
  dirty.mark(2);
  dirty.mark(5);
  dirty.clear(2);  // immediate broadcast already published node 2
  std::vector<NodeId> drained;
  dirty.drain([&](NodeId node) {
    drained.push_back(node);
    return false;  // retain: still dirty next period
  });
  EXPECT_EQ(drained, (std::vector<NodeId>{5}));
  EXPECT_TRUE(dirty.contains(5));
  EXPECT_FALSE(dirty.contains(2));
  drained.clear();
  dirty.drain([&](NodeId node) {
    drained.push_back(node);
    return true;
  });
  EXPECT_EQ(drained, (std::vector<NodeId>{5}));
  // Clear-then-remark appends a fresh entry; the stale one is dropped.
  dirty.mark(2);
  drained.clear();
  dirty.drain([&](NodeId node) {
    drained.push_back(node);
    return true;
  });
  EXPECT_EQ(drained, (std::vector<NodeId>{2}));
}

// --- randomized property: dirty-set board == full-rebroadcast board -------

/// Places arrivals on pseudo-random nodes (local or remote) and does nothing
/// on any other hook. on_periodic MUST stay a no-op: the policy task fires
/// between the exchange and the checker at shared timestamps, and a mutation
/// there would (correctly) make the board one action staler than the live
/// state the checker compares against.
class RandomPlacementPolicy : public SchedulerPolicy {
 public:
  explicit RandomPlacementPolicy(std::uint32_t seed) : rng_(seed) {}
  const char* name() const override { return "random-placement"; }

  void on_job_arrival(Cluster& cluster, RunningJob& job) override {
    const auto nodes = static_cast<std::uint32_t>(cluster.num_nodes());
    switch (rng_() % 4u) {
      case 0u:
      case 1u: {
        if (!cluster.node(job.home_node).failed()) cluster.place_local(job, job.home_node);
        break;
      }
      case 2u: {
        const NodeId target = static_cast<NodeId>(rng_() % nodes);
        if (!cluster.node(target).failed()) cluster.place_local(job, target);
        break;
      }
      default: {
        const NodeId target = static_cast<NodeId>(rng_() % nodes);
        if (!cluster.node(target).failed()) cluster.place_remote(job, target);
        break;
      }
    }
  }

 private:
  std::mt19937 rng_;
};

/// Fires pseudo-random cluster mutations (fail/recover, reserve toggles,
/// suspend/resume, migrations, and migrations whose source or destination is
/// crashed mid-transfer) at scheduled, deterministic instants.
class RandomDriver {
 public:
  RandomDriver(sim::Simulator& sim, Cluster& cluster, std::uint32_t seed)
      : sim_(sim), cluster_(cluster), rng_(seed ^ 0x9e3779b9u) {}

  void schedule_actions(int count, SimTime horizon) {
    for (int i = 0; i < count; ++i) {
      // Deterministic spread over the horizon, off the exchange grid (the
      // offset only matters for readability: setup-scheduled events fire
      // before any periodic task at a shared timestamp anyway).
      const SimTime at =
          horizon * (static_cast<SimTime>(i) + 0.5) / static_cast<SimTime>(count) + 0.0011;
      sim_.schedule_at(at, [this] { act(); });
    }
  }

 private:
  NodeId pick() { return static_cast<NodeId>(rng_() % cluster_.num_nodes()); }

  void act() {
    switch (rng_() % 8u) {
      case 0u: {  // fail (bounded so the cluster keeps doing useful work)
        const NodeId node = pick();
        if (!cluster_.node(node).failed() && failed_count() < cluster_.num_nodes() / 4) {
          cluster_.fail_node(node);
        }
        break;
      }
      case 1u:
      case 2u: {  // recover the first failed node at/after a random start
        const std::size_t n = cluster_.num_nodes();
        const std::size_t start = rng_() % n;
        for (std::size_t i = 0; i < n; ++i) {
          const NodeId node = static_cast<NodeId>((start + i) % n);
          if (cluster_.node(node).failed()) {
            cluster_.recover_node(node);
            break;
          }
        }
        break;
      }
      case 3u: {  // reservation flag toggle
        const NodeId node = pick();
        if (!cluster_.node(node).failed()) {
          cluster_.set_reserved(node, !cluster_.node(node).reserved());
        }
        break;
      }
      case 4u: {  // suspend or resume the first job somewhere
        const NodeId node = pick();
        const auto& jobs = cluster_.node(node).jobs();
        if (!jobs.empty()) {
          RunningJob& job = *jobs.front();
          if (job.phase == JobPhase::kRunning) {
            cluster_.suspend_job(node, job.id());
          } else if (job.phase == JobPhase::kSuspended) {
            cluster_.resume_job(node, job.id());
          }
        }
        break;
      }
      case 5u:
        start_migration();
        break;
      case 6u: {  // mid-transfer race: crash the destination in flight
        if (auto started = start_migration()) {
          const NodeId dst = started->second;
          sim_.schedule_at(sim_.now() + 0.021, [this, dst] {
            if (!cluster_.node(dst).failed()) cluster_.fail_node(dst);
          });
        }
        break;
      }
      default: {  // mid-transfer race: crash the source in flight
        if (auto started = start_migration()) {
          const NodeId src = started->first;
          sim_.schedule_at(sim_.now() + 0.017, [this, src] {
            if (!cluster_.node(src).failed()) cluster_.fail_node(src);
          });
        }
        break;
      }
    }
  }

  std::optional<std::pair<NodeId, NodeId>> start_migration() {
    const NodeId src = pick();
    const NodeId dst = pick();
    if (src == dst || cluster_.node(src).failed() || cluster_.node(dst).failed()) {
      return std::nullopt;
    }
    for (const auto& job : cluster_.node(src).jobs()) {
      if (job->phase != JobPhase::kRunning) continue;
      if (cluster_.start_migration(src, job->id(), dst)) return std::make_pair(src, dst);
      return std::nullopt;
    }
    return std::nullopt;
  }

  std::size_t failed_count() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < cluster_.num_nodes(); ++i) {
      if (cluster_.node(static_cast<NodeId>(i)).failed()) ++count;
    }
    return count;
  }

  sim::Simulator& sim_;
  Cluster& cluster_;
  std::mt19937 rng_;
};

/// The shadow-rebroadcast comparison, run right after each exchange: for
/// every live node the board entry must equal a freshly built snapshot in
/// every field except the publication timestamp (clean nodes legitimately
/// keep their old stamp); every failed node's entry must be flagged failed
/// (its other fields are frozen at the fail-time broadcast by design).
class BoardChecker {
 public:
  explicit BoardChecker(Cluster& cluster) : cluster_(cluster) {}

  void check(SimTime now) {
    ++checks_;
    Bytes live_idle = 0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < cluster_.num_nodes(); ++i) {
      const NodeId node = static_cast<NodeId>(i);
      const Workstation& ws = cluster_.node(node);
      const LoadInfo& entry = cluster_.board().info(node);
      ASSERT_EQ(entry.failed, ws.failed()) << "node " << node << " t=" << now;
      if (ws.failed()) continue;
      const LoadInfo fresh = ws.snapshot(now);
      EXPECT_EQ(entry.active_jobs, fresh.active_jobs) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.slots_used, fresh.slots_used) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.user_memory, fresh.user_memory) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.total_demand, fresh.total_demand) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.idle_memory, fresh.idle_memory) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.fault_rate, fresh.fault_rate) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.reserved, fresh.reserved) << "node " << node << " t=" << now;
      EXPECT_EQ(entry.pressured, fresh.pressured) << "node " << node << " t=" << now;
      live_idle += entry.idle_memory;
      ++live;
    }
    // Aggregates and index rows must stay consistent with the entries.
    EXPECT_EQ(cluster_.board().cluster_idle_memory(), live_idle) << "t=" << now;
    EXPECT_EQ(cluster_.board().index().live_count(), live) << "t=" << now;
  }

  int checks() const { return checks_; }

 private:
  Cluster& cluster_;
  int checks_ = 0;
};

void run_dirty_set_property(std::size_t nodes, std::uint32_t seed) {
  SCOPED_TRACE(testing::Message() << "nodes=" << nodes << " seed=" << seed);
  sim::Simulator sim;
  RandomPlacementPolicy policy(seed);
  ClusterConfig config = ClusterConfig::paper_cluster1(nodes);
  config.load_exchange_period = 0.37;  // non-default, off the tick grid
  Cluster cluster(sim, config, policy);

  const SimTime horizon = 18.0;
  std::mt19937 rng(seed * 7919u + 17u);
  // One everlasting job at t=0: arms the periodic tasks at phase 0 (the
  // checker below shares that phase) and keeps them armed for the whole run
  // (maybe_finish would otherwise stop and later re-arm them off-phase).
  cluster.submit_job(make_spec(1, 0.0, 1e9, megabytes(12), 0));
  const int jobs = static_cast<int>(nodes) * 3;
  for (int i = 0; i < jobs; ++i) {
    const SimTime submit = horizon * 0.6 * static_cast<SimTime>(rng() % 1000u) / 1000.0;
    const double cpu = 0.3 + 0.01 * static_cast<double>(rng() % 300u);
    const Bytes demand = megabytes(static_cast<double>(5u + rng() % 80u));
    const double touch = (rng() % 3u == 0u) ? static_cast<double>(rng() % 30u) : 0.0;
    const auto home = static_cast<workload::NodeId>(rng() % nodes);
    cluster.submit_job(
        make_spec(static_cast<JobId>(i + 2), submit, cpu, demand, home, touch));
  }

  RandomDriver driver(sim, cluster, seed);
  driver.schedule_actions(static_cast<int>(nodes), horizon * 0.85);

  BoardChecker checker(cluster);
  std::unique_ptr<sim::PeriodicTask> checker_task;
  // Created inside an event at t=0 scheduled AFTER the first submission, so
  // the cluster's own periodic tasks are armed first: at every shared
  // timestamp the firing order is exchange -> checker (-> policy -> tick),
  // i.e. the checker observes the board immediately after the drain and
  // before any same-instant mutation.
  sim.schedule_at(0.0, [&] {
    checker_task = std::make_unique<sim::PeriodicTask>(
        sim, sim.now() + config.load_exchange_period, config.load_exchange_period,
        [&](SimTime now) { checker.check(now); });
  });

  sim.run_until(horizon);
  EXPECT_GT(checker.checks(), 40);
}

TEST(ExchangeDirtySetTest, BoardMatchesFullRebroadcast32Nodes) {
  run_dirty_set_property(32, 1u);
}

TEST(ExchangeDirtySetTest, BoardMatchesFullRebroadcast128Nodes) {
  run_dirty_set_property(128, 2u);
}

TEST(ExchangeDirtySetTest, BoardMatchesFullRebroadcast512Nodes) {
  run_dirty_set_property(512, 3u);
}

// --- failed-node publication regression tests -----------------------------

/// Home placement only; periodic retries, like the local-only baseline.
class LocalPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "local"; }
  void on_job_arrival(Cluster& cluster, RunningJob& job) override {
    if (!cluster.node(job.home_node).failed()) cluster.place_local(job, job.home_node);
  }
  void on_periodic(Cluster& cluster) override {
    for (RunningJob* job : cluster.pending_jobs()) {
      if (!cluster.node(job->home_node).failed()) cluster.place_local(*job, job->home_node);
    }
  }
};

TEST(ExchangeDirtySetTest, FailedNodePublishesExactlyOneTransitionWhileDown) {
  sim::Simulator sim;
  LocalPolicy policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(4);
  config.load_exchange_period = 0.5;
  Cluster cluster(sim, config, policy);
  // Overcommit node 1 so its fault EMA is nonzero when it crashes: the EMA
  // keeps the node ticking (and its dirty bit set) while down, which must
  // NOT translate into board publishes.
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(220), 1, 20.0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(220), 1, 20.0));
  cluster.submit_job(make_spec(3, 0.0, 100.0, megabytes(10), 0));  // keeps tasks armed

  sim.schedule_at(2.0, [&] { cluster.fail_node(1); });
  sim.schedule_at(2.1, [&] {
    EXPECT_TRUE(cluster.board().info(1).failed);
    EXPECT_DOUBLE_EQ(cluster.board().info(1).timestamp, 2.0);
    // The EMA survives the crash (it is monitoring state, not job state).
    EXPECT_GT(cluster.node(1).fault_rate(), 0.0);
  });
  sim.schedule_at(4.9, [&] {
    // Five exchange periods later the board row is still the fail-time
    // broadcast: exactly one published transition while down.
    EXPECT_TRUE(cluster.board().info(1).failed);
    EXPECT_DOUBLE_EQ(cluster.board().info(1).timestamp, 2.0);
  });
  sim.schedule_at(5.0, [&] { cluster.recover_node(1); });
  sim.run_until(6.2);
  EXPECT_FALSE(cluster.board().info(1).failed);
  // The recovery broadcast (and, while the EMA decays, subsequent
  // exchanges) republish the node.
  EXPECT_GE(cluster.board().info(1).timestamp, 5.0);
}

TEST(ExchangeDirtySetTest, ImmediateBroadcastDoesNotDoublePublishAtNextExchange) {
  sim::Simulator sim;
  LocalPolicy policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(4);
  config.load_exchange_period = 0.5;
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 0.0, 100.0, megabytes(10), 0));  // keeps tasks armed

  // Node 2 never runs a job, so its fault EMA is identically zero: after the
  // out-of-band recovery broadcast it is clean, and the following exchanges
  // must leave its row untouched.
  sim.schedule_at(0.7, [&] { cluster.fail_node(2); });
  sim.schedule_at(1.1, [&] {
    // The exchange at t=1.0 skipped the down node.
    EXPECT_DOUBLE_EQ(cluster.board().info(2).timestamp, 0.7);
  });
  sim.schedule_at(1.2, [&] { cluster.recover_node(2); });
  sim.run_until(3.4);
  EXPECT_FALSE(cluster.board().info(2).failed);
  // Exchanges at t=1.5..3.0 did not republish the clean node: publish_to_board
  // cleared the dirty bit the fail/recover transitions had set.
  EXPECT_DOUBLE_EQ(cluster.board().info(2).timestamp, 1.2);
}

}  // namespace
}  // namespace vrc::cluster
