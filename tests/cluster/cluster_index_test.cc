#include "cluster/cluster_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "cluster/load_index.h"
#include "sim/rng.h"
#include "util/units.h"

namespace vrc::cluster {
namespace {

TEST(IndexedHeapTest, UpsertAndBest) {
  IndexedHeap heap(4);
  heap.upsert(0, {5, 0});
  heap.upsert(1, {3, 0});
  heap.upsert(2, {7, 0});
  auto best = heap.best([](NodeId) { return true; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_FALSE(heap.contains(3));
}

TEST(IndexedHeapTest, InPlaceKeyUpdateMovesNode) {
  IndexedHeap heap(3);
  heap.upsert(0, {1, 0});
  heap.upsert(1, {2, 0});
  heap.upsert(2, {3, 0});
  heap.upsert(0, {10, 0});  // decrease priority in place
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 1u);
  heap.upsert(2, {0, 0});  // increase priority in place
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 2u);
  EXPECT_EQ(heap.size(), 3u);
}

TEST(IndexedHeapTest, EraseRemovesAndReinsertWorks) {
  IndexedHeap heap(3);
  heap.upsert(0, {1, 0});
  heap.upsert(1, {2, 0});
  heap.erase(0);
  EXPECT_FALSE(heap.contains(0));
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 1u);
  heap.erase(0);  // erasing an absent node is a no-op
  heap.upsert(0, {0, 0});
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 0u);
}

TEST(IndexedHeapTest, BestRespectsFilterExactly) {
  IndexedHeap heap(5);
  for (NodeId n = 0; n < 5; ++n) heap.upsert(n, {static_cast<std::int64_t>(n), 0});
  auto best = heap.best([](NodeId n) { return n >= 3; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 3u);
  EXPECT_FALSE(heap.best([](NodeId) { return false; }).has_value());
}

TEST(IndexedHeapTest, TieBreaksByNodeId) {
  IndexedHeap heap(4);
  for (NodeId n = 0; n < 4; ++n) heap.upsert(n, {7, 7});
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 0u);
  heap.erase(0);
  EXPECT_EQ(*heap.best([](NodeId) { return true; }), 1u);
}

/// Randomized heap workout: after any sequence of upserts and erases, best()
/// must agree with a brute-force minimum over a mirrored key map.
TEST(IndexedHeapTest, RandomizedOperationsMatchBruteForce) {
  sim::Rng rng(42);
  const std::size_t n = 64;
  IndexedHeap heap(n);
  std::vector<std::optional<IndexedHeap::Key>> mirror(n);
  for (int step = 0; step < 2000; ++step) {
    const NodeId node = static_cast<NodeId>(rng.uniform_index(n));
    if (rng.uniform() < 0.25 && mirror[node].has_value()) {
      heap.erase(node);
      mirror[node].reset();
    } else {
      const IndexedHeap::Key key{static_cast<std::int64_t>(rng.uniform_index(50)) - 25,
                                 static_cast<std::int64_t>(rng.uniform_index(10))};
      heap.upsert(node, key);
      mirror[node] = key;
    }
    // Brute-force best under a parity filter.
    const auto keep = [](NodeId id) { return id % 2 == 0; };
    std::optional<NodeId> expected;
    for (NodeId id = 0; id < n; ++id) {
      if (!mirror[id].has_value() || !keep(id)) continue;
      if (!expected) {
        expected = id;
        continue;
      }
      const auto& a = *mirror[id];
      const auto& b = *mirror[*expected];
      if (a.primary < b.primary ||
          (a.primary == b.primary && (a.secondary < b.secondary ||
                                      (a.secondary == b.secondary && id < *expected)))) {
        expected = id;
      }
    }
    EXPECT_EQ(heap.best(keep), expected) << "step " << step;
  }
}

TEST(ClusterIndexTest, TotalsTrackLiveNodesOnly) {
  ClusterIndex index(3, ClusterIndex::Order::kMinSlotsMaxIdle, ClusterIndex::Order::kMaxIdle);
  ClusterIndex::NodeState a;
  a.idle = megabytes(100);
  a.user = megabytes(368);
  a.available = megabytes(100);
  index.publish(0, a);
  ClusterIndex::NodeState b = a;
  b.idle = megabytes(50);
  index.publish(1, b);
  EXPECT_EQ(index.total_idle(), megabytes(150));
  EXPECT_EQ(index.live_count(), 3u);

  b.failed = true;
  index.publish(1, b);
  EXPECT_EQ(index.total_idle(), megabytes(100));
  EXPECT_EQ(index.total_user(), megabytes(368));
  EXPECT_EQ(index.live_count(), 2u);

  b.failed = false;
  index.publish(1, b);
  EXPECT_EQ(index.total_idle(), megabytes(150));
  EXPECT_EQ(index.live_count(), 3u);
}

TEST(ClusterIndexTest, FailedAndReservedNodesLeaveHeaps) {
  ClusterIndex index(2, ClusterIndex::Order::kMaxIdle, ClusterIndex::Order::kMinPeak);
  ClusterIndex::NodeState best;
  best.idle = megabytes(200);
  index.publish(0, best);
  EXPECT_EQ(*index.best_first([](NodeId) { return true; }), 0u);

  best.failed = true;
  index.publish(0, best);
  EXPECT_EQ(*index.best_first([](NodeId) { return true; }), 1u);

  best.failed = false;
  best.reserved = true;
  index.publish(0, best);
  EXPECT_EQ(*index.best_first([](NodeId) { return true; }), 1u);

  best.reserved = false;
  index.publish(0, best);
  EXPECT_EQ(*index.best_first([](NodeId) { return true; }), 0u);
}

// --- property tests: indexed picks == the old linear-scan picks ---

LoadInfo random_info(sim::Rng& rng, NodeId node) {
  LoadInfo info;
  info.node = node;
  info.active_jobs = static_cast<int>(rng.uniform_index(6));
  info.slots_used = info.active_jobs + static_cast<int>(rng.uniform_index(2));
  info.user_memory = megabytes(368);
  info.idle_memory = megabytes(static_cast<double>(rng.uniform_index(300)));
  info.reserved = rng.uniform() < 0.05;
  info.pressured = rng.uniform() < 0.15;
  info.failed = rng.uniform() < 0.10;
  return info;
}

/// The pre-index submission-target scan of GLoadSharing, verbatim.
std::optional<NodeId> linear_submission_target(const LoadInfoBoard& board, Bytes demand_hint,
                                               NodeId exclude, int cpu_threshold) {
  std::optional<NodeId> best;
  int best_slots = 0;
  Bytes best_idle = 0;
  for (const LoadInfo& info : board.all()) {
    if (info.node == exclude) continue;
    if (info.reserved || info.pressured || info.failed) continue;
    if (info.slots_used >= cpu_threshold) continue;
    if (info.idle_memory <= demand_hint) continue;
    const bool better = !best || info.slots_used < best_slots ||
                        (info.slots_used == best_slots && info.idle_memory > best_idle);
    if (!better) continue;
    best = info.node;
    best_slots = info.slots_used;
    best_idle = info.idle_memory;
  }
  return best;
}

/// The board-side part of the pre-index migration-target scan.
std::optional<NodeId> linear_migration_target(const LoadInfoBoard& board, Bytes demand,
                                              NodeId exclude, int cpu_threshold) {
  std::optional<NodeId> best;
  Bytes best_idle = 0;
  for (const LoadInfo& info : board.all()) {
    if (info.node == exclude) continue;
    if (info.reserved || info.pressured || info.failed) continue;
    if (info.slots_used >= cpu_threshold) continue;
    if (info.idle_memory < demand) continue;
    if (info.idle_memory <= best_idle) continue;
    best = info.node;
    best_idle = info.idle_memory;
  }
  return best;
}

TEST(ClusterIndexPropertyTest, SubmissionPicksMatchLinearScan) {
  sim::Rng rng(7);
  const int cpu_threshold = 5;
  for (std::size_t nodes = 32; nodes <= 512; nodes *= 2) {
    LoadInfoBoard board(nodes);
    for (NodeId n = 0; n < nodes; ++n) board.update(random_info(rng, n));
    for (int trial = 0; trial < 200; ++trial) {
      // Mutate a few entries so heaps see churn (exchange + sender-side
      // decrements), not just a fresh build.
      for (int m = 0; m < 3; ++m) {
        const NodeId victim = static_cast<NodeId>(rng.uniform_index(nodes));
        if (rng.uniform() < 0.5) {
          board.update(random_info(rng, victim));
        } else {
          board.note_placement(victim, megabytes(static_cast<double>(rng.uniform_index(80))));
        }
      }
      const Bytes hint = megabytes(static_cast<double>(rng.uniform_index(150)));
      const NodeId exclude = static_cast<NodeId>(rng.uniform_index(nodes));
      const auto indexed = board.index().best_first([&](NodeId n) {
        if (n == exclude || board.index().pressured(n)) return false;
        if (board.index().slots_used(n) >= cpu_threshold) return false;
        return board.index().idle(n) > hint;
      });
      EXPECT_EQ(indexed, linear_submission_target(board, hint, exclude, cpu_threshold))
          << "nodes=" << nodes << " trial=" << trial;
    }
  }
}

TEST(ClusterIndexPropertyTest, MigrationPicksMatchLinearScan) {
  sim::Rng rng(11);
  const int cpu_threshold = 5;
  for (std::size_t nodes = 32; nodes <= 512; nodes *= 2) {
    LoadInfoBoard board(nodes);
    for (NodeId n = 0; n < nodes; ++n) board.update(random_info(rng, n));
    for (int trial = 0; trial < 200; ++trial) {
      board.update(random_info(rng, static_cast<NodeId>(rng.uniform_index(nodes))));
      board.set_reserved(static_cast<NodeId>(rng.uniform_index(nodes)), rng.uniform() < 0.5);
      const Bytes demand = megabytes(static_cast<double>(rng.uniform_index(250)));
      const NodeId exclude = static_cast<NodeId>(rng.uniform_index(nodes));
      const auto indexed = board.index().best_second([&](NodeId n) {
        if (n == exclude || board.index().pressured(n)) return false;
        if (board.index().slots_used(n) >= cpu_threshold) return false;
        return board.index().idle(n) > 0 && board.index().idle(n) >= demand;
      });
      EXPECT_EQ(indexed, linear_migration_target(board, demand, exclude, cpu_threshold))
          << "nodes=" << nodes << " trial=" << trial;
    }
  }
}

TEST(ClusterIndexPropertyTest, ReservationAndOraclePicksMatchLinearScan) {
  sim::Rng rng(13);
  for (std::size_t nodes = 32; nodes <= 512; nodes *= 4) {
    ClusterIndex index(nodes, ClusterIndex::Order::kMaxIdleMinJobs,
                       ClusterIndex::Order::kMinPeak);
    std::vector<ClusterIndex::NodeState> mirror(nodes);
    for (int trial = 0; trial < 400; ++trial) {
      const NodeId victim = static_cast<NodeId>(rng.uniform_index(nodes));
      ClusterIndex::NodeState state;
      state.idle = megabytes(static_cast<double>(rng.uniform_index(300)));
      state.peak = megabytes(static_cast<double>(rng.uniform_index(500)));
      state.active_jobs = static_cast<int>(rng.uniform_index(6));
      state.failed = rng.uniform() < 0.1;
      state.reserved = rng.uniform() < 0.1;
      index.publish(victim, state);
      mirror[victim] = state;

      const NodeId pressured = static_cast<NodeId>(rng.uniform_index(nodes));

      // Reservation candidate: (idle desc, jobs asc, id asc) over live,
      // unreserved nodes, excluding the pressured one.
      std::optional<NodeId> expected;
      for (NodeId n = 0; n < nodes; ++n) {
        const auto& s = mirror[n];
        if (s.failed || s.reserved || n == pressured) continue;
        if (!expected) {
          expected = n;
          continue;
        }
        const auto& b = mirror[*expected];
        if (s.idle > b.idle || (s.idle == b.idle && s.active_jobs < b.active_jobs)) {
          expected = n;
        }
      }
      EXPECT_EQ(index.best_first([&](NodeId n) { return n != pressured; }), expected)
          << "nodes=" << nodes << " trial=" << trial;

      // Oracle placement: least peak, first id on ties.
      std::optional<NodeId> least_peak;
      for (NodeId n = 0; n < nodes; ++n) {
        const auto& s = mirror[n];
        if (s.failed || s.reserved) continue;
        if (!least_peak || s.peak < mirror[*least_peak].peak) least_peak = n;
      }
      EXPECT_EQ(index.best_second([](NodeId) { return true; }), least_peak)
          << "nodes=" << nodes << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace vrc::cluster
