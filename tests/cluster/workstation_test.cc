#include "cluster/workstation.h"

#include <gtest/gtest.h>

#include "workload/job.h"

namespace vrc::cluster {
namespace {

ClusterConfig test_config() {
  ClusterConfig config = ClusterConfig::paper_cluster1(1);
  return config;
}

// A job spec with constant memory demand, owned by the fixture.
workload::JobSpec make_spec(workload::JobId id, double cpu_seconds, Bytes demand,
                            double touch_rate = 0.0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = workload::MemoryProfile::constant(demand);
  return spec;
}

std::unique_ptr<RunningJob> make_job(const workload::JobSpec& spec) {
  auto job = std::make_unique<RunningJob>();
  job->spec = &spec;
  job->phase = JobPhase::kRunning;
  job->demand = spec.memory.demand_at(0.0);
  job->accounted_until = 0.0;
  return job;
}

class WorkstationTest : public ::testing::Test {
 protected:
  WorkstationTest() : config_(test_config()), node_(0, config_.nodes[0], config_) {}

  // Runs `seconds` of simulation in config ticks; returns all completions.
  std::vector<std::unique_ptr<RunningJob>> run(double seconds) {
    std::vector<std::unique_ptr<RunningJob>> completed;
    const double dt = config_.tick;
    for (double t = dt; t <= seconds + 1e-9; t += dt) {
      now_ += dt;
      auto outcome = node_.tick(now_, dt, rng_);
      for (auto& job : outcome.completed) completed.push_back(std::move(job));
    }
    return completed;
  }

  ClusterConfig config_;
  Workstation node_;
  sim::Rng rng_{1};
  double now_ = 0.0;
};

TEST_F(WorkstationTest, UserMemoryExcludesKernel) {
  EXPECT_EQ(node_.user_memory(), megabytes(384) - megabytes(16));
}

TEST_F(WorkstationTest, EmptyNodeHasFullIdleMemory) {
  EXPECT_EQ(node_.idle_memory(), node_.user_memory());
  EXPECT_EQ(node_.active_jobs(), 0);
  EXPECT_EQ(node_.overcommit(), 0.0);
  EXPECT_FALSE(node_.memory_pressured());
}

TEST_F(WorkstationTest, SingleJobRunsAtFullSpeed) {
  auto spec = make_spec(1, 10.0, megabytes(50));
  node_.add_job(make_job(spec));
  auto completed = run(10.0);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_NEAR(completed[0]->t_cpu, 10.0, 0.02);
  EXPECT_NEAR(completed[0]->t_page, 0.0, 1e-9);
  EXPECT_NEAR(completed[0]->t_queue, 0.0, 0.02);
}

TEST_F(WorkstationTest, TwoJobsShareCpuRoundRobin) {
  auto spec_a = make_spec(1, 5.0, megabytes(50));
  auto spec_b = make_spec(2, 5.0, megabytes(50));
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  auto completed = run(10.5);
  ASSERT_EQ(completed.size(), 2u);
  // Each needs 5 s CPU at half speed -> ~10 s wall; queue ~ cpu time.
  for (const auto& job : completed) {
    EXPECT_NEAR(job->t_cpu, 5.0, 0.05);
    EXPECT_NEAR(job->t_queue, 5.0, 0.15);  // includes context-switch overhead
  }
}

TEST_F(WorkstationTest, ContextSwitchOverheadSlowsSharedExecution) {
  // With quantum 10 ms and switch 0.1 ms, two jobs of 5 s CPU take slightly
  // more than 10 s in total.
  auto spec_a = make_spec(1, 5.0, megabytes(10));
  auto spec_b = make_spec(2, 5.0, megabytes(10));
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  auto first = run(10.0);
  EXPECT_TRUE(first.empty() || first.size() < 2u);  // not both done at exactly 10 s
  run(0.3);
  EXPECT_EQ(node_.active_jobs(), 0);
}

TEST_F(WorkstationTest, NoOvercommitNoFaults) {
  auto spec = make_spec(1, 5.0, megabytes(200), /*touch_rate=*/500.0);
  node_.add_job(make_job(spec));
  auto completed = run(5.5);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0]->faults, 0.0);
  EXPECT_EQ(completed[0]->t_page, 0.0);
}

TEST_F(WorkstationTest, OvercommitGeneratesFaultsAndPageTime) {
  auto spec_a = make_spec(1, 50.0, megabytes(250), 100.0);
  auto spec_b = make_spec(2, 50.0, megabytes(250), 100.0);
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  run(10.0);
  EXPECT_GT(node_.overcommit(), 0.0);
  EXPECT_GT(node_.fault_rate(), 0.0);
  EXPECT_GT(node_.total_faults(), 0.0);
  const RunningJob* job = node_.find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_GT(job->t_page, 0.0);
  EXPECT_GT(job->faults, 0.0);
}

TEST_F(WorkstationTest, HigherTouchRateFaultsMore) {
  auto spec_a = make_spec(1, 50.0, megabytes(250), 50.0);
  auto spec_b = make_spec(2, 50.0, megabytes(250), 500.0);
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  run(10.0);
  const RunningJob* calm = node_.find_job(1);
  const RunningJob* hot = node_.find_job(2);
  ASSERT_TRUE(calm && hot);
  EXPECT_GT(hot->faults, calm->faults * 2.0);
  // The hot job also makes less progress: its stalls eat its own turn.
  EXPECT_LT(hot->cpu_done, calm->cpu_done);
}

TEST_F(WorkstationTest, OvercommitMatchesDefinition) {
  auto spec_a = make_spec(1, 100.0, megabytes(300));
  auto spec_b = make_spec(2, 100.0, megabytes(200));
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  const double resident = 500.0;
  const double user = 368.0;
  EXPECT_NEAR(node_.overcommit(), (resident - user) / resident, 1e-9);
  EXPECT_TRUE(node_.memory_pressured());
}

TEST_F(WorkstationTest, AccountingIdentityHoldsPerJob) {
  auto spec_a = make_spec(1, 7.0, megabytes(250), 200.0);
  auto spec_b = make_spec(2, 9.0, megabytes(250), 200.0);
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  auto completed = run(60.0);
  ASSERT_EQ(completed.size(), 2u);
  for (const auto& job : completed) {
    const double wall = job->accounted_until - 0.0;
    EXPECT_NEAR(job->t_cpu + job->t_page + job->t_queue + job->t_mig, wall, 0.02)
        << "job " << job->id();
    EXPECT_NEAR(job->cpu_done, job->spec->cpu_seconds, 1e-6);
  }
}

TEST_F(WorkstationTest, SuspendedJobsAccrueQueueOnly) {
  auto spec = make_spec(1, 5.0, megabytes(100));
  RunningJob& job = node_.add_job(make_job(spec));
  node_.set_job_phase(job, JobPhase::kSuspended);
  run(2.0);
  EXPECT_EQ(job.cpu_done, 0.0);
  EXPECT_NEAR(job.t_queue, 2.0, 1e-6);
  EXPECT_EQ(node_.active_jobs(), 0);  // suspended jobs hold no slot
}

TEST_F(WorkstationTest, SuspendedJobsFreeMemory) {
  auto spec = make_spec(1, 5.0, megabytes(200));
  RunningJob& job = node_.add_job(make_job(spec));
  EXPECT_EQ(node_.resident_demand(), megabytes(200));
  node_.set_job_phase(job, JobPhase::kSuspended);
  EXPECT_EQ(node_.resident_demand(), 0);
}

TEST_F(WorkstationTest, MigratingJobsHoldMemoryButGetNoCpu) {
  auto spec = make_spec(1, 5.0, megabytes(200));
  RunningJob& job = node_.add_job(make_job(spec));
  node_.set_job_phase(job, JobPhase::kMigrating);
  run(2.0);
  EXPECT_EQ(job.cpu_done, 0.0);
  EXPECT_EQ(node_.resident_demand(), megabytes(200));
  EXPECT_EQ(node_.active_jobs(), 1);  // still occupies its slot
}

TEST_F(WorkstationTest, IncomingReservationsCountTowardCommitted) {
  node_.add_incoming(42, megabytes(100));
  EXPECT_EQ(node_.committed_demand(), megabytes(100));
  EXPECT_EQ(node_.incoming_count(), 1);
  EXPECT_EQ(node_.slots_used(), 1);
  EXPECT_EQ(node_.active_jobs(), 0);
  EXPECT_TRUE(node_.remove_incoming(42));
  EXPECT_EQ(node_.committed_demand(), 0);
  EXPECT_EQ(node_.slots_used(), 0);
}

TEST_F(WorkstationTest, RemoveIncomingReportsMissWithoutTouchingState) {
  node_.add_incoming(7, megabytes(40));
  EXPECT_FALSE(node_.remove_incoming(8));  // absent id: reservation stays intact
  EXPECT_EQ(node_.incoming_count(), 1);
  EXPECT_EQ(node_.incoming_bytes(), megabytes(40));
  EXPECT_TRUE(node_.remove_incoming(7));
  EXPECT_FALSE(node_.remove_incoming(7));  // double-release is a miss, not a corruption
  EXPECT_EQ(node_.incoming_count(), 0);
  EXPECT_EQ(node_.incoming_bytes(), 0);
}

// The aggregates (resident demand, active/runnable counts) are maintained
// incrementally; walk a job through every phase transition and removal and
// check each one against the definitions.
TEST_F(WorkstationTest, AggregatesTrackPhaseTransitions) {
  auto spec_a = make_spec(1, 100.0, megabytes(200));
  auto spec_b = make_spec(2, 100.0, megabytes(100));
  RunningJob& a = node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  EXPECT_EQ(node_.resident_demand(), megabytes(300));
  EXPECT_EQ(node_.active_jobs(), 2);
  EXPECT_EQ(node_.runnable_jobs(), 2);
  EXPECT_EQ(node_.migrating_jobs(), 0);

  node_.set_job_phase(a, JobPhase::kSuspended);
  EXPECT_EQ(node_.resident_demand(), megabytes(100));
  EXPECT_EQ(node_.active_jobs(), 1);
  EXPECT_EQ(node_.runnable_jobs(), 1);

  node_.set_job_phase(a, JobPhase::kRunning);
  EXPECT_EQ(node_.resident_demand(), megabytes(300));
  EXPECT_EQ(node_.active_jobs(), 2);
  EXPECT_EQ(node_.runnable_jobs(), 2);

  node_.set_job_phase(a, JobPhase::kMigrating);
  EXPECT_EQ(node_.resident_demand(), megabytes(300));  // image still resident
  EXPECT_EQ(node_.active_jobs(), 2);                   // still holds its slot
  EXPECT_EQ(node_.runnable_jobs(), 1);
  EXPECT_EQ(node_.migrating_jobs(), 1);

  auto removed = node_.remove_job(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(node_.resident_demand(), megabytes(100));
  EXPECT_EQ(node_.active_jobs(), 1);
  EXPECT_EQ(node_.runnable_jobs(), 1);
  EXPECT_EQ(node_.migrating_jobs(), 0);
}

// Removing a suspended job must not disturb the aggregates it is absent from.
TEST_F(WorkstationTest, RemovingSuspendedJobLeavesAggregatesAlone) {
  auto spec_a = make_spec(1, 100.0, megabytes(200));
  auto spec_b = make_spec(2, 100.0, megabytes(100));
  RunningJob& a = node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  node_.set_job_phase(a, JobPhase::kSuspended);
  auto removed = node_.remove_job(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(node_.resident_demand(), megabytes(100));
  EXPECT_EQ(node_.active_jobs(), 1);
  EXPECT_EQ(node_.runnable_jobs(), 1);
}

TEST_F(WorkstationTest, AcceptsNewJobHonorsCpuThreshold) {
  std::vector<workload::JobSpec> specs;
  specs.reserve(static_cast<size_t>(config_.cpu_threshold));
  for (int i = 0; i < config_.cpu_threshold; ++i) {
    specs.push_back(make_spec(static_cast<workload::JobId>(i + 1), 100.0, megabytes(1)));
  }
  for (auto& spec : specs) node_.add_job(make_job(spec));
  EXPECT_FALSE(node_.has_free_slot());
  EXPECT_FALSE(node_.accepts_new_job(0));
}

TEST_F(WorkstationTest, AcceptsNewJobHonorsMemoryThreshold) {
  const Bytes limit = static_cast<Bytes>(config_.memory_threshold *
                                         static_cast<double>(node_.user_memory()));
  auto spec = make_spec(1, 100.0, limit - megabytes(10));
  node_.add_job(make_job(spec));
  EXPECT_FALSE(node_.accepts_new_job(megabytes(20)));
  EXPECT_TRUE(node_.accepts_new_job(megabytes(1)));
}

TEST_F(WorkstationTest, ReservedNodeRefusesJobs) {
  node_.set_reserved(true);
  EXPECT_FALSE(node_.accepts_new_job(0));
  node_.set_reserved(false);
  EXPECT_TRUE(node_.accepts_new_job(0));
}

TEST_F(WorkstationTest, MostMemoryIntensiveJobSelection) {
  auto small = make_spec(1, 10.0, megabytes(50));
  auto big = make_spec(2, 10.0, megabytes(200));
  auto mid = make_spec(3, 10.0, megabytes(100));
  node_.add_job(make_job(small));
  node_.add_job(make_job(big));
  node_.add_job(make_job(mid));
  RunningJob* most = node_.most_memory_intensive_job();
  ASSERT_NE(most, nullptr);
  EXPECT_EQ(most->id(), 2u);
}

TEST_F(WorkstationTest, MostMemoryIntensiveSkipsMigrating) {
  auto big = make_spec(1, 10.0, megabytes(200));
  auto small = make_spec(2, 10.0, megabytes(50));
  RunningJob& big_job = node_.add_job(make_job(big));
  node_.add_job(make_job(small));
  node_.set_job_phase(big_job, JobPhase::kMigrating);
  RunningJob* most = node_.most_memory_intensive_job();
  ASSERT_NE(most, nullptr);
  EXPECT_EQ(most->id(), 2u);
}

TEST_F(WorkstationTest, RemoveJobReturnsOwnership) {
  auto spec = make_spec(1, 10.0, megabytes(50));
  node_.add_job(make_job(spec));
  auto removed = node_.remove_job(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id(), 1u);
  EXPECT_EQ(node_.remove_job(1), nullptr);
  EXPECT_EQ(node_.find_job(1), nullptr);
}

TEST_F(WorkstationTest, FaultRateDecaysWhenLoadGone) {
  auto spec_a = make_spec(1, 100.0, megabytes(250), 300.0);
  auto spec_b = make_spec(2, 100.0, megabytes(250), 300.0);
  node_.add_job(make_job(spec_a));
  node_.add_job(make_job(spec_b));
  run(5.0);
  const double pressured_rate = node_.fault_rate();
  EXPECT_GT(pressured_rate, 0.0);
  node_.remove_job(1);
  node_.remove_job(2);
  run(10.0);
  EXPECT_LT(node_.fault_rate(), pressured_rate * 0.05);
}

TEST_F(WorkstationTest, SnapshotReflectsState) {
  auto spec = make_spec(1, 10.0, megabytes(100));
  node_.add_job(make_job(spec));
  node_.add_incoming(2, megabytes(50));
  LoadInfo info = node_.snapshot(12.5);
  EXPECT_EQ(info.node, 0u);
  EXPECT_EQ(info.timestamp, 12.5);
  EXPECT_EQ(info.active_jobs, 1);
  EXPECT_EQ(info.slots_used, 2);
  EXPECT_EQ(info.total_demand, megabytes(150));
  EXPECT_EQ(info.idle_memory, node_.user_memory() - megabytes(150));
  EXPECT_FALSE(info.reserved);
  EXPECT_FALSE(info.pressured);
}

TEST_F(WorkstationTest, SlowerNodeTakesProportionallyLonger) {
  ClusterConfig config = test_config();
  config.nodes[0].cpu_mhz = 200.0;  // half the 400 MHz reference
  Workstation slow(0, config.nodes[0], config);
  auto spec = make_spec(1, 4.0, megabytes(50));
  slow.add_job(make_job(spec));
  sim::Rng rng(1);
  double now = 0.0;
  int completed = 0;
  for (int i = 0; i < 900; ++i) {  // 9 s
    now += config.tick;
    completed += static_cast<int>(slow.tick(now, config.tick, rng).completed.size());
  }
  EXPECT_EQ(completed, 1);  // 4 ref-seconds at half speed ~ 8 s wall
  EXPECT_GE(now, 8.0);
}

TEST_F(WorkstationTest, DemandFollowsProfileGrowth) {
  workload::JobSpec spec;
  spec.id = 1;
  spec.cpu_seconds = 10.0;
  spec.memory = workload::MemoryProfile::phased(
      {{0.0, megabytes(10)}, {1.0, megabytes(110)}});
  RunningJob& job = node_.add_job(make_job(spec));
  EXPECT_EQ(job.demand, megabytes(10));
  run(5.0);  // ~50% progress
  EXPECT_GT(job.demand, megabytes(50));
  EXPECT_LT(job.demand, megabytes(70));
}

}  // namespace
}  // namespace vrc::cluster
