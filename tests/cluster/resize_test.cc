// Width-reconfiguration mechanics (DESIGN.md §15): slot accounting through a
// resize's in-flight window, the grow/shrink reservation asymmetry, fault
// interaction (node death mid-resize), the migration/suspend interlock, and
// the §5 accounting of the reconfiguration pause.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "workload/trace.h"

namespace vrc::cluster {
namespace {

using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, double cpu_seconds, Bytes demand, int min_width = 1,
                  int max_width = 1, workload::NodeId home = 0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = 0.0;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = 0.0;
  spec.memory = MemoryProfile::constant(demand);
  spec.malleability.min_width = min_width;
  spec.malleability.max_width = max_width;
  return spec;
}

/// Places every arrival on its home node; optionally leaves arrivals pending.
class ScriptedPolicy : public SchedulerPolicy {
 public:
  explicit ScriptedPolicy(bool place = true) : place_(place) {}
  const char* name() const override { return "scripted"; }
  void on_job_arrival(Cluster& cluster, RunningJob& job) override {
    if (place_) cluster.place_local(job, job.home_node);
  }
  void on_resize_complete(Cluster&, RunningJob& job) override {
    resize_completions.push_back(job.id());
  }
  bool place_;
  std::vector<JobId> resize_completions;
};

ClusterConfig small_config(std::size_t nodes = 4) {
  return ClusterConfig::paper_cluster1(nodes);
}

TEST(ResizeTest, ShrinkHoldsOldWidthUntilCompletion) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), /*min=*/1, /*max=*/3));
  sim.run_until(1.0);
  ASSERT_EQ(cluster.node(0).slots_used(), 3);  // submitted at max width

  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  EXPECT_EQ(cluster.resizes_started(), 1u);
  RunningJob* job = cluster.node(0).find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->phase, JobPhase::kResizing);
  // A shrink releases its slots only at the reconfiguration point: the old
  // width stays held through the pause.
  EXPECT_EQ(job->width, 3);
  EXPECT_EQ(job->resize_target, 1);
  EXPECT_EQ(cluster.node(0).slots_used(), 3);

  // Default contract cost: 0.5 fixed + 0.25 * |1 - 3| = 1.0 s.
  sim.run_until(2.1);
  EXPECT_EQ(job->phase, JobPhase::kRunning);
  EXPECT_EQ(job->width, 1);
  EXPECT_EQ(job->resizes, 1);
  EXPECT_EQ(cluster.node(0).slots_used(), 1);
  EXPECT_EQ(cluster.resizes_completed(), 1u);
  EXPECT_EQ(policy.resize_completions, (std::vector<JobId>{1}));
}

TEST(ResizeTest, GrowReservesSlotsUpFront) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 1, 3));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  sim.run_until(3.0);
  ASSERT_EQ(cluster.node(0).slots_used(), 1);

  // A grow must hold the new width for its whole flight — otherwise another
  // placement could take the slots the resize is about to occupy.
  ASSERT_TRUE(cluster.resize_job(0, 1, 3));
  EXPECT_EQ(cluster.node(0).slots_used(), 3);
  RunningJob* job = cluster.node(0).find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->phase, JobPhase::kResizing);
  sim.run_until(5.0);
  EXPECT_EQ(job->width, 3);
  EXPECT_EQ(job->phase, JobPhase::kRunning);
  EXPECT_EQ(cluster.resizes_completed(), 2u);
}

TEST(ResizeTest, RefusesInvalidRequests) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(10)));          // rigid
  cluster.submit_job(make_spec(2, 100.0, megabytes(10), 1, 3));    // malleable
  sim.run_until(1.0);
  EXPECT_FALSE(cluster.resize_job(0, 1, 2));   // not resizable
  EXPECT_FALSE(cluster.resize_job(0, 2, 0));   // below min_width
  EXPECT_FALSE(cluster.resize_job(0, 2, 4));   // above max_width
  EXPECT_FALSE(cluster.resize_job(0, 2, 3));   // already at width 3
  EXPECT_FALSE(cluster.resize_job(0, 99, 2));  // no such job
  EXPECT_FALSE(cluster.resize_job(1, 2, 2));   // wrong node
}

TEST(ResizeTest, GrowRefusedWhenSlotsExhausted) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(10), 1, 3));
  for (JobId id = 2; id <= 5; ++id) {
    cluster.submit_job(make_spec(id, 100.0, megabytes(10)));
  }
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  sim.run_until(3.0);
  // cpu_threshold is 5: four rigid jobs plus the width-1 job fill the node.
  ASSERT_EQ(cluster.node(0).slots_used(), 5);
  EXPECT_FALSE(cluster.resize_job(0, 1, 2));
}

TEST(ResizeTest, ResizeMigrationAndSuspendInterlock) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 1, 3));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  // All three mechanisms require kRunning, so each excludes the others.
  EXPECT_FALSE(cluster.resize_job(0, 1, 2));      // already resizing
  EXPECT_FALSE(cluster.start_migration(0, 1, 1));  // resize in flight
  EXPECT_FALSE(cluster.suspend_job(0, 1));         // resize in flight
  sim.run_until(3.0);

  ASSERT_TRUE(cluster.start_migration(0, 1, 1));
  EXPECT_FALSE(cluster.resize_job(0, 1, 2));  // migration in flight
  sim.run_until(100.0);
  ASSERT_TRUE(cluster.suspend_job(1, 1));
  EXPECT_FALSE(cluster.resize_job(1, 1, 2));  // suspended jobs cannot resize
}

TEST(ResizeTest, NodeFailureMidShrinkAbortsCleanly) {
  sim::Simulator sim;
  ScriptedPolicy policy(/*place=*/false);
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 1, 3));
  sim.run_until(1.0);
  cluster.place_local(*cluster.pending_jobs()[0], 0);
  sim.run_until(2.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  sim.run_until(2.2);  // resize completes at ~3.0; kill the node before it
  cluster.fail_node(0);

  EXPECT_EQ(cluster.resizes_aborted(), 1u);
  EXPECT_EQ(cluster.node(0).slots_used(), 0);
  ASSERT_EQ(cluster.pending_count(), 1u);
  RunningJob* job = cluster.pending_jobs()[0];
  // The restarted incarnation resubmits at the spec width, like a fresh
  // arrival; the paused interval was charged as transfer-class time.
  EXPECT_EQ(job->width, 3);
  EXPECT_EQ(job->resize_target, 3);
  EXPECT_GT(job->t_mig, 0.19);

  // The in-flight completion event must abort via its incarnation check.
  sim.run_until(10.0);
  EXPECT_EQ(job->phase, JobPhase::kPending);
  EXPECT_EQ(cluster.resizes_completed(), 0u);

  // The job is fully restartable: recover, re-place, run to completion.
  cluster.recover_node(0);
  cluster.place_local(*job, 0);
  EXPECT_EQ(cluster.node(0).slots_used(), 3);
  sim.run_until(500.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  EXPECT_EQ(cluster.completed()[0].restarts, 1);
}

TEST(ResizeTest, NodeFailureMidGrowAbortsCleanly) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 1, 3, /*home=*/1));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(1, 1, 1));
  sim.run_until(3.0);
  ASSERT_TRUE(cluster.resize_job(1, 1, 3));  // grow holds 3 slots in flight
  ASSERT_EQ(cluster.node(1).slots_used(), 3);
  cluster.fail_node(1);

  EXPECT_EQ(cluster.resizes_aborted(), 1u);
  EXPECT_EQ(cluster.node(1).slots_used(), 0);
  sim.run_until(10.0);  // the grow completion aborts; nothing dangles
  EXPECT_EQ(cluster.resizes_completed(), 1u);  // only the earlier shrink
}

TEST(ResizeTest, ResizePauseChargedToMigrationBucket) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 5.0, megabytes(40), 1, 2));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  sim.run_until(500.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const CompletedJob& job = cluster.completed()[0];
  EXPECT_EQ(job.resizes, 1);
  EXPECT_TRUE(job.malleable);
  // Contract cost 0.5 + 0.25 * 1 = 0.75 s, billed as reconfiguration time.
  EXPECT_NEAR(job.t_mig, 0.75, 1e-6);
  // §5 identity holds through the resize, and the width integral covers the
  // wide prefix (width 2 for ~1 s) plus the narrow tail.
  EXPECT_NEAR(job.t_cpu + job.t_page + job.t_queue + job.t_mig, job.wall_clock(), 0.05);
  EXPECT_GT(job.width_seconds, 1.9);
}

TEST(ResizeTest, PerNodeMinIntervalPacesResizes) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  ClusterConfig config = small_config();
  config.resize_min_interval = 10.0;
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 1, 3));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 2));
  sim.run_until(5.0);
  EXPECT_FALSE(cluster.resize_job(0, 1, 1));  // within the pacing window
  sim.run_until(11.5);
  EXPECT_TRUE(cluster.resize_job(0, 1, 1));
}

TEST(ResizeTest, ConfigCostOverridesContract) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  ClusterConfig config = small_config();
  config.resize_fixed_cost = 2.0;
  config.resize_per_slot_cost = 0.0;
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 5.0, megabytes(40), 1, 2));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.resize_job(0, 1, 1));
  sim.run_until(500.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  EXPECT_NEAR(cluster.completed()[0].t_mig, 2.0, 1e-6);
}

TEST(ResizeTest, WidthWeightedAdmission) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 100.0, megabytes(40), 3, 3));
  sim.run_until(1.0);
  const Workstation& node = cluster.node(0);
  ASSERT_EQ(node.slots_used(), 3);
  EXPECT_EQ(node.free_slots(), 2);
  EXPECT_TRUE(node.accepts_new_job(megabytes(10), /*width=*/2));
  EXPECT_FALSE(node.accepts_new_job(megabytes(10), /*width=*/3));
}

TEST(ResizeTest, SublinearSpeedupSlowsSoloWideJob) {
  // A width-2 job alone on a node holds both of its slots but only speeds up
  // by 2^alpha: with alpha = 0.8 it finishes later than the same work at
  // width 1, by the 2^0.2 parallel-overhead factor.
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 10.0, megabytes(10), 2, 2, /*home=*/0));
  cluster.submit_job(make_spec(2, 10.0, megabytes(10), 1, 1, /*home=*/1));
  sim.run_until(500.0);
  ASSERT_EQ(cluster.completed().size(), 2u);
  double wide_done = 0.0;
  double narrow_done = 0.0;
  for (const CompletedJob& job : cluster.completed()) {
    (job.id == 1 ? wide_done : narrow_done) = job.completion_time;
  }
  EXPECT_NEAR(narrow_done, 10.0, 0.05);
  EXPECT_NEAR(wide_done, 10.0 * std::pow(2.0, 0.2), 0.1);
}

}  // namespace
}  // namespace vrc::cluster
