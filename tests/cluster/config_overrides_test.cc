// ClusterConfig::apply_overrides: the declarative cluster half of a
// scenario. Valid scalar and per-node overrides, unit-suffix parsing, the
// precise error text on bad input, and the transactional guarantee that a
// failed batch leaves the config untouched.
#include "cluster/config.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace vrc::cluster {
namespace {

TEST(ApplyOverridesTest, ScalarKnobsCoverEveryType) {
  ClusterConfig config = ClusterConfig::paper_cluster1(8);
  std::string error;
  ASSERT_TRUE(config.apply_overrides(
      {
          {"memory_threshold", "0.9"},
          {"cpu_threshold", "3"},
          {"network_contention", "true"},
          {"seed", "2024"},
          {"admission_demand_estimate", "18MB"},
          {"quantum", "20ms"},
      },
      &error))
      << error;
  EXPECT_DOUBLE_EQ(config.memory_threshold, 0.9);
  EXPECT_EQ(config.cpu_threshold, 3);
  EXPECT_TRUE(config.network_contention);
  EXPECT_EQ(config.seed, 2024u);
  EXPECT_EQ(config.admission_demand_estimate, megabytes(18));
  EXPECT_DOUBLE_EQ(config.quantum, 0.020);
}

TEST(ApplyOverridesTest, NodesResizeReplicatesTheFirstNode) {
  ClusterConfig config = ClusterConfig::paper_cluster2(4);
  ASSERT_TRUE(config.apply_overrides({{"nodes", "12"}}));
  ASSERT_EQ(config.num_nodes(), 12u);
  for (const NodeConfig& node : config.nodes) {
    EXPECT_DOUBLE_EQ(node.cpu_mhz, 233.0);
    EXPECT_EQ(node.memory, megabytes(128));
  }
}

TEST(ApplyOverridesTest, PerNodeOverridesHitOneOrAllNodes) {
  ClusterConfig config = ClusterConfig::paper_cluster1(4);
  std::string error;
  ASSERT_TRUE(config.apply_overrides(
      {
          {"node.3.memory", "128MB"},
          {"node.3.cpu_mhz", "233"},
          {"node.*.swap", "200MB"},
      },
      &error))
      << error;
  EXPECT_EQ(config.nodes[3].memory, megabytes(128));
  EXPECT_DOUBLE_EQ(config.nodes[3].cpu_mhz, 233.0);
  EXPECT_EQ(config.nodes[0].memory, megabytes(384));  // others untouched
  for (const NodeConfig& node : config.nodes) EXPECT_EQ(node.swap, megabytes(200));
}

TEST(ApplyOverridesTest, NodesResizeAppliesBeforePerNodeKeys) {
  // Map iteration visits "node.6..." before "nodes", but the resize must win
  // the ordering: per-node overrides always target the final node count.
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  std::string error;
  ASSERT_TRUE(config.apply_overrides({{"nodes", "8"}, {"node.6.cpu_mhz", "100"}}, &error))
      << error;
  ASSERT_EQ(config.num_nodes(), 8u);
  EXPECT_DOUBLE_EQ(config.nodes[6].cpu_mhz, 100.0);
}

TEST(ApplyOverridesTest, UnknownKeyListsKnownKeys) {
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  std::string error;
  EXPECT_FALSE(config.apply_overrides({{"turbo_mode", "1"}}, &error));
  EXPECT_NE(error.find("unknown config override 'turbo_mode'"), std::string::npos) << error;
  EXPECT_NE(error.find("memory_threshold"), std::string::npos) << error;
  EXPECT_NE(error.find("node.<i>.memory"), std::string::npos) << error;
}

TEST(ApplyOverridesTest, MalformedValueNamesKeyTypeAndExample) {
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  std::string error;
  EXPECT_FALSE(config.apply_overrides({{"memory_threshold", "most"}}, &error));
  EXPECT_NE(error.find("config override 'memory_threshold'"), std::string::npos) << error;
  EXPECT_NE(error.find("invalid value 'most'"), std::string::npos) << error;
  EXPECT_NE(error.find("expected double, e.g. 0.85"), std::string::npos) << error;

  EXPECT_FALSE(config.apply_overrides({{"quantum", "fast"}}, &error));
  EXPECT_NE(error.find("expected duration"), std::string::npos) << error;
  EXPECT_FALSE(config.apply_overrides({{"network_contention", "maybe"}}, &error));
  EXPECT_NE(error.find("expected bool"), std::string::npos) << error;
  EXPECT_FALSE(config.apply_overrides({{"node.0.memory", "lots"}}, &error));
  EXPECT_NE(error.find("expected bytes"), std::string::npos) << error;
  EXPECT_FALSE(config.apply_overrides({{"nodes", "0"}}, &error));
  EXPECT_NE(error.find("positive int"), std::string::npos) << error;
}

TEST(ApplyOverridesTest, BadNodeKeysAreRejectedPrecisely) {
  ClusterConfig config = ClusterConfig::paper_cluster1(4);
  std::string error;
  EXPECT_FALSE(config.apply_overrides({{"node.9.memory", "128MB"}}, &error));
  EXPECT_NE(error.find("node index 9 out of range (cluster has 4 nodes)"), std::string::npos)
      << error;
  EXPECT_FALSE(config.apply_overrides({{"node.two.memory", "128MB"}}, &error));
  EXPECT_NE(error.find("node index must be a number or '*'"), std::string::npos) << error;
  EXPECT_FALSE(config.apply_overrides({{"node.memory", "128MB"}}, &error));
  EXPECT_NE(error.find("node.<index>.<field>"), std::string::npos) << error;
  EXPECT_FALSE(config.apply_overrides({{"node.0.ram", "128MB"}}, &error));
  EXPECT_NE(error.find("unknown node field 'ram'"), std::string::npos) << error;
  EXPECT_NE(error.find("cpu_mhz, memory, swap, kernel_reserved"), std::string::npos) << error;
}

TEST(ApplyOverridesTest, FailedBatchLeavesConfigUntouched) {
  const ClusterConfig before = ClusterConfig::paper_cluster1(4);
  ClusterConfig config = before;
  std::string error;
  // The valid assignments sort before the bad one; none may stick.
  EXPECT_FALSE(config.apply_overrides(
      {{"cpu_threshold", "2"}, {"node.1.memory", "64MB"}, {"zzz_bogus", "1"}}, &error));
  EXPECT_EQ(config.cpu_threshold, before.cpu_threshold);
  EXPECT_EQ(config.nodes[1].memory, before.nodes[1].memory);
  EXPECT_EQ(config.num_nodes(), before.num_nodes());
}

TEST(ApplyOverridesTest, OverrideKeyDocsMatchAcceptedKeys) {
  // Every documented scalar key must be accepted with a sample value of its
  // type, so DESIGN.md §9 cannot drift from the implementation.
  const std::map<std::string, std::string> sample = {
      {"int", "4"},    {"double", "1.5"}, {"bool", "1"},
      {"uint64", "7"}, {"bytes", "64MB"}, {"duration", "10ms"},
      {"string", "lose"},  // the only string key is fault.restart: lose | resubmit
  };
  for (const auto& doc : ClusterConfig::override_keys()) {
    if (doc.key.rfind("node.", 0) == 0) continue;  // documented as a pattern
    ClusterConfig config = ClusterConfig::paper_cluster1(2);
    std::string error;
    ASSERT_EQ(sample.count(doc.type), 1u) << doc.key << " has unknown type " << doc.type;
    EXPECT_TRUE(config.apply_overrides({{doc.key, sample.at(doc.type)}}, &error))
        << doc.key << ": " << error;
  }
}

}  // namespace
}  // namespace vrc::cluster
