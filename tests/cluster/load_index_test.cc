#include "cluster/load_index.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace vrc::cluster {
namespace {

LoadInfo info_of(NodeId node, Bytes idle, Bytes user = megabytes(368), int slots = 0) {
  LoadInfo info;
  info.node = node;
  info.idle_memory = idle;
  info.user_memory = user;
  info.slots_used = slots;
  return info;
}

TEST(LoadInfoBoardTest, StartsEmpty) {
  LoadInfoBoard board(4);
  EXPECT_EQ(board.size(), 4u);
  EXPECT_EQ(board.cluster_idle_memory(), 0);
  EXPECT_EQ(board.info(2).timestamp, 0.0);
}

TEST(LoadInfoBoardTest, UpdateStoresByNode) {
  LoadInfoBoard board(4);
  board.update(info_of(2, megabytes(100)));
  EXPECT_EQ(board.info(2).idle_memory, megabytes(100));
  EXPECT_EQ(board.info(1).idle_memory, 0);
}

TEST(LoadInfoBoardTest, ClusterIdleMemorySums) {
  LoadInfoBoard board(3);
  board.update(info_of(0, megabytes(50)));
  board.update(info_of(1, megabytes(70)));
  board.update(info_of(2, megabytes(0)));
  EXPECT_EQ(board.cluster_idle_memory(), megabytes(120));
}

TEST(LoadInfoBoardTest, AverageUserMemory) {
  LoadInfoBoard board(2);
  board.update(info_of(0, 0, megabytes(368)));
  board.update(info_of(1, 0, megabytes(112)));
  EXPECT_EQ(board.average_user_memory(), megabytes(240));
}

TEST(LoadInfoBoardTest, NotePlacementBumpsSlotAndDemand) {
  LoadInfoBoard board(2);
  board.update(info_of(0, megabytes(100), megabytes(368), 2));
  board.note_placement(0, megabytes(60));
  EXPECT_EQ(board.info(0).slots_used, 3);
  EXPECT_EQ(board.info(0).idle_memory, megabytes(40));
  EXPECT_EQ(board.info(0).total_demand, megabytes(60));
}

TEST(LoadInfoBoardTest, NotePlacementFloorsIdleAtZero) {
  LoadInfoBoard board(1);
  board.update(info_of(0, megabytes(30)));
  board.note_placement(0, megabytes(60));
  EXPECT_EQ(board.info(0).idle_memory, 0);
}

TEST(LoadInfoBoardTest, ClusterIdleMemorySkipsFailedNodes) {
  // Regression: a crashed node's stale snapshot used to keep contributing
  // idle memory to the §2.1 reconfiguration trigger.
  LoadInfoBoard board(3);
  board.update(info_of(0, megabytes(50)));
  board.update(info_of(1, megabytes(70)));
  LoadInfo down = info_of(2, megabytes(200));
  down.failed = true;
  board.update(down);
  EXPECT_EQ(board.cluster_idle_memory(), megabytes(120));

  // The node recovering (fresh non-failed snapshot) rejoins the total.
  board.update(info_of(2, megabytes(200)));
  EXPECT_EQ(board.cluster_idle_memory(), megabytes(320));
}

TEST(LoadInfoBoardTest, AverageUserMemoryDividesByLiveCount) {
  // Regression: the average used to divide by all nodes including dead ones,
  // understating per-live-workstation memory during an outage.
  LoadInfoBoard board(3);
  board.update(info_of(0, 0, megabytes(368)));
  board.update(info_of(1, 0, megabytes(112)));
  LoadInfo down = info_of(2, 0, megabytes(368));
  down.failed = true;
  board.update(down);
  EXPECT_EQ(board.average_user_memory(), megabytes(240));
}

TEST(LoadInfoBoardTest, AverageUserMemoryZeroWhenAllFailed) {
  LoadInfoBoard board(2);
  for (NodeId n = 0; n < 2; ++n) {
    LoadInfo down = info_of(n, megabytes(10));
    down.failed = true;
    board.update(down);
  }
  EXPECT_EQ(board.average_user_memory(), 0);
  EXPECT_EQ(board.cluster_idle_memory(), 0);
}

TEST(LoadInfoBoardTest, IndexTracksUpdatesAndPlacements) {
  LoadInfoBoard board(3);
  board.update(info_of(0, megabytes(100), megabytes(368), 1));
  board.update(info_of(1, megabytes(200), megabytes(368), 2));
  board.update(info_of(2, megabytes(150), megabytes(368), 0));
  // Submission heap: fewest slots first (node 2), then idle desc.
  EXPECT_EQ(*board.index().best_first([](NodeId) { return true; }), 2u);
  // Migration heap: largest idle (node 1).
  EXPECT_EQ(*board.index().best_second([](NodeId) { return true; }), 1u);
  // Sender-side bookkeeping repositions the node in the heaps.
  board.note_placement(2, megabytes(150));
  EXPECT_EQ(board.index().slots_used(2), 1);
  EXPECT_EQ(board.index().idle(2), 0);
  EXPECT_EQ(*board.index().best_first([](NodeId) { return true; }), 0u);
  // Reservation evicts from both heaps immediately.
  board.set_reserved(1, true);
  EXPECT_EQ(*board.index().best_second([](NodeId) { return true; }), 0u);
}

TEST(LoadInfoBoardTest, ExchangeOverwritesBookkeeping) {
  LoadInfoBoard board(1);
  board.update(info_of(0, megabytes(100)));
  board.note_placement(0, megabytes(60));
  board.update(info_of(0, megabytes(90)));  // fresh snapshot supersedes
  EXPECT_EQ(board.info(0).idle_memory, megabytes(90));
  EXPECT_EQ(board.info(0).slots_used, 0);
}

}  // namespace
}  // namespace vrc::cluster
