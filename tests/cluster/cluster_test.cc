#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "workload/trace.h"

namespace vrc::cluster {
namespace {

using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

/// Places every arrival on its home node immediately; records callbacks.
class ScriptedPolicy : public SchedulerPolicy {
 public:
  enum class Mode { kPlaceLocal, kLeavePending, kPlaceRemoteOn1 };

  explicit ScriptedPolicy(Mode mode = Mode::kPlaceLocal) : mode_(mode) {}

  const char* name() const override { return "scripted"; }

  void on_job_arrival(Cluster& cluster, RunningJob& job) override {
    ++arrivals;
    switch (mode_) {
      case Mode::kPlaceLocal:
        cluster.place_local(job, job.home_node);
        break;
      case Mode::kLeavePending:
        break;
      case Mode::kPlaceRemoteOn1:
        cluster.place_remote(job, 1);
        break;
    }
  }
  void on_job_completed(Cluster&, const CompletedJob& record) override {
    completed_ids.push_back(record.id);
  }
  void on_node_pressure(Cluster&, Workstation& node) override {
    pressure_events.push_back(node.id());
  }
  void on_periodic(Cluster&) override { ++periodic_calls; }
  void on_migration_complete(Cluster&, RunningJob& job) override {
    migration_completions.push_back(job.id());
  }

  Mode mode_;
  int arrivals = 0;
  int periodic_calls = 0;
  std::vector<JobId> completed_ids;
  std::vector<NodeId> pressure_events;
  std::vector<JobId> migration_completions;
};

ClusterConfig small_config(std::size_t nodes = 4) {
  return ClusterConfig::paper_cluster1(nodes);
}

TEST(ClusterTest, JobArrivesAtSubmitTime) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 5.0, 1.0, megabytes(10)));
  sim.run_until(4.9);
  EXPECT_EQ(policy.arrivals, 0);
  sim.run_until(5.0);
  EXPECT_EQ(policy.arrivals, 1);
}

TEST(ClusterTest, LocalJobRunsToCompletion) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 2.0, megabytes(10)));
  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const CompletedJob& job = cluster.completed()[0];
  EXPECT_EQ(job.id, 1u);
  EXPECT_NEAR(job.completion_time, 2.0, 0.05);
  EXPECT_NEAR(job.t_cpu, 2.0, 0.05);
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(policy.completed_ids, (std::vector<JobId>{1}));
}

TEST(ClusterTest, SimulatorDrainsAfterFinish) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 1.0, megabytes(10)));
  sim.run();  // must terminate: periodic tasks stop at finish
  EXPECT_TRUE(cluster.finished());
  EXPECT_NEAR(cluster.finish_time(), 1.0, 0.05);
}

TEST(ClusterTest, TeardownCancelsInFlightCallbacks) {
  // Aborting a run mid-flight must not leave arrival or transfer-completion
  // events aimed at a destroyed cluster (the sanitizer build flags the
  // use-after-free this guards against).
  sim::Simulator sim;
  {
    // Remote submission in flight at destruction (completes at t = 0.1).
    ScriptedPolicy policy(ScriptedPolicy::Mode::kPlaceRemoteOn1);
    Cluster cluster(sim, small_config(), policy);
    cluster.submit_job(make_spec(1, 0.0, 5.0, megabytes(10)));
    sim.run_until(0.05);
  }
  {
    // Migration in flight, plus an arrival that has not fired yet.
    ScriptedPolicy policy;
    Cluster cluster(sim, small_config(), policy);
    cluster.submit_job(make_spec(2, 0.06, 5.0, megabytes(10)));
    cluster.submit_job(make_spec(3, 500.0, 5.0, megabytes(10)));
    sim.run_until(0.2);
    ASSERT_TRUE(cluster.start_migration(0, 2, 1));
    sim.run_until(0.3);
  }
  sim.run();  // every orphaned event was cancelled; nothing fires
}

TEST(ClusterTest, PendingJobAccruesQueueTime) {
  sim::Simulator sim;
  ScriptedPolicy policy(ScriptedPolicy::Mode::kLeavePending);
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 1.0, megabytes(10)));
  sim.run_until(10.0);
  ASSERT_EQ(cluster.pending_count(), 1u);
  RunningJob* job = cluster.pending_jobs()[0];
  // Queue time is attributed at placement.
  cluster.place_local(*job, 0);
  EXPECT_NEAR(job->t_queue, 10.0, 1e-6);
  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  EXPECT_NEAR(cluster.completed()[0].t_queue, 10.0, 0.05);
}

TEST(ClusterTest, RemoteSubmissionChargesFixedCost) {
  sim::Simulator sim;
  ScriptedPolicy policy(ScriptedPolicy::Mode::kPlaceRemoteOn1);
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 2.0, megabytes(10), /*home=*/0));
  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const CompletedJob& job = cluster.completed()[0];
  EXPECT_EQ(job.final_node, 1u);
  EXPECT_EQ(job.remote_submits, 1);
  EXPECT_NEAR(job.t_mig, 0.1, 1e-6);
  EXPECT_NEAR(job.completion_time, 2.1, 0.05);
  EXPECT_EQ(cluster.remote_submits(), 1u);
}

TEST(ClusterTest, MigrationMovesJobAndChargesTransferTime) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 100.0, megabytes(50), /*home=*/0));
  sim.run_until(10.0);
  ASSERT_TRUE(cluster.start_migration(0, 1, 2));
  EXPECT_EQ(cluster.node(2).incoming_count(), 1);
  // Image ~50 MB at 10 Mbps: ~42 s + 0.1 s.
  sim.run_until(10.0 + 42.0 + 0.2);
  EXPECT_EQ(policy.migration_completions, (std::vector<JobId>{1}));
  EXPECT_EQ(cluster.node(0).find_job(1), nullptr);
  RunningJob* moved = cluster.node(2).find_job(1);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->phase, JobPhase::kRunning);
  EXPECT_EQ(moved->migrations, 1);
  EXPECT_NEAR(moved->t_mig, cluster.network().migration_cost(moved->demand), 0.02);
  EXPECT_EQ(cluster.node(2).incoming_count(), 0);
}

TEST(ClusterTest, MigrationOfMissingJobFails) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  EXPECT_FALSE(cluster.start_migration(0, 99, 1));
}

TEST(ClusterTest, MigrationToSelfFails) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 10.0, megabytes(10)));
  sim.run_until(1.0);
  EXPECT_FALSE(cluster.start_migration(0, 1, 0));
}

TEST(ClusterTest, DoubleMigrationRejected) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 100.0, megabytes(50)));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.start_migration(0, 1, 1));
  EXPECT_FALSE(cluster.start_migration(0, 1, 2));  // already migrating
}

TEST(ClusterTest, SuspendAndResume) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 2.0, megabytes(100)));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.suspend_job(0, 1));
  EXPECT_FALSE(cluster.suspend_job(0, 1));  // already suspended
  EXPECT_EQ(cluster.node(0).resident_demand(), 0);
  sim.run_until(5.0);
  RunningJob* job = cluster.node(0).find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_LT(job->cpu_done, 1.5);  // made no progress while suspended
  ASSERT_TRUE(cluster.resume_job(0, 1));
  EXPECT_FALSE(cluster.resume_job(0, 1));  // already running
  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  // ~1 s ran, 4 s suspended (queued), ~1 s ran.
  EXPECT_NEAR(cluster.completed()[0].t_queue, 4.0, 0.1);
}

TEST(ClusterTest, PressureCallbackFiresForOvercommittedNode) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  // Two jobs whose combined demand exceeds 368 MB user memory.
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(250), 0, 100.0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(250), 0, 100.0));
  sim.run_until(5.0);
  EXPECT_FALSE(policy.pressure_events.empty());
  for (NodeId node : policy.pressure_events) EXPECT_EQ(node, 0u);
}

TEST(ClusterTest, PressureCallbackIsRateLimited) {
  sim::Simulator sim;
  ClusterConfig config = small_config();
  config.pressure_callback_interval = 1.0;
  ScriptedPolicy policy;
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(250), 0, 100.0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(250), 0, 100.0));
  sim.run_until(10.0);
  // At most one event per second (plus the initial one).
  EXPECT_LE(policy.pressure_events.size(), 11u);
}

TEST(ClusterTest, NoPressureCallbackForFailedNode) {
  // Regression: a node whose fault-rate EMA was above threshold when it
  // crashed used to keep triggering on_node_pressure while down — the policy
  // would then try to migrate jobs off a dead workstation.
  sim::Simulator sim;
  ClusterConfig config = small_config();
  config.fault_rate_threshold = 1e-9;  // any faulting at all reads as pressure
  ScriptedPolicy policy;
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(250), 0, 100.0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(250), 0, 100.0));
  sim.run_until(5.0);
  ASSERT_FALSE(policy.pressure_events.empty());
  EXPECT_GT(cluster.node(0).fault_rate(), config.fault_rate_threshold);

  cluster.fail_node(0);
  policy.pressure_events.clear();
  sim.run_until(10.0);
  EXPECT_TRUE(policy.pressure_events.empty());

  // Positive control: the EMA decays slowly (tau = 2 s), so once the node is
  // back up it is still past the threshold and the callback — with its
  // timestamp reset across the outage — must fire again promptly.
  cluster.recover_node(0);
  EXPECT_GT(cluster.node(0).fault_rate(), config.fault_rate_threshold);
  sim.run_until(11.0);
  EXPECT_FALSE(policy.pressure_events.empty());
  for (NodeId node : policy.pressure_events) EXPECT_EQ(node, 0u);
}

TEST(ClusterTest, BoardAggregatesMatchLiveSumsDuringFaultWindow) {
  // Regression: with node 1 down mid-run, the board totals right after an
  // exchange must equal the sums over live nodes' snapshots — the crashed
  // node's entry may contribute neither idle memory nor a share of the
  // user-memory average.
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 80.0, megabytes(60), 0));
  cluster.submit_job(make_spec(2, 0.0, 80.0, megabytes(40), 2));
  sim.run_until(2.0);
  cluster.fail_node(1);
  // Cross a load-exchange boundary so every live node republishes.
  sim.run_until(2.0 + cluster.config().load_exchange_period + 0.1);

  Bytes idle_sum = 0;
  Bytes user_sum = 0;
  std::size_t live = 0;
  for (const LoadInfo& info : cluster.board().all()) {
    if (info.failed) continue;
    idle_sum += info.idle_memory;
    user_sum += info.user_memory;
    ++live;
  }
  ASSERT_EQ(live, 3u);
  EXPECT_EQ(cluster.board().cluster_idle_memory(), idle_sum);
  EXPECT_EQ(cluster.board().average_user_memory(), user_sum / static_cast<Bytes>(live));

  // And the live-index totals see the failure immediately as well.
  EXPECT_EQ(cluster.live_index().live_count(), 3u);
  cluster.recover_node(1);
  EXPECT_EQ(cluster.live_index().live_count(), 4u);
}

TEST(ClusterTest, LiveIndexFollowsJobLifecycle) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(2), policy);
  const Bytes user = cluster.node(0).user_memory();
  EXPECT_EQ(cluster.live_index().idle(0), user);
  cluster.submit_job(make_spec(1, 0.0, 30.0, megabytes(50), 0));
  sim.run_until(1.0);
  EXPECT_EQ(cluster.live_index().active_jobs(0), 1);
  EXPECT_EQ(cluster.live_index().idle(0), user - megabytes(50));
  EXPECT_EQ(cluster.live_index().peak(0), megabytes(50));
  // Suspension swaps the job out: the index row follows set_job_phase.
  ASSERT_TRUE(cluster.suspend_job(0, 1));
  EXPECT_EQ(cluster.live_index().active_jobs(0), 0);
  EXPECT_EQ(cluster.live_index().idle(0), user);
  EXPECT_EQ(cluster.live_index().peak(0), 0);
  ASSERT_TRUE(cluster.resume_job(0, 1));
  EXPECT_EQ(cluster.live_index().peak(0), megabytes(50));
  sim.run_until(100.0);
  EXPECT_EQ(cluster.live_index().active_jobs(0), 0);
  EXPECT_EQ(cluster.live_index().idle(0), user);
}

TEST(ClusterTest, SubmitTraceSchedulesAllJobs) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  std::vector<JobSpec> specs;
  for (JobId i = 1; i <= 5; ++i) {
    specs.push_back(make_spec(i, static_cast<double>(i), 0.5, megabytes(10), i % 4));
  }
  workload::Trace trace("t", workload::WorkloadGroup::kSpec, 10.0, specs);
  cluster.submit_trace(trace);
  EXPECT_EQ(cluster.submitted_count(), 5u);
  sim.run_until(1000.0);
  EXPECT_EQ(cluster.completed().size(), 5u);
  EXPECT_TRUE(cluster.finished());
}

TEST(ClusterTest, FinishCallbackFiresOnce) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  int finishes = 0;
  SimTime finish_time = 0.0;
  cluster.add_finish_callback([&](SimTime t) {
    ++finishes;
    finish_time = t;
  });
  cluster.submit_job(make_spec(1, 0.0, 1.0, megabytes(10)));
  sim.run_until(50.0);
  EXPECT_EQ(finishes, 1);
  EXPECT_NEAR(finish_time, 1.0, 0.05);
}

TEST(ClusterTest, LiveIdleMemoryIgnoresIncomingReservations) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(2), policy);
  const Bytes user = cluster.node(0).user_memory();
  EXPECT_EQ(cluster.live_idle_memory(), 2 * user);
  cluster.node(0).add_incoming(9, megabytes(100));
  // Incoming reservations do not hold physical pages yet.
  EXPECT_EQ(cluster.live_idle_memory(), 2 * user);
}

TEST(ClusterTest, LiveActiveJobsSkipsReservedNodes) {
  sim::Simulator sim;
  ScriptedPolicy policy;
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(10), 0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(10), 1));
  sim.run_until(1.0);
  EXPECT_EQ(cluster.live_active_jobs(false).size(), 4u);
  cluster.set_reserved(1, true);
  auto counts = cluster.live_active_jobs(true);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(ClusterTest, AccountingIdentityAcrossMechanisms) {
  // A job that pends, runs, migrates, and completes: its wall clock must
  // decompose exactly into the four §5 buckets.
  sim::Simulator sim;
  ScriptedPolicy policy(ScriptedPolicy::Mode::kLeavePending);
  Cluster cluster(sim, small_config(), policy);
  cluster.submit_job(make_spec(1, 0.0, 20.0, megabytes(40)));
  sim.run_until(3.0);
  cluster.place_local(*cluster.pending_jobs()[0], 0);
  sim.run_until(8.0);
  ASSERT_TRUE(cluster.start_migration(0, 1, 2));
  sim.run_until(500.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const CompletedJob& job = cluster.completed()[0];
  EXPECT_NEAR(job.t_cpu + job.t_page + job.t_queue + job.t_mig, job.wall_clock(), 0.05);
  EXPECT_GT(job.t_queue, 2.9);  // the pending phase
  EXPECT_GT(job.t_mig, 30.0);   // ~40 MB over 10 Mbps
}

}  // namespace
}  // namespace vrc::cluster
