#include "cluster/network.h"

#include <gtest/gtest.h>

namespace vrc::cluster {
namespace {

ClusterConfig config_with_contention(bool contention) {
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  config.network_contention = contention;
  return config;
}

TEST(NetworkTest, MigrationCostMatchesPaperFormula) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  Network net(sim, config);
  // r + D/B with r = 0.1 s, B = 10 Mbps.
  const Bytes image = megabytes(100);
  const double expected = 0.1 + static_cast<double>(image) / 1.25e6;
  EXPECT_DOUBLE_EQ(net.migration_cost(image), expected);
  EXPECT_DOUBLE_EQ(net.migration_cost(0), 0.1);
}

TEST(NetworkTest, RemoteSubmitCostsFixedR) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  Network net(sim, config);
  double completed_at = -1.0;
  net.start_remote_submit([&] { completed_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(completed_at, 0.1);
}

TEST(NetworkTest, TransferCompletesAfterCost) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  Network net(sim, config);
  double completed_at = -1.0;
  const Bytes image = megabytes(10);
  net.start_transfer(image, [&] { completed_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(completed_at, net.migration_cost(image), 1e-9);
}

TEST(NetworkTest, WithoutContentionTransfersOverlap) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  Network net(sim, config);
  std::vector<double> completions;
  net.start_transfer(megabytes(10), [&] { completions.push_back(sim.now()); });
  net.start_transfer(megabytes(10), [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], completions[1]);
}

TEST(NetworkTest, WithContentionTransfersSerialize) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(true);
  Network net(sim, config);
  std::vector<double> completions;
  net.start_transfer(megabytes(10), [&] { completions.push_back(sim.now()); });
  net.start_transfer(megabytes(10), [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  const double one = net.migration_cost(megabytes(10));
  EXPECT_NEAR(completions[0], one, 1e-9);
  EXPECT_NEAR(completions[1], 2.0 * one, 1e-9);
}

TEST(NetworkTest, StatisticsTrackTransfers) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  Network net(sim, config);
  net.start_transfer(megabytes(3), [] {});
  net.start_transfer(megabytes(4), [] {});
  sim.run();
  EXPECT_EQ(net.transfers_started(), 2u);
  EXPECT_EQ(net.bytes_transferred(), megabytes(7));
}

TEST(NetworkTest, FasterLinkShrinksMigrationCost) {
  sim::Simulator sim;
  ClusterConfig config = config_with_contention(false);
  config.network_mbps = 100.0;
  Network fast(sim, config);
  config.network_mbps = 10.0;
  Network slow(sim, config);
  EXPECT_LT(fast.migration_cost(megabytes(100)), slow.migration_cost(megabytes(100)));
}

}  // namespace
}  // namespace vrc::cluster
