// Bit-exact determinism fingerprints for fig1-style runs.
//
// Hashes every completed-job record (ids, nodes, and the raw bit patterns of
// all accounting doubles) plus the report aggregates into one FNV-1a value
// and compares it against goldens captured before the event-core rewrite
// (commit ff28ab2, std::priority_queue + unordered_map simulator and
// scan-based workstation aggregates). Any change to event ordering, tick
// accounting, or policy decisions shifts the fingerprint: engine
// optimizations must keep these runs bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/experiment.h"
#include "metrics/report.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

class Fnv1a {
 public:
  void mix_u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }

  void mix_double(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix_u64(bits);
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

std::uint64_t fingerprint(const metrics::RunReport& report) {
  Fnv1a h;
  h.mix_u64(report.jobs_submitted);
  h.mix_u64(report.jobs_completed);
  h.mix_double(report.makespan);
  h.mix_double(report.total_execution);
  h.mix_double(report.total_cpu);
  h.mix_double(report.total_page);
  h.mix_double(report.total_queue);
  h.mix_double(report.total_migration);
  h.mix_double(report.total_faults);
  h.mix_u64(report.migrations);
  h.mix_u64(report.remote_submits);
  h.mix_u64(report.local_placements);
  for (const cluster::CompletedJob& job : report.jobs) {
    h.mix_u64(job.id);
    h.mix_u64(job.final_node);
    h.mix_u64(static_cast<std::uint64_t>(job.migrations));
    h.mix_u64(static_cast<std::uint64_t>(job.remote_submits));
    h.mix_double(job.submit_time);
    h.mix_double(job.completion_time);
    h.mix_double(job.cpu_seconds);
    h.mix_double(job.t_cpu);
    h.mix_double(job.t_page);
    h.mix_double(job.t_queue);
    h.mix_double(job.t_mig);
    h.mix_double(job.faults);
  }
  return h.value();
}

metrics::RunReport run_fig1_style(core::PolicyKind kind) {
  workload::TraceParams params;
  params.name = "fingerprint-trace";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 120;
  params.duration = 900.0;
  params.num_nodes = 8;
  params.seed = 7;
  const workload::Trace trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  return core::run_policy_on_trace(kind, trace, config);
}

// Goldens captured from the pre-rewrite engine; see file comment.
constexpr std::uint64_t kGLoadSharingGolden = 0x1e9ff04e3355e032ull;
constexpr std::uint64_t kVReconfigurationGolden = 0xb6c978dcbf3d694cull;

TEST(DeterminismFingerprintTest, GLoadSharingMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kGLoadSharing);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kGLoadSharingGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

TEST(DeterminismFingerprintTest, VReconfigurationMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kVReconfigurationGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

// Same-process repeatability: two identical runs must agree bit-for-bit
// (guards against any hidden global state in the engine or policies).
TEST(DeterminismFingerprintTest, RepeatedRunsAreBitIdentical) {
  const auto a = run_fig1_style(core::PolicyKind::kVReconfiguration);
  const auto b = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace vrc
