// Bit-exact determinism fingerprints for fig1-style runs.
//
// Compares the shared FNV-1a report fingerprint (tests/common/
// report_fingerprint.h) against goldens captured before the event-core
// rewrite (commit ff28ab2, std::priority_queue + unordered_map simulator and
// scan-based workstation aggregates). Any change to event ordering, tick
// accounting, or policy decisions shifts the fingerprint: engine
// optimizations must keep these runs bit-identical. The scenario-layer
// equivalence tests (tests/runner/scenario_test.cc) hold the declarative
// spec path to the same goldens.
#include <gtest/gtest.h>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "metrics/report.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

using testutil::fingerprint;
using testutil::kGLoadSharingGolden;
using testutil::kVReconfigurationGolden;

metrics::RunReport run_fig1_style(core::PolicyKind kind) {
  workload::TraceParams params;
  params.name = "fingerprint-trace";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 120;
  params.duration = 900.0;
  params.num_nodes = 8;
  params.seed = 7;
  const workload::Trace trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  return core::run_policy_on_trace(kind, trace, config);
}

TEST(DeterminismFingerprintTest, GLoadSharingMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kGLoadSharing);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kGLoadSharingGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

TEST(DeterminismFingerprintTest, VReconfigurationMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kVReconfigurationGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

// Same-process repeatability: two identical runs must agree bit-for-bit
// (guards against any hidden global state in the engine or policies).
TEST(DeterminismFingerprintTest, RepeatedRunsAreBitIdentical) {
  const auto a = run_fig1_style(core::PolicyKind::kVReconfiguration);
  const auto b = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace vrc
