// Bit-exact determinism fingerprints for fig1-style runs.
//
// Compares the shared FNV-1a report fingerprint (tests/common/
// report_fingerprint.h) against goldens captured before the event-core
// rewrite (commit ff28ab2, std::priority_queue + unordered_map simulator and
// scan-based workstation aggregates). Any change to event ordering, tick
// accounting, or policy decisions shifts the fingerprint: engine
// optimizations must keep these runs bit-identical. The scenario-layer
// equivalence tests (tests/runner/scenario_test.cc) hold the declarative
// spec path to the same goldens.
#include <gtest/gtest.h>

#include <cstdint>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "metrics/report.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

using testutil::fingerprint;
using testutil::kGLoadSharingGolden;
using testutil::kVReconfigurationGolden;

metrics::RunReport run_fig1_style(core::PolicyKind kind,
                                  double load_exchange_period = 0.0) {
  workload::TraceParams params;
  params.name = "fingerprint-trace";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 120;
  params.duration = 900.0;
  params.num_nodes = 8;
  params.seed = 7;
  const workload::Trace trace = workload::generate_trace(params);
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  if (load_exchange_period > 0.0) config.load_exchange_period = load_exchange_period;
  return core::run_policy_on_trace(kind, trace, config);
}

// Goldens for the same fig1-style runs with a non-default exchange period
// (2.5s instead of 1.0s), captured on the pre-dirty-set full-rebroadcast
// exchange. A longer period widens the window in which the dirty set
// accumulates and the board goes stale, so this re-checks the
// stale-but-identical contract at a staleness the default-period goldens
// never reach.
constexpr std::uint64_t kGLoadSharingSlowExchangeGolden = 0x5f646c0d05a1b9a9ull;
constexpr std::uint64_t kVReconfigurationSlowExchangeGolden = 0x22426a262c4385fdull;

TEST(DeterminismFingerprintTest, GLoadSharingMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kGLoadSharing);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kGLoadSharingGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

TEST(DeterminismFingerprintTest, VReconfigurationMatchesPreRewriteEngine) {
  const auto report = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kVReconfigurationGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

TEST(DeterminismFingerprintTest, GLoadSharingNonDefaultExchangePeriod) {
  const auto report = run_fig1_style(core::PolicyKind::kGLoadSharing, 2.5);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kGLoadSharingSlowExchangeGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

TEST(DeterminismFingerprintTest, VReconfigurationNonDefaultExchangePeriod) {
  const auto report = run_fig1_style(core::PolicyKind::kVReconfiguration, 2.5);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
  EXPECT_EQ(fingerprint(report), kVReconfigurationSlowExchangeGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

// Same-process repeatability: two identical runs must agree bit-for-bit
// (guards against any hidden global state in the engine or policies).
TEST(DeterminismFingerprintTest, RepeatedRunsAreBitIdentical) {
  const auto a = run_fig1_style(core::PolicyKind::kVReconfiguration);
  const auto b = run_fig1_style(core::PolicyKind::kVReconfiguration);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace vrc
