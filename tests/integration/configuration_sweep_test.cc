// Configuration-space property tests: the simulator's invariants must hold
// under heterogeneous hardware, network contention, stochastic faults, and
// different tick sizes — not just the paper's default setup. The
// multi-config sweeps fan out across the parallel sweep runner.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "runner/sweep_runner.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

workload::Trace small_trace(std::uint64_t seed, std::size_t jobs = 60) {
  workload::TraceParams params;
  params.name = "cfg";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = jobs;
  params.duration = 900.0;
  params.num_nodes = 8;
  params.seed = seed;
  return workload::generate_trace(params);
}

TEST(HeterogeneousClusterTest, SlowNodesStretchWallClock) {
  const auto trace = small_trace(101, 40);
  // Homogeneous reference vs a cluster whose nodes run at half speed.
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto fast = core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  for (auto& node : config.nodes) node.cpu_mhz = 200.0;  // half the reference
  const auto slow = core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(slow.jobs_completed, slow.jobs_submitted);
  // Half-speed CPUs at least ~1.5x the makespan and double the CPU wall time.
  EXPECT_GT(slow.makespan, fast.makespan * 1.5);
  EXPECT_NEAR(slow.total_cpu, 2.0 * fast.total_cpu, 0.05 * slow.total_cpu);
}

TEST(HeterogeneousClusterTest, MixedMemoryNodesStillCompleteEverything) {
  cluster::ClusterConfig config;
  config.reference_mhz = 400.0;
  for (int i = 0; i < 4; ++i) {
    config.nodes.push_back({400.0, megabytes(384), megabytes(380), megabytes(16)});
  }
  for (int i = 0; i < 4; ++i) {
    config.nodes.push_back({300.0, megabytes(256), megabytes(256), megabytes(16)});
  }
  runner::SweepGrid grid;
  grid.traces = {small_trace(102)};
  grid.configs = {config};
  grid.policies = {core::PolicySpec("g-loadsharing"), core::PolicySpec("v-reconf")};
  runner::SweepRunner sweep(2);
  for (const auto& cell : sweep.run(grid)) {
    const auto& report = cell.report;
    EXPECT_EQ(report.jobs_completed, report.jobs_submitted) << report.policy;
    for (const auto& job : report.jobs) {
      EXPECT_NEAR(job.t_cpu + job.t_page + job.t_queue + job.t_mig, job.wall_clock(), 0.05);
    }
  }
}

TEST(NetworkContentionTest, SerializedTransfersNeverSpeedThingsUp) {
  const auto trace = small_trace(103);
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto free_net =
      core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config);
  config.network_contention = true;
  const auto contended =
      core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config);
  EXPECT_EQ(contended.jobs_completed, contended.jobs_submitted);
  // Shared-segment serialization can only add migration latency.
  EXPECT_GE(contended.total_migration, free_net.total_migration - 1.0);
}

TEST(StochasticFaultsTest, PreservesInvariantsAndRoughMagnitude) {
  const auto trace = small_trace(104, 80);
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto deterministic =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  config.stochastic_faults = true;
  config.seed = 2024;
  const auto stochastic =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(stochastic.jobs_completed, stochastic.jobs_submitted);
  // Poisson sampling perturbs fault counts but not their order of magnitude.
  if (deterministic.total_faults > 1000.0) {
    EXPECT_GT(stochastic.total_faults, 0.2 * deterministic.total_faults);
    EXPECT_LT(stochastic.total_faults, 5.0 * deterministic.total_faults);
  }
}

class TickSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(TickSizeSweep, ResultsStableAcrossTickGranularity) {
  // The 10 ms default matches the paper's trace records; coarser ticks must
  // not change aggregate results by more than discretization noise.
  const auto trace = small_trace(105);
  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto reference =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  config.tick = GetParam();
  config.quantum = GetParam();
  const auto coarse =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(coarse.jobs_completed, coarse.jobs_submitted);
  EXPECT_NEAR(coarse.total_cpu, reference.total_cpu, 0.02 * reference.total_cpu);
  EXPECT_NEAR(coarse.total_execution, reference.total_execution,
              0.25 * reference.total_execution);
  EXPECT_NEAR(coarse.makespan, reference.makespan, 0.25 * reference.makespan);
}

INSTANTIATE_TEST_SUITE_P(Granularity, TickSizeSweep,
                         ::testing::Values(0.02, 0.05),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "tick_" + std::to_string(static_cast<int>(
                                                info.param * 1000.0)) + "ms";
                         });

TEST(ClusterSizeSweepTest, PoliciesScaleFromFourToSixtyFourNodes) {
  // Each size needs its own (trace, config) pair, so this is not a plain
  // cross product: run_indexed fans the cells out instead.
  const std::vector<std::size_t> sizes = {4, 16, 64};
  runner::SweepRunner sweep(static_cast<int>(sizes.size()));
  const auto reports = sweep.run_indexed(sizes.size(), [&sizes](std::size_t i) {
    const std::size_t nodes = sizes[i];
    workload::TraceParams params;
    params.name = "scale";
    params.group = workload::WorkloadGroup::kSpec;
    params.num_jobs = 8 * nodes;
    params.duration = 900.0;
    params.num_nodes = static_cast<std::uint32_t>(nodes);
    params.seed = 200 + nodes;
    const auto trace = workload::generate_trace(params);
    const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, nodes);
    return core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config);
  });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(reports[i].jobs_completed, reports[i].jobs_submitted) << sizes[i] << " nodes";
  }
}

}  // namespace
}  // namespace vrc
