// Malleable workloads end to end (DESIGN.md §15): determinism of the
// malleable generator and the M-Reconfiguration policy, degeneration to
// G-Loadsharing on rigid workloads, streamed/materialized equivalence with
// the malleability RNG stream live, and the policy's headline effect —
// shrinking running wide jobs cuts queueing on a slot-bound cluster.
#include <gtest/gtest.h>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "workload/arrival_source.h"
#include "workload/trace_spec.h"

namespace vrc {
namespace {

using testutil::fingerprint;

workload::TraceSpec malleable_spec() {
  workload::TraceSpec spec;
  spec.group = workload::WorkloadGroup::kSpec;
  spec.num_jobs = 80;
  spec.duration = 400.0;
  spec.seed = 5;
  spec.malleable_fraction = 1.0;
  return spec;
}

metrics::RunReport run_malleable(const std::string& policy,
                                 const workload::Trace& trace) {
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  std::string error;
  auto report =
      core::run_policy_on_trace(core::PolicySpec(policy), trace, config, {}, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

TEST(MalleableTest, SameSeedMalleableRunsAreBitIdentical) {
  const workload::Trace a = malleable_spec().build(4);
  const workload::Trace b = malleable_spec().build(4);
  const auto ra = run_malleable("m-reconfiguration", a);
  const auto rb = run_malleable("m-reconfiguration", b);
  EXPECT_EQ(fingerprint(ra), fingerprint(rb));
  EXPECT_GT(ra.resizes, 0u);
}

TEST(MalleableTest, MReconDegeneratesToGLoadSharingOnRigidWorkload) {
  // With no malleable jobs every lever is a no-op: the policy must be
  // bit-for-bit G-Loadsharing, not merely close.
  workload::TraceSpec rigid = malleable_spec();
  rigid.malleable_fraction = 0.0;
  const workload::Trace trace = rigid.build(4);
  const auto base = run_malleable("g-loadsharing", trace);
  const auto ours = run_malleable("m-reconfiguration", trace);
  EXPECT_EQ(fingerprint(base), fingerprint(ours));
  EXPECT_EQ(ours.resizes, 0u);
  EXPECT_EQ(ours.malleable_jobs, 0u);
}

TEST(MalleableTest, StreamedMalleableMatchesMaterialized) {
  // The malleability RNG fork must replay identically through the pull-based
  // pump, like every other generator stream.
  const workload::TraceSpec spec = malleable_spec();
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const auto materialized = run_malleable("m-reconfiguration", spec.build(4));

  workload::GeneratedStreamSource source(spec.to_params(4));
  std::string error;
  auto streamed = core::run_policy_on_source(core::PolicySpec("m-reconfiguration"),
                                             source, config, {}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;
  EXPECT_EQ(fingerprint(materialized), fingerprint(*streamed));
}

TEST(MalleableTest, ShrinkingCutsQueueingOnSlotBoundCluster) {
  // The headline comparison behind examples/scenarios/malleable_blocking.scn:
  // all-wide submissions on 4 nodes block on CPU slots, and shrinking running
  // jobs admits the blocked ones earlier than waiting out completions
  // (G-Loadsharing) or suspending residents outright.
  const workload::Trace trace = malleable_spec().build(4);
  const auto base = run_malleable("g-loadsharing", trace);
  const auto suspend = run_malleable("suspension", trace);
  const auto ours = run_malleable("m-reconfiguration", trace);
  ASSERT_EQ(ours.jobs_completed, ours.jobs_submitted);
  EXPECT_GT(ours.resizes, 0u);
  EXPECT_LT(ours.total_queue, base.total_queue);
  EXPECT_LT(ours.total_queue, suspend.total_queue);
}

TEST(MalleableTest, ReportSurfacesResizeOutcomes) {
  const auto report = run_malleable("m-reconfiguration", malleable_spec().build(4));
  EXPECT_EQ(report.malleable_jobs, report.jobs_completed);
  EXPECT_GT(report.width_time_product, 0.0);
  bool has_shrinks = false;
  bool has_saved = false;
  for (const auto& [key, value] : report.policy_stats) {
    if (key == "shrinks_started") has_shrinks = value > 0.0;
    if (key == "blocked_time_saved") has_saved = value > 0.0;
  }
  EXPECT_TRUE(has_shrinks);
  EXPECT_TRUE(has_saved);
  // The gated describe block only renders on malleable runs.
  EXPECT_NE(metrics::describe(report).find("malleable:"), std::string::npos);
}

}  // namespace
}  // namespace vrc
