// Streamed-vs-materialized equivalence for the arrival pipeline (DESIGN.md
// §14).
//
// The pull-based pump (Cluster::submit_source) must be an implementation
// detail: pumping a GeneratedStreamSource job-by-job has to produce the
// bit-identical run to materializing the same trace up front and submitting
// it wholesale. These tests hold the shared FNV-1a report fingerprint
// (tests/common/report_fingerprint.h) equal across both paths for all five
// standard shapes of both workload groups, and bound the pump's live
// JobSpec storage on a million-job stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "metrics/report.h"
#include "workload/arrival_source.h"
#include "workload/trace_generator.h"
#include "workload/trace_spec.h"

namespace vrc {
namespace {

using testutil::fingerprint;

// Every standard shape of both groups, streamed and materialized, must
// land on the same fingerprint. This is the acceptance property of the
// streaming refactor: if the pump ever reorders arrivals, drops a job, or
// perturbs the RNG draw order, one of these ten pairs diverges.
TEST(StreamingEquivalenceTest, AllStandardTracesMatchMaterialized) {
  const core::PolicySpec policy("v-reconf");
  for (workload::WorkloadGroup group :
       {workload::WorkloadGroup::kSpec, workload::WorkloadGroup::kApps}) {
    for (int index = 1; index <= 5; ++index) {
      const workload::TraceSpec spec = workload::TraceSpec::standard(group, index);
      const auto config = core::paper_cluster_for(group, 32);

      const workload::Trace trace = spec.build(32);
      const auto materialized = core::run_policy_on_trace(policy, trace, config);
      ASSERT_TRUE(materialized.has_value()) << trace.name();

      std::unique_ptr<workload::ArrivalSource> source = spec.make_source(32);
      const auto streamed = core::run_policy_on_source(policy, *source, config);
      ASSERT_TRUE(streamed.has_value()) << trace.name();

      EXPECT_EQ(fingerprint(*streamed), fingerprint(*materialized))
          << trace.name() << ": streamed run diverged from materialized";
      EXPECT_TRUE(streamed->streamed);
      EXPECT_FALSE(materialized->streamed);
      EXPECT_EQ(streamed->jobs_submitted, trace.size());
      // The pump never holds more live specs than jobs in flight, which is
      // far below the trace size on these shapes.
      EXPECT_GT(streamed->peak_live_specs, 0u) << trace.name();
      EXPECT_LE(streamed->peak_live_specs, trace.size()) << trace.name();
    }
  }
}

// A MaterializedTraceSource pumped through submit_source must also match
// submit_trace on the same Trace object — the pump path itself (not just
// the generated source's RNG replay) preserves behavior.
TEST(StreamingEquivalenceTest, MaterializedSourcePumpMatchesSubmitTrace) {
  const workload::Trace trace = workload::standard_trace(workload::WorkloadGroup::kSpec, 2, 32);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 32);

  const auto direct = core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);

  workload::MaterializedTraceSource source(trace);
  const auto pumped =
      core::run_policy_on_source(core::PolicySpec("g-loadsharing"), source, config);
  ASSERT_TRUE(pumped.has_value());

  EXPECT_EQ(fingerprint(*pumped), fingerprint(direct));
}

// Cheap deterministic firehose: `total` short uniform jobs arriving at a
// rate the cluster can absorb, so only a handful are ever in flight. No RNG
// and no per-job allocations beyond the spec itself — the point is to make
// a million-job stream affordable in a unit test.
class UniformFirehose final : public workload::ArrivalSource {
 public:
  UniformFirehose(std::uint64_t total, std::uint32_t nodes, SimTime window)
      : total_(total), nodes_(nodes), window_(window) {}

  std::optional<workload::JobSpec> next() override {
    if (emitted_ == total_) return std::nullopt;
    workload::JobSpec spec;
    spec.id = static_cast<workload::JobId>(emitted_ + 1);
    spec.program = "uniform";
    spec.submit_time = arrival_time(emitted_);
    spec.home_node = static_cast<workload::NodeId>(emitted_ % nodes_);
    spec.cpu_seconds = 1.0;
    spec.touch_rate = 0.0;  // no paging: exercise the pump, not fault service
    spec.memory = workload::MemoryProfile::constant(megabytes(50));
    ++emitted_;
    return spec;
  }

  std::optional<SimTime> peek_time() override {
    if (emitted_ == total_) return std::nullopt;
    return arrival_time(emitted_);
  }

  const std::string& name() const override { return name_; }
  workload::WorkloadGroup group() const override { return workload::WorkloadGroup::kSpec; }
  std::optional<std::size_t> total_jobs() const override { return total_; }

 private:
  SimTime arrival_time(std::uint64_t index) const {
    return window_ * static_cast<double>(index) / static_cast<double>(total_);
  }

  std::uint64_t total_;
  std::uint32_t nodes_;
  SimTime window_;
  std::uint64_t emitted_ = 0;
  std::string name_ = "uniform-firehose";
};

// The headline memory claim: a million-job stream completes with live
// JobSpec storage bounded by the number of jobs in flight, not the stream
// length. Mirrors BM_EndToEndLargeRun's shape (short uniform jobs spread
// across many homes) so service keeps pace with arrivals and the free-list
// recycles nearly every slot.
TEST(StreamingEquivalenceTest, MillionJobStreamBoundsLiveSpecStorage) {
  constexpr std::uint64_t kJobs = 1'000'000;
  constexpr std::uint32_t kNodes = 2048;
  // ~488 arrivals/s across 2048 nodes at 1 cpu-second each: per-node
  // utilization ~24%, so the in-flight population stays small.
  UniformFirehose source(kJobs, kNodes, /*window=*/2048.0);

  auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, kNodes);
  config.tick = 0.1;                  // coarse ticks: measure the pump, not accounting
  config.load_exchange_period = 5.0;  // a 2k-node board refresh per second is wasted work

  core::ExperimentOptions options;
  options.max_sim_time = 50000.0;
  options.collector.sampling_intervals = {60.0};

  const auto report =
      core::run_policy_on_source(core::PolicySpec("local-only"), source, config, options);
  ASSERT_TRUE(report.has_value());

  EXPECT_TRUE(report->streamed);
  EXPECT_EQ(report->jobs_submitted, kJobs);
  EXPECT_EQ(report->jobs_completed, kJobs);
  EXPECT_GT(report->peak_live_specs, 0u);
  // The bound that makes streaming worthwhile: peak live storage is a tiny
  // fraction of the stream (in practice a few thousand specs, ~0.5%). A
  // materialized run would hold all 1M specs for the whole run.
  EXPECT_LT(report->peak_live_specs, kJobs / 100)
      << "pump retained " << report->peak_live_specs << " live specs";
}

}  // namespace
}  // namespace vrc
