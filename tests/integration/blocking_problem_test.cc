// End-to-end reproduction of the paper's §1 phenomenon: a small number of
// jobs with unexpectedly large memory demands collide, exhaust memory, and
// block job flow under plain dynamic load sharing — and the adaptive virtual
// reconfiguration resolves it.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;
using workload::NodeId;

JobSpec growing_job(JobId id, SimTime submit, double cpu_seconds, Bytes start, Bytes peak,
                    NodeId home, double touch_rate) {
  JobSpec spec;
  spec.id = id;
  spec.program = peak > megabytes(150) ? "big" : "normal";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.08, start}, {0.25, peak}});
  return spec;
}

// Eight nodes. Two large jobs whose demands are small at submission collide
// on node 0 (admission cannot foresee the growth); every other node is
// two-thirds full, so neither large job fits anywhere once grown.
void build_collision(Cluster& cluster) {
  cluster.submit_job(growing_job(1, 0.0, 400.0, megabytes(190), megabytes(200), 0, 1500.0));
  cluster.submit_job(growing_job(2, 0.1, 400.0, megabytes(190), megabytes(200), 0, 1500.0));
  JobId id = 10;
  for (NodeId node = 1; node < 8; ++node) {
    cluster.submit_job(growing_job(id++, 0.0, 60.0, megabytes(100), megabytes(110), node, 200.0));
    cluster.submit_job(growing_job(id++, 0.0, 90.0, megabytes(100), megabytes(110), node, 200.0));
  }
  // A steady stream of normal arrivals: under plain load sharing every hole
  // a completing job opens is refilled immediately, so a 200 MB hole never
  // forms. Only a *reservation* can protect a forming hole from the flow —
  // the essence of the virtual reconfiguration.
  for (int k = 0; k < 600; ++k) {
    cluster.submit_job(growing_job(id++, 10.0 + 2.0 * k, 40.0, megabytes(65), megabytes(70),
                                   static_cast<NodeId>(k % 8), 200.0));
  }
}

TEST(BlockingProblemTest, CollisionThrashesUnderGLoadSharing) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
  build_collision(cluster);
  sim.run_until(120.0);
  // Node 0 is overcommitted (two grown large jobs) and has produced faults.
  EXPECT_GT(cluster.node(0).overcommit(), 0.0);
  EXPECT_GT(cluster.node(0).total_faults(), 0.0);
  // The baseline found no destination for the large jobs.
  EXPECT_GT(policy.failed_migrations(), 0u);
}

TEST(BlockingProblemTest, BigJobsCrawlWithoutReconfiguration) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
  build_collision(cluster);
  sim.run_until(400.0);
  // After 400 s, the colliding 300 s jobs are still far from done: the node
  // thrashes at a fraction of its speed.
  const cluster::RunningJob* big = cluster.node(0).find_job(1);
  if (big == nullptr) big = cluster.node(0).find_job(2);
  ASSERT_NE(big, nullptr) << "a colliding job should still be running";
  EXPECT_LT(big->progress(), 0.9);
  EXPECT_GT(big->t_page, 30.0);
}

TEST(BlockingProblemTest, VReconfigurationIsolatesACollidingJob) {
  sim::Simulator sim;
  core::VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
  build_collision(cluster);
  sim.run_until(600.0);
  EXPECT_GE(policy.reservations_started(), 1u);
  EXPECT_GE(policy.reserved_migrations(), 1u);
  // The collision node has recovered: at most one large job remains there.
  EXPECT_LE(cluster.node(0).resident_demand(), cluster.node(0).user_memory());
}

TEST(BlockingProblemTest, ReconfigurationBeatsBaselineOnMakespan) {
  auto makespan_with = [](cluster::SchedulerPolicy& policy) {
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
    build_collision(cluster);
    sim.run_until(100000.0);
    EXPECT_TRUE(cluster.finished());
    return cluster.finish_time();
  };
  core::GLoadSharing baseline;
  core::VReconfiguration vrecon;
  const double baseline_makespan = makespan_with(baseline);
  const double vrecon_makespan = makespan_with(vrecon);
  EXPECT_LT(vrecon_makespan, baseline_makespan * 0.9);
}

TEST(BlockingProblemTest, ReconfigurationBenefitsNormalJobsToo) {
  auto normal_slowdown_with = [](cluster::SchedulerPolicy& policy) {
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
    build_collision(cluster);
    sim.run_until(100000.0);
    EXPECT_TRUE(cluster.finished());
    double sum = 0.0;
    int count = 0;
    for (const auto& job : cluster.completed()) {
      if (job.working_set < megabytes(150)) {
        sum += job.slowdown();
        ++count;
      }
    }
    return sum / std::max(count, 1);
  };
  core::GLoadSharing baseline;
  core::VReconfiguration vrecon;
  EXPECT_LT(normal_slowdown_with(vrecon), normal_slowdown_with(baseline));
}

TEST(BlockingProblemTest, AdaptiveSwitchBackWhenBlockingResolves) {
  // If the colliding jobs are short, the blocking problem dissolves on its
  // own and reservations must be released without serving.
  sim::Simulator sim;
  core::VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
  cluster.submit_job(growing_job(1, 0.0, 25.0, megabytes(190), megabytes(200), 0, 1500.0));
  cluster.submit_job(growing_job(2, 0.1, 25.0, megabytes(190), megabytes(200), 0, 1500.0));
  JobId id = 10;
  for (NodeId node = 1; node < 8; ++node) {
    cluster.submit_job(growing_job(id++, 0.0, 400.0, megabytes(100), megabytes(110), node, 200.0));
    cluster.submit_job(growing_job(id++, 0.0, 400.0, megabytes(100), megabytes(110), node, 200.0));
  }
  sim.run_until(5000.0);
  // Whatever was reserved is released again.
  EXPECT_EQ(policy.active_reservations(), 0);
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    EXPECT_FALSE(cluster.node(static_cast<NodeId>(i)).reserved());
  }
}

}  // namespace
}  // namespace vrc
