// Coarse shape checks against the paper's evaluation, scaled down so the
// suite stays fast: V-Reconfiguration must not lose materially anywhere, and
// must win clearly on a memory-blocking-heavy workload. The full-scale
// reproduction (32 nodes, published trace shapes) lives in bench/.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

workload::Trace scaled_trace(workload::WorkloadGroup group, double sigma_mu,
                             std::size_t num_jobs, std::uint64_t seed) {
  workload::TraceParams params;
  params.name = "scaled";
  params.group = group;
  params.sigma = sigma_mu;
  params.mu = sigma_mu;
  params.num_jobs = num_jobs;
  params.duration = 1800.0;
  params.num_nodes = 8;
  params.seed = seed;
  return workload::generate_trace(params);
}

TEST(PaperShapeTest, VReconNeverLosesBadlyOnModerateLoad) {
  const auto trace = scaled_trace(workload::WorkloadGroup::kSpec, 3.0, 120, 42);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto c = core::compare_policies(core::PolicyKind::kGLoadSharing,
                                        core::PolicyKind::kVReconfiguration, trace, config);
  EXPECT_EQ(c.baseline.jobs_completed, c.baseline.jobs_submitted);
  EXPECT_EQ(c.ours.jobs_completed, c.ours.jobs_submitted);
  EXPECT_GT(c.execution_reduction(), -0.08);
}

TEST(PaperShapeTest, LoadSharingBeatsLocalOnly) {
  // Sanity anchor predating the paper: any load sharing beats none.
  const auto trace = scaled_trace(workload::WorkloadGroup::kSpec, 3.0, 120, 43);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto c = core::compare_policies(core::PolicyKind::kLocalOnly,
                                        core::PolicyKind::kGLoadSharing, trace, config);
  EXPECT_GT(c.execution_reduction(), 0.10);
  EXPECT_GT(c.slowdown_reduction(), 0.10);
}

TEST(PaperShapeTest, PagingTimeDropsUnderVRecon) {
  // The §5 model: paging-time reduction is the primary gain source. Average
  // over a few seeds to damp single-realization noise.
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  double base_page = 0.0, ours_page = 0.0;
  for (std::uint64_t seed : {50u, 51u, 52u}) {
    const auto trace = scaled_trace(workload::WorkloadGroup::kSpec, 2.0, 170, seed);
    const auto c = core::compare_policies(core::PolicyKind::kGLoadSharing,
                                          core::PolicyKind::kVReconfiguration, trace, config);
    base_page += c.baseline.total_page;
    ours_page += c.ours.total_page;
  }
  EXPECT_LT(ours_page, base_page);
}

TEST(PaperShapeTest, CpuTimeIdenticalAcrossPolicies) {
  // §5: "The jobs demand identical CPU services on both cluster
  // environment, so that T_cpu = T̂_cpu."
  const auto trace = scaled_trace(workload::WorkloadGroup::kApps, 3.0, 100, 44);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kApps, 8);
  const auto c = core::compare_policies(core::PolicyKind::kGLoadSharing,
                                        core::PolicyKind::kVReconfiguration, trace, config);
  EXPECT_NEAR(c.baseline.total_cpu, c.ours.total_cpu, 0.01 * c.baseline.total_cpu + 1.0);
}

TEST(PaperShapeTest, SamplingIntervalInsensitivity) {
  // §4.1/§4.2: idle-memory and skew averages are nearly identical at 1 s,
  // 10 s, and 30 s sampling.
  const auto trace = scaled_trace(workload::WorkloadGroup::kSpec, 3.0, 120, 45);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  core::ExperimentOptions options;
  options.collector.sampling_intervals = {1.0, 10.0, 30.0};
  const auto report =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config, options);
  ASSERT_EQ(report.idle_memory_mb.size(), 3u);
  const double reference = report.idle_memory_mb[0].average;
  for (const auto& signal : report.idle_memory_mb) {
    EXPECT_NEAR(signal.average, reference, 0.10 * reference + 1.0)
        << "interval " << signal.interval;
  }
}

TEST(PaperShapeTest, HigherArrivalRateRaisesSlowdown) {
  // Within a policy, the five trace intensities order the slowdowns.
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto light = scaled_trace(workload::WorkloadGroup::kSpec, 4.0, 60, 46);
  const auto heavy = scaled_trace(workload::WorkloadGroup::kSpec, 1.5, 180, 46);
  const auto light_report =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, light, config);
  const auto heavy_report =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, heavy, config);
  EXPECT_GT(heavy_report.avg_slowdown, light_report.avg_slowdown);
}

}  // namespace
}  // namespace vrc
