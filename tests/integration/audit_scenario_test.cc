// Exercises the VRC_AUDIT shadow-verification surface (DESIGN.md §13.5).
//
// The audit checkers are compiled into every build, so the first half
// unit-tests them directly against hand-built structures regardless of build
// flavour. The second half runs one fault scenario end-to-end: under
// -DVRC_AUDIT=ON the tick/exchange call sites are live and the counters must
// show both audits actually fired (an audit that silently never runs looks
// exactly like one that always passes); in the default build the same run
// must leave the counters untouched, proving the hooks are fully compiled
// out of the hot path.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "cluster/audit.h"
#include "cluster/cluster_index.h"
#include "cluster/load_index.h"
#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

using cluster::ClusterIndex;
using cluster::IndexedHeap;
using cluster::LoadInfo;
using cluster::LoadInfoBoard;
using workload::NodeId;

TEST(AuditSurfaceTest, HeapInvariantsHoldUnderChurn) {
  IndexedHeap heap(8);
  for (NodeId node = 0; node < 8; ++node) {
    heap.upsert(node, {static_cast<std::int64_t>(7 - node), 0});
  }
  heap.upsert(3, {-5, 2});  // decrease
  heap.upsert(0, {9, 9});   // increase
  heap.erase(5);
  std::string why;
  EXPECT_TRUE(heap.audit_invariants(&why)) << why;
  EXPECT_TRUE(heap.audit_key_is(3, {-5, 2}));
  EXPECT_FALSE(heap.audit_key_is(3, {-5, 1}));  // stale-key detector
  EXPECT_FALSE(heap.audit_key_is(5, {2, 0}));   // evicted node
  // The pruned best() and the brute-force argmin must pick the same node.
  EXPECT_EQ(heap.best([](NodeId) { return true; }), heap.audit_linear_min());
  EXPECT_EQ(heap.audit_linear_min(), std::optional<NodeId>(3));
}

TEST(AuditSurfaceTest, ClusterIndexVerifiesAfterPublishChurn) {
  ClusterIndex index(6, ClusterIndex::Order::kMinSlotsMaxIdle,
                     ClusterIndex::Order::kMaxIdle);
  for (NodeId node = 0; node < 6; ++node) {
    ClusterIndex::NodeState state;
    state.idle = 100 * (node + 1);
    state.available = 50 * (node + 1);
    state.user = 10 * (node + 1);
    state.active_jobs = static_cast<std::int32_t>(node);
    state.slots_used = static_cast<std::int32_t>(node % 3);
    index.publish(node, state);
  }
  ClusterIndex::NodeState failed;
  failed.failed = true;
  index.publish(2, failed);  // eviction path
  ClusterIndex::NodeState reserved;
  reserved.idle = 500;
  reserved.reserved = true;
  index.publish(4, reserved);  // reserved eviction, still counted live
  std::string why;
  EXPECT_TRUE(index.audit_verify(&why)) << why;
}

TEST(AuditSurfaceTest, BoardVerifiesAndCheckersCount) {
  LoadInfoBoard board(4);
  for (NodeId node = 0; node < 4; ++node) {
    LoadInfo info;
    info.node = node;
    info.active_jobs = static_cast<int>(node);
    info.slots_used = static_cast<int>(node) + 1;
    info.user_memory = 1000 * (node + 1);
    info.idle_memory = 200 * (node + 1);
    board.update(info);
  }
  std::string why;
  EXPECT_TRUE(board.audit_verify(&why)) << why;

  cluster::audit::reset_counters();
  cluster::audit::check_cluster_index(board.index(), "unit test");
  cluster::audit::check_board(
      board,
      [&](NodeId node) -> std::optional<LoadInfo> {
        if (node == 1) return std::nullopt;  // frozen row: skipped, not diffed
        return board.info(node);
      },
      "unit test");
  const cluster::audit::Counters& counters = cluster::audit::counters();
  EXPECT_EQ(counters.index_audits, 1u);
  EXPECT_EQ(counters.board_audits, 1u);
  EXPECT_EQ(counters.rows_checked, 3u);  // 4 nodes minus the frozen one
  cluster::audit::reset_counters();
}

TEST(AuditScenarioTest, FaultScenarioRunsUnderAudit) {
  cluster::audit::reset_counters();

  workload::TraceParams params;
  params.name = "audit-scenario";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 60;
  params.duration = 600.0;
  params.num_nodes = 8;
  params.seed = 11;
  const workload::Trace trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);

  core::ExperimentOptions options;
  // Two explicit outages: one node crashes and recovers mid-run, another
  // fails while exchanges are still frequent — exercising the frozen-row
  // skip, the eviction/rejoin paths, and the immediate broadcasts.
  options.fault_entries = {{2, 60.0, 45.0}, {5, 150.0, 90.0}};
  const auto report =
      core::run_policy_on_trace(core::PolicyKind::kVReconfiguration, trace, config, options);
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);

  const cluster::audit::Counters& counters = cluster::audit::counters();
#ifdef VRC_AUDIT
  // The shadow checks must actually have fired — on every exchange for the
  // board, and at the configured cadence for the live index.
  EXPECT_GT(counters.board_audits, 0u);
  EXPECT_GT(counters.rows_checked, 0u);
  EXPECT_GT(counters.index_audits, counters.board_audits)
      << "expected per-exchange board-index audits plus cadence-gated live "
         "index audits";
  EXPECT_GT(counters.tick_events, 0u);
#else
  // Default build: the call sites are compiled out; a nonzero counter here
  // means audit overhead leaked into the production configuration.
  EXPECT_EQ(counters.tick_events, 0u);
  EXPECT_EQ(counters.index_audits, 0u);
  EXPECT_EQ(counters.board_audits, 0u);
#endif
  cluster::audit::reset_counters();
}

}  // namespace
}  // namespace vrc
