// Malleability-off regression gate: the ten standard trace shapes under
// G-Loadsharing on their paper testbeds, pinned to the FNV-1a fingerprints
// captured at the commit immediately before the malleability axis landed
// (DESIGN.md §15). Width-weighted slot accounting, the resize state machine,
// and the extra generator substream must all be invisible on rigid
// workloads — any drift here means a rigid run changed, which is a bug, not
// a golden refresh.
//
// Parameterized so ctest runs the ten shapes in parallel (~1-3 s each).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

struct ShapeGolden {
  workload::WorkloadGroup group;
  int index;
  std::uint64_t fingerprint;
};

// Captured by running G-Loadsharing over standard_trace(group, index) on
// paper_cluster_for(group, 32) at the pre-malleability HEAD.
constexpr ShapeGolden kGoldens[] = {
    {workload::WorkloadGroup::kSpec, 1, 0x316a883cc5e17cdeull},
    {workload::WorkloadGroup::kSpec, 2, 0x37838501ece6c1f9ull},
    {workload::WorkloadGroup::kSpec, 3, 0xb4e6bf8b9d5abc3full},
    {workload::WorkloadGroup::kSpec, 4, 0xad5981ce8d168057ull},
    {workload::WorkloadGroup::kSpec, 5, 0x3f31c27ace12487cull},
    {workload::WorkloadGroup::kApps, 1, 0x840e0118b8be21e1ull},
    {workload::WorkloadGroup::kApps, 2, 0x8b9024a97624183cull},
    {workload::WorkloadGroup::kApps, 3, 0x04e49989367f7beaull},
    {workload::WorkloadGroup::kApps, 4, 0x9dc2e2a741642dc4ull},
    {workload::WorkloadGroup::kApps, 5, 0x73c96d1564ef06acull},
};

class StandardShapeFingerprintTest : public testing::TestWithParam<ShapeGolden> {};

TEST_P(StandardShapeFingerprintTest, RigidShapeIsByteIdenticalToPreMalleabilityBaseline) {
  const ShapeGolden& golden = GetParam();
  const workload::Trace trace = workload::standard_trace(golden.group, golden.index);
  const auto config = core::paper_cluster_for(golden.group, 32);
  const auto report =
      core::run_policy_on_trace(core::PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(testutil::fingerprint(report), golden.fingerprint);
  // And the malleability surface stays dark on rigid workloads.
  EXPECT_EQ(report.malleable_jobs, 0u);
  EXPECT_EQ(report.resizes, 0u);
  EXPECT_EQ(report.width_time_product, 0.0);
}

std::string shape_name(const testing::TestParamInfo<ShapeGolden>& info) {
  return (info.param.group == workload::WorkloadGroup::kSpec ? "Spec" : "Apps") +
         std::to_string(info.param.index);
}

INSTANTIATE_TEST_SUITE_P(AllTenShapes, StandardShapeFingerprintTest,
                         testing::ValuesIn(kGoldens), shape_name);

}  // namespace
}  // namespace vrc
