// Property-style integration tests: for every policy, workload group, and
// several trace seeds, the per-job accounting invariants of the paper's §5
// decomposition must hold exactly.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

struct Params {
  core::PolicyKind policy;
  workload::WorkloadGroup group;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  std::string name = core::to_string(info.param.policy);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + workload::to_string(info.param.group) + "_s" +
         std::to_string(info.param.seed);
}

class AccountingInvariants : public ::testing::TestWithParam<Params> {
 protected:
  metrics::RunReport run() const {
    const Params& p = GetParam();
    workload::TraceParams params;
    params.name = "prop";
    params.group = p.group;
    params.num_jobs = 60;
    params.duration = 900.0;
    params.num_nodes = 8;
    params.seed = p.seed;
    const workload::Trace trace = workload::generate_trace(params);
    const auto config = core::paper_cluster_for(p.group, 8);
    return core::run_policy_on_trace(p.policy, trace, config);
  }
};

TEST_P(AccountingInvariants, AllJobsComplete) {
  const auto report = run();
  EXPECT_EQ(report.jobs_completed, report.jobs_submitted);
}

TEST_P(AccountingInvariants, WallClockDecomposesIntoFourBuckets) {
  const auto report = run();
  for (const auto& job : report.jobs) {
    EXPECT_NEAR(job.t_cpu + job.t_page + job.t_queue + job.t_mig, job.wall_clock(), 0.05)
        << "job " << job.id << " (" << job.program << ")";
  }
}

TEST_P(AccountingInvariants, ComponentsAreNonNegative) {
  const auto report = run();
  for (const auto& job : report.jobs) {
    EXPECT_GE(job.t_cpu, 0.0) << job.id;
    EXPECT_GE(job.t_page, 0.0) << job.id;
    EXPECT_GE(job.t_queue, -1e-9) << job.id;
    EXPECT_GE(job.t_mig, 0.0) << job.id;
    EXPECT_GE(job.faults, 0.0) << job.id;
  }
}

TEST_P(AccountingInvariants, CpuTimeMatchesDemand) {
  // On reference-speed homogeneous nodes, t_cpu equals the dedicated CPU
  // demand (give or take one tick).
  const auto report = run();
  for (const auto& job : report.jobs) {
    EXPECT_NEAR(job.t_cpu, job.cpu_seconds, 0.05) << job.id;
  }
}

TEST_P(AccountingInvariants, SlowdownAtLeastOne) {
  const auto report = run();
  for (const auto& job : report.jobs) {
    EXPECT_GE(job.slowdown(), 0.99) << job.id;
  }
  EXPECT_GE(report.avg_slowdown, 0.99);
  EXPECT_GE(report.max_slowdown, report.avg_slowdown);
}

TEST_P(AccountingInvariants, CompletionAfterSubmission) {
  const auto report = run();
  for (const auto& job : report.jobs) {
    EXPECT_GT(job.completion_time, job.submit_time) << job.id;
    EXPECT_LE(job.completion_time, report.makespan) << job.id;
  }
}

TEST_P(AccountingInvariants, TotalsEqualPerJobSums) {
  const auto report = run();
  double cpu = 0.0, page = 0.0, queue = 0.0, mig = 0.0, wall = 0.0;
  for (const auto& job : report.jobs) {
    cpu += job.t_cpu;
    page += job.t_page;
    queue += job.t_queue;
    mig += job.t_mig;
    wall += job.wall_clock();
  }
  EXPECT_NEAR(report.total_cpu, cpu, 1e-6);
  EXPECT_NEAR(report.total_page, page, 1e-6);
  EXPECT_NEAR(report.total_queue, queue, 1e-6);
  EXPECT_NEAR(report.total_migration, mig, 1e-6);
  EXPECT_NEAR(report.total_execution, wall, 1e-6);
}

TEST_P(AccountingInvariants, FaultsOnlyWithPageTime) {
  const auto report = run();
  for (const auto& job : report.jobs) {
    if (job.faults == 0.0) {
      EXPECT_NEAR(job.t_page, 0.0, 1e-9) << job.id;
    } else {
      EXPECT_GT(job.t_page, 0.0) << job.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesGroupsSeeds, AccountingInvariants,
    ::testing::Values(
        Params{core::PolicyKind::kGLoadSharing, workload::WorkloadGroup::kSpec, 1},
        Params{core::PolicyKind::kGLoadSharing, workload::WorkloadGroup::kApps, 2},
        Params{core::PolicyKind::kVReconfiguration, workload::WorkloadGroup::kSpec, 3},
        Params{core::PolicyKind::kVReconfiguration, workload::WorkloadGroup::kApps, 4},
        Params{core::PolicyKind::kVReconfiguration, workload::WorkloadGroup::kSpec, 5},
        Params{core::PolicyKind::kLocalOnly, workload::WorkloadGroup::kSpec, 6},
        Params{core::PolicyKind::kSuspension, workload::WorkloadGroup::kSpec, 7},
        Params{core::PolicyKind::kSuspension, workload::WorkloadGroup::kApps, 8}),
    param_name);

}  // namespace
}  // namespace vrc
