// The declarative scenario layer: spec-file parsing, precise error text, and
// the headline determinism contract — a ScenarioSpec naming today's defaults
// produces byte-identical reports to the legacy enum-based path (held to the
// same FNV-1a goldens as tests/integration/determinism_fingerprint_test.cc).
#include "runner/scenario.h"

#include <gtest/gtest.h>

#include <string>

#include "../common/report_fingerprint.h"
#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc::runner {
namespace {

using testutil::fingerprint;
using testutil::kGLoadSharingGolden;
using testutil::kVReconfigurationGolden;

TEST(ScenarioSpecTest, ParsesAFullSpecFileBody) {
  const std::string text =
      "# paper cluster 1, heavier memory pressure\n"
      "cluster paper1\n"
      "nodes 8\n"
      "trace spec:trace=2\n"
      "trace spec:jobs=60,duration=600,seed=5   # inline comment\n"
      "policy g-loadsharing\n"
      "policy v-reconf:early_release=0,max_reservations=2\n"
      "set memory_threshold=0.9,cpu_threshold=4\n"
      "set node.3.memory=128MB\n"
      "trials 2\n"
      "base_seed 11\n"
      "sampling_interval 10\n"
      "max_sim_time 200000\n";
  std::string error;
  const auto spec = ScenarioSpec::parse(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->traces.size(), 2u);
  EXPECT_EQ(spec->traces[0].standard_index, 2);
  EXPECT_EQ(spec->traces[1].num_jobs, 60u);
  ASSERT_EQ(spec->policies.size(), 2u);
  EXPECT_EQ(spec->policies[1].print(), "v-reconf:early_release=0,max_reservations=2");
  EXPECT_EQ(spec->cluster, "paper1");
  EXPECT_EQ(spec->nodes, 8u);
  EXPECT_EQ(spec->config_overrides.at("memory_threshold"), "0.9");
  EXPECT_EQ(spec->config_overrides.at("cpu_threshold"), "4");
  EXPECT_EQ(spec->config_overrides.at("node.3.memory"), "128MB");
  EXPECT_EQ(spec->trials, 2);
  EXPECT_EQ(spec->base_seed, 11u);
  EXPECT_DOUBLE_EQ(spec->sampling_interval, 10.0);
  EXPECT_DOUBLE_EQ(spec->max_sim_time, 200000.0);
}

TEST(ScenarioSpecTest, ApplyLineRejectsEachFailureClassPrecisely) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(spec.apply_line("warp_speed 9", &error));
  EXPECT_NE(error.find("unknown scenario directive 'warp_speed'"), std::string::npos) << error;
  EXPECT_NE(error.find("trace, policy, cluster"), std::string::npos) << error;

  EXPECT_FALSE(spec.apply_line("policy", &error));
  EXPECT_NE(error.find("needs an argument"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("cluster paper3", &error));
  EXPECT_NE(error.find("expected auto, paper1, or paper2"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("nodes eight", &error));
  EXPECT_NE(error.find("not a positive int"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("trials 0", &error));
  EXPECT_FALSE(spec.apply_line("set memory_threshold", &error));
  EXPECT_NE(error.find("not key=value"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("sampling_interval -3", &error));
  EXPECT_NE(error.find("positive duration"), std::string::npos) << error;
  // Nested parse errors surface verbatim.
  EXPECT_FALSE(spec.apply_line("trace hpc:trace=1", &error));
  EXPECT_NE(error.find("unknown workload group 'hpc'"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("policy v-reconf:=1", &error));
  // Registry validation is deferred to to_grid(): an unknown policy *name*
  // is syntactically fine here (it may be registered later, custom-policy
  // style) and only rejected when the scenario is materialized.
  EXPECT_TRUE(spec.apply_line("policy no-such-policy:x=1", &error)) << error;

  // A failed line leaves the spec unchanged and later lines still apply.
  EXPECT_TRUE(spec.traces.empty());
  EXPECT_TRUE(spec.apply_line("nodes 16", &error)) << error;
  EXPECT_EQ(spec.nodes, 16u);
}

TEST(ScenarioSpecTest, FaultDirectiveParsesIntoEntries) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(spec.apply_line("fault crash node=2 at=100 for=60", &error)) << error;
  ASSERT_TRUE(spec.apply_line("fault crash at=5m for=90 node=0", &error)) << error;  // any order
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(spec.faults[0], (faults::FaultEntry{2, 100.0, 60.0}));
  EXPECT_EQ(spec.faults[1], (faults::FaultEntry{0, 300.0, 90.0}));
}

TEST(ScenarioSpecTest, FaultDirectiveRejectsEachFailureClassPrecisely) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(spec.apply_line("fault freeze node=1 at=0 for=1", &error));
  EXPECT_NE(error.find("fault kind 'freeze' unknown"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("fault crash node2 at=0 for=1", &error));
  EXPECT_NE(error.find("fault field 'node2' is not key=value"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("fault crash node=two at=0 for=1", &error));
  EXPECT_NE(error.find("fault node 'two' is not a non-negative int"), std::string::npos)
      << error;
  EXPECT_FALSE(spec.apply_line("fault crash node=1 at=-5 for=1", &error));
  EXPECT_NE(error.find("fault at '-5' is not a non-negative duration"), std::string::npos)
      << error;
  EXPECT_FALSE(spec.apply_line("fault crash node=1 at=5 for=0", &error));
  EXPECT_NE(error.find("fault for '0' is not a positive duration"), std::string::npos)
      << error;
  EXPECT_FALSE(spec.apply_line("fault crash node=1 at=5 temp=90", &error));
  EXPECT_NE(error.find("fault field 'temp' unknown"), std::string::npos) << error;
  EXPECT_FALSE(spec.apply_line("fault crash node=1 at=5", &error));
  EXPECT_NE(error.find("fault crash needs node=, at=, and for="), std::string::npos) << error;
  // None of the rejected lines may leave a partial entry behind.
  EXPECT_TRUE(spec.faults.empty());
}

TEST(ScenarioSpecTest, MalleableDirectiveDefaultsGeneratedTracesOnly) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(spec.apply_line("malleable maybe", &error));
  EXPECT_NE(error.find("expected on or off"), std::string::npos) << error;
  EXPECT_FALSE(spec.malleable_configured());

  ASSERT_TRUE(spec.apply_line("trace spec:jobs=20,duration=100,seed=3", &error)) << error;
  ASSERT_TRUE(spec.apply_line("trace spec:jobs=20,duration=100,seed=3,malleable=0.25",
                              &error))
      << error;
  ASSERT_TRUE(spec.apply_line("policy g-loadsharing", &error)) << error;
  ASSERT_TRUE(spec.apply_line("malleable on", &error)) << error;
  EXPECT_TRUE(spec.malleable);
  EXPECT_TRUE(spec.malleable_configured());

  const auto grid = to_grid(spec, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  ASSERT_EQ(grid->traces.size(), 2u);
  // The directive defaults only traces WITHOUT their own malleable= fraction:
  // the first trace becomes all-malleable (width [1,2] ⇒ every job submits at
  // width 2), the second keeps its explicit 0.25.
  std::size_t wide = 0;
  for (const workload::JobSpec& job : grid->traces[0].trace.jobs()) {
    EXPECT_TRUE(job.malleable());
    wide += job.initial_width() > 1 ? 1u : 0u;
  }
  EXPECT_EQ(wide, grid->traces[0].trace.size());
  std::size_t fraction_malleable = 0;
  for (const workload::JobSpec& job : grid->traces[1].trace.jobs()) {
    fraction_malleable += job.malleable() ? 1u : 0u;
  }
  EXPECT_GT(fraction_malleable, 0u);
  EXPECT_LT(fraction_malleable, grid->traces[1].trace.size());

  // An explicit per-trace fraction alone also counts as configured.
  ScenarioSpec per_trace;
  ASSERT_TRUE(per_trace.apply_line("trace spec:jobs=20,duration=100,malleable=0.5", &error))
      << error;
  EXPECT_TRUE(per_trace.malleable_configured());
}

TEST(ScenarioSpecTest, ValidateCatchesFaultRangeAndOverlapAgainstNodeCount) {
  std::string error;
  // Node 9 does not exist in a 4-node cluster; caught at whole-spec
  // validation because the node count can be set after the fault line.
  EXPECT_FALSE(ScenarioSpec::parse("trace spec:trace=1\n"
                                   "policy g-loadsharing\n"
                                   "nodes 4\n"
                                   "fault crash node=9 at=10 for=5\n",
                                   &error)
                   .has_value());
  EXPECT_NE(error.find("node 9 out of range (cluster has 4 nodes)"), std::string::npos)
      << error;
  EXPECT_FALSE(ScenarioSpec::parse("trace spec:trace=1\n"
                                   "policy g-loadsharing\n"
                                   "nodes 4\n"
                                   "fault crash node=2 at=100 for=60\n"
                                   "fault crash node=2 at=120 for=10\n",
                                   &error)
                   .has_value());
  EXPECT_NE(error.find("windows at t=100 and t=120 overlap"), std::string::npos) << error;
}

TEST(ToGridTest, FaultEntriesReachTheExperimentOptions) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(spec.apply_line("trace spec:trace=1", &error));
  ASSERT_TRUE(spec.apply_line("policy g-loadsharing", &error));
  ASSERT_TRUE(spec.apply_line("fault crash node=3 at=40 for=20", &error));
  const auto grid = to_grid(spec, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->experiment.fault_entries, spec.faults);
}

TEST(ScenarioSpecTest, ParseReportsTheOffendingLineNumber) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::parse("trace spec:trace=1\n\npolicy gls\nnodes zero\n", &error)
                   .has_value());
  EXPECT_NE(error.find("line 4:"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, ParseValidatesTheAssembledSpec) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::parse("policy g-loadsharing\n", &error).has_value());
  EXPECT_NE(error.find("no traces"), std::string::npos) << error;
  EXPECT_FALSE(ScenarioSpec::parse("trace spec:trace=1\n", &error).has_value());
  EXPECT_NE(error.find("no policies"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, LoadReportsMissingFileWithPath) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::load("/nonexistent/dir/x.scn", &error).has_value());
  EXPECT_NE(error.find("/nonexistent/dir/x.scn"), std::string::npos) << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(ToGridTest, UnknownPolicyAndBadOverrideFailBeforeTraceBuilding) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(spec.apply_line("trace spec:trace=1", &error));
  ASSERT_TRUE(spec.apply_line("policy no-such-policy", &error));
  EXPECT_FALSE(to_grid(spec, &error).has_value());
  EXPECT_NE(error.find("unknown policy 'no-such-policy'"), std::string::npos) << error;

  spec.policies = {core::PolicySpec("g-loadsharing")};
  spec.config_overrides["bogus_knob"] = "1";
  EXPECT_FALSE(to_grid(spec, &error).has_value());
  EXPECT_NE(error.find("unknown config override 'bogus_knob'"), std::string::npos) << error;
}

TEST(ToGridTest, AutoClusterRejectsMixedWorkloadGroups) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(spec.apply_line("trace spec:trace=1", &error));
  ASSERT_TRUE(spec.apply_line("trace apps:trace=1", &error));
  ASSERT_TRUE(spec.apply_line("policy g-loadsharing", &error));
  EXPECT_FALSE(to_grid(spec, &error).has_value());
  EXPECT_NE(error.find("cluster 'auto'"), std::string::npos) << error;
  EXPECT_NE(error.find("cluster paper1"), std::string::npos) << error;

  ASSERT_TRUE(spec.apply_line("cluster paper1", &error));
  EXPECT_TRUE(to_grid(spec, &error).has_value()) << error;
}

// The headline equivalence proof: a scenario naming the fingerprint run
// (same trace params, default-param policies, no overrides) reproduces the
// exact FNV-1a goldens captured on the legacy enum path.
TEST(ScenarioEquivalenceTest, DefaultSpecRunMatchesEnumPathGoldens) {
  const std::string text =
      "cluster paper1\n"
      "nodes 8\n"
      "trace spec:jobs=120,duration=900,seed=7,name=fingerprint-trace\n"
      "policy g-loadsharing\n"
      "policy v-reconf\n";
  std::string error;
  const auto spec = ScenarioSpec::parse(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const auto run = run_scenario(*spec, /*jobs=*/2, &error);
  ASSERT_TRUE(run.has_value()) << error;
  ASSERT_EQ(run->cells.size(), 2u);
  EXPECT_EQ(fingerprint(run->cell(0, 0, 0).report), kGLoadSharingGolden);
  EXPECT_EQ(fingerprint(run->cell(0, 0, 1).report), kVReconfigurationGolden);
}

// Every PolicyKind and its to_spec() equivalent must run bit-identically.
TEST(ScenarioEquivalenceTest, EnumAndSpecPathsAgreeForEveryKind) {
  workload::TraceParams params;
  params.name = "equiv";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 40;
  params.duration = 600.0;
  params.num_nodes = 8;
  params.seed = 19;
  const workload::Trace trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  for (auto kind : {core::PolicyKind::kGLoadSharing, core::PolicyKind::kVReconfiguration,
                    core::PolicyKind::kLocalOnly, core::PolicyKind::kSuspension,
                    core::PolicyKind::kOracleDemands}) {
    const auto via_enum = core::run_policy_on_trace(kind, trace, config);
    std::string error;
    const auto via_spec =
        core::run_policy_on_trace(core::to_spec(kind), trace, config, {}, &error);
    ASSERT_TRUE(via_spec.has_value()) << error;
    EXPECT_EQ(fingerprint(*via_spec), fingerprint(via_enum)) << core::to_string(kind);
  }
}

TEST(ScenarioRunTest, TrialsExpandTheTraceAxisTrialMajor) {
  const std::string base_text =
      "cluster paper1\n"
      "nodes 8\n"
      "trace spec:jobs=30,duration=300,seed=3,name=tr\n"
      "trace spec:jobs=30,duration=300,seed=4,name=tr2\n"
      "policy g-loadsharing\n"
      "policy local-only\n";
  std::string error;
  auto spec = ScenarioSpec::parse(base_text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const auto single = run_scenario(*spec, 2, &error);
  ASSERT_TRUE(single.has_value()) << error;

  ASSERT_TRUE(spec->apply_line("trials 3", &error));
  const auto repeated = run_scenario(*spec, 2, &error);
  ASSERT_TRUE(repeated.has_value()) << error;
  ASSERT_EQ(repeated->cells.size(), 3u * 2u * 2u);
  EXPECT_EQ(repeated->num_trials, 3);
  EXPECT_EQ(repeated->num_traces, 2u);
  EXPECT_EQ(repeated->num_policies, 2u);

  // Trial 0 is the scenario exactly as specified.
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t p = 0; p < 2; ++p) {
      EXPECT_EQ(fingerprint(repeated->cell(0, t, p).report),
                fingerprint(single->cell(0, t, p).report))
          << "trace " << t << " policy " << p;
    }
  }
  // Later trials are fresh realizations of the same shape, not copies.
  EXPECT_NE(fingerprint(repeated->cell(1, 0, 0).report),
            fingerprint(repeated->cell(0, 0, 0).report));
  EXPECT_NE(fingerprint(repeated->cell(2, 0, 0).report),
            fingerprint(repeated->cell(1, 0, 0).report));
  // Same trial, same trace, different policies share the trace realization.
  EXPECT_EQ(repeated->cell(1, 0, 0).report.trace, repeated->cell(1, 0, 1).report.trace);
  EXPECT_EQ(repeated->cell(1, 0, 0).report.jobs_submitted,
            repeated->cell(1, 0, 1).report.jobs_submitted);
}

}  // namespace
}  // namespace vrc::runner
