// Determinism and correctness of the parallel sweep runner: a sweep's
// results must be bit-identical regardless of thread count or completion
// order, because every cell's RNG seed is derived from grid coordinates
// alone and the simulation stack is share-nothing per cell.
#include "runner/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "runner/thread_pool.h"
#include "workload/trace_generator.h"

namespace vrc::runner {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, HandlesEmptyAndSmallerThanPoolRanges) {
  ThreadPool pool(8);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run for n=0"; });
  std::atomic<int> count{0};
  pool.parallel_for(3, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeWaitIdleReturns) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(SeedDerivationTest, StableAndCellDependent) {
  // Frozen values: changing derive_seed silently changes every stochastic
  // sweep, so the derivation is pinned here.
  EXPECT_EQ(derive_seed(0, 0), derive_seed(0, 0));
  EXPECT_NE(derive_seed(0, 0), derive_seed(0, 1));
  EXPECT_NE(derive_seed(0, 0), derive_seed(1, 0));
  // Adjacent (base, key) pairs must not alias.
  EXPECT_NE(derive_seed(1, 0), derive_seed(0, 1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t key = 0; key < 64; ++key) seen.insert(derive_seed(base, key));
  }
  EXPECT_EQ(seen.size(), 8u * 64u);
}

workload::Trace sweep_trace(std::uint64_t seed) {
  workload::TraceParams params;
  params.name = "sweep-" + std::to_string(seed);
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 40;
  params.duration = 600.0;
  params.num_nodes = 8;
  params.seed = seed;
  return workload::generate_trace(params);
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.traces = {sweep_trace(31), sweep_trace(32)};
  grid.configs = {core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8)};
  // Stochastic faults make the runs consume the derived per-cell seeds, so
  // the determinism check also covers seed derivation.
  grid.configs[0].stochastic_faults = true;
  grid.policies = {core::PolicySpec("g-loadsharing"), core::PolicySpec("v-reconf")};
  grid.base_seed = 99;
  return grid;
}

// Serializes everything a report contains so runs can be compared
// byte-for-byte (hexfloat: bit-identical doubles, not just "close").
std::string fingerprint(const metrics::RunReport& report) {
  std::ostringstream out;
  out << std::hexfloat;
  out << report.policy << '|' << report.trace << '|' << report.jobs_submitted << '|'
      << report.jobs_completed << '|' << report.makespan << '|' << report.total_execution
      << '|' << report.total_cpu << '|' << report.total_page << '|' << report.total_queue
      << '|' << report.total_migration << '|' << report.avg_slowdown << '|'
      << report.median_slowdown << '|' << report.p95_slowdown << '|' << report.max_slowdown
      << '|' << report.avg_idle_memory_mb << '|' << report.avg_balance_skew << '|'
      << report.migrations << '|' << report.remote_submits << '|' << report.local_placements
      << '|' << report.total_faults << '\n';
  for (const auto& [key, value] : report.policy_stats) out << key << '=' << value << '\n';
  for (const auto& job : report.jobs) {
    out << job.id << ',' << job.program << ',' << job.submit_time << ','
        << job.completion_time << ',' << job.t_cpu << ',' << job.t_page << ','
        << job.t_queue << ',' << job.t_mig << ',' << job.faults << ',' << job.migrations
        << ',' << job.remote_submits << ',' << job.final_node << ',' << job.working_set
        << '\n';
  }
  return out.str();
}

TEST(SweepRunnerTest, OneThreadAndManyThreadsProduceIdenticalReports) {
  const SweepGrid grid = small_grid();
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(grid);
  const auto b = parallel.run(grid);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell_index, i);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(fingerprint(a[i].report), fingerprint(b[i].report)) << "cell " << i;
  }
}

TEST(SweepRunnerTest, CellsMapBackToGridCoordinates) {
  SweepGrid grid = small_grid();
  grid.configs.push_back(grid.configs[0]);  // 2 traces x 2 configs x 2 policies
  SweepRunner runner(2);
  const auto cells = runner.run(grid);
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].cell_index, i);
    EXPECT_EQ(cells[i].policy_index, i % 2);
    EXPECT_EQ(cells[i].config_index, (i / 2) % 2);
    EXPECT_EQ(cells[i].trace_index, i / 4);
    EXPECT_EQ(cells[i].report.trace, grid.traces[cells[i].trace_index].name());
    // Policies of the same (trace, config) pair share the derived seed
    // (matched-pairs comparisons); distinct pairs get distinct seeds.
    if (i % 2 == 1) {
      EXPECT_EQ(cells[i].seed, cells[i - 1].seed);
    }
  }
  EXPECT_NE(cells[0].seed, cells[2].seed);
  EXPECT_NE(cells[0].seed, cells[4].seed);
}

TEST(SweepRunnerTest, SummaryMergesAcrossCells) {
  const SweepGrid grid = small_grid();
  SweepRunner runner(2);
  const auto cells = runner.run(grid);
  const SweepSummary summary = SweepRunner::summarize(cells);
  ASSERT_EQ(summary.execution.count(), cells.size());
  sim::RunningStats expected;
  for (const auto& cell : cells) expected.add(cell.report.total_execution);
  EXPECT_DOUBLE_EQ(summary.execution.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(summary.execution.min(), expected.min());
  EXPECT_DOUBLE_EQ(summary.execution.max(), expected.max());

  // Partition-merge matches the flat summary (the parallel-aggregate path).
  SweepSummary left = SweepRunner::summarize({cells.begin(), cells.begin() + 1});
  const SweepSummary right = SweepRunner::summarize({cells.begin() + 1, cells.end()});
  left.merge(right);
  EXPECT_EQ(left.makespan.count(), summary.makespan.count());
  EXPECT_NEAR(left.makespan.mean(), summary.makespan.mean(), 1e-9);
}

TEST(SweepRunnerTest, InvalidPolicySpecThrowsBeforeAnyCellRuns) {
  SweepGrid grid = small_grid();
  grid.policies.push_back(core::PolicySpec("no-such-policy"));
  SweepRunner runner(2);
  try {
    runner.run(grid);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown policy 'no-such-policy'"),
              std::string::npos)
        << e.what();
  }

  grid.policies.back() = core::PolicySpec::parse("v-reconf:max_reservations=many").value();
  EXPECT_THROW(runner.run(grid), std::invalid_argument);
}

TEST(SweepRunnerTest, RunIndexedPreservesIndexOrder) {
  const auto trace = sweep_trace(77);
  const auto config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  SweepRunner runner(3);
  const auto reports = runner.run_indexed(3, [&](std::size_t i) {
    core::ExperimentOptions options;
    options.max_sim_time = 100000.0 + 1000.0 * static_cast<double>(i);
    return core::run_policy_on_trace(core::PolicyKind::kLocalOnly, trace, config, options);
  });
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& report : reports) {
    EXPECT_EQ(report.policy, "Local-Only");
    EXPECT_EQ(report.jobs_submitted, trace.size());
  }
}

}  // namespace
}  // namespace vrc::runner
