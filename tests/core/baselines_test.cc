#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/v_reconfiguration.h"

namespace vrc::core {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

// Demand ramps from 4 MB to `peak` over the first 10% of the run, so
// admission (which cannot see future demand) lets collisions form.
JobSpec surprise_spec(JobId id, SimTime submit, double cpu_seconds, Bytes peak,
                      workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec = make_spec(id, submit, cpu_seconds, peak, home, touch_rate);
  spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.1, peak}});
  return spec;
}

TEST(LocalOnlyTest, JobsStayOnHomeNodes) {
  sim::Simulator sim;
  LocalOnly policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  for (JobId i = 1; i <= 8; ++i) {
    cluster.submit_job(make_spec(i, 0.0, 5.0, megabytes(10), i % 4));
  }
  sim.run_until(1000.0);
  ASSERT_TRUE(cluster.finished());
  for (const auto& job : cluster.completed()) {
    EXPECT_EQ(job.final_node, job.id % 4);
    EXPECT_EQ(job.remote_submits, 0);
    EXPECT_EQ(job.migrations, 0);
  }
  EXPECT_EQ(cluster.remote_submits(), 0u);
  EXPECT_EQ(cluster.migrations_started(), 0u);
}

TEST(LocalOnlyTest, QueuesBeyondCpuThreshold) {
  sim::Simulator sim;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  LocalOnly policy;
  Cluster cluster(sim, config, policy);
  const int extra = 3;
  for (int i = 0; i < config.cpu_threshold + extra; ++i) {
    cluster.submit_job(make_spec(static_cast<JobId>(i + 1), 0.0, 10.0, megabytes(5), 0));
  }
  sim.run_until(1.0);
  EXPECT_EQ(cluster.node(0).active_jobs(), config.cpu_threshold);
  EXPECT_EQ(cluster.pending_count(), static_cast<size_t>(extra));
  EXPECT_EQ(cluster.node(1).active_jobs(), 0);  // never used
  sim.run_until(5000.0);
  EXPECT_TRUE(cluster.finished());
}

TEST(LocalOnlyTest, IgnoresMemoryAndThrashes) {
  sim::Simulator sim;
  LocalOnly policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(2), policy);
  // Two 250 MB jobs on one node: LocalOnly admits both (no memory check).
  cluster.submit_job(make_spec(1, 0.0, 50.0, megabytes(250), 0, 200.0));
  cluster.submit_job(make_spec(2, 0.0, 50.0, megabytes(250), 0, 200.0));
  sim.run_until(20.0);
  EXPECT_EQ(cluster.node(0).active_jobs(), 2);
  EXPECT_GT(cluster.node(0).overcommit(), 0.0);
  EXPECT_GT(cluster.node(0).total_faults(), 0.0);
}

TEST(SuspensionPolicyTest, SuspendsBigJobUnderBlockedPressure) {
  sim::Simulator sim;
  SuspensionPolicy policy;
  // Two nodes, both loaded so no migration target exists.
  Cluster cluster(sim, ClusterConfig::paper_cluster1(2), policy);
  cluster.submit_job(surprise_spec(1, 0.0, 200.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 0.0, 200.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(3, 0.0, 200.0, megabytes(300), 1, 300.0));
  sim.run_until(60.0);
  EXPECT_GE(policy.suspensions(), 1u);
  // The suspension relieved the overcommit on node 0.
  EXPECT_LE(cluster.node(0).resident_demand(), cluster.node(0).user_memory());
}

TEST(SuspensionPolicyTest, ResumesWhenRoomReturns) {
  sim::Simulator sim;
  SuspensionPolicy policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(2), policy);
  cluster.submit_job(surprise_spec(1, 0.0, 30.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 0.0, 30.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(3, 0.0, 30.0, megabytes(300), 1, 300.0));
  sim.run_until(30000.0);
  // Every job eventually completes: suspended jobs are resumed.
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(cluster.completed().size(), 3u);
  if (policy.suspensions() > 0) {
    EXPECT_GE(policy.resumes(), 1u);
  }
}

TEST(SuspensionPolicyTest, NeverSuspendsLastRunnableJob) {
  sim::Simulator sim;
  SuspensionPolicy policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(1), policy);
  // One node, one huge job that grows past user memory: pressured, but it
  // must keep running.
  cluster.submit_job(surprise_spec(1, 0.0, 50.0, megabytes(380), 0, 300.0));
  sim.run_until(10.0);
  EXPECT_EQ(cluster.node(0).active_jobs(), 1);
  EXPECT_EQ(policy.suspensions(), 0u);
}

TEST(SuspensionPolicyTest, SuspensionDelaysTheBigJob) {
  // The paper's fairness concern: suspension starves the large job relative
  // to reconfiguration, which gives it a reserved workstation.
  auto slowdown_of_big = [](cluster::SchedulerPolicy& policy) {
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::paper_cluster1(8), policy);
    cluster.submit_job(surprise_spec(1, 0.0, 300.0, megabytes(250), 0, 1500.0));
    cluster.submit_job(surprise_spec(2, 0.5, 300.0, megabytes(250), 0, 1500.0));
    workload::JobId id = 10;
    for (workload::NodeId node = 1; node < 8; ++node) {
      for (int j = 0; j < 2; ++j) {
        cluster.submit_job(make_spec(id++, 0.0, 60.0, megabytes(110), node));
      }
    }
    // A long, dense stream of normal arrivals refills every hole, so no
    // 250 MB gap ever forms naturally: a suspended big job starves until the
    // flow subsides, while reconfiguration serves it on a reserved
    // workstation.
    for (int k = 0; k < 600; ++k) {
      cluster.submit_job(make_spec(id++, 5.0 + 2.0 * k, 40.0, megabytes(70),
                                   static_cast<workload::NodeId>(k % 8)));
    }
    sim.run_until(50000.0);
    EXPECT_TRUE(cluster.finished());
    double worst_big = 0.0;
    for (const auto& job : cluster.completed()) {
      if (job.id <= 2) worst_big = std::max(worst_big, job.slowdown());
    }
    return worst_big;
  };
  SuspensionPolicy suspension;
  VReconfiguration vrecon;
  EXPECT_GT(slowdown_of_big(suspension), slowdown_of_big(vrecon));
}

}  // namespace
}  // namespace vrc::core
