// The string-keyed policy registry: spec parse/print round-trips, alias
// resolution, param validation, and the precise error text the declarative
// scenario layer relies on.
#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.h"

namespace vrc::core {
namespace {

TEST(PolicySpecTest, PrintsCanonicalSortedForm) {
  PolicySpec spec("v-reconf", {{"max_reservations", "2"}, {"early_release", "0"}});
  EXPECT_EQ(spec.print(), "v-reconf:early_release=0,max_reservations=2");
  EXPECT_EQ(PolicySpec("g-loadsharing").print(), "g-loadsharing");
}

TEST(PolicySpecTest, ParsePrintRoundTripsForEveryRegisteredPolicyAndParam) {
  // Every registered policy, bare...
  for (const std::string& name : PolicyRegistry::instance().names()) {
    const PolicySpec spec(name);
    const auto reparsed = PolicySpec::parse(spec.print());
    ASSERT_TRUE(reparsed.has_value()) << name;
    EXPECT_EQ(*reparsed, spec) << name;

    // ...and with every documented param pinned to its printed default, both
    // one at a time and all at once. The defaults in the docs must also be
    // values the factory accepts.
    const auto* docs = PolicyRegistry::instance().param_docs(name);
    ASSERT_NE(docs, nullptr) << name;
    PolicySpec all(name);
    for (const PolicyParamDoc& doc : *docs) {
      PolicySpec single(name, {{doc.key, doc.default_value}});
      const auto single_reparsed = PolicySpec::parse(single.print());
      ASSERT_TRUE(single_reparsed.has_value()) << single.print();
      EXPECT_EQ(*single_reparsed, single);
      all.params[doc.key] = doc.default_value;
    }
    const auto all_reparsed = PolicySpec::parse(all.print());
    ASSERT_TRUE(all_reparsed.has_value()) << all.print();
    EXPECT_EQ(*all_reparsed, all);

    std::string error;
    EXPECT_NE(make_policy(all, &error), nullptr)
        << all.print() << " rejected its own documented defaults: " << error;
  }
}

TEST(PolicySpecTest, ParseRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(PolicySpec::parse("", &error).has_value());
  EXPECT_NE(error.find("empty policy name"), std::string::npos);
  EXPECT_FALSE(PolicySpec::parse(":early_release=0", &error).has_value());
  EXPECT_FALSE(PolicySpec::parse("v-reconf:", &error).has_value());
  EXPECT_FALSE(PolicySpec::parse("v-reconf:early_release", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(PolicySpec::parse("v-reconf:=1", &error).has_value());
  EXPECT_NE(error.find("empty param key"), std::string::npos);
  EXPECT_FALSE(PolicySpec::parse("v-reconf:a=1,a=2", &error).has_value());
  EXPECT_NE(error.find("duplicate param 'a'"), std::string::npos);
}

TEST(PolicyRegistryTest, EveryRegisteredPolicyConstructsWithDefaults) {
  for (const std::string& name : PolicyRegistry::instance().names()) {
    std::string error;
    const auto policy = make_policy(PolicySpec(name), &error);
    ASSERT_NE(policy, nullptr) << name << ": " << error;
    EXPECT_STRNE(policy->name(), "") << name;
  }
}

TEST(PolicyRegistryTest, AliasesResolveToCanonicalNames) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_EQ(registry.canonical_name("gls"), "g-loadsharing");
  EXPECT_EQ(registry.canonical_name("vrecon"), "v-reconf");
  EXPECT_EQ(registry.canonical_name("v-reconfiguration"), "v-reconf");
  EXPECT_EQ(registry.canonical_name("local"), "local-only");
  EXPECT_EQ(registry.canonical_name("suspend"), "suspension");
  EXPECT_EQ(registry.canonical_name("oracle-demands"), "oracle");
  EXPECT_FALSE(registry.canonical_name("first-fit").has_value());
  EXPECT_TRUE(registry.contains("gls"));

  std::string error;
  const auto via_alias = make_policy(PolicySpec("vrecon", {{"early_release", "0"}}), &error);
  ASSERT_NE(via_alias, nullptr) << error;
}

TEST(PolicyRegistryTest, UnknownPolicyErrorListsRegisteredNames) {
  std::string error;
  EXPECT_EQ(make_policy(PolicySpec("no-such-policy"), &error), nullptr);
  EXPECT_NE(error.find("unknown policy 'no-such-policy'"), std::string::npos) << error;
  for (const std::string& name : PolicyRegistry::instance().names()) {
    EXPECT_NE(error.find(name), std::string::npos) << error;
  }
}

TEST(PolicyRegistryTest, UnknownParamErrorNamesTheKeyAndKnownParams) {
  std::string error;
  EXPECT_EQ(make_policy(PolicySpec("v-reconf", {{"bogus", "1"}}), &error), nullptr);
  EXPECT_NE(error.find("unknown param 'bogus'"), std::string::npos) << error;
  EXPECT_NE(error.find("early_release"), std::string::npos) << error;

  // A policy with no params says so instead of listing an empty set.
  EXPECT_EQ(make_policy(PolicySpec("local-only", {{"x", "1"}}), &error), nullptr);
  EXPECT_NE(error.find("policy takes no params"), std::string::npos) << error;
}

TEST(PolicyRegistryTest, MalformedValueErrorGivesTypeAndExample) {
  std::string error;
  EXPECT_EQ(make_policy(PolicySpec("v-reconf", {{"early_release", "maybe"}}), &error), nullptr);
  EXPECT_NE(error.find("invalid value 'maybe' for param 'early_release'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("expected bool"), std::string::npos) << error;

  EXPECT_EQ(make_policy(PolicySpec("v-reconf", {{"max_reservations", "many"}}), &error),
            nullptr);
  EXPECT_NE(error.find("expected int"), std::string::npos) << error;

  EXPECT_EQ(make_policy(PolicySpec("v-reconf", {{"reserve_timeout", "2 fortnights"}}), &error),
            nullptr);
  EXPECT_NE(error.find("expected duration"), std::string::npos) << error;
}

TEST(PolicyRegistryTest, DurationParamsAcceptUnitSuffixes) {
  std::string error;
  EXPECT_NE(make_policy(PolicySpec("v-reconf", {{"reserve_timeout", "2min"},
                                                {"blocking_resolve_timeout", "500ms"}}),
                        &error),
            nullptr)
      << error;
}

TEST(PolicyRegistryTest, CustomRegistrationIsCreatableLikeBuiltins) {
  auto& registry = PolicyRegistry::instance();
  registry.register_policy(
      "test-stub",
      [](const PolicyParams& params, std::string* error)
          -> std::unique_ptr<cluster::SchedulerPolicy> {
        ParamReader reader("test-stub", params);
        if (!reader.finish(error)) return nullptr;
        return make_policy(PolicySpec("local-only"), error);
      },
      {}, {"stub"});
  EXPECT_TRUE(registry.contains("test-stub"));
  EXPECT_EQ(registry.canonical_name("stub"), "test-stub");
  std::string error;
  EXPECT_NE(make_policy(PolicySpec("stub"), &error), nullptr) << error;
}

TEST(PolicyKindShimTest, EveryKindMapsToARegisteredSpec) {
  for (auto kind : {PolicyKind::kGLoadSharing, PolicyKind::kVReconfiguration,
                    PolicyKind::kLocalOnly, PolicyKind::kSuspension,
                    PolicyKind::kOracleDemands}) {
    const auto name = registry_name(kind);
    ASSERT_TRUE(name.has_value());
    EXPECT_TRUE(PolicyRegistry::instance().contains(*name));
    EXPECT_EQ(to_spec(kind).name, *name);
    std::string error;
    EXPECT_NE(make_policy(kind, &error), nullptr) << error;
  }
}

TEST(PolicyKindShimTest, OutOfRangeKindReturnsErrorInsteadOfAborting) {
  std::string error;
  const auto policy = make_policy(static_cast<PolicyKind>(999), &error);
  EXPECT_EQ(policy, nullptr);
  EXPECT_NE(error.find("999"), std::string::npos) << error;
  EXPECT_NE(error.find("g-loadsharing"), std::string::npos) << error;
}

}  // namespace
}  // namespace vrc::core
