#include "core/g_load_sharing.h"

#include <gtest/gtest.h>

#include "workload/trace.h"

namespace vrc::core {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

// A job whose demand is tiny at submission and ramps to `peak` over the
// first 10% of its run — admission cannot foresee it (the premise of [3]).
JobSpec surprise_spec(JobId id, SimTime submit, double cpu_seconds, Bytes peak,
                      workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec = make_spec(id, submit, cpu_seconds, peak, home, touch_rate);
  spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.1, peak}});
  return spec;
}

ClusterConfig config_of(std::size_t nodes) { return ClusterConfig::paper_cluster1(nodes); }

TEST(GLoadSharingTest, AcceptsJobLocallyWhenHomeQualifies) {
  sim::Simulator sim;
  GLoadSharing policy;
  Cluster cluster(sim, config_of(4), policy);
  cluster.submit_job(make_spec(1, 0.0, 1.0, megabytes(10), /*home=*/2));
  sim.run_until(0.5);
  EXPECT_EQ(cluster.node(2).active_jobs(), 1);
  EXPECT_EQ(cluster.local_placements(), 1u);
  EXPECT_EQ(cluster.remote_submits(), 0u);
}

TEST(GLoadSharingTest, RemoteSubmitsWhenHomeSlotsFull) {
  sim::Simulator sim;
  ClusterConfig config = config_of(4);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  // Fill home node 0 to its CPU threshold with tiny long jobs.
  for (int i = 0; i < config.cpu_threshold; ++i) {
    cluster.submit_job(
        make_spec(static_cast<JobId>(i + 1), 0.0, 1000.0, megabytes(1), /*home=*/0));
  }
  sim.run_until(2.0);  // let the board refresh
  cluster.submit_job(make_spec(99, 2.5, 1000.0, megabytes(1), /*home=*/0));
  sim.run_until(3.5);
  EXPECT_EQ(cluster.node(0).active_jobs(), config.cpu_threshold);
  EXPECT_GE(cluster.remote_submits(), 1u);
  // The overflow job landed somewhere else.
  int elsewhere = 0;
  for (std::size_t i = 1; i < cluster.num_nodes(); ++i) {
    elsewhere += cluster.node(static_cast<workload::NodeId>(i)).active_jobs();
  }
  EXPECT_EQ(elsewhere, 1);
}

TEST(GLoadSharingTest, BlocksWhenNoWorkstationQualifies) {
  sim::Simulator sim;
  ClusterConfig config = config_of(2);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  for (int node = 0; node < 2; ++node) {
    for (int i = 0; i < config.cpu_threshold; ++i) {
      cluster.submit_job(make_spec(static_cast<JobId>(node * 10 + i + 1), 0.0, 1000.0,
                                   megabytes(1), static_cast<workload::NodeId>(node)));
    }
  }
  sim.run_until(2.0);
  cluster.submit_job(make_spec(99, 2.5, 10.0, megabytes(1), 0));
  sim.run_until(4.0);
  EXPECT_EQ(cluster.pending_count(), 1u);
  EXPECT_GE(policy.blocked_submissions(), 1u);
}

TEST(GLoadSharingTest, PendingJobPlacedOnceCapacityFrees) {
  sim::Simulator sim;
  ClusterConfig config = config_of(1);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  for (int i = 0; i < config.cpu_threshold; ++i) {
    cluster.submit_job(make_spec(static_cast<JobId>(i + 1), 0.0, 5.0, megabytes(1), 0));
  }
  cluster.submit_job(make_spec(99, 1.0, 1.0, megabytes(1), 0));
  sim.run_until(2.0);
  EXPECT_EQ(cluster.pending_count(), 1u);
  sim.run_until(200.0);
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(cluster.completed().size(), static_cast<size_t>(config.cpu_threshold) + 1);
}

TEST(GLoadSharingTest, AdmissionRespectsMemoryThresholdViaEstimate) {
  sim::Simulator sim;
  ClusterConfig config = config_of(1);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  // Occupy most of the memory threshold.
  const Bytes user = cluster.node(0).user_memory();
  const Bytes big = static_cast<Bytes>(config.memory_threshold * static_cast<double>(user)) - megabytes(30);
  cluster.submit_job(make_spec(1, 0.0, 1000.0, big, 0));
  sim.run_until(1.0);
  // A new job's unknown demand is assumed to be the admission estimate,
  // which no longer fits: the submission blocks.
  cluster.submit_job(make_spec(2, 1.5, 10.0, megabytes(1), 0));
  sim.run_until(3.0);
  EXPECT_EQ(cluster.pending_count(), 1u);
}

TEST(GLoadSharingTest, PressureTriggersMigrationToQualifiedNode) {
  sim::Simulator sim;
  ClusterConfig config = config_of(4);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  // Node 0: two jobs that overcommit it once grown; other nodes empty.
  cluster.submit_job(surprise_spec(1, 0.0, 300.0, megabytes(250), 0, 200.0));
  cluster.submit_job(surprise_spec(2, 0.0, 300.0, megabytes(250), 0, 200.0));
  sim.run_until(60.0);
  EXPECT_GE(cluster.migrations_started(), 1u);
  // After the ~160 s image transfer, the source node is no longer
  // overcommitted.
  sim.run_until(300.0);
  EXPECT_LE(cluster.node(0).resident_demand(), cluster.node(0).user_memory());
}

TEST(GLoadSharingTest, NoMigrationWhenDisabled) {
  sim::Simulator sim;
  ClusterConfig config = config_of(4);
  GLoadSharing::Options options;
  options.enable_migration = false;
  GLoadSharing policy(options);
  Cluster cluster(sim, config, policy);
  cluster.submit_job(surprise_spec(1, 0.0, 100.0, megabytes(250), 0, 200.0));
  cluster.submit_job(surprise_spec(2, 0.0, 100.0, megabytes(250), 0, 200.0));
  sim.run_until(100.0);
  EXPECT_EQ(cluster.migrations_started(), 0u);
  EXPECT_GE(policy.failed_migrations(), 1u);
}

TEST(GLoadSharingTest, MigrationBlockedWhenBiggestJobFitsNowhere) {
  // The framework migrates find_most_memory_intensive_job() — exactly that
  // job. When no workstation can hold it, the migration fails and the node
  // stays overcommitted even though the *smaller* resident would fit
  // elsewhere: this is the job blocking problem the paper attacks.
  sim::Simulator sim;
  ClusterConfig config = config_of(2);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  // Node 1 half full: idle < 300 MB (but > 120 MB).
  cluster.submit_job(make_spec(1, 0.0, 1000.0, megabytes(200), 1));
  // Node 0: a 300 MB job plus a 120 MB job (demands unknown at admission).
  cluster.submit_job(surprise_spec(2, 0.0, 1000.0, megabytes(300), 0, 200.0));
  cluster.submit_job(surprise_spec(3, 0.0, 1000.0, megabytes(120), 0, 200.0));
  sim.run_until(250.0);
  EXPECT_EQ(cluster.migrations_started(), 0u);
  EXPECT_GE(policy.failed_migrations(), 1u);
  EXPECT_GT(cluster.node(0).overcommit(), 0.0);
  EXPECT_NE(cluster.node(0).find_job(2), nullptr);
  EXPECT_NE(cluster.node(0).find_job(3), nullptr);
}

TEST(GLoadSharingTest, StatsExposeCounters) {
  GLoadSharing policy;
  auto stats = policy.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "blocked_submissions");
  EXPECT_EQ(stats[1].first, "failed_migrations");
}

TEST(GLoadSharingTest, ReservedNodeNotUsedForSubmissions) {
  sim::Simulator sim;
  ClusterConfig config = config_of(2);
  GLoadSharing policy;
  Cluster cluster(sim, config, policy);
  cluster.set_reserved(1, true);
  // Fill node 0 completely; overflow has nowhere to go (node 1 reserved).
  for (int i = 0; i < config.cpu_threshold; ++i) {
    cluster.submit_job(make_spec(static_cast<JobId>(i + 1), 0.0, 50.0, megabytes(1), 0));
  }
  cluster.submit_job(make_spec(99, 1.0, 1.0, megabytes(1), 0));
  sim.run_until(5.0);
  EXPECT_EQ(cluster.node(1).active_jobs(), 0);
  EXPECT_EQ(cluster.pending_count(), 1u);
}

}  // namespace
}  // namespace vrc::core
