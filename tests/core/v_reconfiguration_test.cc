#include "core/v_reconfiguration.h"

#include <gtest/gtest.h>

#include <set>

namespace vrc::core {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

// Demand is tiny at submission and ramps to `peak` over the first 10% of
// the run: admission cannot foresee it, so collisions can form.
JobSpec surprise_spec(JobId id, SimTime submit, double cpu_seconds, Bytes peak,
                      workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec = make_spec(id, submit, cpu_seconds, peak, home, touch_rate);
  spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.1, peak}});
  return spec;
}

// A scenario that forces the blocking problem on node 0: two large jobs
// collide there while every other node is too full to host either of them,
// yet has jobs that finish soon (accumulated idle memory appears).
void build_blocking_scenario(Cluster& cluster) {
  // Node 0: two jobs growing to 250 MB -> 500 MB on 368 MB of user memory.
  cluster.submit_job(surprise_spec(1, 0.0, 400.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 0.0, 400.0, megabytes(250), 0, 300.0));
  // Nodes 1..3: two mid jobs each (idle < 250 MB, so no migration target),
  // with short lifetimes so reserved drains can complete.
  JobId id = 10;
  for (workload::NodeId node = 1; node <= 3; ++node) {
    cluster.submit_job(make_spec(id++, 0.0, 60.0, megabytes(120), node));
    cluster.submit_job(make_spec(id++, 0.0, 120.0, megabytes(120), node));
  }
}

TEST(VReconfigurationTest, DetectsBlockingAndReserves) {
  sim::Simulator sim;
  VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(400.0);
  EXPECT_GE(policy.reservations_started(), 1u);
  EXPECT_GE(policy.reserved_migrations(), 1u);
}

TEST(VReconfigurationTest, BigJobEndsUpOnReservedNode) {
  sim::Simulator sim;
  VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(700.0);
  // One of the two colliding jobs must have been isolated; node 0 is no
  // longer overcommitted.
  EXPECT_LE(cluster.node(0).resident_demand(), cluster.node(0).user_memory());
}

TEST(VReconfigurationTest, ResolvesBlockingFasterThanBaseline) {
  auto run_with = [](cluster::SchedulerPolicy& policy) {
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
    build_blocking_scenario(cluster);
    sim.run_until(20000.0);
    EXPECT_TRUE(cluster.finished());
    return cluster.finish_time();
  };
  GLoadSharing baseline;
  VReconfiguration vrecon;
  const double baseline_time = run_with(baseline);
  const double vrecon_time = run_with(vrecon);
  EXPECT_LT(vrecon_time, baseline_time);
}

TEST(VReconfigurationTest, ReservationReleasedAfterService) {
  sim::Simulator sim;
  VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(20000.0);
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(policy.active_reservations(), 0);
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    EXPECT_FALSE(cluster.node(static_cast<workload::NodeId>(i)).reserved()) << "node " << i;
  }
}

TEST(VReconfigurationTest, NoReconfigurationWithoutOvercommit) {
  sim::Simulator sim;
  VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  for (JobId i = 1; i <= 8; ++i) {
    cluster.submit_job(make_spec(i, 0.0, 20.0, megabytes(40), i % 4));
  }
  sim.run_until(1000.0);
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(policy.reservations_started(), 0u);
  EXPECT_EQ(policy.reserved_migrations(), 0u);
}

TEST(VReconfigurationTest, DeclinesWhenClusterIdleTooSmall) {
  sim::Simulator sim;
  VReconfiguration::Options options;
  // Demand an absurd amount of accumulated idle memory: reconfiguration can
  // never activate (§2.3 condition).
  options.min_cluster_idle_factor = 1000.0;
  VReconfiguration policy(options);
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(300.0);
  EXPECT_EQ(policy.reservations_started(), 0u);
}

TEST(VReconfigurationTest, RespectsMaxReservations) {
  sim::Simulator sim;
  VReconfiguration::Options options;
  options.max_reservations = 1;
  VReconfiguration policy(options);
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(100.0);
  EXPECT_LE(policy.active_reservations(), 1);
}

TEST(VReconfigurationTest, IgnoresPressureFromNormalSizedJobs) {
  sim::Simulator sim;
  VReconfiguration policy;
  // 2-node cluster; node 0 overcommitted by many *small* jobs — CPU/paging
  // congestion without a large job. Reconfiguration must not trigger.
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  config.cpu_threshold = 12;
  Cluster cluster(sim, config, policy);
  for (JobId i = 1; i <= 10; ++i) {
    cluster.submit_job(make_spec(i, 0.0, 60.0, megabytes(45), 0, 150.0));
  }
  sim.run_until(60.0);
  EXPECT_EQ(policy.reservations_started(), 0u);
}

TEST(VReconfigurationTest, FullDrainVariantAlsoResolves) {
  sim::Simulator sim;
  VReconfiguration::Options options;
  options.early_release = false;
  options.reserve_timeout = 1000.0;
  VReconfiguration policy(options);
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  build_blocking_scenario(cluster);
  sim.run_until(20000.0);
  EXPECT_TRUE(cluster.finished());
  EXPECT_GE(policy.reserved_migrations(), 1u);
}

TEST(VReconfigurationTest, DrainTimeoutAbandonsStuckReservation) {
  sim::Simulator sim;
  VReconfiguration::Options options;
  options.early_release = false;   // force long drains
  options.reserve_timeout = 30.0;  // give up quickly
  VReconfiguration policy(options);
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  // Same blocking shape but with long-lived fillers: drains cannot finish.
  cluster.submit_job(surprise_spec(1, 0.0, 400.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 0.0, 400.0, megabytes(250), 0, 300.0));
  JobId id = 10;
  for (workload::NodeId node = 1; node <= 3; ++node) {
    cluster.submit_job(make_spec(id++, 0.0, 5000.0, megabytes(120), node));
    cluster.submit_job(make_spec(id++, 0.0, 5000.0, megabytes(120), node));
  }
  sim.run_until(500.0);
  auto stats = policy.stats();
  double timed_out = 0;
  for (const auto& [key, value] : stats) {
    if (key == "drains_timed_out") timed_out = value;
  }
  EXPECT_GE(timed_out, 1.0);
  // Released reservations must leave no node permanently flagged.
  int reserved_nodes = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(static_cast<workload::NodeId>(i)).reserved()) ++reserved_nodes;
  }
  EXPECT_EQ(reserved_nodes, policy.active_reservations());
}

TEST(VReconfigurationTest, StatsIncludeReconfigurationCounters) {
  VReconfiguration policy;
  auto stats = policy.stats();
  std::set<std::string> keys;
  for (const auto& [key, value] : stats) keys.insert(key);
  EXPECT_TRUE(keys.contains("reservations_started"));
  EXPECT_TRUE(keys.contains("reserved_migrations"));
  EXPECT_TRUE(keys.contains("drains_timed_out"));
}

}  // namespace
}  // namespace vrc::core
