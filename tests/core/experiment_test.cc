#include "core/experiment.h"

#include "workload/trace_generator.h"

#include <gtest/gtest.h>

namespace vrc::core {
namespace {

workload::Trace tiny_trace(std::size_t jobs, workload::WorkloadGroup group) {
  workload::TraceParams params;
  params.name = "tiny";
  params.group = group;
  params.num_jobs = jobs;
  params.duration = 600.0;
  params.num_nodes = 4;
  params.seed = 99;
  return workload::generate_trace(params);
}

TEST(ExperimentTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(PolicyKind::kGLoadSharing), "G-Loadsharing");
  EXPECT_STREQ(to_string(PolicyKind::kVReconfiguration), "V-Reconfiguration");
  EXPECT_STREQ(to_string(PolicyKind::kLocalOnly), "Local-Only");
  EXPECT_STREQ(to_string(PolicyKind::kSuspension), "Job-Suspension");
  for (PolicyKind kind : {PolicyKind::kGLoadSharing, PolicyKind::kVReconfiguration,
                          PolicyKind::kLocalOnly, PolicyKind::kSuspension}) {
    auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), to_string(kind));
  }
}

TEST(ExperimentTest, PaperClusterSelection) {
  const auto c1 = paper_cluster_for(workload::WorkloadGroup::kSpec);
  EXPECT_EQ(c1.num_nodes(), 32u);
  EXPECT_EQ(c1.nodes[0].memory, megabytes(384));
  EXPECT_EQ(c1.reference_mhz, 400.0);
  const auto c2 = paper_cluster_for(workload::WorkloadGroup::kApps, 8);
  EXPECT_EQ(c2.num_nodes(), 8u);
  EXPECT_EQ(c2.nodes[0].memory, megabytes(128));
  EXPECT_EQ(c2.reference_mhz, 233.0);
}

TEST(ExperimentTest, RunCompletesAllJobs) {
  const auto trace = tiny_trace(20, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const auto report = run_policy_on_trace(PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(report.jobs_submitted, 20u);
  EXPECT_EQ(report.jobs_completed, 20u);
  EXPECT_EQ(report.policy, "G-Loadsharing");
  EXPECT_EQ(report.trace, "tiny");
  EXPECT_GT(report.total_execution, 0.0);
  EXPECT_GT(report.avg_slowdown, 0.99);
  EXPECT_EQ(report.jobs.size(), 20u);
}

TEST(ExperimentTest, ReportBreakdownSumsToExecution) {
  const auto trace = tiny_trace(25, workload::WorkloadGroup::kApps);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kApps, 4);
  const auto report = run_policy_on_trace(PolicyKind::kVReconfiguration, trace, config);
  EXPECT_NEAR(report.total_cpu + report.total_page + report.total_queue + report.total_migration,
              report.total_execution, 0.05 * static_cast<double>(report.jobs_completed));
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const auto trace = tiny_trace(15, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const auto a = run_policy_on_trace(PolicyKind::kVReconfiguration, trace, config);
  const auto b = run_policy_on_trace(PolicyKind::kVReconfiguration, trace, config);
  EXPECT_EQ(a.total_execution, b.total_execution);
  EXPECT_EQ(a.avg_slowdown, b.avg_slowdown);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(ExperimentTest, MaxSimTimeCapsRun) {
  const auto trace = tiny_trace(30, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 1);
  ExperimentOptions options;
  options.max_sim_time = 5.0;  // far too short
  const auto report = run_policy_on_trace(PolicyKind::kLocalOnly, trace, config, options);
  EXPECT_LT(report.jobs_completed, report.jobs_submitted);
}

TEST(ExperimentTest, ComparisonComputesReductions) {
  const auto trace = tiny_trace(30, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const auto comparison =
      compare_policies(PolicyKind::kLocalOnly, PolicyKind::kGLoadSharing, trace, config);
  EXPECT_EQ(comparison.baseline.policy, "Local-Only");
  EXPECT_EQ(comparison.ours.policy, "G-Loadsharing");
  const double expected = metrics::reduction(comparison.baseline.total_execution,
                                             comparison.ours.total_execution);
  EXPECT_DOUBLE_EQ(comparison.execution_reduction(), expected);
}

TEST(ExperimentTest, MultipleSamplingIntervalsReported) {
  const auto trace = tiny_trace(20, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  ExperimentOptions options;
  options.collector.sampling_intervals = {1.0, 10.0, 30.0};
  const auto report = run_policy_on_trace(PolicyKind::kGLoadSharing, trace, config, options);
  ASSERT_EQ(report.idle_memory_mb.size(), 3u);
  ASSERT_EQ(report.balance_skew.size(), 3u);
  EXPECT_EQ(report.idle_memory_mb[0].interval, 1.0);
  EXPECT_EQ(report.idle_memory_mb[2].interval, 30.0);
  // The paper's insensitivity claim: averages close across intervals.
  EXPECT_NEAR(report.idle_memory_mb[1].average, report.idle_memory_mb[0].average,
              0.15 * report.idle_memory_mb[0].average + 1.0);
}

TEST(ExperimentTest, PolicyStatsLandInReport) {
  const auto trace = tiny_trace(20, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  const auto report = run_policy_on_trace(PolicyKind::kVReconfiguration, trace, config);
  EXPECT_FALSE(report.policy_stats.empty());
}

// Regression: attach() must reset every statistic, so a policy object
// reused across experiments (safe reuse under the sweep runner) reports
// per-run counters instead of carrying totals over.
TEST(ExperimentTest, ReusedPolicyObjectDoesNotCarryStatsOver) {
  const auto trace = tiny_trace(40, workload::WorkloadGroup::kSpec);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 2);
  for (PolicyKind kind : {PolicyKind::kGLoadSharing, PolicyKind::kVReconfiguration,
                          PolicyKind::kSuspension}) {
    auto policy = make_policy(kind);
    const auto first = run_experiment(trace, config, *policy);
    const auto second = run_experiment(trace, config, *policy);
    ASSERT_EQ(first.policy_stats.size(), second.policy_stats.size());
    for (std::size_t i = 0; i < first.policy_stats.size(); ++i) {
      EXPECT_EQ(first.policy_stats[i].first, second.policy_stats[i].first);
      EXPECT_DOUBLE_EQ(first.policy_stats[i].second, second.policy_stats[i].second)
          << to_string(kind) << " stat " << first.policy_stats[i].first
          << " accumulated across runs";
    }
    EXPECT_EQ(first.total_execution, second.total_execution) << to_string(kind);
  }
}

}  // namespace
}  // namespace vrc::core
