#include "core/oracle.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/trace_generator.h"

namespace vrc::core {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;

JobSpec surprise_spec(JobId id, SimTime submit, double cpu_seconds, Bytes peak,
                      workload::NodeId home = 0, double touch_rate = 0.0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.1, peak}});
  return spec;
}

TEST(OracleDemandsTest, NeverAdmitsAFutureCollision) {
  // Two jobs that will both grow to 250 MB: the oracle sees the peaks and
  // scatters them even though both look tiny at submission.
  sim::Simulator sim;
  OracleDemands policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  cluster.submit_job(surprise_spec(1, 0.0, 100.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 0.0, 100.0, megabytes(250), 0, 300.0));
  sim.run_until(2000.0);
  ASSERT_TRUE(cluster.finished());
  for (const auto& job : cluster.completed()) {
    EXPECT_EQ(job.faults, 0.0) << "oracle placement must avoid all thrashing";
  }
  EXPECT_EQ(cluster.migrations_started(), 0u);
}

TEST(OracleDemandsTest, BlocksJobThatFitsNowhere) {
  // Unlike the optimistic baseline, the oracle refuses placements that will
  // not fit: a single workstation already holding 250 MB cannot take a job
  // that will grow to 200 MB.
  sim::Simulator sim;
  OracleDemands policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(1), policy);
  cluster.submit_job(surprise_spec(1, 0.0, 200.0, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise_spec(2, 1.0, 50.0, megabytes(200), 0, 300.0));
  sim.run_until(50.0);
  EXPECT_EQ(cluster.pending_count(), 1u);
  EXPECT_EQ(cluster.node(0).active_jobs(), 1);
}

TEST(OracleDemandsTest, AtLeastMatchesBaselinePagingOnRealWorkload) {
  workload::TraceParams params;
  params.name = "oracle";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 120;
  params.duration = 1200.0;
  params.num_nodes = 8;
  params.seed = 77;
  const auto trace = workload::generate_trace(params);
  const auto config = paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  const auto baseline = run_policy_on_trace(PolicyKind::kGLoadSharing, trace, config);
  const auto oracle = run_policy_on_trace(PolicyKind::kOracleDemands, trace, config);
  EXPECT_EQ(oracle.jobs_completed, oracle.jobs_submitted);
  // Perfect demand knowledge eliminates (almost) all paging.
  EXPECT_LE(oracle.total_page, baseline.total_page);
  EXPECT_LT(oracle.total_page, 0.02 * oracle.total_execution + 1.0);
}

TEST(OracleDemandsTest, RegisteredInPolicyFactory) {
  auto policy = make_policy(PolicyKind::kOracleDemands);
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy->name(), "Oracle-Demands");
  EXPECT_STREQ(to_string(PolicyKind::kOracleDemands), "Oracle-Demands");
}

}  // namespace
}  // namespace vrc::core
