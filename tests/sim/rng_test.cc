#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vrc::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(29);
  std::vector<double> samples;
  const int n = 50001;
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(3.0, 1.0));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 4.0), 0.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, PoissonMeanMatchesSmallRegime) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLargeRegime) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(47);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(53);
  Rng child = parent.fork();
  // Child draws must not replay the parent's stream.
  Rng parent_copy(53);
  parent_copy.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(59), b(59);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace vrc::sim
