#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace vrc::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(42.5, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 42.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 15.0);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { observed = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(observed, 10.0);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(-5.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelReturnsFalseForUnknownId) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
}

TEST(SimulatorTest, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, PendingEventsTracksLiveCount) {
  Simulator sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(5.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(SimulatorTest, RunUntilAdvancesNowEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99.0);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 1.0, 2.0, [&](SimTime now) { fires.push_back(now); });
  sim.run_until(9.0);
  task.stop();
  EXPECT_EQ(fires, (std::vector<SimTime>{1.0, 3.0, 5.0, 7.0, 9.0}));
}

TEST(PeriodicTaskTest, StopPreventsFurtherFires) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, 1.0, 1.0, [&](SimTime) {
    if (++fires == 3) task.stop();
  });
  sim.run();  // would never drain unless stop() works
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, StopIsIdempotent) {
  Simulator sim;
  PeriodicTask task(sim, 1.0, 1.0, [](SimTime) {});
  task.stop();
  task.stop();
  EXPECT_FALSE(task.running());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(PeriodicTaskTest, DestructorCancelsPendingEvent) {
  Simulator sim;
  {
    PeriodicTask task(sim, 1.0, 1.0, [](SimTime) {});
    EXPECT_EQ(sim.pending_events(), 1u);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace vrc::sim
