#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace vrc::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(42.5, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 42.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 15.0);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { observed = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(observed, 10.0);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(-5.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelReturnsFalseForUnknownId) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
}

TEST(SimulatorTest, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, PendingEventsTracksLiveCount) {
  Simulator sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(5.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(SimulatorTest, RunUntilAdvancesNowEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99.0);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

// --- determinism contract (locked down before the slab-heap rewrite) ---

TEST(SimulatorTest, EqualTimeFifoSurvivesCancellations) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule_at(5.0, [&order, i] { order.push_back(i); }));
  }
  sim.cancel(ids[0]);
  sim.cancel(ids[4]);
  sim.cancel(ids[9]);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 6, 7, 8}));
}

TEST(SimulatorTest, TopLevelPastTimeClampsToNow) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 10.0);
  SimTime observed = -1.0;
  sim.schedule_at(2.0, [&] { observed = sim.now(); });  // already in the past
  sim.run();
  EXPECT_EQ(observed, 10.0);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, CancelAtSameTimestampPreventsFiring) {
  Simulator sim;
  bool second_fired = false;
  EventId second = kInvalidEventId;
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(1.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorTest, RunUntilAtExactTimestampRunsAllEqualEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_at(3.0, [&] { ++fired; });
  sim.schedule_at(3.0 + 1e-9, [&] { fired += 100; });
  EXPECT_EQ(sim.run_until(3.0), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, PendingEventsAccountingAcrossCancelsAndFires) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(sim.schedule_at(1.0 + i, [] {}));
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[3]));
  EXPECT_EQ(sim.pending_events(), 4u);
  EXPECT_TRUE(sim.step());  // fires ids[0]
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_FALSE(sim.cancel(ids[0]));  // already fired
  EXPECT_FALSE(sim.cancel(ids[1]));  // already cancelled
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, StaleIdNeverCancelsALaterEvent) {
  Simulator sim;
  // Exhaust and recycle ids heavily; a cancelled/fired id must stay dead even
  // after its storage is reused by later events.
  std::vector<EventId> dead;
  for (int round = 0; round < 8; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(sim.schedule_after(1.0, [] {}));
    for (EventId id : ids) EXPECT_TRUE(sim.cancel(id));
    dead.insert(dead.end(), ids.begin(), ids.end());
  }
  int fired = 0;
  std::vector<EventId> live;
  for (int i = 0; i < 64; ++i) live.push_back(sim.schedule_after(1.0, [&] { ++fired; }));
  for (EventId id : dead) EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 64);
  for (EventId id : live) EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, StressMatchesReferenceModel) {
  // Deterministic schedule/cancel/run storm checked against a naive model:
  // a sorted-by-(time, insertion) list with eager deletion.
  struct ModelEvent {
    SimTime when;
    std::uint64_t seq;
    int tag;
  };
  Simulator sim;
  std::vector<ModelEvent> model;
  std::vector<std::pair<EventId, ModelEvent>> live;
  std::vector<int> fired;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull, seq = 0;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t roll = next() % 100;
    if (roll < 55 || live.empty()) {
      const SimTime when = sim.now() + static_cast<double>(next() % 1000) / 10.0;
      const int tag = op;
      EventId id = sim.schedule_at(when, [&fired, tag] { fired.push_back(tag); });
      live.push_back({id, ModelEvent{when, seq++, tag}});
    } else if (roll < 75) {
      const std::size_t victim = next() % live.size();
      EXPECT_TRUE(sim.cancel(live[victim].first));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (roll < 90) {
      for (int i = 0; i < 3 && !live.empty(); ++i) {
        // Fire the earliest (time, insertion) live event in the model.
        std::size_t best = 0;
        for (std::size_t i2 = 1; i2 < live.size(); ++i2) {
          const auto& a = live[i2].second;
          const auto& b = live[best].second;
          if (a.when < b.when || (a.when == b.when && a.seq < b.seq)) best = i2;
        }
        model.push_back(live[best].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
        EXPECT_TRUE(sim.step());
      }
    } else {
      const SimTime deadline = sim.now() + static_cast<double>(next() % 200) / 10.0;
      auto due = [&](const ModelEvent& e) { return e.when <= deadline; };
      while (true) {
        std::size_t best = live.size();
        for (std::size_t i2 = 0; i2 < live.size(); ++i2) {
          if (!due(live[i2].second)) continue;
          if (best == live.size()) {
            best = i2;
            continue;
          }
          const auto& a = live[i2].second;
          const auto& b = live[best].second;
          if (a.when < b.when || (a.when == b.when && a.seq < b.seq)) best = i2;
        }
        if (best == live.size()) break;
        model.push_back(live[best].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
      }
      sim.run_until(deadline);
    }
    ASSERT_EQ(sim.pending_events(), live.size());
  }
  sim.run();
  // Drain the model in order.
  std::sort(model.begin(), model.end(), [](const ModelEvent& a, const ModelEvent& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  });
  // model holds already-fired events in fire order; append remaining live.
  std::vector<ModelEvent> rest;
  for (auto& entry : live) rest.push_back(entry.second);
  std::sort(rest.begin(), rest.end(), [](const ModelEvent& a, const ModelEvent& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  });
  std::vector<int> expected;
  for (const auto& e : model) expected.push_back(e.tag);
  for (const auto& e : rest) expected.push_back(e.tag);
  EXPECT_EQ(fired, expected);
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 1.0, 2.0, [&](SimTime now) { fires.push_back(now); });
  sim.run_until(9.0);
  task.stop();
  EXPECT_EQ(fires, (std::vector<SimTime>{1.0, 3.0, 5.0, 7.0, 9.0}));
}

TEST(PeriodicTaskTest, StopPreventsFurtherFires) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, 1.0, 1.0, [&](SimTime) {
    if (++fires == 3) task.stop();
  });
  sim.run();  // would never drain unless stop() works
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, StopIsIdempotent) {
  Simulator sim;
  PeriodicTask task(sim, 1.0, 1.0, [](SimTime) {});
  task.stop();
  task.stop();
  EXPECT_FALSE(task.running());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(PeriodicTaskTest, DestructorCancelsPendingEvent) {
  Simulator sim;
  {
    PeriodicTask task(sim, 1.0, 1.0, [](SimTime) {});
    EXPECT_EQ(sim.pending_events(), 1u);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace vrc::sim
