#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vrc::sim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);       // sample variance
  EXPECT_NEAR(s.population_stddev(), 2.0, 1e-12);     // population stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(TimeWeightedStatsTest, ConstantSignal) {
  TimeWeightedStats s;
  s.record(0.0, 5.0);
  EXPECT_DOUBLE_EQ(s.average_until(10.0), 5.0);
}

TEST(TimeWeightedStatsTest, StepSignalWeightsByDuration) {
  TimeWeightedStats s;
  s.record(0.0, 0.0);
  s.record(8.0, 10.0);  // value 0 held for 8s, then 10
  EXPECT_DOUBLE_EQ(s.average_until(10.0), (0.0 * 8.0 + 10.0 * 2.0) / 10.0);
}

TEST(TimeWeightedStatsTest, BeforeStartIsZero) {
  TimeWeightedStats s;
  EXPECT_EQ(s.average_until(5.0), 0.0);
  s.record(10.0, 3.0);
  EXPECT_EQ(s.average_until(10.0), 0.0);  // zero-length window
}

TEST(PercentilesTest, EmptyQuantileIsZero) {
  Percentiles p;
  EXPECT_EQ(p.quantile(0.5), 0.0);
}

TEST(PercentilesTest, MedianOfOddCount) {
  Percentiles p;
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 3.0);
}

TEST(PercentilesTest, InterpolatesBetweenOrderStatistics) {
  Percentiles p;
  for (double v : {0.0, 10.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
}

TEST(PercentilesTest, ExtremesAreMinMax) {
  Percentiles p;
  for (double v : {7.0, -2.0, 4.0, 9.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), -2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(p.quantile(-0.5), -2.0);  // clamped
  EXPECT_DOUBLE_EQ(p.quantile(1.5), 9.0);    // clamped
}

TEST(PercentilesTest, AddAfterQuantileStillWorks) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 2.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 3.0);
}

TEST(HistogramTest, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(HistogramTest, BinBoundsArePartition) {
  Histogram h(2.0, 12.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 4.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 9.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 12.0);
}

}  // namespace
}  // namespace vrc::sim
