#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace vrc::sim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);       // sample variance
  EXPECT_NEAR(s.population_stddev(), 2.0, 1e-12);     // population stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

// Property test: merging an arbitrary partition of a stream must match
// adding the whole stream to a single accumulator — the guarantee the
// parallel sweep runner relies on when folding per-cell stats together.
TEST(RunningStatsTest, MergeOverArbitraryPartitionsMatchesSingleStream) {
  Rng rng(20260806);
  for (int round = 0; round < 50; ++round) {
    const std::size_t values = 1 + rng.uniform_index(400);
    const std::size_t parts = 1 + rng.uniform_index(8);
    RunningStats whole;
    std::vector<RunningStats> partition(parts);
    for (std::size_t i = 0; i < values; ++i) {
      // Mixed magnitudes to stress the merge formula numerically.
      const double v = rng.normal(0.0, 1.0) * (1.0 + 1000.0 * rng.uniform());
      whole.add(v);
      partition[rng.uniform_index(parts)].add(v);
    }
    RunningStats merged;
    for (const RunningStats& part : partition) merged.merge(part);
    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * (1.0 + std::abs(whole.mean())));
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * (1.0 + whole.variance()));
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * (1.0 + std::abs(whole.sum())));
  }
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(TimeWeightedStatsTest, ConstantSignal) {
  TimeWeightedStats s;
  s.record(0.0, 5.0);
  EXPECT_DOUBLE_EQ(s.average_until(10.0), 5.0);
}

TEST(TimeWeightedStatsTest, StepSignalWeightsByDuration) {
  TimeWeightedStats s;
  s.record(0.0, 0.0);
  s.record(8.0, 10.0);  // value 0 held for 8s, then 10
  EXPECT_DOUBLE_EQ(s.average_until(10.0), (0.0 * 8.0 + 10.0 * 2.0) / 10.0);
}

TEST(TimeWeightedStatsTest, BeforeStartIsZero) {
  TimeWeightedStats s;
  EXPECT_EQ(s.average_until(5.0), 0.0);
  s.record(10.0, 3.0);
  EXPECT_EQ(s.average_until(10.0), 0.0);  // zero-length window
}

// Regression: an out-of-order sample used to roll last_time_ backwards,
// double-counting the interval on the next in-order record.
TEST(TimeWeightedStatsTest, OutOfOrderSampleDoesNotDoubleCount) {
  TimeWeightedStats s;
  s.record(0.0, 10.0);
  s.record(5.0, 20.0);   // 10 held for [0, 5)
  s.record(3.0, 30.0);   // late sample: clamped to t=5, must not rewind time
  // Pre-fix this was (10*5 + 30*7) / 10 = 26: the [3, 5) interval charged
  // twice. Correct: 10 over [0,5), 30 over [5,10).
  EXPECT_DOUBLE_EQ(s.average_until(10.0), (10.0 * 5.0 + 30.0 * 5.0) / 10.0);
}

TEST(TimeWeightedStatsTest, OutOfOrderSampleStillUpdatesValue) {
  TimeWeightedStats s;
  s.record(2.0, 4.0);
  s.record(1.0, 8.0);  // non-monotone; value takes effect at t=2
  EXPECT_DOUBLE_EQ(s.last_value(), 8.0);
  EXPECT_DOUBLE_EQ(s.average_until(4.0), 8.0);
}

TEST(PercentilesTest, EmptyQuantileIsZero) {
  Percentiles p;
  EXPECT_EQ(p.quantile(0.5), 0.0);
}

TEST(PercentilesTest, MedianOfOddCount) {
  Percentiles p;
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 3.0);
}

TEST(PercentilesTest, InterpolatesBetweenOrderStatistics) {
  Percentiles p;
  for (double v : {0.0, 10.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
}

TEST(PercentilesTest, ExtremesAreMinMax) {
  Percentiles p;
  for (double v : {7.0, -2.0, 4.0, 9.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), -2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(p.quantile(-0.5), -2.0);  // clamped
  EXPECT_DOUBLE_EQ(p.quantile(1.5), 9.0);    // clamped
}

TEST(PercentilesTest, AddAfterQuantileStillWorks) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 2.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 3.0);
}

TEST(HistogramTest, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

// Regression: out-of-range samples used to clamp into the first/last bin,
// silently polluting the tails of the distribution.
TEST(HistogramTest, OutOfRangeGoesToUnderOverflowNotEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi is exclusive: exactly hi counts as overflow
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(4), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.in_range(), 0u);
}

TEST(HistogramTest, InRangeExcludesOutOfRangeSamples) {
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  h.add(-1.0);
  EXPECT_EQ(h.in_range(), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
}

TEST(HistogramTest, BinBoundsArePartition) {
  Histogram h(2.0, 12.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 4.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 9.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 12.0);
}

}  // namespace
}  // namespace vrc::sim
