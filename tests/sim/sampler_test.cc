#include "sim/sampler.h"

#include <gtest/gtest.h>

namespace vrc::sim {
namespace {

TEST(IntervalSamplerTest, SamplesAtFixedInterval) {
  Simulator sim;
  double signal = 0.0;
  IntervalSampler sampler(sim, 1.0, 1.0, [&](SimTime) { return signal; });
  sim.schedule_at(0.5, [&] { signal = 10.0; });
  sim.schedule_at(5.5, [&] { signal = 20.0; });
  sim.run_until(10.0);
  sampler.stop();
  // Samples at t=1..10: five at 10.0 (t=1..5), five at 20.0 (t=6..10).
  EXPECT_EQ(sampler.stats().count(), 10u);
  EXPECT_DOUBLE_EQ(sampler.stats().mean(), 15.0);
  EXPECT_EQ(sampler.stats().min(), 10.0);
  EXPECT_EQ(sampler.stats().max(), 20.0);
}

TEST(IntervalSamplerTest, StopEndsSampling) {
  Simulator sim;
  int probes = 0;
  IntervalSampler sampler(sim, 1.0, 1.0, [&](SimTime) {
    ++probes;
    return 0.0;
  });
  sim.run_until(3.0);
  sampler.stop();
  sim.run_until(10.0);
  EXPECT_EQ(probes, 3);
}

TEST(IntervalSamplerTest, ProbeSeesSimulationTime) {
  Simulator sim;
  std::vector<SimTime> times;
  IntervalSampler sampler(sim, 2.0, 3.0, [&](SimTime now) {
    times.push_back(now);
    return now;
  });
  sim.run_until(9.0);
  sampler.stop();
  EXPECT_EQ(times, (std::vector<SimTime>{2.0, 5.0, 8.0}));
  EXPECT_EQ(sampler.interval(), 3.0);
}

TEST(IntervalSamplerTest, DifferentIntervalsSameAverageForConstantSignal) {
  // The paper's insensitivity observation: a (near-)constant signal averages
  // identically at 1 s / 10 s / 30 s sampling.
  for (double interval : {1.0, 10.0, 30.0}) {
    Simulator sim;
    IntervalSampler sampler(sim, interval, interval, [](SimTime) { return 42.0; });
    sim.run_until(300.0);
    sampler.stop();
    EXPECT_DOUBLE_EQ(sampler.stats().mean(), 42.0) << "interval " << interval;
  }
}

}  // namespace
}  // namespace vrc::sim
