// Tests for the zero-overhead-when-off perf counter plumbing (DESIGN.md §12).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "metrics/perf_counters.h"

namespace vrc::metrics {
namespace {

/// Restores the global capture switch and drains any leftover aggregate so
/// tests cannot leak state into each other (or into unrelated tests that run
/// simulations in this binary).
class PerfCountersTest : public testing::Test {
 protected:
  void SetUp() override {
    set_perf_capture_enabled(false);
    (void)take_perf_aggregate();
  }
  void TearDown() override {
    set_perf_capture_enabled(false);
    (void)take_perf_aggregate();
  }
};

TEST_F(PerfCountersTest, DisabledByDefaultAndPerfAddIsSafe) {
  EXPECT_FALSE(perf_capture_enabled());
  EXPECT_FALSE(perf_capture_active());
  // No capture installed: perf_add must be a harmless no-op, not a crash.
  perf_add(&PerfCounters::heap_upserts);
  perf_add(&PerfCounters::node_ticks, 17);
  const PerfCounters aggregate = take_perf_aggregate();
  EXPECT_EQ(aggregate.heap_upserts, 0u);
  EXPECT_EQ(aggregate.node_ticks, 0u);
}

TEST_F(PerfCountersTest, CaptureScopeIsInertWhileDisabled) {
  {
    ScopedPerfCapture capture;
    EXPECT_FALSE(perf_capture_active());
    perf_add(&PerfCounters::exchange_rounds);
  }
  EXPECT_EQ(take_perf_aggregate().exchange_rounds, 0u);
}

TEST_F(PerfCountersTest, MergeSumsEveryField) {
  PerfCounters a;
  PerfCounters b;
  a.heap_upserts = 3;
  a.exchange_wall_ns = 100;
  b.heap_upserts = 4;
  b.exchange_wall_ns = 50;
  b.snapshots_published = 9;
  a.merge(b);
  EXPECT_EQ(a.heap_upserts, 7u);
  EXPECT_EQ(a.exchange_wall_ns, 150u);
  EXPECT_EQ(a.snapshots_published, 9u);
}

TEST_F(PerfCountersTest, EntriesCoverEveryCounterField) {
  PerfCounters counters;
  const auto entries = counters.entries();
  // sizeof-based completeness check: every std::uint64_t member must have an
  // (name, value) entry, so adding a field without listing it fails here.
  EXPECT_EQ(entries.size(), sizeof(PerfCounters) / sizeof(std::uint64_t));
}

TEST_F(PerfCountersTest, EnabledCaptureFlowsIntoAggregate) {
  set_perf_capture_enabled(true);
  {
    ScopedPerfCapture capture;
    EXPECT_TRUE(perf_capture_active());
    perf_add(&PerfCounters::heap_upserts);
    perf_add(&PerfCounters::heap_upserts);
    perf_add(&PerfCounters::node_ticks, 5);
    {
      ScopedPerfTimer timer(&PerfCounters::tick_wall_ns);
    }
  }
  EXPECT_FALSE(perf_capture_active());
  const PerfCounters aggregate = take_perf_aggregate();
  EXPECT_EQ(aggregate.heap_upserts, 2u);
  EXPECT_EQ(aggregate.node_ticks, 5u);
  EXPECT_GT(aggregate.tick_wall_ns, 0u);
  // take_perf_aggregate() is read-and-clear.
  EXPECT_EQ(take_perf_aggregate().heap_upserts, 0u);
}

TEST_F(PerfCountersTest, NestedCapturesRestoreTheOuterScopeAndBothFlush) {
  set_perf_capture_enabled(true);
  {
    ScopedPerfCapture outer;
    perf_add(&PerfCounters::exchange_rounds);
    {
      ScopedPerfCapture inner;
      perf_add(&PerfCounters::exchange_rounds, 2);
    }
    // Only the inner scope has flushed so far; the outer one is live again
    // and keeps accumulating.
    EXPECT_TRUE(perf_capture_active());
    EXPECT_EQ(take_perf_aggregate().exchange_rounds, 2u);
    perf_add(&PerfCounters::exchange_rounds, 4);
  }
  // Outer flush: its own adds (1 + 4), independent of the drained inner.
  EXPECT_EQ(take_perf_aggregate().exchange_rounds, 5u);
}

TEST_F(PerfCountersTest, ConcurrentCapturesSumWithoutLoss) {
  set_perf_capture_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      ScopedPerfCapture capture;  // thread-local: no contention on the hot path
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        perf_add(&PerfCounters::heap_best_queries);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(take_perf_aggregate().heap_best_queries, kThreads * kAddsPerThread);
}

TEST_F(PerfCountersTest, TimerOutsideCaptureIsANoOp) {
  set_perf_capture_enabled(true);
  {
    ScopedPerfTimer timer(&PerfCounters::exchange_wall_ns);  // no active capture
  }
  EXPECT_EQ(take_perf_aggregate().exchange_wall_ns, 0u);
}

}  // namespace
}  // namespace vrc::metrics
