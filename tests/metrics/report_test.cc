#include "metrics/report.h"

#include <gtest/gtest.h>

namespace vrc::metrics {
namespace {

TEST(ReductionTest, ComputesRelativeImprovement) {
  EXPECT_DOUBLE_EQ(reduction(100.0, 70.0), 0.3);
  EXPECT_DOUBLE_EQ(reduction(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(reduction(100.0, 120.0), -0.2);
}

TEST(ReductionTest, ZeroBaselineIsZero) { EXPECT_DOUBLE_EQ(reduction(0.0, 5.0), 0.0); }

TEST(CompletedJobTest, SlowdownIsWallOverCpu) {
  cluster::CompletedJob job;
  job.submit_time = 10.0;
  job.completion_time = 40.0;
  job.cpu_seconds = 10.0;
  EXPECT_DOUBLE_EQ(job.wall_clock(), 30.0);
  EXPECT_DOUBLE_EQ(job.slowdown(), 3.0);
}

TEST(CompletedJobTest, ZeroCpuSlowdownIsOne) {
  cluster::CompletedJob job;
  job.submit_time = 0.0;
  job.completion_time = 5.0;
  job.cpu_seconds = 0.0;
  EXPECT_DOUBLE_EQ(job.slowdown(), 1.0);
}

TEST(DescribeTest, MentionsKeyQuantities) {
  RunReport report;
  report.policy = "V-Reconfiguration";
  report.trace = "SPEC-Trace-3";
  report.jobs_submitted = 578;
  report.jobs_completed = 578;
  report.total_execution = 1234.5;
  report.avg_slowdown = 2.5;
  report.policy_stats = {{"reservations_started", 7.0}};
  const std::string text = describe(report);
  EXPECT_NE(text.find("V-Reconfiguration"), std::string::npos);
  EXPECT_NE(text.find("SPEC-Trace-3"), std::string::npos);
  EXPECT_NE(text.find("578"), std::string::npos);
  EXPECT_NE(text.find("reservations_started"), std::string::npos);
}

TEST(DescribeTest, OmitsEmptyPolicyStats) {
  RunReport report;
  report.policy = "G-Loadsharing";
  const std::string text = describe(report);
  EXPECT_EQ(text.find("policy:"), std::string::npos);
}

}  // namespace
}  // namespace vrc::metrics
