#include "metrics/collector.h"

#include <gtest/gtest.h>

#include "core/g_load_sharing.h"

namespace vrc::metrics {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using workload::JobId;
using workload::JobSpec;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  workload::NodeId home = 0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.memory = workload::MemoryProfile::constant(demand);
  return spec;
}

TEST(BalanceSkewTest, UniformLoadHasZeroSkew) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  for (JobId i = 1; i <= 4; ++i) {
    cluster.submit_job(make_spec(i, 0.0, 100.0, megabytes(10), i - 1));
  }
  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(balance_skew(cluster), 0.0);
}

TEST(BalanceSkewTest, ImbalanceYieldsPositiveSkew) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  cluster.submit_job(make_spec(1, 0.0, 100.0, megabytes(10), 0));
  cluster.submit_job(make_spec(2, 0.0, 100.0, megabytes(10), 0));
  sim.run_until(0.5);
  // Node 0 has 2 jobs, node 1 has 0 -> population stddev of {2, 0} = 1.
  EXPECT_DOUBLE_EQ(balance_skew(cluster), 1.0);
}

TEST(BalanceSkewTest, ReservedNodesExcluded) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(3), policy);
  cluster.submit_job(make_spec(1, 0.0, 100.0, megabytes(10), 0));
  cluster.submit_job(make_spec(2, 0.0, 100.0, megabytes(10), 1));
  sim.run_until(0.5);
  cluster.set_reserved(2, true);
  // Remaining nodes both hold one job.
  EXPECT_DOUBLE_EQ(balance_skew(cluster), 0.0);
}

TEST(CollectorTest, ReportCountsAndBreakdown) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  Collector collector(cluster);
  for (JobId i = 1; i <= 6; ++i) {
    cluster.submit_job(make_spec(i, 0.0, 3.0, megabytes(20), i % 4));
  }
  sim.run_until(1000.0);
  RunReport report = collector.report("trace-x", "policy-y");
  EXPECT_EQ(report.trace, "trace-x");
  EXPECT_EQ(report.policy, "policy-y");
  EXPECT_EQ(report.jobs_submitted, 6u);
  EXPECT_EQ(report.jobs_completed, 6u);
  EXPECT_NEAR(report.total_cpu, 18.0, 0.3);
  EXPECT_GT(report.makespan, 2.9);
  EXPECT_GE(report.avg_slowdown, 1.0);
  EXPECT_GE(report.p95_slowdown, report.median_slowdown);
  EXPECT_GE(report.max_slowdown, report.p95_slowdown);
}

TEST(CollectorTest, SamplersStopAtFinish) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(2), policy);
  Collector collector(cluster);
  cluster.submit_job(make_spec(1, 0.0, 5.0, megabytes(20)));
  // run() terminates only if the collector's periodic samplers stop.
  sim.run();
  EXPECT_TRUE(cluster.finished());
  RunReport report = collector.report("t", "p");
  ASSERT_FALSE(report.idle_memory_mb.empty());
  // ~5 s of simulated time sampled at 1 s (the final sample races the
  // finish event, so allow one either way).
  EXPECT_GE(report.idle_memory_mb[0].samples, 4u);
  EXPECT_LE(report.idle_memory_mb[0].samples, 6u);
}

TEST(CollectorTest, IdleMemoryReflectsResidentJobs) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  Collector collector(cluster);
  cluster.submit_job(make_spec(1, 0.0, 30.0, megabytes(100), 0));
  sim.run_until(20.0);
  collector.stop();
  RunReport report = collector.report("t", "p");
  const double total_user = 2.0 * to_megabytes(cluster.node(0).user_memory());
  EXPECT_NEAR(report.avg_idle_memory_mb, total_user - 100.0, 6.0);
}

TEST(CollectorTest, MultipleIntervalsProduceOneSignalEach) {
  sim::Simulator sim;
  core::GLoadSharing policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(2), policy);
  CollectorOptions options;
  options.sampling_intervals = {1.0, 10.0};
  Collector collector(cluster, options);
  cluster.submit_job(make_spec(1, 0.0, 30.0, megabytes(50)));
  sim.run_until(30.5);
  collector.stop();
  RunReport report = collector.report("t", "p");
  ASSERT_EQ(report.idle_memory_mb.size(), 2u);
  ASSERT_EQ(report.balance_skew.size(), 2u);
  EXPECT_GT(report.idle_memory_mb[0].samples, report.idle_memory_mb[1].samples);
}

}  // namespace
}  // namespace vrc::metrics
