// Shared bit-exact report fingerprint for determinism tests.
//
// Hashes every completed-job record (ids, nodes, and the raw bit patterns of
// all accounting doubles) plus the report aggregates into one FNV-1a value.
// Any change to event ordering, tick accounting, or policy decisions shifts
// the fingerprint, so goldens over this hash pin byte-identical behavior.
#pragma once

#include <cstdint>
#include <cstring>

#include "metrics/report.h"

namespace vrc::testutil {

class Fnv1a {
 public:
  void mix_u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }

  void mix_double(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix_u64(bits);
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

inline std::uint64_t fingerprint(const metrics::RunReport& report) {
  Fnv1a h;
  h.mix_u64(report.jobs_submitted);
  h.mix_u64(report.jobs_completed);
  h.mix_double(report.makespan);
  h.mix_double(report.total_execution);
  h.mix_double(report.total_cpu);
  h.mix_double(report.total_page);
  h.mix_double(report.total_queue);
  h.mix_double(report.total_migration);
  h.mix_double(report.total_faults);
  h.mix_u64(report.migrations);
  h.mix_u64(report.remote_submits);
  h.mix_u64(report.local_placements);
  for (const cluster::CompletedJob& job : report.jobs) {
    h.mix_u64(job.id);
    h.mix_u64(job.final_node);
    h.mix_u64(static_cast<std::uint64_t>(job.migrations));
    h.mix_u64(static_cast<std::uint64_t>(job.remote_submits));
    h.mix_double(job.submit_time);
    h.mix_double(job.completion_time);
    h.mix_double(job.cpu_seconds);
    h.mix_double(job.t_cpu);
    h.mix_double(job.t_page);
    h.mix_double(job.t_queue);
    h.mix_double(job.t_mig);
    h.mix_double(job.faults);
  }
  return h.value();
}

// Goldens captured from the pre-event-core-rewrite engine (commit ff28ab2)
// for the fig1-style fingerprint run: 120 SPEC-group jobs, 900 s window,
// 8 nodes, trace seed 7, paper cluster 1.
inline constexpr std::uint64_t kGLoadSharingGolden = 0x1e9ff04e3355e032ull;
inline constexpr std::uint64_t kVReconfigurationGolden = 0xb6c978dcbf3d694cull;

}  // namespace vrc::testutil
