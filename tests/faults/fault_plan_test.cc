// FaultPlan: validation of explicit failure windows and materialization of
// the full deterministic schedule (explicit entries + the seeded per-node
// exponential MTBF/MTTR generator). The generator runs on its own RNG stream,
// so the same fault_seed must yield the same schedule regardless of the
// workload seed (matched-pairs comparisons).
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <string>

#include "cluster/config.h"

namespace vrc::faults {
namespace {

using cluster::ClusterConfig;

ClusterConfig no_generator_config(std::size_t nodes = 4) {
  ClusterConfig config = ClusterConfig::paper_cluster1(nodes);
  config.fault_mtbf = 0.0;  // explicit entries only
  return config;
}

ClusterConfig generator_config(std::size_t nodes = 4, std::uint64_t fault_seed = 99) {
  ClusterConfig config = ClusterConfig::paper_cluster1(nodes);
  config.fault_mtbf = 500.0;
  config.fault_mttr = 50.0;
  config.fault_seed = fault_seed;
  return config;
}

TEST(FaultPlanValidateTest, AcceptsDisjointWindows) {
  std::string error;
  EXPECT_TRUE(FaultPlan::validate({{0, 10.0, 5.0}, {0, 15.0, 5.0}, {1, 10.0, 100.0}},
                                  /*num_nodes=*/4, &error))
      << error;
  EXPECT_TRUE(FaultPlan::validate({}, 4, &error)) << error;
}

TEST(FaultPlanValidateTest, RejectsOutOfRangeNode) {
  std::string error;
  EXPECT_FALSE(FaultPlan::validate({{7, 10.0, 5.0}}, /*num_nodes=*/4, &error));
  EXPECT_NE(error.find("node 7 out of range (cluster has 4 nodes)"), std::string::npos)
      << error;
}

TEST(FaultPlanValidateTest, RejectsBadTimes) {
  std::string error;
  EXPECT_FALSE(FaultPlan::validate({{1, -2.0, 5.0}}, 4, &error));
  EXPECT_NE(error.find("crash time -2 must be >= 0"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::validate({{1, 2.0, 0.0}}, 4, &error));
  EXPECT_NE(error.find("duration 0 must be > 0"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::validate({{1, 2.0, -1.0}}, 4, &error));
  EXPECT_NE(error.find("must be > 0"), std::string::npos) << error;
}

TEST(FaultPlanValidateTest, RejectsOverlapOnlyOnTheSameNode) {
  // Same interval on two different nodes is fine; on one node it is almost
  // certainly a scenario typo and must be rejected, not silently merged.
  std::string error;
  EXPECT_TRUE(FaultPlan::validate({{0, 100.0, 60.0}, {1, 100.0, 60.0}}, 4, &error)) << error;
  EXPECT_FALSE(FaultPlan::validate({{2, 100.0, 60.0}, {2, 120.0, 10.0}}, 4, &error));
  EXPECT_NE(error.find("node 2 windows at t=100 and t=120 overlap"), std::string::npos)
      << error;
  // Entry order must not matter: the check sorts per node first.
  EXPECT_FALSE(FaultPlan::validate({{2, 120.0, 10.0}, {2, 100.0, 60.0}}, 4, &error));
}

TEST(FaultPlanMaterializeTest, EmptyInputsYieldEmptyPlan) {
  const FaultPlan plan = FaultPlan::materialize({}, no_generator_config(), 1000.0);
  EXPECT_TRUE(plan.empty());
  // Generator configured but zero horizon: still nothing to schedule.
  EXPECT_TRUE(FaultPlan::materialize({}, generator_config(), 0.0).empty());
}

TEST(FaultPlanMaterializeTest, KeepsExplicitEntriesSortedWhenGeneratorOff) {
  const FaultPlan plan = FaultPlan::materialize({{2, 300.0, 10.0}, {0, 100.0, 60.0}},
                                                no_generator_config(), 1000.0);
  ASSERT_EQ(plan.windows().size(), 2u);
  EXPECT_EQ(plan.windows()[0], (FaultEntry{0, 100.0, 60.0}));
  EXPECT_EQ(plan.windows()[1], (FaultEntry{2, 300.0, 10.0}));
}

TEST(FaultPlanMaterializeTest, MergesOverlappingAndTouchingWindows) {
  // An explicit window landing inside or against another: the node is simply
  // down for the union. (validate() rejects this for scenario input, but
  // materialize() must still merge because generated windows can collide
  // with explicit ones.)
  const FaultPlan plan = FaultPlan::materialize(
      {{1, 100.0, 60.0}, {1, 130.0, 100.0}, {1, 230.0, 10.0}, {1, 500.0, 5.0}},
      no_generator_config(), 1000.0);
  ASSERT_EQ(plan.windows().size(), 2u);
  EXPECT_EQ(plan.windows()[0], (FaultEntry{1, 100.0, 140.0}));
  EXPECT_EQ(plan.windows()[1], (FaultEntry{1, 500.0, 5.0}));
}

TEST(FaultPlanMaterializeTest, GeneratorProducesWellFormedSchedule) {
  const SimTime horizon = 10000.0;
  const FaultPlan plan = FaultPlan::materialize({}, generator_config(4), horizon);
  ASSERT_FALSE(plan.empty());
  SimTime last_end = -1.0;
  NodeId last_node = 0;
  for (const FaultEntry& window : plan.windows()) {
    EXPECT_LT(static_cast<std::size_t>(window.node), 4u);
    EXPECT_GE(window.at, 0.0);
    EXPECT_GT(window.duration, 0.0);
    EXPECT_LT(window.at, horizon);  // crashes only before the horizon
    if (window.node == last_node) {
      EXPECT_GT(window.at, last_end);  // sorted and disjoint per node
    }
    last_node = window.node;
    last_end = window.at + window.duration;
  }
}

TEST(FaultPlanMaterializeTest, SameSeedSameSchedule) {
  const FaultPlan a = FaultPlan::materialize({{0, 5.0, 1.0}}, generator_config(), 5000.0);
  const FaultPlan b = FaultPlan::materialize({{0, 5.0, 1.0}}, generator_config(), 5000.0);
  EXPECT_EQ(a.windows(), b.windows());
}

TEST(FaultPlanMaterializeTest, FaultSeedIsIndependentOfWorkloadSeed) {
  // Matched pairs: changing the cluster's workload/paging seed must not move
  // the failure schedule as long as fault_seed is pinned.
  ClusterConfig a = generator_config(4, 99);
  ClusterConfig b = generator_config(4, 99);
  a.seed = 1;
  b.seed = 123456;
  EXPECT_EQ(FaultPlan::materialize({}, a, 5000.0).windows(),
            FaultPlan::materialize({}, b, 5000.0).windows());

  // Different fault seeds draw different schedules.
  ClusterConfig c = generator_config(4, 100);
  EXPECT_NE(FaultPlan::materialize({}, a, 5000.0).windows(),
            FaultPlan::materialize({}, c, 5000.0).windows());
}

TEST(FaultPlanMaterializeTest, ZeroFaultSeedDerivesFromClusterSeed) {
  ClusterConfig a = generator_config(4, 0);
  ClusterConfig b = generator_config(4, 0);
  a.seed = 1;
  b.seed = 2;
  // Derived stream: same cluster seed reproduces, different seed diverges.
  EXPECT_EQ(FaultPlan::materialize({}, a, 5000.0).windows(),
            FaultPlan::materialize({}, a, 5000.0).windows());
  EXPECT_NE(FaultPlan::materialize({}, a, 5000.0).windows(),
            FaultPlan::materialize({}, b, 5000.0).windows());
}

}  // namespace
}  // namespace vrc::faults
