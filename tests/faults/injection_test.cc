// End-to-end fault injection: FaultInjector driving Cluster::fail_node /
// recover_node through a FaultPlan. Covers the kill/restart lifecycle under
// both restart policies, transfer failures in every direction (remote submit
// to a dead destination, migration source and destination dying mid-flight),
// the incarnation guard on in-flight completions, reservation abandonment in
// V-Reconfiguration, and the determinism contracts (same-seed identity with
// faults; empty plan bit-identical to the fingerprint goldens).
#include "faults/injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "../common/report_fingerprint.h"
#include "cluster/cluster.h"
#include "core/experiment.h"
#include "core/v_reconfiguration.h"
#include "workload/trace_generator.h"

namespace vrc {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::RunningJob;
using faults::FaultEntry;
using faults::FaultInjector;
using faults::FaultPlan;
using testutil::fingerprint;
using testutil::kGLoadSharingGolden;
using workload::JobId;
using workload::JobSpec;
using workload::MemoryProfile;
using workload::NodeId;

JobSpec make_spec(JobId id, SimTime submit, double cpu_seconds, Bytes demand,
                  NodeId home = 0) {
  JobSpec spec;
  spec.id = id;
  spec.program = "test";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.memory = MemoryProfile::constant(demand);
  return spec;
}

/// Home placement with a periodic pending retry — the minimal policy shape
/// the kLose restart path depends on. Optionally routes the *first*
/// placement of each job through place_remote (to exercise transfer faults).
class HomePolicy : public cluster::SchedulerPolicy {
 public:
  const char* name() const override { return "home-test"; }

  void on_job_arrival(Cluster& cluster, RunningJob& job) override {
    ++arrivals;
    if (remote_target >= 0 && job.remote_submits == 0 && arrivals == 1) {
      cluster.place_remote(job, static_cast<NodeId>(remote_target));
      return;
    }
    try_place(cluster, job);
  }
  void on_periodic(Cluster& cluster) override {
    for (RunningJob* job : cluster.pending_jobs()) try_place(cluster, *job);
  }
  void on_node_failed(Cluster&, NodeId node) override { failed_nodes.push_back(node); }
  void on_node_recovered(Cluster&, NodeId node) override { recovered_nodes.push_back(node); }
  void on_transfer_failed(Cluster&, RunningJob& job) override {
    transfer_failed_ids.push_back(job.id());
  }

  int remote_target = -1;
  int arrivals = 0;
  std::vector<NodeId> failed_nodes;
  std::vector<NodeId> recovered_nodes;
  std::vector<JobId> transfer_failed_ids;

 private:
  void try_place(Cluster& cluster, RunningJob& job) {
    if (!cluster.node(job.home_node).failed()) cluster.place_local(job, job.home_node);
  }
};

FaultPlan explicit_plan(const std::vector<FaultEntry>& entries, const ClusterConfig& config) {
  return FaultPlan::materialize(entries, config, /*horizon=*/0.0);
}

TEST(FaultInjectionTest, CrashKillsResidentJobsAndRecoveryRestoresService) {
  sim::Simulator sim;
  HomePolicy policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  // Node 0 down during [2, 5); the 10 s job placed there at t=0 is killed
  // with ~2 s of work lost and restarts from zero after recovery.
  const FaultPlan plan = explicit_plan({{0, 2.0, 3.0}}, config);
  FaultInjector injector(sim, cluster, plan);
  EXPECT_EQ(injector.windows_scheduled(), 1u);
  cluster.submit_job(make_spec(1, 0.0, 10.0, megabytes(10)));

  sim.run_until(3.0);
  EXPECT_TRUE(cluster.node(0).failed());
  EXPECT_FALSE(cluster.node(0).accepts_new_job());
  EXPECT_EQ(cluster.node(0).active_jobs(), 0);
  EXPECT_EQ(cluster.node_crashes(), 1u);
  EXPECT_EQ(cluster.jobs_killed(), 1u);
  EXPECT_NEAR(cluster.work_lost_cpu_seconds(), 2.0, 0.1);
  EXPECT_NEAR(cluster.downtime_node_seconds(3.0), 1.0, 1e-9);
  EXPECT_EQ(policy.failed_nodes, (std::vector<NodeId>{0}));
  ASSERT_EQ(cluster.pending_count(), 1u);
  RunningJob* job = cluster.pending_jobs()[0];
  EXPECT_EQ(job->restarts, 1);
  EXPECT_EQ(job->incarnation, 1);
  EXPECT_DOUBLE_EQ(job->cpu_done, 0.0);

  sim.run_until(6.0);
  EXPECT_FALSE(cluster.node(0).failed());
  EXPECT_EQ(cluster.node_recoveries(), 1u);
  EXPECT_EQ(policy.recovered_nodes, (std::vector<NodeId>{0}));
  EXPECT_EQ(cluster.node(0).active_jobs(), 1);  // periodic retry re-placed it

  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const cluster::CompletedJob& record = cluster.completed()[0];
  EXPECT_EQ(record.restarts, 1);
  // Killed at 2 (2 s of work lost), down until 5, re-placed on the next
  // periodic pulse, then the full 10 s again.
  EXPECT_GT(record.completion_time, 14.5);
  EXPECT_LT(record.completion_time, 16.5);
  EXPECT_NEAR(record.t_queue, 3.2, 0.5);
  EXPECT_NEAR(cluster.downtime_node_seconds(sim.now()), 3.0, 1e-9);
}

TEST(FaultInjectionTest, LoseWaitsForRetryButResubmitReentersArrivalPath) {
  for (const char* restart : {"lose", "resubmit"}) {
    sim::Simulator sim;
    HomePolicy policy;
    ClusterConfig config = ClusterConfig::paper_cluster1(2);
    config.fault_restart = restart;
    Cluster cluster(sim, config, policy);
    const FaultPlan plan = explicit_plan({{0, 2.0, 3.0}}, config);
    FaultInjector injector(sim, cluster, plan);
    cluster.submit_job(make_spec(1, 0.0, 10.0, megabytes(10)));
    sim.run_until(3.0);
    // Under resubmit the killed job re-enters on_job_arrival immediately
    // (node 0 is still down, so it stays pending either way); under lose the
    // policy only ever sees the original arrival.
    EXPECT_EQ(policy.arrivals, std::string(restart) == "resubmit" ? 2 : 1)
        << restart;
    EXPECT_EQ(cluster.pending_count(), 1u) << restart;
    sim.run_until(100.0);
    ASSERT_EQ(cluster.completed().size(), 1u) << restart;
    EXPECT_EQ(cluster.completed()[0].restarts, 1) << restart;
  }
}

TEST(FaultInjectionTest, RemoteSubmitFailsWhenDestinationDiesInFlight) {
  sim::Simulator sim;
  HomePolicy policy;
  policy.remote_target = 1;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  // Node 1 blinks during [0.05, 0.07) — down and back *before* the remote
  // submission lands at t = 0.1. The cleared incoming reservation is the
  // token that tells the completion the destination died while the job was
  // in flight; mere liveness at arrival time is not enough.
  const FaultPlan plan = explicit_plan({{1, 0.05, 0.02}}, config);
  FaultInjector injector(sim, cluster, plan);
  cluster.submit_job(make_spec(1, 0.0, 5.0, megabytes(10), /*home=*/0));

  sim.run_until(0.2);
  EXPECT_FALSE(cluster.node(1).failed());
  EXPECT_EQ(cluster.transfer_failures(), 1u);
  EXPECT_EQ(policy.transfer_failed_ids, (std::vector<JobId>{1}));
  EXPECT_EQ(cluster.node(1).incoming_count(), 0);
  EXPECT_EQ(cluster.node(1).active_jobs(), 0);
  EXPECT_EQ(cluster.jobs_killed(), 0u);  // the job itself was never resident

  sim.run_until(50.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const cluster::CompletedJob& record = cluster.completed()[0];
  EXPECT_EQ(record.final_node, 0u);  // retried at home
  EXPECT_EQ(record.remote_submits, 0);
  EXPECT_EQ(record.restarts, 0);
}

TEST(FaultInjectionTest, MigrationDestinationFailureReturnsJobToSource) {
  sim::Simulator sim;
  HomePolicy policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  // 10 MB image over 10 Mbps: the migration started at t=1 is in flight for
  // ~8.5 s; node 1 fails at t=3 (recovering at 4), so the arrival finds its
  // reservation gone and the job resumes on node 0.
  const FaultPlan plan = explicit_plan({{1, 3.0, 1.0}}, config);
  FaultInjector injector(sim, cluster, plan);
  cluster.submit_job(make_spec(1, 0.0, 30.0, megabytes(10)));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.start_migration(0, 1, 1));

  sim.run_until(20.0);
  EXPECT_EQ(cluster.transfer_failures(), 1u);
  EXPECT_EQ(policy.transfer_failed_ids, (std::vector<JobId>{1}));
  EXPECT_EQ(cluster.node(0).active_jobs(), 1);  // back to running at the source
  EXPECT_EQ(cluster.node(1).active_jobs(), 0);
  EXPECT_EQ(cluster.node(1).incoming_count(), 0);

  sim.run_until(100.0);
  ASSERT_EQ(cluster.completed().size(), 1u);
  const cluster::CompletedJob& record = cluster.completed()[0];
  EXPECT_EQ(record.final_node, 0u);
  EXPECT_EQ(record.migrations, 0);
  EXPECT_EQ(record.restarts, 0);
  // The failed attempt still cost wall-clock migration time.
  EXPECT_GT(record.t_mig, 5.0);
}

TEST(FaultInjectionTest, MigrationSourceFailureKillsJobAndAbortsCompletion) {
  sim::Simulator sim;
  HomePolicy policy;
  ClusterConfig config = ClusterConfig::paper_cluster1(2);
  Cluster cluster(sim, config, policy);
  // The *source* dies at t=3 while the image is in flight: the job is killed
  // (restart from zero), node 1's incoming reservation is released, and the
  // completion firing at ~9.5 must abort via the incarnation guard — by then
  // the restarted job is running on node 0 again, so only the incarnation
  // mismatch distinguishes it from the migrating original.
  const FaultPlan plan = explicit_plan({{0, 3.0, 1.0}}, config);
  FaultInjector injector(sim, cluster, plan);
  cluster.submit_job(make_spec(1, 0.0, 30.0, megabytes(10)));
  sim.run_until(1.0);
  ASSERT_TRUE(cluster.start_migration(0, 1, 1));

  sim.run_until(3.5);
  EXPECT_EQ(cluster.jobs_killed(), 1u);
  EXPECT_EQ(cluster.node(1).incoming_count(), 0);
  ASSERT_EQ(cluster.pending_count(), 1u);
  EXPECT_EQ(cluster.pending_jobs()[0]->restarts, 1);

  sim.run_until(100.0);
  EXPECT_EQ(cluster.transfer_failures(), 0u);  // aborted, not "failed at arrival"
  ASSERT_EQ(cluster.completed().size(), 1u);
  const cluster::CompletedJob& record = cluster.completed()[0];
  EXPECT_EQ(record.final_node, 0u);
  EXPECT_EQ(record.migrations, 0);
  EXPECT_EQ(record.restarts, 1);
  // Only the in-flight stretch [1, 3] counts as migration time.
  EXPECT_NEAR(record.t_mig, 2.0, 0.3);
}

TEST(FaultInjectionTest, VReconfigurationAbandonsReservationOnFailedNode) {
  sim::Simulator sim;
  core::VReconfiguration policy;
  Cluster cluster(sim, ClusterConfig::paper_cluster1(4), policy);
  // The blocking scenario of tests/core/v_reconfiguration_test.cc: two big
  // jobs collide on node 0 and a reservation forms on some other node.
  auto surprise = [](JobId id, Bytes peak, NodeId home, double touch) {
    JobSpec spec = make_spec(id, 0.0, 400.0, peak, home);
    spec.touch_rate = touch;
    spec.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {0.1, peak}});
    return spec;
  };
  cluster.submit_job(surprise(1, megabytes(250), 0, 300.0));
  cluster.submit_job(surprise(2, megabytes(250), 0, 300.0));
  JobId id = 10;
  for (NodeId node = 1; node <= 3; ++node) {
    cluster.submit_job(make_spec(id++, 0.0, 60.0, megabytes(120), node));
    cluster.submit_job(make_spec(id++, 0.0, 120.0, megabytes(120), node));
  }

  SimTime t = 0.0;
  while (t < 400.0 && policy.active_reservations() == 0) {
    t += 5.0;
    sim.run_until(t);
  }
  ASSERT_GE(policy.active_reservations(), 1);
  NodeId reserved = workload::kInvalidNode;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(static_cast<NodeId>(i)).reserved()) reserved = static_cast<NodeId>(i);
  }
  ASSERT_NE(reserved, workload::kInvalidNode);

  const auto before = policy.reservations_failed();
  cluster.fail_node(reserved);
  // The reservation is abandoned immediately — no drain can ever finish on a
  // dead node — and the flag is cleared so recovery starts clean.
  EXPECT_EQ(policy.reservations_failed(), before + 1);
  EXPECT_FALSE(cluster.node(reserved).reserved());

  cluster.recover_node(reserved);
  sim.run_until(30000.0);
  EXPECT_TRUE(cluster.finished());
  EXPECT_EQ(policy.active_reservations(), 0);
}

TEST(FaultInjectionTest, SameSeedRunsWithFaultsAreBitIdentical) {
  workload::TraceParams params;
  params.name = "fault-identity";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 40;
  params.duration = 300.0;
  params.num_nodes = 4;
  params.seed = 5;
  const workload::Trace trace = workload::generate_trace(params);
  ClusterConfig config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 4);
  config.fault_mtbf = 400.0;
  config.fault_mttr = 30.0;
  config.fault_seed = 17;
  config.fault_restart = "resubmit";
  core::ExperimentOptions options;
  options.fault_entries = {{1, 50.0, 20.0}};
  options.max_sim_time = 20000.0;

  auto run_once = [&] {
    core::GLoadSharing policy;
    return core::run_experiment(trace, config, policy, options);
  };
  const metrics::RunReport a = run_once();
  const metrics::RunReport b = run_once();
  ASSERT_GT(a.node_crashes, 0u);  // the schedule actually fired
  EXPECT_LT(a.availability, 1.0);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_restarts, b.job_restarts);
  EXPECT_EQ(a.transfer_failures, b.transfer_failures);
  EXPECT_DOUBLE_EQ(a.work_lost_cpu_seconds, b.work_lost_cpu_seconds);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
}

TEST(FaultInjectionTest, EmptyPlanKeepsFingerprintGoldens) {
  // Fault knobs that do not produce windows (mtbf = 0, no entries) must
  // leave the run bit-identical to the pre-fault-subsystem goldens: no
  // injector is constructed and no event-stream perturbation occurs.
  workload::TraceParams params;
  params.name = "fingerprint-trace";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = 120;
  params.duration = 900.0;
  params.num_nodes = 8;
  params.seed = 7;
  const workload::Trace trace = workload::generate_trace(params);
  ClusterConfig config = core::paper_cluster_for(workload::WorkloadGroup::kSpec, 8);
  config.fault_mttr = 120.0;  // inert without fault_mtbf
  config.fault_seed = 123;
  config.fault_restart = "resubmit";
  core::GLoadSharing policy;
  const metrics::RunReport report = core::run_experiment(trace, config, policy);
  EXPECT_EQ(report.node_crashes, 0u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_EQ(fingerprint(report), kGLoadSharingGolden)
      << "actual fingerprint: 0x" << std::hex << fingerprint(report);
}

}  // namespace
}  // namespace vrc
