#include "workload/arrival_source.h"

#include <gtest/gtest.h>

#include "workload/trace_generator.h"
#include "workload/trace_spec.h"

namespace vrc::workload {
namespace {

void expect_job_equal(const JobSpec& a, const JobSpec& b, std::size_t index) {
  EXPECT_EQ(a.id, b.id) << "job " << index;
  EXPECT_EQ(a.program, b.program) << "job " << index;
  EXPECT_DOUBLE_EQ(a.submit_time, b.submit_time) << "job " << index;
  EXPECT_EQ(a.home_node, b.home_node) << "job " << index;
  EXPECT_DOUBLE_EQ(a.cpu_seconds, b.cpu_seconds) << "job " << index;
  EXPECT_DOUBLE_EQ(a.touch_rate, b.touch_rate) << "job " << index;
  ASSERT_EQ(a.memory.points().size(), b.memory.points().size()) << "job " << index;
  for (std::size_t p = 0; p < a.memory.points().size(); ++p) {
    EXPECT_DOUBLE_EQ(a.memory.points()[p].progress, b.memory.points()[p].progress)
        << "job " << index << " point " << p;
    EXPECT_EQ(a.memory.points()[p].demand, b.memory.points()[p].demand)
        << "job " << index << " point " << p;
  }
}

TEST(MaterializedTraceSourceTest, StreamsJobsInOrder) {
  Trace trace = standard_trace(WorkloadGroup::kSpec, 1, 8);
  MaterializedTraceSource source(trace);
  ASSERT_TRUE(source.total_jobs().has_value());
  EXPECT_EQ(*source.total_jobs(), trace.size());
  EXPECT_EQ(source.name(), trace.name());
  EXPECT_EQ(source.group(), trace.group());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::optional<SimTime> when = source.peek_time();
    ASSERT_TRUE(when.has_value()) << "job " << i;
    EXPECT_DOUBLE_EQ(*when, trace.jobs()[i].submit_time);
    std::optional<JobSpec> job = source.next();
    ASSERT_TRUE(job.has_value()) << "job " << i;
    expect_job_equal(*job, trace.jobs()[i], i);
  }
  EXPECT_FALSE(source.peek_time().has_value());
  EXPECT_FALSE(source.next().has_value());
}

TEST(GeneratedStreamSourceTest, MatchesGenerateTraceJobForJob) {
  // The core streaming contract: the lazy source must replay generate_trace's
  // RNG stream bit-for-bit, for every standard shape of both groups.
  for (WorkloadGroup group : {WorkloadGroup::kSpec, WorkloadGroup::kApps}) {
    for (int index = 1; index <= 5; ++index) {
      TraceSpec spec = TraceSpec::standard(group, index);
      Trace trace = spec.build(32);
      std::unique_ptr<ArrivalSource> source = spec.make_source(32);
      ASSERT_EQ(source->name(), trace.name());
      ASSERT_EQ(source->group(), trace.group());
      ASSERT_TRUE(source->total_jobs().has_value());
      ASSERT_EQ(*source->total_jobs(), trace.size());
      for (std::size_t i = 0; i < trace.size(); ++i) {
        std::optional<JobSpec> job = source->next();
        ASSERT_TRUE(job.has_value()) << trace.name() << " job " << i;
        expect_job_equal(*job, trace.jobs()[i], i);
      }
      EXPECT_FALSE(source->next().has_value()) << trace.name();
    }
  }
}

TEST(GeneratedStreamSourceTest, MatchesCustomParams) {
  TraceParams params;
  params.name = "custom";
  params.group = WorkloadGroup::kApps;
  params.num_jobs = 64;
  params.duration = 600.0;
  params.num_nodes = 4;
  params.seed = 1234;
  Trace trace = generate_trace(params);
  GeneratedStreamSource source(params);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::optional<JobSpec> job = source.next();
    ASSERT_TRUE(job.has_value()) << "job " << i;
    expect_job_equal(*job, trace.jobs()[i], i);
  }
  EXPECT_FALSE(source.next().has_value());
}

TEST(GeneratedStreamSourceTest, PeekIsStableAndMatchesNext) {
  TraceSpec spec = TraceSpec::standard(WorkloadGroup::kSpec, 2);
  std::unique_ptr<ArrivalSource> source = spec.make_source(8);
  while (std::optional<SimTime> when = source->peek_time()) {
    EXPECT_DOUBLE_EQ(*when, *source->peek_time());  // stable across calls
    std::optional<JobSpec> job = source->next();
    ASSERT_TRUE(job.has_value());
    EXPECT_DOUBLE_EQ(job->submit_time, *when);
  }
  EXPECT_FALSE(source->next().has_value());
}

TEST(MaterializeTest, RoundTripsThroughSource) {
  Trace trace = standard_trace(WorkloadGroup::kApps, 3, 16);
  MaterializedTraceSource source(trace);
  Trace copy = materialize(source, trace.duration());
  EXPECT_EQ(copy.name(), trace.name());
  EXPECT_EQ(copy.group(), trace.group());
  EXPECT_DOUBLE_EQ(copy.duration(), trace.duration());
  ASSERT_EQ(copy.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    expect_job_equal(copy.jobs()[i], trace.jobs()[i], i);
  }
}

}  // namespace
}  // namespace vrc::workload
