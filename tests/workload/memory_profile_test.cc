#include "workload/memory_profile.h"

#include <gtest/gtest.h>

namespace vrc::workload {
namespace {

TEST(MemoryProfileTest, ConstantProfile) {
  auto p = MemoryProfile::constant(megabytes(50));
  EXPECT_EQ(p.demand_at(0.0), megabytes(50));
  EXPECT_EQ(p.demand_at(0.5), megabytes(50));
  EXPECT_EQ(p.demand_at(1.0), megabytes(50));
  EXPECT_EQ(p.peak(), megabytes(50));
}

TEST(MemoryProfileTest, RampReachesPeakAtRampFraction) {
  auto p = MemoryProfile::ramp_to(megabytes(100), 0.1);
  EXPECT_EQ(p.demand_at(0.1), megabytes(100));
  EXPECT_EQ(p.demand_at(0.5), megabytes(100));
  EXPECT_EQ(p.demand_at(1.0), megabytes(100));
  EXPECT_LT(p.demand_at(0.0), megabytes(100));
}

TEST(MemoryProfileTest, RampInterpolatesLinearly) {
  auto p = MemoryProfile::ramp_to(megabytes(100), 0.5);
  const Bytes base = p.demand_at(0.0);
  const Bytes mid = p.demand_at(0.25);
  const Bytes expected = base + (megabytes(100) - base) / 2;
  EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(expected), 1024.0);
}

TEST(MemoryProfileTest, ClampsOutOfRangeProgress) {
  auto p = MemoryProfile::ramp_to(megabytes(80), 0.2);
  EXPECT_EQ(p.demand_at(-1.0), p.demand_at(0.0));
  EXPECT_EQ(p.demand_at(2.0), p.demand_at(1.0));
}

TEST(MemoryProfileTest, PhasedProfileInterpolates) {
  auto p =
      MemoryProfile::phased({{0.0, megabytes(10)}, {0.5, megabytes(30)}, {1.0, megabytes(20)}});
  EXPECT_EQ(p.demand_at(0.0), megabytes(10));
  EXPECT_EQ(p.demand_at(0.25), megabytes(20));
  EXPECT_EQ(p.demand_at(0.5), megabytes(30));
  EXPECT_EQ(p.demand_at(0.75), megabytes(25));
  EXPECT_EQ(p.demand_at(1.0), megabytes(20));
}

TEST(MemoryProfileTest, PeakIsMaxOverPhases) {
  auto p = MemoryProfile::phased({{0.0, megabytes(10)}, {0.4, megabytes(90)}, {1.0, megabytes(5)}});
  EXPECT_EQ(p.peak(), megabytes(90));
}

TEST(MemoryProfileTest, ScaledMultipliesEveryPoint) {
  auto p = MemoryProfile::phased({{0.0, megabytes(10)}, {1.0, megabytes(40)}});
  auto scaled = p.scaled(1.5);
  EXPECT_EQ(scaled.demand_at(0.0), megabytes(15));
  EXPECT_EQ(scaled.demand_at(1.0), megabytes(60));
  EXPECT_EQ(scaled.peak(), megabytes(60));
  // Original untouched.
  EXPECT_EQ(p.peak(), megabytes(40));
}

TEST(MemoryProfileTest, DemandIsMonotoneForMonotoneProfile) {
  auto p =
      MemoryProfile::phased({{0.0, megabytes(4)}, {0.05, megabytes(50)}, {1.0, megabytes(100)}});
  Bytes last = -1;
  for (double progress = 0.0; progress <= 1.0; progress += 0.01) {
    Bytes d = p.demand_at(progress);
    EXPECT_GE(d, last);
    last = d;
  }
}

TEST(MemoryProfileDeathTest, RejectsEmptyPointList) {
  EXPECT_DEATH(MemoryProfile::phased({}), "at least one point");
}

TEST(MemoryProfileDeathTest, RejectsUnsortedPoints) {
  EXPECT_DEATH(MemoryProfile::phased({{0.5, 10}, {0.2, 20}}), "strictly increasing");
}

TEST(MemoryProfileDeathTest, RejectsNegativeDemand) {
  EXPECT_DEATH(MemoryProfile::phased({{0.0, -5}}), "out of range");
}

}  // namespace
}  // namespace vrc::workload
