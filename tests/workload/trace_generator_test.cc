#include "workload/trace_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace vrc::workload {
namespace {

TEST(StandardTraceShapeTest, MatchesPaperSection332) {
  // The five published (sigma, mu, jobs, duration) tuples.
  const StandardTraceShape t1 = standard_trace_shape(1);
  EXPECT_EQ(t1.sigma, 4.0);
  EXPECT_EQ(t1.mu, 4.0);
  EXPECT_EQ(t1.num_jobs, 359u);
  EXPECT_EQ(t1.duration, 3586.0);

  const StandardTraceShape t3 = standard_trace_shape(3);
  EXPECT_EQ(t3.sigma, 3.0);
  EXPECT_EQ(t3.num_jobs, 578u);
  EXPECT_EQ(t3.duration, 3581.0);

  const StandardTraceShape t5 = standard_trace_shape(5);
  EXPECT_EQ(t5.mu, 1.5);
  EXPECT_EQ(t5.num_jobs, 777u);
  EXPECT_EQ(t5.duration, 3582.0);
}

TEST(StandardTraceShapeTest, JobCountsIncreaseWithIntensity) {
  for (int i = 1; i < 5; ++i) {
    EXPECT_LT(standard_trace_shape(i).num_jobs, standard_trace_shape(i + 1).num_jobs);
  }
}

TEST(TruncatedLognormalTest, StaysInRange) {
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    SimTime t = sample_truncated_lognormal(rng, 3.0, 3.0, 60.0);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 60.0);
  }
}

TEST(TraceGeneratorTest, ProducesRequestedJobCount) {
  TraceParams params;
  params.name = "test";
  params.num_jobs = 100;
  params.seed = 5;
  Trace trace = generate_trace(params);
  EXPECT_EQ(trace.size(), 100u);
  EXPECT_EQ(trace.name(), "test");
}

TEST(TraceGeneratorTest, ArrivalsSortedAndWithinWindow) {
  TraceParams params;
  params.num_jobs = 300;
  params.duration = 3581.0;
  params.seed = 7;
  Trace trace = generate_trace(params);
  SimTime last = 0.0;
  for (const JobSpec& job : trace.jobs()) {
    EXPECT_GE(job.submit_time, last);
    EXPECT_LE(job.submit_time, params.duration);
    last = job.submit_time;
  }
}

TEST(TraceGeneratorTest, HomeNodesWithinCluster) {
  TraceParams params;
  params.num_jobs = 200;
  params.num_nodes = 16;
  params.seed = 11;
  Trace trace = generate_trace(params);
  for (const JobSpec& job : trace.jobs()) EXPECT_LT(job.home_node, 16u);
}

TEST(TraceGeneratorTest, JobIdsAreUniqueAndDense) {
  TraceParams params;
  params.num_jobs = 50;
  params.seed = 13;
  Trace trace = generate_trace(params);
  std::set<JobId> ids;
  for (const JobSpec& job : trace.jobs()) ids.insert(job.id);
  EXPECT_EQ(ids.size(), 50u);
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), 50u);
}

TEST(TraceGeneratorTest, DeterministicForSameSeed) {
  TraceParams params;
  params.num_jobs = 80;
  params.seed = 17;
  Trace a = generate_trace(params);
  Trace b = generate_trace(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].submit_time, b.jobs()[i].submit_time);
    EXPECT_EQ(a.jobs()[i].program, b.jobs()[i].program);
    EXPECT_EQ(a.jobs()[i].cpu_seconds, b.jobs()[i].cpu_seconds);
    EXPECT_EQ(a.jobs()[i].home_node, b.jobs()[i].home_node);
  }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  TraceParams params;
  params.num_jobs = 80;
  params.seed = 19;
  Trace a = generate_trace(params);
  params.seed = 20;
  Trace b = generate_trace(params);
  int differences = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.jobs()[i].program != b.jobs()[i].program) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(TraceGeneratorTest, JitterBoundsRespected) {
  TraceParams params;
  params.num_jobs = 400;
  params.seed = 23;
  params.lifetime_jitter = 0.10;
  params.working_set_jitter = 0.08;
  Trace trace = generate_trace(params);
  for (const JobSpec& job : trace.jobs()) {
    auto program = find_program(job.program);
    ASSERT_TRUE(program.has_value());
    EXPECT_GE(job.cpu_seconds, program->lifetime * 0.899);
    EXPECT_LE(job.cpu_seconds, program->lifetime * 1.101);
    EXPECT_GE(job.working_set(), static_cast<Bytes>(static_cast<double>(program->working_set) * 0.919));
    EXPECT_LE(job.working_set(), static_cast<Bytes>(static_cast<double>(program->working_set) * 1.081));
  }
}

TEST(TraceGeneratorTest, ZeroJitterReplaysCatalogExactly) {
  TraceParams params;
  params.num_jobs = 50;
  params.seed = 29;
  params.lifetime_jitter = 0.0;
  params.working_set_jitter = 0.0;
  Trace trace = generate_trace(params);
  for (const JobSpec& job : trace.jobs()) {
    auto program = find_program(job.program);
    ASSERT_TRUE(program.has_value());
    EXPECT_DOUBLE_EQ(job.cpu_seconds, program->lifetime);
    EXPECT_EQ(job.working_set(), program->working_set);
  }
}

TEST(TraceGeneratorTest, MixWeightsShapeProgramFrequencies) {
  TraceParams params;
  params.num_jobs = 3000;
  params.seed = 31;
  Trace trace = generate_trace(params);
  std::map<std::string, int> counts;
  for (const JobSpec& job : trace.jobs()) ++counts[job.program];
  // Big jobs (apsi, mcf) must be a small share of the pool.
  const double big_share =
      static_cast<double>(counts["apsi"] + counts["mcf"]) / static_cast<double>(trace.size());
  EXPECT_LT(big_share, 0.12);
  EXPECT_GT(big_share, 0.005);
  // All six programs appear.
  EXPECT_EQ(counts.size(), 6u);
}

TEST(TraceGeneratorTest, ExplicitWeightsOverrideMix) {
  TraceParams params;
  params.num_jobs = 200;
  params.seed = 37;
  params.program_weights = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // apsi only
  Trace trace = generate_trace(params);
  for (const JobSpec& job : trace.jobs()) EXPECT_EQ(job.program, "apsi");
}

TEST(TraceGeneratorTest, HigherIntensityShapesSubmitFasterEarlyOn) {
  // Trace-5 both carries more jobs and front-loads them: within the first
  // ten minutes it must deliver substantially more work than Trace-1.
  Trace light = standard_trace(WorkloadGroup::kSpec, 1);
  Trace heavy = standard_trace(WorkloadGroup::kSpec, 5);
  auto early_count = [](const Trace& t) {
    std::size_t n = 0;
    for (const JobSpec& job : t.jobs()) {
      if (job.submit_time <= 600.0) ++n;
    }
    return n;
  };
  EXPECT_GT(early_count(heavy), early_count(light) + 50);
}

TEST(TraceGeneratorTest, StandardTraceIsReproducible) {
  Trace a = standard_trace(WorkloadGroup::kApps, 3);
  Trace b = standard_trace(WorkloadGroup::kApps, 3);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), "App-Trace-3");
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].submit_time, b.jobs()[i].submit_time);
  }
}

TEST(TraceGeneratorTest, StandardTraceUsesGroupPrograms) {
  Trace trace = standard_trace(WorkloadGroup::kApps, 2);
  for (const JobSpec& job : trace.jobs()) {
    auto program = find_program(job.program);
    ASSERT_TRUE(program.has_value());
    EXPECT_EQ(program->group, WorkloadGroup::kApps);
  }
}

}  // namespace
}  // namespace vrc::workload
