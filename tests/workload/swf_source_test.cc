#include "workload/swf_source.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "workload/trace_spec.h"

namespace vrc::workload {
namespace {

// 18-field SWF lines: job submit wait run procs avg_cpu mem_kb req_procs
// req_time req_mem status user group exe queue part prec think.
constexpr const char* kSmallLog =
    "; fabricated SWF body for unit tests\n"
    "; Computer: test rig\n"
    "1 0 5 100 2 90.0 2048 2 200 -1 1 3 1 7 1 1 -1 -1\n"
    "2 10 0 -1 1 -1 -1 1 -1 -1 5 3 1 7 1 1 -1 -1\n"   // cancelled -> skipped
    "3 20 0 0 1 -1 -1 1 -1 -1 1 3 1 7 1 1 -1 -1\n"    // never ran -> skipped
    "4 30 2 50 4 40.0 -1 4 100 -1 1 4 2 9 1 1 -1 -1\n"  // missing memory
    "5 25 0 400 1 390.0 1024 1 500 -1 1 4 2 9 1 1 -1 -1\n"  // out of order
    "6 60 1 7 1 6.0 512 1 10 -1 0 4 2 11 1 1 -1 -1\n";  // failed but ran

SwfTraceSource make_source(SwfOptions options = {}) {
  return SwfTraceSource("unit", std::istringstream(kSmallLog), options);
}

TEST(SwfTraceSourceTest, ParsesAcceptsAndSkips) {
  SwfTraceSource source = make_source();
  std::vector<JobSpec> jobs;
  while (std::optional<JobSpec> job = source.next()) jobs.push_back(std::move(*job));
  // Jobs 2 (cancelled) and 3 (runtime 0) are skipped; 1, 4, 5, 6 accepted.
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(source.skipped(), 2u);

  EXPECT_EQ(jobs[0].id, 1u);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].cpu_seconds, 100.0);
  EXPECT_EQ(jobs[0].program, "swf-app-7");
  EXPECT_DOUBLE_EQ(jobs[0].touch_rate, 0.0);
  EXPECT_EQ(jobs[0].memory.points().front().demand, Bytes{2048} * 1024 * 2);  // per-proc KB x2

  // Job 4: missing memory falls back to default_mem_per_cpu x 4 procs.
  EXPECT_EQ(jobs[1].memory.points().front().demand, SwfOptions{}.default_mem_per_cpu * 4);
}

TEST(SwfTraceSourceTest, OutOfOrderSubmitClampedNondecreasing) {
  SwfTraceSource source = make_source();
  SimTime last = -1.0;
  while (std::optional<JobSpec> job = source.next()) {
    EXPECT_GE(job->submit_time, last);
    last = job->submit_time;
  }
  // Job 5 logs submit 25 after job 4's 30: clamped to 30.
}

TEST(SwfTraceSourceTest, ScaleCompressesArrivalsNotRuntimes) {
  SwfOptions options;
  options.scale = 0.5;
  SwfTraceSource source = make_source(options);
  std::vector<JobSpec> jobs;
  while (std::optional<JobSpec> job = source.next()) jobs.push_back(std::move(*job));
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(jobs[1].submit_time, 15.0);   // 30 * 0.5
  EXPECT_DOUBLE_EQ(jobs[1].cpu_seconds, 50.0);   // runtime unscaled
}

TEST(SwfTraceSourceTest, MaxJobsStopsEarly) {
  SwfOptions options;
  options.max_jobs = 2;
  SwfTraceSource source = make_source(options);
  std::size_t count = 0;
  while (source.next()) ++count;
  EXPECT_EQ(count, 2u);
}

TEST(SwfTraceSourceTest, MinRuntimeFilters) {
  SwfOptions options;
  options.min_runtime = 60.0;  // drops job 4 (50 s) and job 6 (7 s)
  SwfTraceSource source = make_source(options);
  std::size_t count = 0;
  while (source.next()) ++count;
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(source.skipped(), 4u);
}

TEST(SwfTraceSourceTest, RejectsShortLineWithLineNumber) {
  try {
    // The constructor reads ahead one job, so the malformed line 2 throws
    // here already — with its line number in the message.
    SwfTraceSource source("bad", std::istringstream("; header\n1 0 5 100 2\n"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(SwfTraceSourceTest, RejectsNegativeSubmit) {
  EXPECT_THROW(SwfTraceSource("bad", std::istringstream(
                                         "1 -5 0 100 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n")),
               std::runtime_error);
}

TEST(SwfTraceSourceTest, RejectsNonFiniteField) {
  EXPECT_THROW(SwfTraceSource("bad", std::istringstream(
                                         "1 0 0 nan 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n")),
               std::runtime_error);
}

TEST(SwfTraceSourceTest, MissingFileThrows) {
  EXPECT_THROW(SwfTraceSource("/nonexistent/file.swf"), std::runtime_error);
}

TEST(SwfTraceSourceTest, InlineCommentsAndBlankLinesSkipped) {
  SwfTraceSource source(
      "c", std::istringstream("\n; full comment\n"
                              "1 0 0 100 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1 ; trailing\n\n"));
  std::size_t count = 0;
  while (source.next()) ++count;
  EXPECT_EQ(count, 1u);
}

TEST(SwfTraceSourceTest, StatusOnlyLineAccepted) {
  // SWF guarantees 18 fields but tolerant readers accept truncation after
  // field 11 (status); the executable number then defaults to "swf".
  SwfTraceSource source("short", std::istringstream("1 0 0 100 1 -1 -1 1 -1 -1 1\n"));
  std::optional<JobSpec> job = source.next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->program, "swf");
  EXPECT_FALSE(source.next().has_value());
}

TEST(SwfTraceSourceTest, ProfileRampSynthesizesPagingSignal) {
  // profile=ramp: the archive memory field becomes a ramp-up MemoryProfile
  // with a footprint-proportional touch rate (DESIGN.md §14.4).
  SwfOptions options;
  options.synthesize_profile = true;
  SwfTraceSource source = make_source(options);
  std::optional<JobSpec> job = source.next();
  ASSERT_TRUE(job.has_value());
  const Bytes working_set = Bytes{2048} * 1024 * 2;  // per-proc KB x 2 procs
  EXPECT_GT(job->memory.points().size(), 1u);
  EXPECT_EQ(job->memory.peak(), working_set);
  EXPECT_DOUBLE_EQ(job->touch_rate,
                   options.profile_touch_rate_per_mb * to_megabytes(working_set));

  // Job 4 (missing memory -> 16 MB/cpu x 4 procs = 64 MB) is big enough to
  // clear the ramp's 4 MiB start, so its mid-ramp demand sits strictly below
  // the plateau.
  job = source.next();
  ASSERT_TRUE(job.has_value());
  const Bytes big_set = SwfOptions{}.default_mem_per_cpu * 4;
  EXPECT_EQ(job->memory.peak(), big_set);
  EXPECT_LT(job->memory.demand_at(options.profile_ramp_fraction / 2.0), big_set);
  EXPECT_EQ(job->memory.demand_at(0.5), big_set);
}

TEST(SwfTraceSourceTest, DefaultFlatProfileReplaysUnchanged) {
  // Off (and profile=flat) must replay exactly as before the profile knob
  // existed: constant working set, no paging signal.
  SwfTraceSource source = make_source();
  while (std::optional<JobSpec> job = source.next()) {
    EXPECT_EQ(job->memory.points().size(), 1u);
    EXPECT_EQ(job->memory.demand_at(0.0), job->memory.peak());
    EXPECT_DOUBLE_EQ(job->touch_rate, 0.0);
  }
}

TEST(SwfTraceSourceTest, TraceSpecProfileParamSelectsSynthesis) {
  std::string error;
  const auto ramp = TraceSpec::parse("swf:file=log.swf,profile=ramp", &error);
  ASSERT_TRUE(ramp.has_value()) << error;
  EXPECT_EQ(ramp->swf_profile, "ramp");
  const auto reparsed = TraceSpec::parse(ramp->print(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *ramp);

  const auto flat = TraceSpec::parse("swf:file=log.swf,profile=flat", &error);
  ASSERT_TRUE(flat.has_value()) << error;
  EXPECT_EQ(flat->swf_profile, "flat");

  EXPECT_FALSE(TraceSpec::parse("swf:file=log.swf,profile=spiky", &error).has_value());
  EXPECT_NE(error.find("flat or ramp"), std::string::npos) << error;
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,profile=ramp", &error).has_value());
}

TEST(SwfFixtureTest, CommittedExcerptsParse) {
  const std::string dir = std::string(VRC_TEST_DATA_DIR) + "/swf/";
  for (const char* file : {"NASA-iPSC-1993-3.swf", "SDSC-SP2-1998-4.swf"}) {
    SwfTraceSource source(dir + file);
    std::size_t count = 0;
    SimTime last = -1.0;
    while (std::optional<JobSpec> job = source.next()) {
      ++count;
      EXPECT_GE(job->submit_time, last) << file;
      last = job->submit_time;
      EXPECT_GT(job->cpu_seconds, 0.0) << file;
      EXPECT_GT(job->memory.points().front().demand, 0u) << file;
    }
    EXPECT_GT(count, 300u) << file;
    EXPECT_GT(source.skipped(), 0u) << file;
  }
}

TEST(SwfFixtureTest, TraceSpecBuildsFromFixture) {
  TraceSpec spec = TraceSpec::swf(std::string(VRC_TEST_DATA_DIR) + "/swf/NASA-iPSC-1993-3.swf");
  spec.swf_scale = 0.1;
  spec.swf_max_jobs = 50;
  Trace trace = spec.build(32);
  EXPECT_EQ(trace.name(), "NASA-iPSC-1993-3");
  EXPECT_EQ(trace.size(), 50u);
  // materialize() and the streamed source must agree job for job.
  std::unique_ptr<ArrivalSource> source = spec.make_source(32);
  for (const JobSpec& expected : trace.jobs()) {
    std::optional<JobSpec> job = source->next();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->id, expected.id);
    EXPECT_DOUBLE_EQ(job->submit_time, expected.submit_time);
  }
}

}  // namespace
}  // namespace vrc::workload
