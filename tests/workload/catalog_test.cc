#include "workload/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace vrc::workload {
namespace {

TEST(CatalogTest, SpecGroupHasSixPrograms) {
  // Table 1 of the paper: apsi, gcc, gzip, mcf, vortex, bzip.
  const auto& programs = catalog(WorkloadGroup::kSpec);
  ASSERT_EQ(programs.size(), 6u);
  std::set<std::string> names;
  for (const auto& p : programs) names.insert(p.name);
  EXPECT_EQ(names, (std::set<std::string>{"apsi", "gcc", "gzip", "mcf", "vortex", "bzip"}));
}

TEST(CatalogTest, AppsGroupHasSevenPrograms) {
  // Table 2: bit-r, m-sort, m-m, t-sim, metis, r-sphere, r-wing.
  const auto& programs = catalog(WorkloadGroup::kApps);
  ASSERT_EQ(programs.size(), 7u);
  std::set<std::string> names;
  for (const auto& p : programs) names.insert(p.name);
  EXPECT_EQ(names, (std::set<std::string>{"bit-r", "m-sort", "m-m", "t-sim", "metis",
                                          "r-sphere", "r-wing"}));
}

TEST(CatalogTest, EveryProgramIsInternallyConsistent) {
  for (WorkloadGroup group : {WorkloadGroup::kSpec, WorkloadGroup::kApps}) {
    for (const auto& p : catalog(group)) {
      EXPECT_GT(p.working_set, 0) << p.name;
      EXPECT_GT(p.lifetime, 0.0) << p.name;
      EXPECT_GT(p.touch_rate, 0.0) << p.name;
      EXPECT_GT(p.mix_weight, 0.0) << p.name;
      EXPECT_EQ(p.group, group) << p.name;
      EXPECT_EQ(p.reference_mhz, reference_mhz(group)) << p.name;
      EXPECT_EQ(p.profile().peak(), p.working_set) << p.name;
      if (p.has_range()) {
        EXPECT_LT(p.working_set_min, p.working_set) << p.name;
      }
    }
  }
}

TEST(CatalogTest, SpecWorkingSetsFitPaperCluster1Memory) {
  // Every Table-1 program ran on a 384 MB workstation without replacement.
  for (const auto& p : catalog(WorkloadGroup::kSpec)) {
    EXPECT_LE(p.working_set, megabytes(384)) << p.name;
  }
}

TEST(CatalogTest, AppsWorkingSetsFitPaperCluster2Memory) {
  // Every Table-2 program ran on a 128 MB workstation.
  for (const auto& p : catalog(WorkloadGroup::kApps)) {
    EXPECT_LE(p.working_set, megabytes(128)) << p.name;
  }
}

TEST(CatalogTest, LargeJobsAreRareInMix) {
  // "The percentage of exceptionally large jobs is very low": the big jobs
  // (apsi/mcf/metis) carry small mix weights.
  for (WorkloadGroup group : {WorkloadGroup::kSpec, WorkloadGroup::kApps}) {
    const auto& programs = catalog(group);
    double total = 0.0, big = 0.0;
    Bytes max_ws = 0;
    for (const auto& p : programs) max_ws = std::max(max_ws, p.working_set);
    for (const auto& p : programs) {
      total += p.mix_weight;
      if (p.working_set * 2 > max_ws) big += p.mix_weight;
    }
    EXPECT_LT(big / total, 0.15) << to_string(group);
  }
}

TEST(CatalogTest, BigJobsAreTheLongest) {
  // The blocking problem needs large jobs with long remaining times.
  const auto& spec = catalog(WorkloadGroup::kSpec);
  double max_normal_lifetime = 0.0, min_big_lifetime = 1e18;
  for (const auto& p : spec) {
    if (p.working_set >= megabytes(150)) {
      min_big_lifetime = std::min(min_big_lifetime, p.lifetime);
    } else {
      max_normal_lifetime = std::max(max_normal_lifetime, p.lifetime);
    }
  }
  EXPECT_GT(min_big_lifetime, max_normal_lifetime);
}

TEST(CatalogTest, FindProgramLocatesBothGroups) {
  auto apsi = find_program("apsi");
  ASSERT_TRUE(apsi.has_value());
  EXPECT_EQ(apsi->group, WorkloadGroup::kSpec);
  auto metis = find_program("metis");
  ASSERT_TRUE(metis.has_value());
  EXPECT_EQ(metis->group, WorkloadGroup::kApps);
  EXPECT_TRUE(metis->has_range());
  EXPECT_FALSE(find_program("nonexistent").has_value());
}

TEST(CatalogTest, GroupNamesRoundTrip) {
  WorkloadGroup group;
  ASSERT_TRUE(parse_workload_group("spec", &group));
  EXPECT_EQ(group, WorkloadGroup::kSpec);
  ASSERT_TRUE(parse_workload_group("apps", &group));
  EXPECT_EQ(group, WorkloadGroup::kApps);
  EXPECT_FALSE(parse_workload_group("bogus", &group));
  EXPECT_STREQ(to_string(WorkloadGroup::kSpec), "spec");
  EXPECT_STREQ(to_string(WorkloadGroup::kApps), "apps");
}

TEST(CatalogTest, GrowthProfilesEndAtWorkingSet) {
  // Table 1/2 working sets are the *maximum* during execution; demand grows
  // toward it across the run.
  for (WorkloadGroup group : {WorkloadGroup::kSpec, WorkloadGroup::kApps}) {
    for (const auto& p : catalog(group)) {
      const auto profile = p.profile();
      EXPECT_EQ(profile.demand_at(1.0), p.working_set) << p.name;
      EXPECT_LT(profile.demand_at(0.0), p.working_set) << p.name;
    }
  }
}

}  // namespace
}  // namespace vrc::workload
