// TraceSpec: the declarative trace axis of a scenario. Covers parse/print
// round-trips, validation errors, and — critically — that a spec naming a
// standard trace builds the byte-identical trace the enum-era
// standard_trace() call produced.
#include "workload/trace_spec.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "workload/trace_generator.h"

namespace vrc::workload {
namespace {

// Full-content trace comparison via the text serialization (covers name,
// group, duration, and every job field).
std::string serialize(const Trace& trace) {
  std::ostringstream out;
  trace.save(out);
  return out.str();
}

TEST(TraceSpecTest, StandardSpecBuildsByteIdenticalStandardTrace) {
  for (int index = 1; index <= 5; ++index) {
    const Trace from_spec = TraceSpec::standard(WorkloadGroup::kSpec, index).build(8);
    const Trace from_enum_path = standard_trace(WorkloadGroup::kSpec, index, 8);
    EXPECT_EQ(serialize(from_spec), serialize(from_enum_path)) << "trace " << index;
  }
  const Trace apps_spec = TraceSpec::standard(WorkloadGroup::kApps, 2).build(32);
  EXPECT_EQ(serialize(apps_spec), serialize(standard_trace(WorkloadGroup::kApps, 2, 32)));
}

TEST(TraceSpecTest, PrintParseRoundTrips) {
  for (const char* text : {
           "spec:trace=3",
           "apps:trace=1",
           "spec:jobs=120,duration=900",
           "spec:jobs=120,duration=900,seed=7,name=fp",
           "spec:trace=2,seed=41",
           "spec:trace=2,arrival_scale=1.5,nodes=16",
       }) {
    std::string error;
    const auto spec = TraceSpec::parse(text, &error);
    ASSERT_TRUE(spec.has_value()) << text << ": " << error;
    const auto reparsed = TraceSpec::parse(spec->print(), &error);
    ASSERT_TRUE(reparsed.has_value()) << spec->print() << ": " << error;
    EXPECT_EQ(*reparsed, *spec) << text << " vs " << spec->print();
  }
}

TEST(TraceSpecTest, DurationAcceptsUnitSuffixes) {
  const auto spec = TraceSpec::parse("spec:jobs=10,duration=15min");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->duration, 900.0);
}

TEST(TraceSpecTest, ParseRejectsUnknownGroupKeysAndValues) {
  std::string error;
  EXPECT_FALSE(TraceSpec::parse("hpc:trace=1", &error).has_value());
  EXPECT_NE(error.find("unknown workload group 'hpc'"), std::string::npos) << error;

  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,color=red", &error).has_value());
  EXPECT_NE(error.find("unknown key 'color'"), std::string::npos) << error;
  EXPECT_NE(error.find("known keys:"), std::string::npos) << error;

  EXPECT_FALSE(TraceSpec::parse("spec:trace=first", &error).has_value());
  EXPECT_NE(error.find("invalid value 'first'"), std::string::npos) << error;
  EXPECT_FALSE(TraceSpec::parse("spec:jobs=-4,duration=100", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:jobs=10,duration=-5", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,arrival_scale=0", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,seed=soon", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,nodes=0", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,name=", &error).has_value());
  EXPECT_FALSE(TraceSpec::parse("spec:trace", &error).has_value());
  EXPECT_NE(error.find("not key=value"), std::string::npos) << error;
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,trace=2", &error).has_value());
  EXPECT_NE(error.find("duplicate param 'trace'"), std::string::npos) << error;
}

TEST(TraceSpecTest, ValidationEnforcesStandardVsGeneratedExclusivity) {
  std::string error;
  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,jobs=50", &error).has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos) << error;
  EXPECT_FALSE(TraceSpec::parse("spec", &error).has_value());
  EXPECT_NE(error.find("required"), std::string::npos) << error;
  EXPECT_FALSE(TraceSpec::parse("spec:trace=6", &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(TraceSpecTest, SeedOverrideRegeneratesTheShapeAsAFreshRealization) {
  const Trace replayed = TraceSpec::standard(WorkloadGroup::kSpec, 2).build(8);
  auto reseeded_spec = TraceSpec::standard(WorkloadGroup::kSpec, 2);
  reseeded_spec.seed = 12345;
  const Trace reseeded = reseeded_spec.build(8);
  // Same shape (name, job count, duration) but different arrivals.
  EXPECT_EQ(reseeded.name(), replayed.name());
  EXPECT_EQ(reseeded.size(), replayed.size());
  EXPECT_DOUBLE_EQ(reseeded.duration(), replayed.duration());
  EXPECT_NE(serialize(reseeded), serialize(replayed));

  // The standard seed made explicit reproduces the replayed trace exactly.
  auto explicit_seed = TraceSpec::standard(WorkloadGroup::kSpec, 2);
  explicit_seed.seed = standard_trace_seed(WorkloadGroup::kSpec, 2);
  EXPECT_EQ(serialize(explicit_seed.build(8)), serialize(replayed));
}

TEST(TraceSpecTest, GeneratedSpecMatchesHandBuiltTraceParams) {
  TraceSpec spec;
  spec.group = WorkloadGroup::kSpec;
  spec.num_jobs = 40;
  spec.duration = 600.0;
  spec.seed = 31;
  spec.name = "sweep-31";
  const Trace from_spec = spec.build(8);

  TraceParams params;
  params.name = "sweep-31";
  params.group = WorkloadGroup::kSpec;
  params.num_jobs = 40;
  params.duration = 600.0;
  params.num_nodes = 8;
  params.seed = 31;
  EXPECT_EQ(serialize(from_spec), serialize(generate_trace(params)));
}

TEST(TraceSpecTest, MalleableParamsParsePrintAndValidate) {
  std::string error;
  const auto spec = TraceSpec::parse(
      "spec:jobs=50,duration=300,malleable=0.5,malleable_min=2,malleable_max=4,"
      "malleable_alpha=0.9",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->malleable_fraction, 0.5);
  EXPECT_EQ(spec->malleable_min_width, 2);
  EXPECT_EQ(spec->malleable_max_width, 4);
  EXPECT_DOUBLE_EQ(spec->malleable_speedup_alpha, 0.9);
  const auto reparsed = TraceSpec::parse(spec->print(), &error);
  ASSERT_TRUE(reparsed.has_value()) << spec->print() << ": " << error;
  EXPECT_EQ(*reparsed, *spec);

  EXPECT_FALSE(TraceSpec::parse("spec:trace=1,malleable=1.5", &error).has_value());
  EXPECT_NE(error.find("invalid value '1.5' for 'malleable'"), std::string::npos) << error;
  EXPECT_FALSE(
      TraceSpec::parse("spec:trace=1,malleable=1,malleable_min=3,malleable_max=2", &error)
          .has_value());
  EXPECT_NE(error.find("malleable_min <= malleable_max"), std::string::npos) << error;
  // The swf grammar has no malleable key (replayed widths come from the log)…
  EXPECT_FALSE(TraceSpec::parse("swf:file=x.swf,malleable=0.5", &error).has_value());
  EXPECT_NE(error.find("unknown key 'malleable'"), std::string::npos) << error;
  // …and a programmatically built swf spec with a fraction fails validation.
  TraceSpec swf_malleable = TraceSpec::swf("x.swf");
  swf_malleable.malleable_fraction = 0.5;
  EXPECT_FALSE(swf_malleable.validate(&error));
  EXPECT_NE(error.find("generated traces"), std::string::npos) << error;
}

TEST(TraceSpecTest, MalleableFractionControlsGeneratedContracts) {
  TraceSpec spec;
  spec.group = WorkloadGroup::kSpec;
  spec.num_jobs = 60;
  spec.duration = 400.0;
  spec.seed = 9;
  spec.malleable_fraction = 1.0;
  spec.malleable_min_width = 1;
  spec.malleable_max_width = 3;
  const Trace all = spec.build(8);
  for (const JobSpec& job : all.jobs()) {
    EXPECT_TRUE(job.malleable());
    EXPECT_EQ(job.malleability.min_width, 1);
    EXPECT_EQ(job.malleability.max_width, 3);
    EXPECT_EQ(job.initial_width(), 3);
  }

  // Fraction 0 never draws from the malleability stream: the generated trace
  // is byte-identical to the pre-malleability generator's output.
  spec.malleable_fraction = 0.0;
  TraceSpec plain = spec;
  plain.malleable_min_width = 1;
  plain.malleable_max_width = 2;
  const Trace rigid = spec.build(8);
  EXPECT_EQ(serialize(rigid), serialize(plain.build(8)));
  for (const JobSpec& job : rigid.jobs()) EXPECT_FALSE(job.malleable());
}

TEST(TraceSpecTest, TraceLevelNodesOverrideBeatsDefault) {
  auto spec = TraceSpec::standard(WorkloadGroup::kSpec, 1);
  spec.num_nodes = 4;
  const Trace trace = spec.build(32);
  for (const JobSpec& job : trace.jobs()) EXPECT_LT(job.home_node, 4);
}

}  // namespace
}  // namespace vrc::workload
