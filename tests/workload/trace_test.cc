#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vrc::workload {
namespace {

JobSpec make_job(JobId id, SimTime submit, const char* program, SimTime cpu) {
  JobSpec job;
  job.id = id;
  job.program = program;
  job.submit_time = submit;
  job.home_node = id % 4;
  job.cpu_seconds = cpu;
  job.touch_rate = 100.0;
  job.memory = MemoryProfile::phased({{0.0, megabytes(4)}, {1.0, megabytes(60)}});
  return job;
}

TEST(TraceTest, JobsSortedBySubmitTime) {
  Trace trace("t", WorkloadGroup::kSpec, 100.0,
              {make_job(1, 50.0, "gcc", 10), make_job(2, 10.0, "gzip", 20),
               make_job(3, 30.0, "mcf", 30)});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.jobs()[0].id, 2u);
  EXPECT_EQ(trace.jobs()[1].id, 3u);
  EXPECT_EQ(trace.jobs()[2].id, 1u);
}

TEST(TraceTest, TotalCpuSecondsSums) {
  Trace trace("t", WorkloadGroup::kSpec, 100.0,
              {make_job(1, 0.0, "gcc", 10), make_job(2, 1.0, "gzip", 20)});
  EXPECT_DOUBLE_EQ(trace.total_cpu_seconds(), 30.0);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Trace original("My-Trace-1", WorkloadGroup::kApps, 3586.0,
                 {make_job(1, 0.5, "metis", 123.25), make_job(2, 7.125, "bit-r", 45.5)});
  std::stringstream buffer;
  original.save(buffer);
  Trace loaded = Trace::load(buffer);

  EXPECT_EQ(loaded.name(), "My-Trace-1");
  EXPECT_EQ(loaded.group(), WorkloadGroup::kApps);
  EXPECT_DOUBLE_EQ(loaded.duration(), 3586.0);
  ASSERT_EQ(loaded.size(), 2u);
  const JobSpec& job = loaded.jobs()[0];
  EXPECT_EQ(job.id, 1u);
  EXPECT_DOUBLE_EQ(job.submit_time, 0.5);
  EXPECT_EQ(job.program, "metis");
  EXPECT_DOUBLE_EQ(job.cpu_seconds, 123.25);
  EXPECT_DOUBLE_EQ(job.touch_rate, 100.0);
  EXPECT_EQ(job.memory.points().size(), 2u);
  EXPECT_EQ(job.working_set(), megabytes(60));
}

TEST(TraceTest, LoadRejectsMissingHeader) {
  std::stringstream buffer("name foo\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsBadGroup) {
  std::stringstream buffer("# vrc-trace v1\ngroup martian\njobs 0\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsJobCountMismatch) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 2\n"
      "job 1 0.0 0 gcc 10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsMalformedJobLine) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\njob 1 oops\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsUnknownKey) {
  std::stringstream buffer("# vrc-trace v1\ngroup spec\njobs 0\nbanana 3\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeSubmitTime) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 -3.5 0 gcc 10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeJobId) {
  // `>>` into the unsigned JobId would wrap -1 to 2^64-1; load must parse
  // signed and reject instead.
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job -1 0.0 0 gcc 10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeHomeNode) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 -2 gcc 10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeCpuSeconds) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 0 gcc -10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNonFiniteNumerics) {
  std::stringstream nan_submit(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 nan 0 gcc 10 100 1 0.0 1000\n");
  EXPECT_THROW(Trace::load(nan_submit), std::runtime_error);
  std::stringstream inf_duration("# vrc-trace v1\nname t\ngroup spec\nduration inf\njobs 0\n");
  EXPECT_THROW(Trace::load(inf_duration), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeJobCountHeader) {
  std::stringstream buffer("# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs -2\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsNegativeProfileDemand) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 0 gcc 10 100 1 0.0 -1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsProfileProgressOutOfRange) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 0 gcc 10 100 1 1.5 1000\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsTruncatedProfilePoint) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 0 gcc 10 100 2 0.0 1000 0.5\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadRejectsTrailingGarbageOnJobLine) {
  std::stringstream buffer(
      "# vrc-trace v1\nname t\ngroup spec\nduration 10\njobs 1\n"
      "job 1 0.0 0 gcc 10 100 1 0.0 1000 surprise\n");
  EXPECT_THROW(Trace::load(buffer), std::runtime_error);
}

TEST(TraceTest, LoadSkipsCommentsAndBlankLines) {
  std::stringstream buffer(
      "# vrc-trace v1\n\n# a comment\nname t\ngroup spec\nduration 10\njobs 0\n");
  Trace trace = Trace::load(buffer);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, FileRoundTrip) {
  Trace original("file-trace", WorkloadGroup::kSpec, 50.0, {make_job(9, 1.0, "apsi", 99.0)});
  const std::string path = testing::TempDir() + "/vrc_trace_test.trace";
  ASSERT_TRUE(original.save_to_file(path));
  Trace loaded = Trace::load_from_file(path);
  EXPECT_EQ(loaded.name(), "file-trace");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.jobs()[0].program, "apsi");
}

TEST(TraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(Trace::load_from_file("/nonexistent/path.trace"), std::runtime_error);
}

}  // namespace
}  // namespace vrc::workload
