#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ file the format-check CI job
# gates, using the same pinned clang-format major as CI so local runs and the
# gate can never disagree. Run from anywhere inside the repo.
#
#   scripts/format_all.sh           # rewrite files in place
#   scripts/format_all.sh --check   # exit nonzero on any drift (CI mode)
set -euo pipefail

PINNED_MAJOR=18  # keep in sync with clang-format-version in ci.yml

cd "$(git rev-parse --show-toplevel)"

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${CLANG_FORMAT}" ]]; then
  if command -v "clang-format-${PINNED_MAJOR}" >/dev/null 2>&1; then
    CLANG_FORMAT="clang-format-${PINNED_MAJOR}"
  elif command -v clang-format >/dev/null 2>&1; then
    CLANG_FORMAT=clang-format
  else
    echo "error: clang-format not found (want major ${PINNED_MAJOR});" \
         "set CLANG_FORMAT to override" >&2
    exit 2
  fi
fi

version="$("${CLANG_FORMAT}" --version)"
if ! grep -q "clang-format version ${PINNED_MAJOR}\." <<<"${version}"; then
  echo "warning: ${CLANG_FORMAT} is '${version}', CI pins major" \
       "${PINNED_MAJOR} — results may differ from the gate" >&2
fi

mode=(-i)
if [[ "${1:-}" == "--check" ]]; then
  mode=(--dry-run --Werror)
fi

git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/**/*.cc' \
  'bench/*.h' 'bench/*.cc' 'examples/**/*.cc' \
  | xargs "${CLANG_FORMAT}" "${mode[@]}"
