"""Layering analyzer: enforces the module DAG over the #include graph.

The allowed architecture is declared in ``scripts/vrc_lint/layering.toml``:
named modules (path prefixes under the repo root, file-granular where a
directory hosts two libraries, like src/metrics) with an explicit DIRECT
dependency list each. The analyzer

  * rejects the config itself when a declared dep is unknown or the declared
    graph has a cycle (rule ``layering-config``),
  * requires every scanned source file to map to exactly one module — a new
    directory must be placed in the DAG deliberately (rule
    ``unassigned-module``),
  * flags every ``#include "x/y.h"`` whose target module is not in the
    including module's declared deps (rule ``layering``) — back-edges and
    undeclared lateral edges alike.

Project includes resolve against ``<base>/src/`` (the single include root).
System/third-party includes and includes that do not resolve to a file are
ignored. Directories listed as ``unrestricted`` (tests, bench, examples) may
depend on anything and are not scanned.

Fixture trees carry their own ``layering.toml``; when the scanned file set
contains one, it overrides the packaged config and all paths resolve
relative to its directory — which is how the self-test exercises back-edge
detection and config-cycle rejection without touching the real tree.

Escape hatch: ``// NOLINT-layering(reason)`` on the include line.
"""

import os
import re
import tomllib

from vrc_lint import core

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class LayeringConfigError(Exception):
    pass


class LayeringConfig:
    def __init__(self, modules, unrestricted, base, rel_path):
        self.modules = modules          # name -> {"paths": [...], "deps": set}
        self.unrestricted = unrestricted
        self.base = base                # absolute dir all paths resolve against
        self.rel_path = rel_path        # config path relative to repo root

    @staticmethod
    def load(full_path, root):
        rel_path = os.path.relpath(full_path, root)
        try:
            with open(full_path, "rb") as fh:
                data = tomllib.load(fh)
        except (OSError, tomllib.TOMLDecodeError) as err:
            raise LayeringConfigError(f"cannot parse {rel_path}: {err}")
        section = data.get("layering", {})
        modules = {}
        for entry in section.get("module", []):
            name = entry.get("name")
            if not name or not isinstance(entry.get("paths"), list):
                raise LayeringConfigError(
                    f"{rel_path}: every [[layering.module]] needs a name and "
                    f"a paths list")
            if name in modules:
                raise LayeringConfigError(
                    f"{rel_path}: duplicate module '{name}'")
            modules[name] = {"paths": [p.rstrip("/") for p in entry["paths"]],
                             "deps": list(entry.get("deps", []))}
        return LayeringConfig(modules, section.get("unrestricted", []),
                              os.path.dirname(full_path), rel_path)

    def validate(self):
        """Config-level violations: unknown deps, cycles in the declared DAG."""
        problems = []
        for name, module in self.modules.items():
            for dep in module["deps"]:
                if dep not in self.modules:
                    problems.append(f"module '{name}' declares unknown "
                                    f"dep '{dep}'")
        # Cycle check over the declared graph (iterative DFS, 3-color).
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.modules}
        for start in sorted(self.modules):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(sorted(
                d for d in self.modules[start]["deps"] if d in self.modules)))]
            color[start] = GRAY
            while stack:
                name, deps = stack[-1]
                advanced = False
                for dep in deps:
                    if color[dep] == GRAY:
                        cycle = [entry[0] for entry in stack]
                        cycle = cycle[cycle.index(dep):] + [dep]
                        problems.append("declared module graph has a cycle: "
                                        + " -> ".join(cycle))
                        color[dep] = BLACK  # report each cycle once
                    elif color[dep] == WHITE:
                        color[dep] = GRAY
                        stack.append((dep, iter(sorted(
                            d for d in self.modules[dep]["deps"]
                            if d in self.modules))))
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    stack.pop()
        return problems

    def module_of(self, rel):
        """Module owning base-relative path `rel`; longest prefix wins."""
        best = None
        best_len = -1
        for name, module in self.modules.items():
            for prefix in module["paths"]:
                if rel == prefix or rel.startswith(prefix + "/"):
                    if len(prefix) > best_len:
                        best = name
                        best_len = len(prefix)
        return best

    def is_unrestricted(self, rel):
        return any(rel == d or rel.startswith(d + "/")
                   for d in self.unrestricted)


class LayeringAnalyzer(core.Analyzer):
    name = "layering"
    description = "enforces the module DAG declared in layering.toml over " \
                  "the #include graph"
    default_paths = ("src",)
    extensions = core.SOURCE_EXTENSIONS + (".toml",)
    # Needs the whole include graph; CLI paths do not restrict it.
    accepts_paths = False

    def run(self, files, root):
        # Fixture mode: a layering.toml inside the scanned set overrides the
        # packaged config, and paths resolve relative to its directory.
        config_full = None
        for full, _rel in files:
            if os.path.basename(full) == "layering.toml":
                config_full = full
                break
        packaged = config_full is None
        if packaged:
            config_full = os.path.join(root, "scripts", "vrc_lint",
                                       "layering.toml")
            if not os.path.isfile(config_full):
                return [core.Violation(
                    "scripts/vrc_lint/layering.toml", 1, "layering-config",
                    "layering config missing")]
        try:
            config = LayeringConfig.load(config_full, root)
        except LayeringConfigError as err:
            return [core.Violation(os.path.relpath(config_full, root), 1,
                                   "layering-config", str(err))]
        if packaged:
            # The packaged config declares repo-root-relative paths; fixture
            # configs declare paths relative to their own directory.
            config.base = root

        violations = [core.Violation(config.rel_path, 1, "layering-config",
                                     problem)
                      for problem in config.validate()]
        if violations:
            return violations  # an invalid DAG makes edge checks meaningless

        base = config.base
        for full, rel in files:
            if full == config_full:
                continue
            base_rel = os.path.relpath(full, base).replace(os.sep, "/")
            if base_rel.startswith(".."):
                continue  # outside the config's scope (never in practice)
            if config.is_unrestricted(base_rel):
                continue
            module = config.module_of(base_rel)
            if module is None:
                violations.append(core.Violation(
                    rel, 1, "unassigned-module",
                    f"{base_rel} matches no module in {config.rel_path}; "
                    f"place new code in the DAG deliberately"))
                continue
            raw_lines = core.read_lines(full)
            for index, line in enumerate(raw_lines):
                match = INCLUDE_RE.match(line)
                if not match:
                    continue
                include = match.group(1)
                target_rel = "src/" + include
                if not os.path.isfile(os.path.join(base, target_rel)):
                    continue  # not a project header under the include root
                target = config.module_of(target_rel)
                if target is None:
                    violations.append(core.Violation(
                        rel, index + 1, "unassigned-module",
                        f"include target {target_rel} matches no module in "
                        f"{config.rel_path}", line))
                    continue
                if target == module:
                    continue
                if target not in config.modules[module]["deps"]:
                    violations.append(core.Violation(
                        rel, index + 1, "layering",
                        f"module '{module}' may not depend on '{target}' "
                        f"(edge not declared in {config.rel_path}; a "
                        f"back-edge or an undeliberate new dependency)",
                        line))
        return violations

    # --- self-test -------------------------------------------------------

    def violations_case(self, root):
        return [os.path.join(self.fixture_dir(root), "violations")]

    def clean_case(self, root):
        return [os.path.join(self.fixture_dir(root), "clean")]

    def extra_self_test(self, root):
        """A fixture config whose declared graph contains a cycle must be
        rejected with layering-config."""
        failures = []
        cyclic = os.path.join(self.fixture_dir(root), "cyclic")
        files = core.collect_files([cyclic], root, self.extensions)
        found = self.filtered_run(files, root)
        if not any(v.rule == "layering-config" and "cycle" in v.message
                   for v in found):
            failures.append(
                f"cyclic fixture config must be rejected, got "
                f"{[str(v) for v in found]}")
        # The real tree's declared graph must be loadable and acyclic.
        packaged = os.path.join(root, "scripts", "vrc_lint", "layering.toml")
        try:
            problems = LayeringConfig.load(packaged, root).validate()
        except LayeringConfigError as err:
            problems = [str(err)]
        failures.extend(f"packaged layering.toml: {p}" for p in problems)
        return failures
