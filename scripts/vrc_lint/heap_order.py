"""Heap-order analyzer: code and documented tie-break contract must agree.

The four ``ClusterIndex`` heap orders (DESIGN.md §11) are the scheduling
policies' selection semantics: which node "wins" for a given policy is
decided entirely by the key pair ``key_for`` returns and the final node-id
tie-break in ``IndexedHeap::precedes``. A silent edit to one comparator —
flipping a sign, swapping primary and secondary — changes placement
decisions everywhere while every structural test still passes. This
analyzer diffs three sources that must stay in lockstep:

  1. the ``Order`` enum in ``src/cluster/cluster_index.h``,
  2. the ``case Order::kX: return {A, B};`` arms of ``ClusterIndex::key_for``
     in ``src/cluster/cluster_index.cc`` plus the node tie-break direction
     in ``IndexedHeap::precedes``,
  3. the machine-readable table DESIGN.md §11 carries in a
     ``<!-- vrc-lint:heap-order ... -->`` comment block::

        <!-- vrc-lint:heap-order
        kMinSlotsMaxIdle: (state.slots_used, -state.idle)
        ...
        tiebreak: node asc
        -->

Key expressions are compared whitespace-insensitively. Any drift — an enum
member with no case, a case absent from the table, an expression mismatch,
a tie-break direction mismatch, or a missing block — fails the lint (rule
``heap-order``). Changing a comparator therefore requires touching
DESIGN.md in the same commit, which is the point: the contract change
becomes visible in review instead of hiding in a sign flip.

Fixtures carry miniature ``cluster_index.{h,cc}`` + ``DESIGN.md`` trios;
the analyzer locates its inputs by basename, so the same code paths run on
the fixture and the real tree.
"""

import re

from vrc_lint import core

CASE_RE = re.compile(r"case\s+Order::(k\w+)\s*:")
RETURN_KEY_RE = re.compile(r"return\s*\{([^}]*)\}\s*;")
DOC_ENTRY_RE = re.compile(r"^\s*(k\w+):\s*\(([^)]*)\)")
DOC_TIEBREAK_RE = re.compile(r"^\s*tiebreak:\s*(node\s+(?:asc|desc))")
BLOCK_START = "<!-- vrc-lint:heap-order"


def normalize(expr):
    return re.sub(r"\s+", "", expr)


def parse_enum(code_lines):
    """Order enum members with their 1-based line numbers."""
    members = []
    in_enum = False
    for index, code in enumerate(code_lines):
        if not in_enum:
            if re.search(r"enum\s+class\s+Order\b", code):
                in_enum = True
            else:
                continue
        for match in re.finditer(r"\b(k\w+)\b", code):
            members.append((match.group(1), index + 1))
        if "}" in code:
            break
    return members


def parse_key_for(code_lines):
    """(name -> (normalized expr pair, case line)) from ClusterIndex::key_for,
    or None when the function is not found."""
    start = None
    for index, code in enumerate(code_lines):
        if "ClusterIndex::key_for" in code:
            start = index
            break
    if start is None:
        return None
    cases = {}
    pending = None  # (name, case line) awaiting its return {...};
    depth = 0
    entered = False
    for index in range(start, len(code_lines)):
        code = code_lines[index]
        match = CASE_RE.search(code)
        if match:
            pending = (match.group(1), index + 1)
        if pending is not None:
            ret = RETURN_KEY_RE.search(code)
            if ret:
                parts = [normalize(p) for p in ret.group(1).split(",")]
                cases[pending[0]] = (tuple(parts), pending[1])
                pending = None
        for ch in code:
            if ch == "{":
                depth += 1
                entered = True
            elif ch == "}":
                depth -= 1
        if entered and depth <= 0:
            break
    return cases


def parse_tiebreak(code_lines):
    """'node asc' / 'node desc' from IndexedHeap::precedes, else None."""
    for code in code_lines:
        if re.search(r"a\.node\s*<\s*b\.node|b\.node\s*>\s*a\.node", code):
            return "node asc"
        if re.search(r"b\.node\s*<\s*a\.node|a\.node\s*>\s*b\.node", code):
            return "node desc"
    return None


def parse_doc_block(raw_lines):
    """(entries, tiebreak, block line) from the DESIGN.md comment block.
    entries: name -> (normalized expr pair, 1-based line)."""
    start = None
    for index, raw in enumerate(raw_lines):
        if BLOCK_START in raw:
            start = index
            break
    if start is None:
        return None, None, None
    entries = {}
    tiebreak = None
    for index in range(start + 1, len(raw_lines)):
        raw = raw_lines[index]
        if "-->" in raw:
            break
        match = DOC_ENTRY_RE.match(raw)
        if match:
            parts = [normalize(p) for p in match.group(2).split(",")]
            entries[match.group(1)] = (tuple(parts), index + 1)
            continue
        match = DOC_TIEBREAK_RE.match(raw)
        if match:
            tiebreak = (re.sub(r"\s+", " ", match.group(1)), index + 1)
    return entries, tiebreak, start + 1


class HeapOrderAnalyzer(core.Analyzer):
    name = "heap-order"
    description = "IndexedHeap key orders in cluster_index.cc must match " \
                  "the machine-readable table in DESIGN.md §11"
    default_paths = ("src/cluster/cluster_index.h",
                     "src/cluster/cluster_index.cc",
                     "DESIGN.md")
    extensions = (".h", ".cc", ".md")
    # A three-file diff; CLI paths cannot meaningfully restrict it.
    accepts_paths = False

    def run(self, files, root):
        header = impl = doc = None
        for full, rel in files:
            base = rel.replace("\\", "/").rsplit("/", 1)[-1]
            if base == "cluster_index.h":
                header = (full, rel)
            elif base == "cluster_index.cc":
                impl = (full, rel)
            elif base == "DESIGN.md":
                doc = (full, rel)
        violations = []
        for found, what in ((header, "cluster_index.h"),
                            (impl, "cluster_index.cc"),
                            (doc, "DESIGN.md")):
            if found is None:
                violations.append(core.Violation(
                    what, 1, "heap-order", f"{what} not found in scan set"))
        if violations:
            return violations

        header_code = core.blank_comments_and_strings(
            core.read_lines(header[0]))
        impl_raw = core.read_lines(impl[0])
        impl_code = core.blank_comments_and_strings(impl_raw)
        doc_raw = core.read_lines(doc[0])

        enum_members = parse_enum(header_code)
        cases = parse_key_for(impl_code)
        # precedes() may live in either file (it is in the header today).
        tiebreak_code = parse_tiebreak(header_code + impl_code)
        doc_entries, doc_tiebreak, block_line = parse_doc_block(doc_raw)

        if not enum_members:
            violations.append(core.Violation(
                header[1], 1, "heap-order", "enum class Order not found"))
        if cases is None:
            violations.append(core.Violation(
                impl[1], 1, "heap-order", "ClusterIndex::key_for not found"))
        if doc_entries is None:
            violations.append(core.Violation(
                doc[1], 1, "heap-order",
                f"machine-readable block '{BLOCK_START} ... -->' not found; "
                f"see DESIGN.md §11"))
        if violations:
            return violations

        case_names = set(cases)
        doc_names = set(doc_entries)
        for name, line in enum_members:
            if name not in case_names:
                violations.append(core.Violation(
                    header[1], line, "heap-order",
                    f"Order::{name} has no case in ClusterIndex::key_for",
                    header_code[line - 1]))
        for name, (exprs, line) in sorted(cases.items()):
            if name not in doc_names:
                violations.append(core.Violation(
                    impl[1], line, "heap-order",
                    f"case Order::{name} is missing from the DESIGN.md "
                    f"vrc-lint:heap-order table", impl_raw[line - 1]))
            elif exprs != doc_entries[name][0]:
                violations.append(core.Violation(
                    impl[1], line, "heap-order",
                    f"Order::{name} key is ({', '.join(exprs)}) in code but "
                    f"({', '.join(doc_entries[name][0])}) in DESIGN.md line "
                    f"{doc_entries[name][1]} — update both in one commit",
                    impl_raw[line - 1]))
        for name, (_exprs, line) in sorted(doc_entries.items()):
            if name not in case_names:
                violations.append(core.Violation(
                    doc[1], line, "heap-order",
                    f"{name} is documented in the vrc-lint:heap-order table "
                    f"but has no case in ClusterIndex::key_for",
                    doc_raw[line - 1]))

        if tiebreak_code is None:
            violations.append(core.Violation(
                impl[1], 1, "heap-order",
                "node tie-break comparison not found in IndexedHeap"))
        elif doc_tiebreak is None:
            violations.append(core.Violation(
                doc[1], block_line, "heap-order",
                "vrc-lint:heap-order block has no 'tiebreak: node asc|desc' "
                "line"))
        elif doc_tiebreak[0] != tiebreak_code:
            violations.append(core.Violation(
                doc[1], doc_tiebreak[1], "heap-order",
                f"documented tie-break '{doc_tiebreak[0]}' does not match "
                f"the code's '{tiebreak_code}' (IndexedHeap::precedes)",
                doc_raw[doc_tiebreak[1] - 1]))
        return violations
