# vrc_lint: the repo's static-analysis framework (DESIGN.md §13).
#
# A shared core (scripts/vrc_lint/core.py) hosts four analyzers:
#   determinism   — bans nondeterminism sources in the simulation core (§8)
#   layering      — enforces the module DAG declared in layering.toml
#   publish-audit — board-visible writes must republish on every path out
#   heap-order    — IndexedHeap comparators must match DESIGN.md §11's table
#
# Entry point: scripts/vrc_lint.py (scripts/lint_determinism.py is a
# back-compat shim for the determinism analyzer alone).
