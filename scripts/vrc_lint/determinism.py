"""Determinism analyzer: statically bans nondeterminism sources in src/.

The reproduction's headline results rest on bit-reproducible simulation runs
(see tests/integration/determinism_fingerprint_test.cc). The runtime
fingerprint goldens catch a nondeterminism bug only after it lands; this
analyzer rejects the usual sources at review time, before a seed-dependent
heisendiff ever reaches the goldens.

Scanned by default: ALL of src/ — the sim core whose execution order feeds
the event loop, the parallel sweep/scenario layer, the fault-injection
subsystem, the metrics/perf-counter layer (its one wall-clock read is
justified inline: write-only observability), and the util/analysis leaves.
Everything under src/ is one lint surface so a new module is covered the day
it lands. Banned constructs:

  wall-clock        std::chrono::{system,steady,high_resolution}_clock,
                    time(NULL)-style calls, clock(), gettimeofday(
  libc-rng          rand(), srand(), random(), drand48()
  random-device     std::random_device (nondeterministic seed source)
  unordered-iter    any use of std::unordered_map / std::unordered_set /
                    std::unordered_multimap / std::unordered_multiset.
                    Hash-table iteration order depends on libstdc++ version,
                    pointer values, and insertion history; in event-order-
                    sensitive code even a lookup-only table invites a later
                    `for (auto& [k, v] : table)`. Use std::map / sorted
                    vectors, or justify with the escape hatch.
  pointer-key       ordered containers keyed on raw pointers
                    (std::set<T*>, std::map<T*, ...>) and std::less<T*> —
                    address order varies run to run under ASLR.
  pointer-compare   relational comparison of addresses-of (&a < &b) used as
                    a tiebreak or sort key.
  uninit-member     scalar class/struct members in headers with no default
                    initializer (`double x_;`): reads of indeterminate
                    values are UB and seed-dependent. Initialize in-class
                    even when a constructor also assigns.
  env-read          getenv() — environment-dependent behavior.

Escape hatch: `// NOLINT-determinism(reason)` on the line or alone directly
above. Policy: the reason must say why the construct cannot affect event
order (e.g. "lookup-only, never iterated" is NOT sufficient for unordered
containers — prefer std::map).
"""

import os
import re

from vrc_lint import core

# Each rule: (name, compiled regex, human message). Applied line-by-line to
# code with comments and string literals blanked out.
RULES = [
    ("wall-clock",
     re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "wall-clock read; simulation time must come from Simulator::now()"),
    ("wall-clock",
     re.compile(r"(?<![\w:.])(time|clock|gettimeofday|clock_gettime)\s*\("),
     "libc wall-clock call; simulation time must come from Simulator::now()"),
    ("libc-rng",
     re.compile(r"(?<![\w:.])(rand|srand|random|drand48|lrand48)\s*\("),
     "libc RNG; use the seeded vrc::sim::Rng instead"),
    ("random-device",
     re.compile(r"std::random_device"),
     "nondeterministic seed source; seeds must be explicit parameters"),
    ("unordered-iter",
     re.compile(r"std::unordered_(map|set|multimap|multiset)\b"),
     "hash-table iteration order is unstable across runs; use std::map or a "
     "sorted vector"),
    ("pointer-key",
     re.compile(r"std::(multi)?(set|map)\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*"),
     "ordered container keyed on a raw pointer; address order varies under "
     "ASLR — key on a stable id instead"),
    ("pointer-key",
     re.compile(r"std::less\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*\s*>"),
     "std::less over raw pointers; address order varies under ASLR"),
    ("pointer-compare",
     re.compile(r"&\s*[A-Za-z_]\w*(\[\w+\])?\s*[<>]=?\s*&\s*[A-Za-z_]\w*"),
     "address comparison as an ordering; varies run to run — compare stable "
     "ids instead"),
    ("env-read",
     re.compile(r"(?<![\w:.])getenv\s*\("),
     "environment read; pass configuration explicitly so runs are "
     "reproducible from the command line alone"),
]

# uninit-member is structural (class bodies only), handled separately.
SCALAR_MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?"
    r"(?:bool|char|short|int|long|float|double|unsigned(?:\s+\w+)?"
    r"|std::u?int(?:8|16|32|64|ptr)_t|u?int(?:8|16|32|64|ptr)_t"
    r"|std::size_t|size_t|std::ptrdiff_t"
    r"|SimTime|EventId|vrc::sim::SimTime|vrc::sim::EventId)"
    r"(?:\s+(?:const\s+)?)"
    r"[A-Za-z_]\w*\s*;\s*$")


class DeterminismAnalyzer(core.Analyzer):
    name = "determinism"
    description = "bans nondeterminism sources (wall clock, libc RNG, " \
                  "unordered iteration, pointer ordering, uninit members)"
    # ALL of src/: the scan set is the whole tree so a new module cannot land
    # outside the lint surface (src/analysis and src/util were blind spots
    # when the set was an explicit directory list).
    default_paths = ("src",)

    def run(self, files, root):
        violations = []
        for full, rel in files:
            violations.extend(self._lint_file(full, rel))
        return violations

    def _lint_file(self, full, rel):
        raw_lines = core.read_lines(full)
        code_lines = core.blank_comments_and_strings(raw_lines)
        violations = []
        for index, code in enumerate(code_lines):
            for rule, pattern, message in RULES:
                if pattern.search(code):
                    violations.append(core.Violation(
                        rel, index + 1, rule, message, raw_lines[index]))
        mask = core.in_class_body_mask(code_lines)
        for index, code in enumerate(code_lines):
            if not mask[index]:
                continue
            if "static" in code or "constexpr" in code or "using" in code:
                continue
            if SCALAR_MEMBER_RE.match(code):
                violations.append(core.Violation(
                    rel, index + 1, "uninit-member",
                    "scalar member without a default initializer; reads "
                    "of indeterminate values are seed-dependent UB",
                    raw_lines[index]))
        return violations

    def extra_self_test(self, root):
        """Recursive discovery over src/ must cover the files whose execution
        order is most load-bearing — a discovery regression would silently
        drop them from the lint — including the former blind spots
        (src/util, src/analysis) this scan-set closes."""
        failures = []
        scanned = {rel for _full, rel in
                   core.collect_files(list(self.default_paths), root,
                                      self.extensions)}
        for required in ("src/cluster/cluster_index.h",
                         "src/cluster/cluster_index.cc",
                         "src/cluster/load_index.cc",
                         "src/cluster/workstation.cc",
                         "src/cluster/node_activity.h",
                         "src/metrics/perf_counters.h",
                         "src/metrics/perf_counters.cc",
                         "src/util/log.cc",
                         "src/util/flags.cc",
                         "src/analysis/model.cc",
                         "src/sim/simulator.cc",
                         "src/runner/sweep_runner.cc",
                         "src/faults/injector.cc"):
            if required not in scanned:
                failures.append(f"default scan set is missing {required}")
        # The scan set must be the whole of src/ — an explicit allowlist of
        # subdirectories is exactly how src/util and src/analysis fell out.
        for entry in sorted(os.listdir(os.path.join(root, "src"))):
            subdir = os.path.join(root, "src", entry)
            if not os.path.isdir(subdir):
                continue
            covered = any(rel.startswith(f"src/{entry}/") for rel in scanned)
            has_sources = any(
                name.endswith(self.extensions)
                for _dir, _subdirs, names in os.walk(subdir) for name in names)
            if has_sources and not covered:
                failures.append(f"src/{entry} has sources but is not scanned")
        return failures
