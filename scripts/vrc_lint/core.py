"""Shared core of the vrc_lint static-analysis framework.

Hosts everything the analyzers have in common so each analyzer is only its
rules: recursive file discovery, comment/string blanking, class-body and
class-name masking for structural rules, the per-analyzer
``NOLINT-<analyzer>(reason)`` escape hatch, the seeded-fixture self-test
harness, and the unified CLI (``vrc_lint.py``).

Analyzer contract
-----------------
An analyzer subclasses :class:`Analyzer` and implements ``run(files, root)``
returning :class:`Violation` objects. ``files`` is the discovered
``(absolute, repo-relative)`` list; analyzers that need whole-program context
(layering's include graph, heap-order's code-vs-doc diff) receive the full
set in one call rather than file at a time. Violations on lines carrying a
valid ``NOLINT-<name>(reason)`` are suppressed by the core; an *empty* reason
is itself an error so suppressions cannot rot in place.

Fixtures
--------
Each analyzer owns seeded fixtures under ``scripts/testdata/vrc_lint/<name>/``:
every fixture line tagged ``SEED: <rule>`` must be reported with exactly that
rule and nothing else may be reported; a ``clean`` fixture must produce zero
findings. ``vrc_lint.py --self-test`` runs every analyzer's fixtures, so a
refactor that silently stops detecting a category fails CI.

Exit status: 0 clean, 1 violations found, 2 internal/usage error.
Stdlib-only; no third-party dependencies.
"""

import argparse
import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

SEED_RE = re.compile(r"SEED:\s*([\w-]+)")


class Violation:
    """One finding: a file/line, the rule that fired, and the message."""

    def __init__(self, path, line_number, rule, message, line_text=""):
        self.path = path
        self.line_number = line_number
        self.rule = rule
        self.message = message
        self.line_text = line_text

    def __str__(self):
        text = f"{self.path}:{self.line_number}: [{self.rule}] {self.message}"
        if self.line_text.strip():
            text += f"\n    {self.line_text.strip()}"
        return text


class Nolint:
    """Per-analyzer ``NOLINT-<name>(reason)`` escape-hatch handling.

    A suppression is valid on the offending line or alone on the line
    directly above. The reason is mandatory; ``NOLINT-<name>()`` is an error
    even when no rule fired on that line, so a reasonless suppression cannot
    silently rot in place.
    """

    def __init__(self, analyzer_name):
        self.pattern = re.compile(
            r"//\s*NOLINT-" + re.escape(analyzer_name) + r"\((?P<reason>[^)]*)\)")

    def reason(self, raw_lines, index):
        """The suppression reason covering line `index`, or None."""
        match = self.pattern.search(raw_lines[index])
        if match is None and index > 0:
            prev = raw_lines[index - 1].strip()
            prev_match = self.pattern.search(prev)
            if prev_match and prev.startswith("//"):
                match = prev_match
        if match is None:
            return None
        reason = match.group("reason").strip()
        return reason or None

    def empty_reason_violations(self, display, raw_lines, analyzer_name):
        """Every reasonless suppression in the file, as violations."""
        violations = []
        for index, raw in enumerate(raw_lines):
            match = self.pattern.search(raw)
            if match and not match.group("reason").strip():
                violations.append(Violation(
                    display, index + 1, "empty-nolint",
                    f"NOLINT-{analyzer_name} requires a non-empty reason", raw))
        return violations


def blank_comments_and_strings(lines):
    """Returns lines with comments and string/char literals overwritten by
    spaces, so rules never fire on prose. Tracks /* */ across lines; raw
    strings are rare in this codebase and handled as plain strings."""
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        in_string = None  # '"' or "'" while inside a literal
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block_comment:
                if ch == "*" and nxt == "/":
                    in_block_comment = False
                    result.append("  ")
                    i += 2
                    continue
                result.append(" ")
                i += 1
                continue
            if in_string:
                if ch == "\\":
                    result.append("  ")
                    i += 2
                    continue
                if ch == in_string:
                    in_string = None
                result.append(" ")
                i += 1
                continue
            if ch == "/" and nxt == "/":
                result.append(" " * (n - i))
                break
            if ch == "/" and nxt == "*":
                in_block_comment = True
                result.append("  ")
                i += 2
                continue
            if ch in "\"'":
                in_string = ch
                result.append(" ")
                i += 1
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


CLASS_HEAD_RE = re.compile(
    r"(template\s*<.*>\s*)?(class|struct)\s+([A-Za-z_]\w*)")


def class_regions(code_lines):
    """Per-line innermost class/struct context.

    Returns a list (one entry per line) of ``(class_name, body_flag)`` where
    ``class_name`` is the innermost open class/struct (None at namespace or
    function scope) and ``body_flag`` is True when the line sits directly in
    that class's body — i.e. at member-declaration depth, not inside a member
    function body. Brace-counting best effort, same approach the determinism
    linter has used since PR 3."""
    regions = []
    depth = 0
    stack = []  # (class_name, brace depth at which its body opened)
    pending = None
    for line in code_lines:
        name = stack[-1][0] if stack else None
        in_body = bool(stack) and depth == stack[-1][1] + 1
        regions.append((name, in_body))
        stripped = line.strip()
        head = CLASS_HEAD_RE.match(stripped)
        if head and not stripped.endswith(";"):
            pending = head.group(3)
        for ch in line:
            if ch == "{":
                if pending is not None:
                    stack.append((pending, depth))
                    pending = None
                depth += 1
            elif ch == "}":
                depth -= 1
                if stack and depth == stack[-1][1]:
                    stack.pop()
        if pending is not None and stripped.endswith(";"):
            pending = None  # forward declaration
    return regions


def in_class_body_mask(code_lines):
    """Per-line flag: inside a class/struct body but not inside a member
    function body (drives structural member rules)."""
    return [in_body for _name, in_body in class_regions(code_lines)]


def read_lines(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            return fh.read().splitlines()
    except OSError as err:
        raise RuntimeError(f"cannot read {path}: {err}")


def collect_files(paths, root, extensions=SOURCE_EXTENSIONS):
    """Expands files/directories into a sorted (absolute, relative) list."""
    files = []
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            files.append((full, os.path.relpath(full, root)))
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(extensions):
                        file_path = os.path.join(dirpath, name)
                        files.append((file_path, os.path.relpath(file_path, root)))
        else:
            raise RuntimeError(f"no such file or directory: {full}")
    files.sort(key=lambda pair: pair[1])
    return files


class Analyzer:
    """Base class: name, scan scope, and the run() hook."""

    #: Analyzer name; also the NOLINT suffix (``NOLINT-<name>(reason)``).
    name = ""
    description = ""
    #: Default scan scope (repo-relative files or directories).
    default_paths = ()
    #: File extensions the discovery walk keeps for this analyzer.
    extensions = SOURCE_EXTENSIONS
    #: Whether explicit CLI paths override the default scope. Analyzers that
    #: need whole-program context (layering, heap-order) ignore CLI paths and
    #: always scan their fixed scope.
    accepts_paths = True

    def __init__(self):
        self.nolint = Nolint(self.name)

    def collect(self, root, paths=None):
        if paths and not self.accepts_paths:
            paths = None
        return collect_files(paths or list(self.default_paths), root,
                             self.extensions)

    def run(self, files, root):
        raise NotImplementedError

    def filtered_run(self, files, root):
        """run() with NOLINT suppression applied + empty-reason errors."""
        raw_cache = {}

        def raw_for(rel, full_by_rel={f[1]: f[0] for f in files}):
            if rel not in raw_cache:
                full = full_by_rel.get(rel)
                raw_cache[rel] = read_lines(full) if full else []
            return raw_cache[rel]

        violations = []
        for violation in self.run(files, root):
            raw = raw_for(violation.path)
            index = violation.line_number - 1
            if 0 <= index < len(raw) and self.nolint.reason(raw, index):
                continue
            violations.append(violation)
        for _full, rel in files:
            violations.extend(self.nolint.empty_reason_violations(
                rel, raw_for(rel), self.name))
        # Deterministic report order regardless of rule evaluation order.
        violations.sort(key=lambda v: (v.path, v.line_number, v.rule))
        return violations

    # --- self-test -------------------------------------------------------

    def fixture_dir(self, root):
        return os.path.join(root, "scripts", "testdata", "vrc_lint",
                            self.name.replace("-", "_"))

    def self_test(self, root):
        """Failure messages from this analyzer's seeded fixtures (both the
        SEED-tagged violation set and the clean set) plus any analyzer-
        specific extra assertions."""
        failures = []
        fixture_root = self.fixture_dir(root)
        if not os.path.isdir(fixture_root):
            return [f"{self.name}: fixture directory missing: {fixture_root}"]
        failures.extend(self.check_seeded_case(root, self.violations_case(root)))
        failures.extend(self.check_clean_case(root, self.clean_case(root)))
        failures.extend(self.extra_self_test(root))
        return [f"{self.name}: {failure}" for failure in failures]

    def violations_case(self, root):
        """Path(s) of the seeded-violations fixture (file or directory)."""
        base = self.fixture_dir(root)
        for candidate in ("violations", "violations.cc"):
            path = os.path.join(base, candidate)
            if os.path.exists(path):
                return [path]
        return [base]

    def clean_case(self, root):
        base = self.fixture_dir(root)
        for candidate in ("clean", "clean.cc"):
            path = os.path.join(base, candidate)
            if os.path.exists(path):
                return [path]
        return [base]

    def check_seeded_case(self, root, paths):
        """Every SEED-tagged fixture line must be reported with exactly that
        rule; no untagged line may be reported."""
        failures = []
        files = collect_files(paths, root, self.extensions)
        expected = {}
        for full, rel in files:
            for line_number, line in enumerate(read_lines(full), start=1):
                match = SEED_RE.search(line)
                if match:
                    expected[(rel, line_number)] = match.group(1)
        found = {}
        for violation in self.filtered_run(files, root):
            found.setdefault(
                (violation.path, violation.line_number), []).append(violation.rule)
        for key, rule in sorted(expected.items()):
            if rule not in found.get(key, []):
                failures.append(f"{key[0]}:{key[1]}: expected rule '{rule}', "
                                f"got {found.get(key, [])}")
        for key, rules in sorted(found.items()):
            if key not in expected:
                failures.append(f"{key[0]}:{key[1]}: unexpected finding(s) {rules}")
        return failures

    def check_clean_case(self, root, paths):
        files = collect_files(paths, root, self.extensions)
        return [f"clean fixture: unexpected finding: {violation}"
                for violation in self.filtered_run(files, root)]

    def extra_self_test(self, root):
        return []


def registry():
    """All analyzers in canonical run order. Imported lazily so the shim can
    import core without dragging every analyzer in."""
    from vrc_lint import determinism, heap_order, layering, publish_audit
    return [determinism.DeterminismAnalyzer(),
            layering.LayeringAnalyzer(),
            publish_audit.PublishAuditAnalyzer(),
            heap_order.HeapOrderAnalyzer()]


def default_root():
    """Repo root: parent of the scripts/ directory holding this package."""
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def main(argv=None, only_analyzer=None):
    analyzers = registry()
    names = [analyzer.name for analyzer in analyzers]
    parser = argparse.ArgumentParser(
        prog="vrc_lint.py" if only_analyzer is None else None,
        description="static-analysis framework for the vrcluster repo "
                    "(DESIGN.md §13)")
    if only_analyzer is None:
        parser.add_argument("--analyzer", action="append", default=[],
                            choices=names, metavar="NAME",
                            help=f"run only this analyzer (repeatable); "
                                 f"one of: {', '.join(names)}")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (analyzers "
                             "needing whole-program context — layering, "
                             "heap-order — always scan their fixed scope)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every selected analyzer's seeded-fixture "
                             "self-test and exit")
    parser.add_argument("--list-files", action="store_true",
                        help="print the file set each selected analyzer "
                             "would scan and exit")
    args = parser.parse_args(argv)

    root = args.root or default_root()
    selected_names = ([only_analyzer] if only_analyzer
                      else args.analyzer or names)
    selected = [analyzer for analyzer in analyzers
                if analyzer.name in selected_names]

    if args.self_test:
        failures = []
        seeded = 0
        for analyzer in selected:
            result = analyzer.self_test(root)
            failures.extend(result)
            files = collect_files(analyzer.violations_case(root), root,
                                  analyzer.extensions)
            for full, _rel in files:
                for line in read_lines(full):
                    if SEED_RE.search(line):
                        seeded += 1
        if failures:
            print("vrc_lint self-test FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"vrc_lint self-test passed: {len(selected)} analyzer(s), "
              f"{seeded} seeded violations detected, clean fixtures clean.")
        return 0

    if args.list_files:
        try:
            for analyzer in selected:
                for _full, rel in analyzer.collect(root, args.paths):
                    if len(selected) == 1:
                        print(rel)
                    else:
                        print(f"{analyzer.name}\t{rel}")
        except RuntimeError as err:
            print(f"vrc_lint: {err}", file=sys.stderr)
            return 2
        return 0

    all_violations = []
    try:
        for analyzer in selected:
            files = analyzer.collect(root, args.paths)
            for violation in analyzer.filtered_run(files, root):
                all_violations.append((analyzer.name, violation))
    except RuntimeError as err:
        print(f"vrc_lint: {err}", file=sys.stderr)
        return 2

    if all_violations:
        print(f"vrc_lint: {len(all_violations)} violation(s):\n",
              file=sys.stderr)
        for name, violation in all_violations:
            print(f"{name}: {violation}", file=sys.stderr)
        print("\nSuppress a justified use with "
              "`// NOLINT-<analyzer>(reason)` — see DESIGN.md §13.",
              file=sys.stderr)
        return 1
    scanned = ", ".join(analyzer.name for analyzer in selected)
    print(f"vrc_lint: clean ({scanned}).")
    return 0
