"""Publish-audit analyzer: board-visible writes must republish before exit.

The VRC board protocol (DESIGN.md §5, §13.3) caches per-node load state in
`Workstation`'s snapshot fields and `LoadInfoBoard`'s rows; every mutation of
that state must be followed by a republish (`publish_index()`,
`publish_to_board()`, `LoadInfoBoard::publish()`) before control leaves the
member function, or the board serves stale aggregates until the next
exchange. PR 6's fault-blind-aggregate bug was exactly this shape. The
contract is annotated in the headers and enforced here:

  ``// vrc:board-visible``  on a field declaration: writes to this field are
                            audited.
  ``// vrc:publish-fn``     on a member-function declaration: calling it
                            counts as republishing (the function itself is
                            exempt from auditing).
  ``// vrc:must-publish``   on a member-function declaration: the definition
                            must contain at least one publish call
                            (rule ``missing-publish``) — used for functions
                            like Cluster::fail_node whose whole job is a
                            state flip plus rebroadcast.

The check is textual, not control-flow-accurate, by design: events are
collected in (line, column) order inside each member-function body —
mutations of annotated fields, publish calls, and exits (every ``return``
plus the closing brace). For each exit, the last mutation textually before
it must be followed by a publish call textually before the exit (rule
``publish-audit``). This accepts the codebase's real shapes (early returns
before any write, a conditional ``if (dirty) publish_index();`` directly
ahead of the final return) while catching the dangerous one: a write with no
publish between it and a way out.

Mutations recognized: assignment and compound assignment (optionally through
one subscript, ``infos_[n] = ...``), ``++``/``--``, mutating container
methods (push_back, emplace_back, pop_back, clear, erase, insert, emplace,
resize, assign, swap, reserve), ``std::move(field)``, and binding a
non-const reference to the field (``LoadInfo& info = infos_[node];`` — the
alias may be written through later, so the binding itself is conservatively
treated as a write). Range-for bindings use ``:`` not ``=`` and do not
match. Constructors and destructors are exempt (the object is not yet / no
longer board-visible).

Escape hatch: ``// NOLINT-publish-audit(reason)`` on the flagged line.
"""

import re

from vrc_lint import core

ANNOTATION_RE = re.compile(r"//\s*vrc:(board-visible|publish-fn|must-publish)")
FIELD_DECL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")
METHOD_NAME_RE = re.compile(r"\b(~?[A-Za-z_]\w*)\s*\(")

MUTATING_METHODS = ("push_back|emplace_back|pop_back|clear|erase|insert"
                    "|emplace|resize|assign|swap|reserve")


class ClassContract:
    """Annotated surface of one class: audited fields + publish functions."""

    def __init__(self, name):
        self.name = name
        self.fields = []        # annotated field names
        self.publish_fns = []   # calling one of these counts as republishing
        self.must_publish = []  # these definitions must contain a publish
        self._mutation_re = None
        self._publish_re = None

    def mutation_re(self):
        if self._mutation_re is None and self.fields:
            field = r"(?P<field>\b(?:" + "|".join(
                re.escape(f) for f in self.fields) + r")\b)"
            sub = r"(?:\s*\[[^\]]*\])?"
            self._mutation_re = re.compile(
                "|".join((
                    field + sub + r"\s*(?:[+\-*/%&|^]=|<<=|>>=|=(?!=))",
                    r"(?:\+\+|--)\s*" + field.replace("?P<field>", "?P<fieldb>"),
                    field.replace("?P<field>", "?P<fieldc>")
                    + sub + r"\s*(?:\+\+|--)",
                    field.replace("?P<field>", "?P<fieldd>")
                    + sub + r"\.(?:" + MUTATING_METHODS + r")\s*\(",
                    r"std::move\s*\(\s*"
                    + field.replace("?P<field>", "?P<fielde>"),
                    r"&\s*[A-Za-z_]\w*\s*=(?!=)[^;]*"
                    + field.replace("?P<field>", "?P<fieldf>"),
                )))
        return self._mutation_re

    def publish_re(self):
        if self._publish_re is None and self.publish_fns:
            self._publish_re = re.compile(
                r"\b(?:" + "|".join(re.escape(f) for f in self.publish_fns)
                + r")\s*\(")
        return self._publish_re


def collect_contracts(files):
    """First pass: every vrc: annotation, grouped by enclosing class."""
    contracts = {}
    for full, rel in files:
        raw_lines = core.read_lines(full)
        code_lines = core.blank_comments_and_strings(raw_lines)
        regions = core.class_regions(code_lines)
        for index, raw in enumerate(raw_lines):
            match = ANNOTATION_RE.search(raw)
            if not match:
                continue
            kind = match.group(1)
            # The annotation covers the declaration on its own line, or the
            # next line when it sits alone on a comment line.
            decl_index = index
            if not code_lines[index].strip() and index + 1 < len(code_lines):
                decl_index = index + 1
            class_name, in_body = regions[decl_index]
            if class_name is None or not in_body:
                continue  # annotation outside a class body: inert
            contract = contracts.setdefault(class_name,
                                            ClassContract(class_name))
            code = code_lines[decl_index]
            if kind == "board-visible":
                decl = FIELD_DECL_RE.search(code)
                if decl:
                    contract.fields.append(decl.group(1))
            else:
                name = METHOD_NAME_RE.search(code)
                if name:
                    target = (contract.publish_fns if kind == "publish-fn"
                              else contract.must_publish)
                    target.append(name.group(1))
    return contracts


class FunctionBody:
    def __init__(self, contract, method, rel, def_index):
        self.contract = contract
        self.method = method
        self.rel = rel
        self.def_index = def_index   # 0-based line of the definition
        self.lines = []              # (0-based line index, code text)


def find_function_bodies(code_lines, rel, contracts):
    """Second pass: member-function definitions of annotated classes.

    Handles both out-of-line definitions (``Ret Class::method(...) {``) and
    in-class inline definitions. Definitions are only matched outside any
    already-open function body, so qualified calls inside bodies cannot
    false-positive. Bodies whose opening brace never arrives (declarations,
    ``= default``) are skipped.
    """
    class_names = "|".join(re.escape(name) for name in contracts)
    out_of_line_re = re.compile(
        r"\b(?P<cls>" + class_names + r")::(?P<name>~?[A-Za-z_]\w*)\s*\(")
    regions = core.class_regions(code_lines)

    bodies = []
    depth = 0
    current = None          # FunctionBody being collected
    body_open_depth = None  # depth at which current's body opened
    pending = None          # (FunctionBody) awaiting its opening '{'
    pending_paren = 0

    for index, code in enumerate(code_lines):
        start_col = 0
        if current is None and pending is None:
            match = out_of_line_re.search(code)
            cls = name = None
            if match:
                cls, name = match.group("cls"), match.group("name")
            else:
                class_name, in_body = regions[index]
                if in_body and class_name in contracts:
                    inline = METHOD_NAME_RE.search(code)
                    # Require the parens to look like a parameter list that
                    # could open a body on this or a later line (not a pure
                    # declaration ending in ';' before any '{').
                    if inline:
                        cls, name = class_name, inline.group(1)
            if cls is not None:
                pending = FunctionBody(contracts[cls], name, rel, index)
                pending_paren = 0
        if pending is not None:
            # Scan forward for the body's '{' (after the parameter list and
            # any const/noexcept/member-init list); a ';' at paren depth 0
            # first means declaration — drop it.
            for col, ch in enumerate(code[start_col:], start=start_col):
                if ch == "(":
                    pending_paren += 1
                elif ch == ")":
                    pending_paren -= 1
                elif ch == ";" and pending_paren <= 0:
                    pending = None
                    break
                elif ch == "{" and pending_paren <= 0:
                    current = pending
                    pending = None
                    body_open_depth = depth
                    break
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if current is not None and depth == body_open_depth:
                    current.lines.append((index, code))
                    bodies.append(current)
                    current = None
        if current is not None:
            current.lines.append((index, code))
    return bodies


RETURN_RE = re.compile(r"\breturn\b")


class PublishAuditAnalyzer(core.Analyzer):
    name = "publish-audit"
    description = "writes to // vrc:board-visible fields must republish " \
                  "before every exit"
    default_paths = ("src/cluster",)
    # Annotations live in headers, definitions in .cc files; the analyzer
    # needs both halves together, so CLI paths do not restrict it.
    accepts_paths = False

    def run(self, files, root):
        contracts = collect_contracts(files)
        violations = []
        if not contracts:
            return violations
        for full, rel in files:
            code_lines = core.blank_comments_and_strings(core.read_lines(full))
            for body in find_function_bodies(code_lines, rel, contracts):
                violations.extend(self._check_body(body))
        return violations

    def _check_body(self, body):
        contract = body.contract
        method = body.method
        if method == contract.name or method.startswith("~"):
            return []  # constructors/destructors: not yet / no longer visible
        if method in contract.publish_fns:
            return []  # the publisher itself writes the fields it publishes

        mutation_re = contract.mutation_re()
        publish_re = contract.publish_re()
        events = []  # (line_index, col, kind, field)
        for index, code in body.lines:
            if mutation_re is not None:
                for match in mutation_re.finditer(code):
                    if (match.lastgroup == "fieldf"
                            and re.search(r"\bconst\b[\w\s:<>,]*$",
                                          code[:match.start()])):
                        continue  # const ref binding is a read, not a write
                    field = match.group(match.lastgroup)
                    events.append((index, match.start(), "mutate", field))
            if publish_re is not None:
                for match in publish_re.finditer(code):
                    events.append((index, match.start(), "publish", None))
            for match in RETURN_RE.finditer(code):
                events.append((index, match.start(), "exit", None))
        close_index, close_code = body.lines[-1]
        events.append((close_index, len(close_code), "exit", None))
        events.sort(key=lambda e: (e[0], e[1]))

        violations = []
        if method in contract.must_publish:
            if not any(kind == "publish" for _l, _c, kind, _f in events):
                violations.append(core.Violation(
                    body.rel, body.def_index + 1, "missing-publish",
                    f"{contract.name}::{method} is annotated vrc:must-publish "
                    f"but contains no call to "
                    f"{' / '.join(contract.publish_fns) or '<no publish-fn>'}"))

        flagged = set()
        for exit_pos, event in enumerate(events):
            if event[2] != "exit":
                continue
            last_mutation = None
            published_after = False
            for prior in events[:exit_pos]:
                if prior[2] == "mutate":
                    last_mutation = prior
                    published_after = False
                elif prior[2] == "publish":
                    published_after = True
            if last_mutation is not None and not published_after:
                key = (last_mutation[0], last_mutation[3])
                if key not in flagged:
                    flagged.add(key)
                    violations.append(core.Violation(
                        body.rel, last_mutation[0] + 1, "publish-audit",
                        f"{contract.name}::{method} writes board-visible "
                        f"field '{last_mutation[3]}' with no "
                        f"{' / '.join(contract.publish_fns) or 'publish'} "
                        f"call before the exit at line {event[0] + 1}"))
        return violations

    def extra_self_test(self, root):
        """The real tree must actually carry the contract — if someone strips
        the annotations the analyzer silently audits nothing."""
        files = self.collect(root)
        contracts = collect_contracts(files)
        failures = []
        for cls, needs_fields in (("Workstation", True),
                                  ("LoadInfoBoard", True),
                                  ("Cluster", False)):
            if cls not in contracts:
                failures.append(f"no vrc: annotations found for {cls} "
                                f"in src/cluster")
                continue
            if needs_fields and not contracts[cls].fields:
                failures.append(f"{cls} has no vrc:board-visible fields")
            if not contracts[cls].publish_fns:
                failures.append(f"{cls} has no vrc:publish-fn")
        if "Cluster" in contracts and not contracts["Cluster"].must_publish:
            failures.append("Cluster has no vrc:must-publish functions")
        return failures
