// Clean fixture for scripts/lint_determinism.py --self-test: zero findings
// expected. Exercises the false-positive guards — banned names inside
// comments and string literals, the NOLINT-determinism escape hatch (same
// line and preceding line), locally-named lookalikes, and members with
// default initializers.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using SimTime = double;

namespace fixture {

// Prose mentions of rand(), time(), std::random_device, and
// std::unordered_map must not trip the linter; neither must /* srand(7) */.
const char* kBannedNamesInStrings =
    "call rand() or time(nullptr) or iterate an std::unordered_map";

// Same-line escape hatch with a mandatory reason.
std::unordered_map<std::string, int> g_symbol_ids;  // NOLINT-determinism(ids assigned once at startup in file order; table is never iterated)

// Preceding-line escape hatch.
// NOLINT-determinism(scratch table rebuilt per query; results are sorted before use)
std::unordered_map<int, double> g_scratch;

int lookalike_names(int operand) {
  int random_count = 0;          // identifier containing "random" is fine
  int time_budget_ms = operand;  // identifier containing "time" is fine
  double uptime(double);         // declaration, not a call of time(
  (void)uptime;
  return random_count + time_budget_ms;
}

// Deterministic replacements for the banned constructs.
std::map<int, double> ordered_lookup;

class FullyInitialized {
 public:
  double elapsed() const { return end_ - start_; }

 private:
  SimTime start_ = 0.0;
  SimTime end_{0.0};
  bool running_ = false;
  std::vector<int> history_;  // non-scalar members need no initializer
};

}  // namespace fixture
