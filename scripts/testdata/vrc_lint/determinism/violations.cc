// Seeded-violation fixture for scripts/lint_determinism.py --self-test.
//
// Every line tagged `// SEED: <rule>` must be flagged with exactly that rule;
// no other line may be flagged. This file is never compiled — it exists only
// so the linter's regexes are themselves under test and a refactor that
// silently stops detecting a category fails CI.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

using SimTime = double;

namespace fixture {

double wall_clock_reads() {
  auto a = std::chrono::system_clock::now();          // SEED: wall-clock
  auto b = std::chrono::steady_clock::now();          // SEED: wall-clock
  auto c = std::chrono::high_resolution_clock::now(); // SEED: wall-clock
  std::time_t d = time(nullptr);                      // SEED: wall-clock
  long e = clock();                                   // SEED: wall-clock
  (void)a; (void)b; (void)c; (void)d;
  return static_cast<double>(e);
}

int libc_rng() {
  srand(42);                // SEED: libc-rng
  int r = rand();           // SEED: libc-rng
  double d = drand48();     // SEED: libc-rng
  return r + static_cast<int>(d);
}

unsigned nondeterministic_seed() {
  std::random_device device;  // SEED: random-device
  return device();
}

int unordered_iteration(int key) {
  std::unordered_map<int, int> table;       // SEED: unordered-iter
  std::unordered_set<int> members;          // SEED: unordered-iter
  std::unordered_multimap<int, int> multi;  // SEED: unordered-iter
  (void)members;
  (void)multi;
  return table[key];
}

struct Job { int id; };

void pointer_ordering(Job* lhs, Job* rhs) {
  std::set<Job*> by_address;                      // SEED: pointer-key
  std::map<Job*, int> ranks;                      // SEED: pointer-key
  std::set<int, std::less<int*>> weird;           // SEED: pointer-key
  bool before = &lhs < &rhs;                      // SEED: pointer-compare
  (void)by_address; (void)ranks; (void)weird; (void)before;
}

const char* environment_read() {
  return getenv("VRC_TRACE_DIR");  // SEED: env-read
}

class UninitializedMembers {
 public:
  int initialized_ = 0;

 private:
  double speed_;     // SEED: uninit-member
  bool enabled_;     // SEED: uninit-member
  SimTime deadline_; // SEED: uninit-member
};

void empty_reason() {
  std::unordered_set<int> cache;  // NOLINT-determinism() SEED: empty-nolint
  (void)cache;
}

}  // namespace fixture
