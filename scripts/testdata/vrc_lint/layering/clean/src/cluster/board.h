// Clean fixture: downward include only (cluster -> util), plus a same-module
// include, both legal.
#pragma once

#include "cluster/board_fwd.h"
#include "util/tiny.h"

namespace fixture {
inline int board() { return 2; }
}  // namespace fixture
