// Clean fixture: same-module include target.
#pragma once

namespace fixture {
int board();
}  // namespace fixture
