// Clean fixture: the top layer uses its whole declared dependency set, and a
// justified NOLINT-layering keeps one historical edge quiet.
#include "cluster/board.h"
#include "util/tiny.h"

namespace fixture {
int engine() { return board() + tiny(); }
}  // namespace fixture
