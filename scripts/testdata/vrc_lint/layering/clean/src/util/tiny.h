// Clean fixture: the leaf layer includes nothing project-local. System
// includes and unresolvable paths are ignored by the analyzer.
#pragma once

#include <vector>

namespace fixture {
inline int tiny() { return 1; }
}  // namespace fixture
