// Clean fixture: a back-edge with a reasoned NOLINT-layering is suppressed —
// the escape hatch must keep the clean fixture clean.
#pragma once

// NOLINT-layering(grandfathered edge kept to exercise the escape hatch)
#include "cluster/board.h"

namespace fixture {
inline int escape() { return board(); }
}  // namespace fixture
