// Clean fixture: tests/ is unrestricted; an upward include here is legal.
#include "core/engine.h"
#include "util/tiny.h"

int main() { return fixture::tiny(); }
