// Fixture: the bottom layer reaching UP into cluster is the classic
// back-edge the analyzer exists to catch.
#pragma once

#include "cluster/board.h"  // SEED: layering

namespace fixture {
inline int tiny() { return 1; }
}  // namespace fixture
