// Fixture: a mid-layer back-edge (cluster -> core) and a suppressed one —
// the NOLINT-layering escape hatch must keep the suppressed line silent even
// in a violations fixture.
#include "cluster/board.h"

#include "core/engine.h"  // SEED: layering

// NOLINT-layering(transitional: engine split tracked in the fixture story)
#include "core/engine.h"

namespace fixture {
int board_impl() { return board(); }
}  // namespace fixture
