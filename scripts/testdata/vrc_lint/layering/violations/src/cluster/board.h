// Fixture: a legal downward include (cluster -> util) plus an include whose
// target maps to no declared module.
#pragma once

#include "util/tiny.h"

#include "misc/stray.h"  // SEED: unassigned-module

namespace fixture {
inline int board() { return 2; }
}  // namespace fixture
