// SEED: unassigned-module  (this file matches no module in the fixture DAG)
#pragma once

namespace fixture {
inline int stray() { return 4; }
}  // namespace fixture
