// Fixture: the top layer may include everything below it.
#pragma once

#include "cluster/board.h"
#include "util/tiny.h"

namespace fixture {
inline int engine() { return 3; }
}  // namespace fixture
