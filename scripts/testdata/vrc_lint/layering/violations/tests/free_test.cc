// Fixture: tests/ is unrestricted — an upward include here is NOT a
// violation, so this file must produce no findings.
#include "cluster/board.h"
#include "core/engine.h"
#include "util/tiny.h"

int main() { return fixture::engine(); }
