// Seeded fixture bodies: each SEED line is a board-visible write that can
// reach an exit without a republish, or a vrc:must-publish definition with
// no publish call at all.
#include "board.h"

#include <utility>

namespace fixture {

void Board::publish() {
  // The publisher itself is exempt: it rewrites state while broadcasting.
  untracked_ = static_cast<int>(value_);
}

void Board::bump() {
  ++value_;  // SEED: publish-audit
}

void Board::drain() {
  if (rows_.empty()) return;
  rows_.clear();  // SEED: publish-audit
}

// Early return before any write, then write + publish: clean.
void Board::note(int n) {
  if (n < 0) return;
  rows_.push_back(Row{});
  publish();
}

void Board::alias_write(int n) {
  Row& row = rows_[static_cast<std::size_t>(n)];  // SEED: publish-audit
  row.slots_used++;
}

std::vector<Row> Board::take_rows() {
  std::vector<Row> out = std::move(rows_);  // SEED: publish-audit
  return out;
}

void Board::bulk_import(std::vector<Row> rows) {
  // NOLINT-publish-audit(caller batches imports and publishes once at the end)
  rows_ = std::move(rows);
}

void Board::noop() {
  // NOLINT-publish-audit()  SEED: empty-nolint
}

void Board::rebroadcast_all() { publish(); }

void Board::silent_flip() {  // SEED: missing-publish
  untracked_ = 1;
}

}  // namespace fixture
