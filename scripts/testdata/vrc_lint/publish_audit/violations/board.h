// Seeded fixture for the publish-audit analyzer: a miniature board-visible
// class exercising every mutation kind the analyzer recognizes.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

struct Row {
  int slots_used = 0;
};

class Board {
 public:
  void publish();  // vrc:publish-fn

  // Inline write with no publish before the implicit exit.
  void set_value(int v) { value_ = v; }  // SEED: publish-audit

  // Inline write followed by a publish: clean.
  void set_value_published(int v) {
    value_ = v;
    publish();
  }

  void bump();
  void drain();
  void note(int n);
  void alias_write(int n);
  std::vector<Row> take_rows();
  void bulk_import(std::vector<Row> rows);
  void noop();
  void rebroadcast_all();  // vrc:must-publish
  void silent_flip();      // vrc:must-publish

  int value() const { return static_cast<int>(value_); }

 private:
  std::int64_t value_ = 0;  // vrc:board-visible
  std::vector<Row> rows_;   // vrc:board-visible
  int untracked_ = 0;
};

}  // namespace fixture
