// Clean fixture bodies: the codebase's real shapes — conditional publish
// directly ahead of the implicit exit (Workstation::tick), early return
// before any write, reads through const refs and range-for.
#include "board.h"

namespace fixture {

void Board::publish() { scratch_ = value_; }

void Board::tick() {
  bool dirty = false;
  if (value_ > 0) {
    --value_;
    dirty = true;
  }
  if (dirty) publish();
}

void Board::set_and_publish(int v) {
  if (v == value_) return;
  value_ = v;
  publish();
}

void Board::reset() {
  rows_.clear();
  value_ = 0;
  publish();
}

void Board::untracked_write(int v) { scratch_ = v; }

int Board::first_row() const {
  const int& front = rows_[0];
  return front;
}

int Board::sum() const {
  int total = 0;
  for (const auto& row : rows_) total += row;
  return total;
}

}  // namespace fixture
