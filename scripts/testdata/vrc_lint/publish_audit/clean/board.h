// Clean fixture for the publish-audit analyzer: every board-visible write
// republishes before exit, and the recognized read shapes (const ref
// binding, range-for, untracked fields) produce no findings.
#pragma once

#include <vector>

namespace fixture {

class Board {
 public:
  void publish();  // vrc:publish-fn
  void tick();
  void set_and_publish(int v);
  void reset();  // vrc:must-publish
  void untracked_write(int v);
  int first_row() const;
  int sum() const;
  int value() const { return value_; }

 private:
  int value_ = 0;          // vrc:board-visible
  std::vector<int> rows_;  // vrc:board-visible
  int scratch_ = 0;
};

}  // namespace fixture
