// Seeded fixture header: a miniature Order enum with one member that has no
// case in the fixture key_for.
#pragma once

namespace fixture {

enum class Order {
  kMinSlotsMaxIdle,
  kMaxIdle,
  kGone,  // SEED: heap-order
};

}  // namespace fixture
