// Clean fixture impl: key expressions and tie-break agree with DESIGN.md
// (whitespace differences are deliberately present — the comparison is
// whitespace-insensitive).
#include "cluster_index.h"

namespace fixture {

struct NodeState {
  int slots_used = 0;
  int idle = 0;
};

struct Key {
  int primary = 0;
  int secondary = 0;
};

struct Entry {
  Key key;
  int node = 0;
};

bool precedes(const Entry& a, const Entry& b) {
  if (a.key.primary != b.key.primary) return a.key.primary < b.key.primary;
  if (a.key.secondary != b.key.secondary) {
    return a.key.secondary < b.key.secondary;
  }
  return a.node < b.node;
}

struct ClusterIndex {
  static Key key_for(Order order, const NodeState& state);
};

Key ClusterIndex::key_for(Order order, const NodeState& state) {
  switch (order) {
    case Order::kMinSlotsMaxIdle:
      return {state.slots_used, -state.idle};
    case Order::kMaxIdle:
      return {-state.idle, 0};
  }
  return {};
}

}  // namespace fixture
