// Clean fixture header: every enum member has a case and a table entry.
#pragma once

namespace fixture {

enum class Order {
  kMinSlotsMaxIdle,
  kMaxIdle,
};

}  // namespace fixture
