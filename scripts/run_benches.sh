#!/usr/bin/env bash
# Builds the engine micro-benchmarks in Release and writes google-benchmark
# JSON with 3 repetitions per benchmark. The committed perf baseline
# (BENCH_sim_engine.json) is produced with exactly this script, so CI's
# regression gate compares like with like (min of 3 reps on both sides).
#
# Usage: scripts/run_benches.sh [output.json] [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_json="${1:-${repo_root}/BENCH_sim_engine.json}"
build_dir="${2:-${repo_root}/build-bench}"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" --target micro_sim_engine -j >/dev/null

"${build_dir}/bench/micro_sim_engine" \
  --benchmark_repetitions=3 \
  --benchmark_min_time=0.2 \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

# The large-cluster scaling run is the evidence for the indexed-placement
# rework; a baseline without it silently drops that coverage from the gate.
if ! grep -q '"BM_EndToEndLargeRun/10240"' "${out_json}"; then
  echo "error: ${out_json} is missing BM_EndToEndLargeRun/10240" >&2
  exit 1
fi

# The exchange-scaling run is the evidence for the dirty-set incremental
# exchange + active-set tick loop (O(active), not O(n)); same rule.
if ! grep -q '"BM_ExchangeScaling/10240"' "${out_json}"; then
  echo "error: ${out_json} is missing BM_ExchangeScaling/10240" >&2
  exit 1
fi

# The streaming-arrival benches are the evidence for the pull-based pump
# (DESIGN.md §14): SWF line-parse throughput and the streamed counterpart of
# the 1024-node end-to-end run; same rule. No closing quote in the pattern:
# arg'd benchmarks are named "BM_Foo/0", so "BM_Foo\"" would never match.
for required in BM_SwfParse BM_StreamingArrivals; do
  if ! grep -q "\"${required}" "${out_json}"; then
    echo "error: ${out_json} is missing ${required}" >&2
    exit 1
  fi
done

# The malleable benches are the evidence for the width-reconfiguration axis
# (DESIGN.md §15): the isolated resize-cycle micro and the rigid-vs-malleable
# end-to-end pair; same rule.
for required in BM_MalleableResize BM_MalleableEndToEnd; do
  if ! grep -q "\"${required}" "${out_json}"; then
    echo "error: ${out_json} is missing ${required}" >&2
    exit 1
  fi
done

# Fault-matrix table bench: deterministic policy-resilience sweep. Its JSON
# gate coverage comes from BM_EndToEndFaultedRun above; running the table
# binary here catches link/runtime breakage of the faults subsystem in the
# same job.
cmake --build "${build_dir}" --target fault_matrix -j >/dev/null
"${build_dir}/bench/fault_matrix" --mtbfs "0;1500" --jobs 2 >/dev/null
echo "fault_matrix bench OK"

echo "wrote ${out_json}"
