#!/usr/bin/env python3
"""Unified CLI for the vrc_lint static-analysis framework (DESIGN.md §13).

Runs four analyzers over the tree (all of them by default):

  determinism    bans nondeterminism sources in src/ (DESIGN.md §8)
  layering       enforces the module DAG declared in
                 scripts/vrc_lint/layering.toml over the #include graph
  publish-audit  board-visible state writes must republish on every path out
                 (the `// vrc:board-visible` contract, DESIGN.md §13.3)
  heap-order     IndexedHeap key orders in cluster_index.cc must match the
                 machine-readable tie-break table in DESIGN.md §11

Usage:
  vrc_lint.py                          # all four analyzers, default scopes
  vrc_lint.py --analyzer layering      # one analyzer
  vrc_lint.py src/cluster              # restrict path-scoped analyzers
  vrc_lint.py --list-files             # print the scanned file sets
  vrc_lint.py --self-test              # seeded-fixture self-test (CI)

Suppress a justified finding with `// NOLINT-<analyzer>(reason)` on the
line or alone on the line above; the reason is mandatory.

Exit status: 0 clean, 1 violations found, 2 internal/usage error.
Stdlib-only (python3 >= 3.11 for tomllib).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from vrc_lint import core  # noqa: E402

if __name__ == "__main__":
    sys.exit(core.main())
