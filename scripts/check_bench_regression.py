#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh benchmark run against the committed baseline.

Both JSON files are google-benchmark output produced by scripts/run_benches.sh
(3 repetitions). For each benchmark the min real_time across repetitions is
compared; the check fails only when the current min exceeds the baseline min
by more than the allowed factor (default 3x). The wide factor absorbs noisy
shared CI runners while still catching order-of-magnitude regressions like an
accidental O(n) scan reintroduced on the event hot path.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [--factor 3.0]
  check_bench_regression.py BASELINE.json CURRENT.json --factor-for NAME=2.0
  check_bench_regression.py BASELINE.json CURRENT.json --require NAME ...
  check_bench_regression.py BASELINE.json CURRENT.json --list
  check_bench_regression.py --self-test

--require NAME (repeatable) fails the gate unless the current run contains a
benchmark whose run_name starts with NAME. The perf-smoke job requires
BM_EndToEndLargeRun and BM_ExchangeScaling so the large-cluster scaling
evidence can't be silently filtered out of the gated run.

--factor-for NAME=FACTOR (repeatable) overrides the allowed factor for every
benchmark whose name starts with NAME; the longest matching prefix wins.
Long-running end-to-end benches average away runner noise that whipsaws the
microbenches, so the perf-smoke job holds them to a tighter factor than the
default 3x.

--list prints a delta table (baseline min, current min, ratio, signed %)
for every benchmark in either file — including current-only ones the gate
ignores — without enforcing the factor; the perf-smoke job runs it so the CI
log always shows the full picture even when the gate passes.

--self-test exercises the comparison logic on synthetic in-memory fixtures
(no files needed) and is invoked from the tools-lint CI job.
"""

import argparse
import json
import math
import sys


def validate_benchmark_data(data, source="<data>"):
    """Structural validation before any comparison math.

    A truncated benchmark run, a hand-edited baseline, or a google-benchmark
    format change should fail here with a precise message, not surface later
    as a KeyError or a nonsense ratio. Raises ValueError on the first
    problem: top-level shape, per-entry field types, non-finite or negative
    timings, and duplicate (name, repetition_index) rows — the same
    repetition emitted twice means a corrupted or concatenated file.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{source}: top level must be a JSON object, "
                         f"got {type(data).__name__}")
    benchmarks = data.get("benchmarks")
    if benchmarks is None:
        raise ValueError(f"{source}: missing 'benchmarks' array")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{source}: 'benchmarks' must be a list, "
                         f"got {type(benchmarks).__name__}")
    seen = set()
    for pos, bench in enumerate(benchmarks):
        where = f"{source}: benchmarks[{pos}]"
        if not isinstance(bench, dict):
            raise ValueError(f"{where}: entry must be an object, "
                             f"got {type(bench).__name__}")
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: 'name' must be a non-empty string, "
                             f"got {name!r}")
        if bench.get("run_type") == "aggregate":
            continue  # aggregate rows are skipped downstream; shape-check only
        real = bench.get("real_time")
        if not isinstance(real, (int, float)) or isinstance(real, bool):
            raise ValueError(f"{where} ({name}): 'real_time' must be a "
                             f"number, got {real!r}")
        if not math.isfinite(real) or real < 0:
            raise ValueError(f"{where} ({name}): 'real_time' must be finite "
                             f"and non-negative, got {real!r}")
        rep = bench.get("repetition_index")
        if rep is not None:
            key = (name, rep)
            if key in seen:
                raise ValueError(f"{where}: duplicate benchmark row for "
                                 f"{name!r} repetition {rep} (corrupted or "
                                 f"concatenated output?)")
            seen.add(key)
    return data


def min_times_from_data(data, source="<data>"):
    """Map benchmark name -> (min real_time across repetitions, time unit)."""
    validate_benchmark_data(data, source)
    times = {}
    for bench in data["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev); keep per-repetition runs.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench["name"])
        real = float(bench["real_time"])
        unit = bench.get("time_unit", "ns")
        if name not in times or real < times[name][0]:
            times[name] = (real, unit)
    return times


def min_times(path):
    with open(path) as fh:
        try:
            return min_times_from_data(json.load(fh), source=path)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}: not valid JSON: {err}") from err


def effective_factor(name, factor, overrides):
    """The allowed factor for `name`: the longest --factor-for prefix that
    matches wins; the global --factor applies otherwise."""
    best_prefix = None
    best_factor = factor
    for prefix, override in overrides.items():
        if name.startswith(prefix):
            if best_prefix is None or len(prefix) > len(best_prefix):
                best_prefix = prefix
                best_factor = override
    return best_factor


def parse_factor_overrides(pairs):
    """Parses repeated NAME=FACTOR args into {prefix: factor}."""
    overrides = {}
    for pair in pairs:
        prefix, sep, value = pair.rpartition("=")
        if not sep or not prefix:
            raise ValueError(f"--factor-for expects NAME=FACTOR, got {pair!r}")
        overrides[prefix] = float(value)
    return overrides


def compare(baseline, current, factor, factor_overrides=None):
    """Returns (report_lines, failure_messages) for the gate mode."""
    overrides = factor_overrides or {}
    lines = []
    failures = []
    for name, (base, unit) in sorted(baseline.items()):
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current run")
            continue
        limit = effective_factor(name, factor, overrides)
        cur = entry[0]
        ratio = cur / base if base > 0 else float("inf")
        status = "FAIL" if ratio > limit else "ok"
        lines.append(f"{status:4} {name}: baseline {base:.1f} {unit}, "
                     f"current {cur:.1f} {unit} ({ratio:.2f}x, "
                     f"limit {limit:.1f}x)")
        if ratio > limit:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(limit {limit:.1f}x)")
    return lines, failures


def missing_required(current, required):
    """Required names absent from the current run (prefix match on run_name,
    so --require BM_EndToEndLargeRun covers every /Arg variant)."""
    return [name for name in required
            if not any(bench.startswith(name) for bench in current)]


def delta_rows(baseline, current):
    """Rows of (name, base, cur, ratio, unit) over the union of benchmarks.
    base or cur is None when the benchmark exists on only one side."""
    rows = []
    for name in sorted(set(baseline) | set(current)):
        base_entry = baseline.get(name)
        cur_entry = current.get(name)
        unit = (cur_entry or base_entry)[1]
        base = base_entry[0] if base_entry else None
        cur = cur_entry[0] if cur_entry else None
        ratio = None
        if base is not None and cur is not None and base > 0:
            ratio = cur / base
        rows.append((name, base, cur, ratio, unit))
    return rows


def format_delta_table(rows):
    """Renders the --list table: per-benchmark baseline vs current deltas."""
    header = (f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
              f"{'ratio':>7} {'delta':>8}")
    lines = [header, "-" * len(header)]
    for name, base, cur, ratio, unit in rows:
        base_text = f"{base:.1f} {unit}" if base is not None else "(absent)"
        cur_text = f"{cur:.1f} {unit}" if cur is not None else "(absent)"
        if ratio is not None:
            ratio_text = f"{ratio:.2f}x"
            delta_text = f"{(ratio - 1.0) * 100.0:+.1f}%"
        else:
            ratio_text = "-"
            delta_text = "-"
        lines.append(f"{name:<44} {base_text:>12} {cur_text:>12} "
                     f"{ratio_text:>7} {delta_text:>8}")
    return lines


def self_test():
    """Unit-tests the comparison logic on synthetic google-benchmark JSON."""
    baseline_data = {"benchmarks": [
        # Two repetitions: min should win (100, not 140).
        {"name": "BM_Fast/process_time", "run_name": "BM_Fast",
         "run_type": "iteration", "real_time": 140.0, "time_unit": "ns"},
        {"name": "BM_Fast/process_time", "run_name": "BM_Fast",
         "run_type": "iteration", "real_time": 100.0, "time_unit": "ns"},
        # Aggregate rows must be ignored even with a tiny real_time.
        {"name": "BM_Fast_mean", "run_name": "BM_Fast",
         "run_type": "aggregate", "real_time": 1.0, "time_unit": "ns"},
        {"name": "BM_Slow", "run_type": "iteration",
         "real_time": 200.0, "time_unit": "ns"},
        {"name": "BM_Gone", "run_type": "iteration",
         "real_time": 50.0, "time_unit": "ns"},
    ]}
    current_data = {"benchmarks": [
        {"name": "BM_Fast/process_time", "run_name": "BM_Fast",
         "run_type": "iteration", "real_time": 250.0, "time_unit": "ns"},
        # 4x the baseline min: must fail a 3x gate, pass a 5x gate.
        {"name": "BM_Slow", "run_type": "iteration",
         "real_time": 800.0, "time_unit": "ns"},
        {"name": "BM_New", "run_type": "iteration",
         "real_time": 10.0, "time_unit": "ns"},
    ]}

    failures = []

    def check(condition, label):
        if not condition:
            failures.append(label)

    baseline = min_times_from_data(baseline_data)
    current = min_times_from_data(current_data)

    check(baseline["BM_Fast"] == (100.0, "ns"),
          "min across repetitions: expected (100.0, 'ns'), "
          f"got {baseline.get('BM_Fast')}")
    check("BM_Fast_mean" not in baseline and
          all(entry[0] > 1.0 for entry in baseline.values()),
          "aggregate rows must be skipped")

    _lines, gate_failures = compare(baseline, current, factor=3.0)
    check(any("BM_Slow" in failure and "4.00x" in failure
              for failure in gate_failures),
          f"3x gate must flag BM_Slow at 4.00x, got {gate_failures}")
    check(any("BM_Gone" in failure and "missing" in failure
              for failure in gate_failures),
          f"3x gate must flag missing BM_Gone, got {gate_failures}")
    check(not any("BM_Fast" in failure for failure in gate_failures),
          f"3x gate must pass BM_Fast at 2.50x, got {gate_failures}")

    _lines, relaxed_failures = compare(baseline, current, factor=5.0)
    check(not any("BM_Slow" in failure for failure in relaxed_failures),
          f"5x gate must pass BM_Slow at 4.00x, got {relaxed_failures}")

    # Per-benchmark overrides: a loose global gate with a tight BM_Fast
    # override must flag BM_Fast (2.50x > 2.0x) but not BM_Slow.
    _lines, override_failures = compare(
        baseline, current, factor=5.0, factor_overrides={"BM_Fast": 2.0})
    check(any("BM_Fast" in failure and "2.50x" in failure
              for failure in override_failures),
          f"--factor-for BM_Fast=2.0 must flag BM_Fast, got {override_failures}")
    check(not any("BM_Slow" in failure for failure in override_failures),
          f"--factor-for must not affect other benchmarks, got {override_failures}")
    # Prefix match with longest-prefix-wins over Arg variants.
    check(effective_factor("BM_Fast/128", 3.0, {"BM_Fast": 2.0}) == 2.0,
          "--factor-for must prefix-match Arg variants")
    check(effective_factor("BM_Fast/128", 3.0,
                           {"BM_Fast": 2.0, "BM_Fast/128": 1.5}) == 1.5,
          "longest matching --factor-for prefix must win")
    check(effective_factor("BM_Other", 3.0, {"BM_Fast": 2.0}) == 3.0,
          "unmatched benchmarks must keep the global factor")
    check(parse_factor_overrides(["BM_A=2.0", "BM_B=1.5"]) ==
          {"BM_A": 2.0, "BM_B": 1.5},
          "parse_factor_overrides must parse NAME=FACTOR pairs")
    try:
        parse_factor_overrides(["BM_NoFactor"])
        check(False, "parse_factor_overrides must reject a pair without '='")
    except ValueError:
        pass

    rows = delta_rows(baseline, current)
    row_map = {row[0]: row for row in rows}
    check(set(row_map) == {"BM_Fast", "BM_Slow", "BM_Gone", "BM_New"},
          f"--list must cover the union of benchmarks, got {sorted(row_map)}")
    check(row_map["BM_New"][1] is None and row_map["BM_New"][3] is None,
          "current-only benchmark must have no baseline or ratio")
    check(row_map["BM_Gone"][2] is None,
          "baseline-only benchmark must have no current time")
    check(abs(row_map["BM_Slow"][3] - 4.0) < 1e-9,
          f"BM_Slow ratio must be 4.0, got {row_map['BM_Slow'][3]}")

    check(missing_required(current, ["BM_Fast", "BM_New"]) == [],
          "--require must accept benchmarks present in the current run")
    check(missing_required(current, ["BM_EndToEndLargeRun"]) ==
          ["BM_EndToEndLargeRun"],
          "--require must report absent benchmarks")
    # Prefix match: BM_Slow covers BM_Slow/128-style arg variants.
    check(missing_required({"BM_Slow/128": (1.0, "ns")}, ["BM_Slow"]) == [],
          "--require must prefix-match Arg variants")

    # Upfront validation: each malformed input must be rejected with a
    # message naming the problem, before any comparison math runs.
    def rejects(data, expect_fragment, label):
        try:
            validate_benchmark_data(data, source="fixture")
            check(False, f"validation must reject {label}")
        except ValueError as err:
            check(expect_fragment in str(err),
                  f"rejection of {label} must mention {expect_fragment!r}, "
                  f"got: {err}")

    rejects([], "top level", "a non-object top level")
    rejects({}, "missing 'benchmarks'", "a missing benchmarks array")
    rejects({"benchmarks": "nope"}, "must be a list",
            "a non-list benchmarks field")
    rejects({"benchmarks": ["nope"]}, "must be an object",
            "a non-object benchmark entry")
    rejects({"benchmarks": [{"real_time": 1.0}]}, "'name'",
            "an entry without a name")
    rejects({"benchmarks": [{"name": "BM_X", "run_type": "iteration"}]},
            "'real_time'", "an entry without a timing")
    rejects({"benchmarks": [{"name": "BM_X", "run_type": "iteration",
                             "real_time": "fast"}]},
            "must be a number", "a string timing")
    rejects({"benchmarks": [{"name": "BM_X", "run_type": "iteration",
                             "real_time": float("nan")}]},
            "finite", "a NaN timing")
    rejects({"benchmarks": [{"name": "BM_X", "run_type": "iteration",
                             "real_time": -5.0}]},
            "non-negative", "a negative timing")
    rejects({"benchmarks": [
        {"name": "BM_X", "run_type": "iteration", "real_time": 1.0,
         "repetition_index": 0},
        {"name": "BM_X", "run_type": "iteration", "real_time": 2.0,
         "repetition_index": 0},
    ]}, "duplicate", "a duplicated repetition row")
    try:
        # Well-formed data (including a repeated name with distinct
        # repetition indices, and rows without any index) must pass.
        validate_benchmark_data({"benchmarks": [
            {"name": "BM_X", "run_type": "iteration", "real_time": 1.0,
             "repetition_index": 0},
            {"name": "BM_X", "run_type": "iteration", "real_time": 2.0,
             "repetition_index": 1},
            {"name": "BM_Y", "run_type": "iteration", "real_time": 3},
            {"name": "BM_X_mean", "run_type": "aggregate"},
        ]}, source="fixture")
    except ValueError as err:
        check(False, f"validation must accept well-formed data, got: {err}")

    table = format_delta_table(rows)
    check(len(table) == 2 + len(rows), "table must have header + one row each")
    check(any("+300.0%" in line for line in table),
          "BM_Slow delta must render as +300.0%")
    check(any("(absent)" in line for line in table),
          "one-sided benchmarks must render as (absent)")

    if failures:
        print("check_bench_regression self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench_regression self-test passed.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="fail when current_min > factor * baseline_min")
    parser.add_argument("--factor-for", action="append", default=[],
                        metavar="NAME=FACTOR",
                        help="override the factor for benchmarks whose name "
                             "starts with NAME; longest prefix wins "
                             "(repeatable)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless the current run has a benchmark "
                             "starting with NAME (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="print per-benchmark deltas without enforcing "
                             "the factor gate")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("BASELINE and CURRENT are required unless --self-test")

    try:
        baseline = min_times(args.baseline)
        current = min_times(args.current)
    except (OSError, ValueError) as err:
        print(f"check_bench_regression: {err}", file=sys.stderr)
        return 1

    if args.list:
        for line in format_delta_table(delta_rows(baseline, current)):
            print(line)
        return 0

    try:
        overrides = parse_factor_overrides(args.factor_for)
    except ValueError as err:
        parser.error(str(err))

    lines, failures = compare(baseline, current, args.factor, overrides)
    for line in lines:
        print(line)
    for name in missing_required(current, args.require):
        failures.append(f"{name}: required benchmark missing from current run")

    if failures:
        print("\nPerf regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nAll {len(baseline)} benchmarks within {args.factor:.1f}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
