#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh benchmark run against the committed baseline.

Both JSON files are google-benchmark output produced by scripts/run_benches.sh
(3 repetitions). For each benchmark the min real_time across repetitions is
compared; the check fails only when the current min exceeds the baseline min
by more than the allowed factor (default 3x). The wide factor absorbs noisy
shared CI runners while still catching order-of-magnitude regressions like an
accidental O(n) scan reintroduced on the event hot path.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--factor 3.0]
"""

import argparse
import json
import sys


def min_times(path):
    """Map benchmark name -> (min real_time across repetitions, time unit)."""
    with open(path) as fh:
        data = json.load(fh)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev); keep per-repetition runs.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench["name"])
        real = float(bench["real_time"])
        unit = bench.get("time_unit", "ns")
        if name not in times or real < times[name][0]:
            times[name] = (real, unit)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="fail when current_min > factor * baseline_min")
    args = parser.parse_args()

    baseline = min_times(args.baseline)
    current = min_times(args.current)

    failures = []
    for name, (base, unit) in sorted(baseline.items()):
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current run")
            continue
        cur = entry[0]
        ratio = cur / base if base > 0 else float("inf")
        status = "FAIL" if ratio > args.factor else "ok"
        print(f"{status:4} {name}: baseline {base:.1f} {unit}, "
              f"current {cur:.1f} {unit} ({ratio:.2f}x)")
        if ratio > args.factor:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(limit {args.factor:.1f}x)")

    if failures:
        print("\nPerf regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nAll {len(baseline)} benchmarks within {args.factor:.1f}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
